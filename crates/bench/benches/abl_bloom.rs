//! ABL3 — ablation: Bloom filters on the LSM read path.
//!
//! The design choice behind the KV substrate's read performance: run-level
//! Bloom filters let point reads for absent keys skip binary searches.
//! Measures hit-only and miss-heavy read workloads with filters on and
//! off, reporting both wall-clock and the probe counters that explain it.

use bdb_exec::reporter::{fmt_num, TableReporter};
use bdb_kv::{LsmConfig, LsmStore};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

fn key(i: u64) -> Vec<u8> {
    format!("user{i:012}").into_bytes()
}

fn loaded_store(bloom_bits: usize, records: u64) -> LsmStore {
    let mut s = LsmStore::with_config(LsmConfig {
        // Small memtable: the data lives in many runs, as in a real LSM.
        memtable_capacity_bytes: 16 << 10,
        max_runs: 64,
        bloom_bits_per_key: bloom_bits,
    });
    for i in 0..records {
        s.put(key(i), vec![b'v'; 64]);
    }
    s.flush();
    s
}

fn report() {
    bdb_bench::banner("ABL3", "Bloom filters on the LSM read path");
    let records = 50_000u64;
    let reads = 50_000u64;
    let mut table = TableReporter::new(
        "Point-read cost, 50k records across many runs",
        &["workload", "bloom", "reads/sec", "run probes", "bloom skips"],
    );
    for (name, miss) in [("all hits", false), ("all misses", true)] {
        for bits in [0usize, 10] {
            let s = loaded_store(bits, records);
            let base = s.stats();
            let t0 = Instant::now();
            for i in 0..reads {
                let k = if miss { records + i } else { i % records };
                black_box(s.get(&key(k)));
            }
            let secs = t0.elapsed().as_secs_f64().max(1e-9);
            let st = s.stats();
            table.add_row(&[
                name.into(),
                if bits > 0 { "on".into() } else { "off".into() },
                fmt_num(reads as f64 / secs),
                (st.run_probes - base.run_probes).to_string(),
                (st.bloom_skips - base.bloom_skips).to_string(),
            ]);
        }
    }
    println!("{}", table.to_text());
    println!("Shape: with filters on, miss-heavy reads skip nearly every run\nprobe and get markedly faster; hit reads pay only the filter check.");
}

fn bench(c: &mut Criterion) {
    report();
    let mut group = c.benchmark_group("abl3_bloom_miss_reads");
    for bits in [0usize, 10] {
        group.bench_with_input(BenchmarkId::new("bloom_bits", bits), &bits, |b, &bits| {
            let s = loaded_store(bits, 20_000);
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                black_box(s.get(&key(20_000 + i)))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = bdb_bench::criterion();
    targets = bench
}
criterion_main!(benches);
