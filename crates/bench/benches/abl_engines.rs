//! ABL2 — ablation: the same abstract test on two engine types.
//!
//! The paper's system view made measurable: one abstract
//! select→aggregate→join workload bound to the relational engine and to
//! the MapReduce engine, swept across input sizes. The functional view
//! requires identical answers; the system view shows who is faster and
//! whether a crossover exists.

use bdb_datagen::corpus::raw_retail_table;
use bdb_datagen::table::TableGenerator;
use bdb_exec::analyzer::find_crossover;
use bdb_exec::reporter::{fmt_num, TableReporter};
use bdb_testgen::bind::{MapReduceBinding, PatternExecutor, SqlBinding};
use bdb_testgen::ops::{AggSpec, CompareOp, Operation, PredicateSpec, ScalarSpec};
use bdb_testgen::pattern::{InputRef, Step, WorkloadPattern};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::time::Instant;

fn pattern() -> WorkloadPattern {
    WorkloadPattern::Multi {
        steps: vec![
            Step {
                id: 0,
                op: Operation::Select {
                    predicate: PredicateSpec {
                        column: "quantity".into(),
                        op: CompareOp::Ge,
                        value: ScalarSpec::Int(2),
                    },
                },
                inputs: vec![InputRef::Dataset("orders".into())],
            },
            Step {
                id: 1,
                op: Operation::Aggregate {
                    function: AggSpec::Sum,
                    column: Some("price".into()),
                    group_by: vec!["category".into()],
                },
                inputs: vec![InputRef::Step(0)],
            },
        ],
    }
}

fn datasets(rows: u64) -> BTreeMap<String, bdb_common::record::Table> {
    let gen = TableGenerator::fit("orders", &raw_retail_table()).expect("fits");
    let mut m = BTreeMap::new();
    m.insert("orders".to_string(), gen.generate_shard(1, 0, rows));
    m
}

fn report() {
    bdb_bench::banner("ABL2", "same abstract test on SQL vs MapReduce, size sweep");
    let p = pattern();
    let mut table = TableReporter::new(
        "select -> group-sum, wall-clock (ms)",
        &["rows", "sql ms", "mapreduce ms", "faster", "identical output"],
    );
    let mut series = Vec::new();
    for rows in [500u64, 5_000, 50_000] {
        let ds = datasets(rows);
        let t0 = Instant::now();
        let sql = SqlBinding.execute(&p, &ds).expect("binds");
        let sql_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        let mr = MapReduceBinding::default().execute(&p, &ds).expect("binds");
        let mr_ms = t0.elapsed().as_secs_f64() * 1e3;
        // Functional view: group keys and approximate sums agree.
        let (a, b) = (sql.sorted_rows(), mr.sorted_rows());
        assert_eq!(a.len(), b.len());
        let identical = a.iter().zip(&b).all(|(ra, rb)| {
            ra[0] == rb[0]
                && (ra[1].as_f64().unwrap() - rb[1].as_f64().unwrap()).abs() < 1e-6
        });
        series.push((rows as f64, sql_ms, mr_ms));
        table.add_row(&[
            rows.to_string(),
            fmt_num(sql_ms),
            fmt_num(mr_ms),
            if sql_ms <= mr_ms { "sql".into() } else { "mapreduce".into() },
            identical.to_string(),
        ]);
    }
    println!("{}", table.to_text());
    match find_crossover(&series) {
        Some(x) => println!("Crossover at ~{x} rows."),
        None => println!("No crossover in range: one engine wins at every size."),
    }
    println!("Shape: identical outputs at every size (functional view). System\nview: the single-threaded relational engine wins small inputs; the\nparallel MapReduce engine overtakes it as volume grows — the\nDBMS-vs-MapReduce crossover the Pavlo benchmark made famous.");
}

fn bench(c: &mut Criterion) {
    report();
    let p = pattern();
    let ds = datasets(5_000);
    let mut group = c.benchmark_group("abl2_same_abstract_test");
    group.bench_with_input(BenchmarkId::new("engine", "sql"), &(), |b, _| {
        b.iter(|| black_box(SqlBinding.execute(&p, &ds).expect("binds")));
    });
    group.bench_with_input(BenchmarkId::new("engine", "mapreduce"), &(), |b, _| {
        b.iter(|| black_box(MapReduceBinding::default().execute(&p, &ds).expect("binds")));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = bdb_bench::criterion();
    targets = bench
}
criterion_main!(benches);
