//! ABL1 — ablation: veracity-preserving vs naive generation.
//!
//! The design choice DESIGN.md calls out: is model fitting worth its cost?
//! Measures both the *quality gap* (divergence from raw data) and the
//! *speed cost* (generation throughput) for each generator family, so the
//! trade-off the paper's veracity column implies is visible end to end.

use bdb_common::prelude::*;
use bdb_common::text::Document;
use bdb_datagen::corpus::{karate_club_graph, raw_retail_table, RAW_TEXT_CORPUS};
use bdb_datagen::graph::{fit_rmat, ErdosRenyiGenerator};
use bdb_datagen::table::TableGenerator;
use bdb_datagen::text::lda::{LdaConfig, LdaModel};
use bdb_datagen::text::markov::MarkovTextGenerator;
use bdb_datagen::text::NaiveTextGenerator;
use bdb_datagen::veracity;
use bdb_datagen::volume::VolumeSpec;
use bdb_datagen::{DataGenerator, Dataset};
use bdb_exec::reporter::{fmt_num, TableReporter};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

fn docs_of(gen: &dyn DataGenerator, n: u64) -> Vec<Document> {
    match gen.generate(11, &VolumeSpec::Items(n)).expect("generates") {
        Dataset::Text { docs, .. } => docs,
        _ => unreachable!(),
    }
}

fn report() {
    bdb_bench::banner("ABL1", "veracity-preserving vs naive generation: quality + cost");
    let mut vocab = Vocabulary::new();
    let raw_docs: Vec<Document> = RAW_TEXT_CORPUS
        .iter()
        .map(|t| Document::from_text(t, &mut vocab))
        .collect();

    // Text family: naive / markov / lda.
    let t0 = Instant::now();
    let lda = LdaModel::train(
        &RAW_TEXT_CORPUS,
        LdaConfig { iterations: 80, ..Default::default() },
        42,
    )
    .expect("trains");
    let lda_train_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let markov = MarkovTextGenerator::train(&RAW_TEXT_CORPUS).expect("trains");
    let markov_train_ms = t0.elapsed().as_secs_f64() * 1e3;
    let naive = NaiveTextGenerator::from_corpus(&RAW_TEXT_CORPUS);

    let mut table = TableReporter::new(
        "Text generators: fidelity vs cost",
        &["generator", "word JS", "topic JS", "train ms", "gen docs/sec"],
    );
    let mut rng = Xoshiro256::new(1);
    for (name, gen, train_ms) in [
        ("naive-uniform", &naive as &dyn DataGenerator, 0.0),
        ("markov-bigram", &markov as &dyn DataGenerator, markov_train_ms),
        ("lda", &lda as &dyn DataGenerator, lda_train_ms),
    ] {
        let synth = docs_of(gen, 250);
        let v = veracity::text_veracity(&raw_docs, &synth, vocab.len(), Some(&lda), &mut rng);
        let t0 = Instant::now();
        let _ = docs_of(gen, 1_000);
        let rate = 1_000.0 / t0.elapsed().as_secs_f64().max(1e-9);
        table.add_row(&[
            name.into(),
            fmt_num(v.get("word_freq_js").unwrap()),
            fmt_num(v.get("topic_dist_js").unwrap()),
            fmt_num(train_ms),
            fmt_num(rate),
        ]);
    }
    println!("{}", table.to_text());

    // Table family.
    let raw = raw_retail_table();
    let fitted = TableGenerator::fit("retail", &raw).expect("fits");
    let naive_t = TableGenerator::naive("retail", &raw).expect("fits");
    let mut tt = TableReporter::new(
        "Table generators: fidelity vs cost",
        &["generator", "mean divergence", "gen rows/sec"],
    );
    for (name, gen) in [("naive", &naive_t), ("fitted", &fitted)] {
        let v = veracity::table_veracity(&raw, &gen.generate_shard(3, 0, 512))
            .expect("same schema")
            .overall();
        let t0 = Instant::now();
        let _ = gen.generate_shard(4, 0, 5_000);
        let rate = 5_000.0 / t0.elapsed().as_secs_f64().max(1e-9);
        tt.add_row(&[name.into(), fmt_num(v), fmt_num(rate)]);
    }
    println!("{}", tt.to_text());

    // Graph family (hub concentration gap as in the Table 1 probe).
    let g_raw = karate_club_graph();
    let g_fit = fit_rmat(&g_raw, 5).expect("fits");
    let er = ErdosRenyiGenerator {
        edges_per_vertex: g_raw.num_edges() as f64 / g_raw.num_vertices() as f64,
    };
    let hub = bdb_datagen::graph::hub_concentration;
    let target = hub(&g_raw);
    let mut gt = TableReporter::new(
        "Graph generators: hub-concentration fidelity (mean over 5 seeds)",
        &["generator", "raw hub share", "mean synthetic share", "mean gap"],
    );
    for (name, gen_fn) in [
        ("erdos-renyi", Box::new(|s: u64| er.generate_graph(s, 64)) as Box<dyn Fn(u64) -> EdgeListGraph>),
        ("fitted rmat", Box::new(|s: u64| g_fit.generate_graph(s, 6))),
    ] {
        let (mut mean_h, mut mean_gap) = (0.0, 0.0);
        for seed in 0..5 {
            let h = hub(&gen_fn(seed));
            mean_h += h / 5.0;
            mean_gap += (h - target).abs() / 5.0;
        }
        gt.add_row(&[
            name.into(),
            fmt_num(target),
            fmt_num(mean_h),
            fmt_num(mean_gap),
        ]);
    }
    println!("{}", gt.to_text());
    println!("Shape: each step up the model hierarchy buys fidelity; the cost is\none-time training plus a modest generation-rate penalty.");
}

fn bench(c: &mut Criterion) {
    report();
    let lda = LdaModel::train(
        &RAW_TEXT_CORPUS,
        LdaConfig { iterations: 60, ..Default::default() },
        42,
    )
    .expect("trains");
    let naive = NaiveTextGenerator::from_corpus(&RAW_TEXT_CORPUS);
    c.bench_function("abl1_generate_lda_500_docs", |b| {
        b.iter(|| black_box(lda.generate(1, &VolumeSpec::Items(500)).expect("generates")));
    });
    c.bench_function("abl1_generate_naive_500_docs", |b| {
        b.iter(|| black_box(naive.generate(1, &VolumeSpec::Items(500)).expect("generates")));
    });
    c.bench_function("abl1_train_lda_60_iters", |b| {
        b.iter(|| {
            black_box(
                LdaModel::train(
                    &RAW_TEXT_CORPUS,
                    LdaConfig { iterations: 60, ..Default::default() },
                    42,
                )
                .expect("trains"),
            )
        });
    });
}

criterion_group! {
    name = benches;
    config = bdb_bench::criterion();
    targets = bench
}
criterion_main!(benches);
