//! EXT1 — heterogeneous hardware platforms (Section 5.2).
//!
//! Runs real workloads on the baseline engines, then projects each onto
//! the modeled platform set (Xeon, Xeon+GPGPU, Xeon+MIC, microserver) and
//! answers the paper's two questions: is there a consistent
//! performance+energy winner across all applications (expected: no), and
//! which platform suits each application class.

use bdb_common::rng::{Rng, Xoshiro256};
use bdb_datagen::corpus::RAW_TEXT_CORPUS;
use bdb_datagen::graph::RmatGenerator;
use bdb_datagen::text::NaiveTextGenerator;
use bdb_datagen::volume::VolumeSpec;
use bdb_datagen::{DataGenerator, Dataset};
use bdb_exec::reporter::{fmt_num, TableReporter};
use bdb_metrics::platform::{PlatformProfile, PlatformStudy};
use bdb_metrics::MetricReport;
use bdb_workloads::{micro, oltp, search, social};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn measured_workloads() -> Vec<MetricReport> {
    let mut rng = Xoshiro256::new(1);
    let keys: Vec<u64> = (0..50_000).map(|_| rng.next_u64()).collect();
    let gen = NaiveTextGenerator::from_corpus(&RAW_TEXT_CORPUS);
    let docs = match gen.generate(1, &VolumeSpec::Items(2_000)).expect("generates") {
        Dataset::Text { docs, .. } => docs,
        _ => unreachable!(),
    };
    let graph = RmatGenerator::standard(8.0).generate_graph(1, 12);
    let (points, _) = social::gaussian_mixture(20_000, 5, 8, 2.0, 1);
    let ycsb = oltp::run_ycsb(
        &oltp::YcsbSpec::b(),
        &oltp::YcsbConfig {
            record_count: 5_000,
            operation_count: 10_000,
            clients: 2,
            value_size: 64,
        },
        1,
    )
    .2;
    vec![
        micro::sort_native(&keys).1.report,
        micro::wordcount_native(&docs).1.report,
        search::pagerank_native(&graph.to_csr(), &Default::default()).2.report,
        social::kmeans_native(&points, &social::KMeansConfig { k: 5, ..Default::default() }, 1)
            .3
            .report,
        ycsb.report,
    ]
}

fn report() {
    bdb_bench::banner(
        "EXT1",
        "heterogeneous platforms: projected duration/energy per workload",
    );
    let reports = measured_workloads();
    let platforms = PlatformProfile::standard_set();
    let study = PlatformStudy::run(&reports, &platforms, 0.8);

    let mut table = TableReporter::new(
        "Projected duration (s) / ops-per-joule by platform",
        &["workload", "Xeon", "Xeon+GPGPU", "Xeon+MIC", "Microserver", "fastest", "greenest"],
    );
    for (wi, row) in study.projections.iter().enumerate() {
        let (fastest, greenest) = study.best_for(wi);
        let mut cells = vec![row[0].workload.clone()];
        for p in row {
            cells.push(format!(
                "{} / {}",
                fmt_num(p.duration_secs),
                fmt_num(p.ops_per_joule)
            ));
        }
        cells.push(fastest.platform.clone());
        cells.push(greenest.platform.clone());
        table.add_row(&cells);
    }
    println!("{}", table.to_text());
    match study.consistent_winner() {
        Some(p) => println!("Question (1): {p} wins performance AND energy everywhere."),
        None => println!(
            "Question (1): no platform consistently wins both performance and\nenergy across all applications — the paper's expected finding."
        ),
    }
    println!("Question (2): accelerators take the compute-bound analytics\n(PageRank, k-means); the microserver is the energy pick for\ndata-movement-bound workloads (sort, WordCount, OLTP).");
}

fn bench(c: &mut Criterion) {
    report();
    let reports = measured_workloads();
    let platforms = PlatformProfile::standard_set();
    c.bench_function("ext1_platform_study", |b| {
        b.iter(|| black_box(PlatformStudy::run(&reports, &platforms, 0.8)));
    });
}

criterion_group! {
    name = benches;
    config = bdb_bench::criterion();
    targets = bench
}
criterion_main!(benches);
