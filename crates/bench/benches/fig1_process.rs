//! FIG1 — the five-step benchmarking process (Figure 1).
//!
//! Runs the full pipeline (planning → data generation → test generation →
//! execution → analysis) on the micro/sort domain across volumes, prints
//! the per-step breakdown the figure describes, and benches the end-to-end
//! run.

use bdb_core::layers::BenchmarkSpec;
use bdb_core::pipeline::Benchmark;
use bdb_exec::reporter::{fmt_num, TableReporter};
use bdb_testgen::SystemKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn report() {
    bdb_bench::banner("FIG1", "five-step benchmarking process, micro/sort, volume sweep");
    let bench = Benchmark::new();
    let mut table = TableReporter::new(
        "Per-step wall-clock (ms)",
        &["volume", "planning", "data gen", "test gen", "execution", "analysis"],
    );
    for scale in [1_000u64, 10_000, 100_000] {
        let spec = BenchmarkSpec::new("fig1")
            .with_prescription("micro/sort")
            .with_system(SystemKind::Native)
            .with_scale(scale)
            .with_seed(1);
        let run = bench.run(&spec).expect("pipeline runs");
        let ms: Vec<String> = run
            .phases
            .iter()
            .map(|p| fmt_num(p.duration.as_secs_f64() * 1e3))
            .collect();
        let mut row = vec![scale.to_string()];
        row.extend(ms);
        table.add_row(&row);
    }
    println!("{}", table.to_text());
    println!("Shape: execution and data generation dominate and scale with volume;\nplanning/test generation/analysis stay constant.");
}

fn bench(c: &mut Criterion) {
    report();
    let bench_runner = Benchmark::new();
    let mut group = c.benchmark_group("fig1_pipeline");
    for scale in [1_000u64, 10_000] {
        group.bench_with_input(BenchmarkId::new("micro_sort", scale), &scale, |b, &scale| {
            let spec = BenchmarkSpec::new("fig1")
                .with_prescription("micro/sort")
                .with_system(SystemKind::Native)
                .with_scale(scale)
                .with_seed(1);
            b.iter(|| black_box(bench_runner.run(&spec).expect("pipeline runs")));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = bdb_bench::criterion();
    targets = bench
}
criterion_main!(benches);
