//! FIG3 — the data generation process (Figure 3).
//!
//! Exercises the per-type generation paths (text via LDA and Markov,
//! table via fitted models, graph via RMAT and BA, stream via Poisson and
//! MMPP) across a volume sweep, printing items/sec per generator — the
//! *volume* and *velocity* columns of the process — and benching each
//! path.

use bdb_datagen::corpus::{karate_club_graph, raw_retail_table, RAW_TEXT_CORPUS};
use bdb_datagen::graph::{fit_rmat, BaGenerator, RmatGenerator};
use bdb_datagen::stream::{MmppArrivals, PoissonArrivals};
use bdb_datagen::table::TableGenerator;
use bdb_datagen::text::lda::{LdaConfig, LdaModel};
use bdb_datagen::text::markov::MarkovTextGenerator;
use bdb_datagen::volume::VolumeSpec;
use bdb_datagen::DataGenerator;
use bdb_exec::reporter::{fmt_num, TableReporter};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;

fn generators() -> Vec<Box<dyn DataGenerator>> {
    let lda = LdaModel::train(
        &RAW_TEXT_CORPUS,
        LdaConfig { iterations: 60, ..Default::default() },
        7,
    )
    .expect("trains");
    vec![
        Box::new(lda),
        Box::new(MarkovTextGenerator::train(&RAW_TEXT_CORPUS).expect("trains")),
        Box::new(TableGenerator::fit("retail", &raw_retail_table()).expect("fits")),
        Box::new(fit_rmat(&karate_club_graph(), 7).expect("fits")),
        Box::new(BaGenerator::new(4).expect("valid")),
        Box::new(RmatGenerator::standard(8.0)),
        Box::new(PoissonArrivals::new(10_000.0, 64).expect("valid")),
        Box::new(MmppArrivals::new(2_000.0, 20_000.0, 200.0, 64).expect("valid")),
    ]
}

fn report() {
    bdb_bench::banner(
        "FIG3",
        "data generation process: per-type generators, volume sweep 10^3..10^5",
    );
    let mut table = TableReporter::new(
        "Generation rate (items/sec) by volume",
        &["generator", "kind", "1k", "10k", "100k", "scaling"],
    );
    for gen in generators() {
        let mut rates = Vec::new();
        for items in [1_000u64, 10_000, 100_000] {
            let t0 = Instant::now();
            let d = gen.generate(3, &VolumeSpec::Items(items)).expect("generates");
            let secs = t0.elapsed().as_secs_f64().max(1e-9);
            // Graphs interpret Items as vertices but count edges as items.
            rates.push(d.item_count() as f64 / secs);
        }
        // Linear scaling: the rate stays within an order of magnitude.
        let scaling = if rates[2] > rates[0] / 8.0 { "~linear" } else { "sub-linear" };
        table.add_row(&[
            gen.name().to_string(),
            gen.kind().to_string(),
            fmt_num(rates[0]),
            fmt_num(rates[1]),
            fmt_num(rates[2]),
            scaling.to_string(),
        ]);
    }
    println!("{}", table.to_text());
    println!("Shape: every generator family sustains its rate as volume grows\n(scalable volume, Figure 3 step 3).");
}

/// Thread-scaling report: the BDGS-style parallel deployment lever.
/// Prints achieved items/sec and speedup vs one worker for the table and
/// stream generators at 1/2/4/N workers (N = available parallelism).
fn thread_scaling_report() {
    let n_auto = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut workers: Vec<usize> = vec![1, 2, 4];
    if !workers.contains(&n_auto) {
        workers.push(n_auto);
    }
    let table_gen = TableGenerator::fit("retail", &raw_retail_table()).expect("fits");
    let stream_gen = PoissonArrivals::new(10_000.0, 64).expect("valid");
    let cases: Vec<(&str, &dyn DataGenerator, u64)> = vec![
        ("table/retail-fitted", &table_gen, 1_000_000),
        ("stream/poisson", &stream_gen, 2_000_000),
    ];
    let mut report = TableReporter::new(
        "Parallel generation scaling (items/sec by workers)",
        &["generator", "items", "workers", "items/s", "speedup"],
    );
    for (name, gen, items) in cases {
        let mut base_rate = None;
        for &w in &workers {
            let t0 = Instant::now();
            let d = gen
                .generate_parallel(3, &VolumeSpec::Items(items), w)
                .expect("generates");
            let secs = t0.elapsed().as_secs_f64().max(1e-9);
            let rate = d.item_count() as f64 / secs;
            let base = *base_rate.get_or_insert(rate);
            report.add_row(&[
                name.to_string(),
                items.to_string(),
                w.to_string(),
                fmt_num(rate),
                format!("{:.2}x", rate / base),
            ]);
        }
    }
    println!("{}", report.to_text());
    println!("Shape: sharded generation scales with workers while staying\nbyte-identical to the sequential run (deterministic PDGF sharding).");
}

fn bench(c: &mut Criterion) {
    report();
    thread_scaling_report();
    let mut group = c.benchmark_group("fig3_generators");
    for (i, gen) in generators().into_iter().enumerate() {
        // Index prefix keeps ids unique (two RMAT variants share a name).
        let name = format!("{i}_{}", gen.name().replace('/', "_"));
        group.bench_with_input(BenchmarkId::new(name, 10_000u64), &gen, |b, gen| {
            b.iter(|| black_box(gen.generate(3, &VolumeSpec::Items(10_000)).expect("generates")));
        });
    }
    group.finish();
    // Thread-scaling bench: table + stream generation across worker counts.
    let mut group = c.benchmark_group("fig3_parallel_scaling");
    let table_gen = TableGenerator::fit("retail", &raw_retail_table()).expect("fits");
    let stream_gen = PoissonArrivals::new(10_000.0, 64).expect("valid");
    let n_auto = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut worker_counts = vec![1usize, 2, 4];
    if !worker_counts.contains(&n_auto) {
        worker_counts.push(n_auto);
    }
    for &w in &worker_counts {
        group.bench_with_input(
            BenchmarkId::new("table_100k", w),
            &w,
            |b, &w| {
                b.iter(|| {
                    black_box(
                        table_gen
                            .generate_parallel(3, &VolumeSpec::Items(100_000), w)
                            .expect("generates"),
                    )
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("stream_200k", w),
            &w,
            |b, &w| {
                b.iter(|| {
                    black_box(
                        stream_gen
                            .generate_parallel(3, &VolumeSpec::Items(200_000), w)
                            .expect("generates"),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = bdb_bench::criterion();
    targets = bench
}
criterion_main!(benches);
