//! FIG4 — the test generation process (Figure 4).
//!
//! Walks the five test-generation steps for every repository domain,
//! prints the prescription inventory (operations, pattern class, target
//! bindings), and benches prescription generation + serialisation and the
//! binding of an abstract test to both engines.

use bdb_exec::reporter::TableReporter;
use bdb_testgen::bind::{MapReduceBinding, PatternExecutor, SqlBinding};
use bdb_testgen::pattern::WorkloadPattern;
use bdb_testgen::repository::builtin_prescriptions;
use bdb_testgen::{Prescription, PrescriptionRepository, SystemKind, TestGenerator};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn pattern_class(p: &Prescription) -> &'static str {
    match &p.pattern {
        WorkloadPattern::Single { .. } => "single-operation",
        WorkloadPattern::Multi { .. } => "multi-operation",
        WorkloadPattern::Iterative { .. } => "iterative-operation",
    }
}

fn report() {
    bdb_bench::banner("FIG4", "test generation: repository inventory and prescribed tests");
    let mut table = TableReporter::new(
        "Prescription repository (Section 5.2)",
        &["prescription", "pattern", "operations", "data sets", "json bytes"],
    );
    for p in builtin_prescriptions() {
        let ops: Vec<&str> = p.pattern.operations().iter().map(|o| o.name()).collect();
        let json = p.to_json().expect("serialises");
        // Round-trip check: the prescription is a portable artifact.
        let back = Prescription::from_json(&json).expect("parses");
        assert_eq!(p, back);
        table.add_row(&[
            p.name.clone(),
            pattern_class(&p).to_string(),
            ops.join("+"),
            p.data.len().to_string(),
            json.len().to_string(),
        ]);
    }
    println!("{}", table.to_text());
    println!("Shape: all three pattern classes are represented and every\nprescription round-trips through JSON (reusable repository).");
}

fn bench(c: &mut Criterion) {
    report();
    c.bench_function("fig4_prescribe_and_serialize", |b| {
        let repo = PrescriptionRepository::with_builtins();
        b.iter(|| {
            let p = repo.get("relational/select-aggregate").expect("exists").clone();
            let test = TestGenerator::materialize(p, SystemKind::Sql, 7).expect("materialises");
            black_box(test.prescription.to_json().expect("serialises"))
        });
    });

    // Binding an abstract test to both engines (step 5 at execution time).
    let repo = PrescriptionRepository::with_builtins();
    let p = repo.get("relational/select-aggregate").expect("exists").clone();
    let raw = bdb_datagen::corpus::raw_retail_table();
    let gen = bdb_datagen::table::TableGenerator::fit("orders", &raw).expect("fits");
    let mut datasets = std::collections::BTreeMap::new();
    datasets.insert("orders".to_string(), gen.generate_shard(1, 0, 2_000));
    c.bench_function("fig4_bind_sql", |b| {
        b.iter(|| black_box(SqlBinding.execute(&p.pattern, &datasets).expect("binds")));
    });
    c.bench_function("fig4_bind_mapreduce", |b| {
        b.iter(|| {
            black_box(
                MapReduceBinding::default()
                    .execute(&p.pattern, &datasets)
                    .expect("binds"),
            )
        });
    });
}

criterion_group! {
    name = benches;
    config = bdb_bench::criterion();
    targets = bench
}
criterion_main!(benches);
