//! S5.1a — fully controllable data velocity.
//!
//! The paper's two velocity-control strategies measured side by side:
//!
//! 1. **Parallel strategy** — generation rate vs worker count (should
//!    scale near-linearly until core count) and achieved-vs-target error
//!    across a target-rate sweep.
//! 2. **Algorithmic strategy** — the LDA generator's memory/speed lever:
//!    alias-table sampling (O(1)/word, memory-heavy) vs linear CDF
//!    sampling (O(V)/word, memory-light).
//!
//! Plus the update-frequency axis the paper says existing benchmarks
//! ignore.

use bdb_common::rng::Xoshiro256;
use bdb_datagen::corpus::RAW_TEXT_CORPUS;
use bdb_datagen::stream::UpdateStreamGenerator;
use bdb_datagen::text::lda::{LdaConfig, LdaModel};
use bdb_datagen::text::NaiveTextGenerator;
use bdb_datagen::velocity::{measure_rate, VelocityController};
use bdb_exec::reporter::{fmt_num, TableReporter};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn report() {
    bdb_bench::banner("S5.1a", "velocity control: parallel + algorithmic strategies");
    let gen = NaiveTextGenerator::from_corpus(&RAW_TEXT_CORPUS);
    // The scaling demo uses the LDA generator: its per-document cost is
    // high enough that worker count, not allocator traffic, is the
    // bottleneck (the naive generator saturates memory bandwidth alone).
    let lda_gen = LdaModel::train(
        &RAW_TEXT_CORPUS,
        LdaConfig { iterations: 60, ..Default::default() },
        7,
    )
    .expect("trains");

    // Parallel strategy: rate vs workers (unthrottled). The achievable
    // speedup is min(workers, cores): report the machine's parallelism so
    // the expected column is honest on small containers.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut scaling = TableReporter::new(
        &format!("Parallel strategy: unthrottled LDA rate vs workers ({cores} core(s) available)"),
        &["workers", "docs/sec", "speedup vs 1", "ideal (min(w, cores))"],
    );
    let mut base = 0.0;
    for workers in [1usize, 2, 4, 8] {
        let c = VelocityController::new(workers)
            .expect("valid")
            .with_chunk_items(4_000);
        let out = c.run(&lda_gen, 1, 64_000).expect("runs");
        if workers == 1 {
            base = out.achieved_rate;
        }
        scaling.add_row(&[
            workers.to_string(),
            fmt_num(out.achieved_rate),
            fmt_num(out.achieved_rate / base),
            fmt_num(workers.min(cores) as f64),
        ]);
    }
    println!("{}", scaling.to_text());

    // Target-rate sweep: achieved vs target.
    let mut sweep = TableReporter::new(
        "Target-rate sweep (2 workers)",
        &["target docs/sec", "achieved", "rel error"],
    );
    for target in [1_000.0, 5_000.0, 20_000.0] {
        let c = VelocityController::new(2)
            .expect("valid")
            .with_chunk_items(50)
            .with_target_rate(target);
        let out = c.run(&gen, 2, (target as u64 / 2).max(500)).expect("runs");
        sweep.add_row(&[
            fmt_num(target),
            fmt_num(out.achieved_rate),
            fmt_num(out.rate_error().unwrap_or(f64::NAN)),
        ]);
    }
    println!("{}", sweep.to_text());

    // Algorithmic strategy: alias vs CDF-scan word sampling.
    let model = &lda_gen;
    let mut rng1 = Xoshiro256::new(1);
    let fast = measure_rate(2_000, |_| {
        black_box(model.generate_doc(&mut rng1));
    });
    let mut rng2 = Xoshiro256::new(1);
    let slow = measure_rate(2_000, |_| {
        black_box(model.generate_doc_low_memory(&mut rng2));
    });
    let mut algo = TableReporter::new(
        "Algorithmic strategy: LDA word-sampler lever",
        &["sampler", "docs/sec", "memory"],
    );
    algo.add_row(&["alias tables (O(1)/word)".into(), fmt_num(fast), "O(K*V) extra".into()]);
    algo.add_row(&["CDF scan (O(V)/word)".into(), fmt_num(slow), "none".into()]);
    println!("{}", algo.to_text());

    // Update frequency control.
    let mut upd = TableReporter::new(
        "Update-frequency control (Section 5.1 extension)",
        &["target ops/sec", "measured", "rel error"],
    );
    for target in [500.0, 2_000.0, 10_000.0] {
        let gen = UpdateStreamGenerator::new(target, 0.4, 0.4, 1_000).expect("valid");
        let ops = gen.generate_ops(3, 5_000);
        let measured = UpdateStreamGenerator::measured_rate(&ops);
        upd.add_row(&[
            fmt_num(target),
            fmt_num(measured),
            fmt_num(((measured - target) / target).abs()),
        ]);
    }
    println!("{}", upd.to_text());
    println!("Shape: parallel speedup tracks min(workers, cores) — flat on a\n1-core container, near-linear on real hardware; throttled runs track\ntheir targets; the alias sampler beats the CDF scan (the Section 5.1\nmemory-for-speed lever); update frequency tracks its target.");
}

fn bench(c: &mut Criterion) {
    report();
    let gen = NaiveTextGenerator::from_corpus(&RAW_TEXT_CORPUS);
    let mut group = c.benchmark_group("s51_parallel_generation");
    for workers in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &w| {
            let c = VelocityController::new(w).expect("valid").with_chunk_items(500);
            b.iter(|| black_box(c.run(&gen, 1, 10_000).expect("runs")));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = bdb_bench::criterion();
    targets = bench
}
criterion_main!(benches);
