//! S5.1b — veracity metrics.
//!
//! The paper's proposed veracity metrics, computed for every data type:
//! raw-vs-synthetic divergence for the model-based generator next to the
//! naive baseline. Also benches the metric computations themselves
//! (KL/JS/KS over realistic sizes).

use bdb_common::prelude::*;
use bdb_common::stats::{js_divergence, kl_divergence, ks_statistic};
use bdb_common::text::Document;
use bdb_datagen::corpus::{karate_club_graph, raw_retail_table, RAW_TEXT_CORPUS};
use bdb_datagen::graph::{fit_rmat, ErdosRenyiGenerator};
use bdb_datagen::stream::{MmppArrivals, PoissonArrivals};
use bdb_datagen::table::TableGenerator;
use bdb_datagen::text::lda::{LdaConfig, LdaModel};
use bdb_datagen::text::NaiveTextGenerator;
use bdb_datagen::veracity;
use bdb_datagen::volume::VolumeSpec;
use bdb_datagen::{DataGenerator, Dataset};
use bdb_exec::reporter::{fmt_num, TableReporter};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn docs_of(gen: &dyn DataGenerator, seed: u64, n: u64) -> Vec<Document> {
    match gen.generate(seed, &VolumeSpec::Items(n)).expect("generates") {
        Dataset::Text { docs, .. } => docs,
        _ => unreachable!(),
    }
}

fn report() {
    bdb_bench::banner("S5.1b", "veracity metrics: model-based vs naive per data type");
    let mut table = TableReporter::new(
        "Raw-vs-synthetic divergence (lower = more faithful)",
        &["data type", "metric", "model-based", "naive baseline", "gap"],
    );

    // Text.
    let mut vocab = Vocabulary::new();
    let raw_docs: Vec<Document> = RAW_TEXT_CORPUS
        .iter()
        .map(|t| Document::from_text(t, &mut vocab))
        .collect();
    let lda = LdaModel::train(
        &RAW_TEXT_CORPUS,
        LdaConfig { iterations: 80, ..Default::default() },
        42,
    )
    .expect("trains");
    let naive = NaiveTextGenerator::from_corpus(&RAW_TEXT_CORPUS);
    let mut rng = Xoshiro256::new(1);
    let s_lda = veracity::text_veracity(&raw_docs, &docs_of(&lda, 9, 250), vocab.len(), Some(&lda), &mut rng);
    let s_naive = veracity::text_veracity(&raw_docs, &docs_of(&naive, 9, 250), vocab.len(), Some(&lda), &mut rng);
    for metric in ["word_freq_js", "topic_dist_js"] {
        let (m, n) = (s_lda.get(metric).unwrap(), s_naive.get(metric).unwrap());
        table.add_row(&[
            "text".into(),
            metric.into(),
            fmt_num(m),
            fmt_num(n),
            format!("{:.1}x", n / m.max(1e-9)),
        ]);
    }

    // Table.
    let raw = raw_retail_table();
    let fitted = TableGenerator::fit("retail", &raw).expect("fits");
    let naive_t = TableGenerator::naive("retail", &raw).expect("fits");
    let v_fit = veracity::table_veracity(&raw, &fitted.generate_shard(3, 0, 512)).expect("same schema");
    let v_naive = veracity::table_veracity(&raw, &naive_t.generate_shard(3, 0, 512)).expect("same schema");
    table.add_row(&[
        "table".into(),
        "mean column divergence".into(),
        fmt_num(v_fit.overall()),
        fmt_num(v_naive.overall()),
        format!("{:.1}x", v_naive.overall() / v_fit.overall().max(1e-9)),
    ]);

    // Graph: hub-concentration gap (share of edges on the top-10%
    // vertices), averaged over seeds — the stable structural statistic
    // for a 34-vertex reference graph.
    let g_raw = karate_club_graph();
    let fitted = fit_rmat(&g_raw, 5).expect("fits");
    let er = ErdosRenyiGenerator {
        edges_per_vertex: g_raw.num_edges() as f64 / g_raw.num_vertices() as f64,
    };
    let hub = bdb_datagen::graph::hub_concentration;
    let target = hub(&g_raw);
    let (mut fit_gap, mut er_gap) = (0.0, 0.0);
    for seed in 0..5 {
        fit_gap += (hub(&fitted.generate_graph(seed, 6)) - target).abs() / 5.0;
        er_gap += (hub(&er.generate_graph(seed, 64)) - target).abs() / 5.0;
    }
    table.add_row(&[
        "graph".into(),
        "hub-concentration gap".into(),
        fmt_num(fit_gap),
        fmt_num(er_gap),
        format!("{:.1}x", er_gap / fit_gap.max(1e-9)),
    ]);

    // Stream: same arrival law vs a different one.
    let poisson = PoissonArrivals::new(1_000.0, 32).expect("valid");
    let a = poisson.generate_events(1, 5_000);
    let b = poisson.generate_events(2, 5_000);
    let bursty = MmppArrivals::new(200.0, 5_000.0, 300.0, 32)
        .expect("valid")
        .generate_events(1, 5_000);
    let sv_same = veracity::stream_veracity(&a, &b);
    let sv_diff = veracity::stream_veracity(&a, &bursty);
    table.add_row(&[
        "stream".into(),
        "temporal divergence".into(),
        fmt_num(sv_same.overall()),
        fmt_num(sv_diff.overall()),
        format!("{:.1}x", sv_diff.overall() / sv_same.overall().max(1e-9)),
    ]);

    println!("{}", table.to_text());
    println!("Shape: for every data type the model-based generator scores a\nfraction of the naive baseline's divergence — the measurable version\nof Table 1's veracity column.");
}

fn bench(c: &mut Criterion) {
    report();
    // The metric kernels at realistic sizes.
    let mut rng = Xoshiro256::new(3);
    let p: Vec<f64> = (0..10_000).map(|_| rng.next_f64()).collect();
    let q: Vec<f64> = (0..10_000).map(|_| rng.next_f64()).collect();
    c.bench_function("s51_kl_divergence_10k", |b| {
        b.iter(|| black_box(kl_divergence(&p, &q)));
    });
    c.bench_function("s51_js_divergence_10k", |b| {
        b.iter(|| black_box(js_divergence(&p, &q)));
    });
    c.bench_function("s51_ks_statistic_10k", |b| {
        b.iter(|| black_box(ks_statistic(&p, &q)));
    });
    let raw = raw_retail_table();
    let fitted = TableGenerator::fit("retail", &raw).expect("fits");
    let synth = fitted.generate_shard(3, 0, 512);
    c.bench_function("s51_table_veracity_512", |b| {
        b.iter(|| black_box(veracity::table_veracity(&raw, &synth).expect("same schema")));
    });
}

criterion_group! {
    name = benches;
    config = bdb_bench::criterion();
    targets = bench
}
criterion_main!(benches);
