//! S5.2 — the truly hybrid workload.
//!
//! Mixed OLTP + analytics operation streams with controlled arrival rates
//! and sequences: a mix-ratio sweep showing how analytics share degrades
//! aggregate throughput while per-class latency stays stable, plus bursty
//! vs smooth arrival comparison.

use bdb_exec::reporter::{fmt_num, TableReporter};
use bdb_testgen::arrival::{schedule, ArrivalProcess, ArrivalSpec};
use bdb_workloads::hybrid::{run_hybrid, HybridConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn report() {
    bdb_bench::banner("S5.2", "hybrid workloads with arrival patterns");
    let mut table = TableReporter::new(
        "Mix-ratio sweep (2000 ops, open-loop Poisson arrivals)",
        &["oltp share", "throughput ops/s", "oltp p50 us", "olap p50 us"],
    );
    for share in [0.99, 0.9, 0.5, 0.1] {
        let cfg = HybridConfig {
            oltp_weight: share,
            olap_weight: 1.0 - share,
            operations: 2_000,
            kv_records: 5_000,
            table_rows: 5_000,
            arrival: ArrivalSpec::Open {
                rate_per_sec: 1_000_000.0,
                process: ArrivalProcess::Poisson,
            },
        };
        let (outcome, result) = run_hybrid(&cfg, 7).expect("runs");
        table.add_row(&[
            format!("{share:.2}"),
            fmt_num(result.report.user.throughput_ops_per_sec),
            fmt_num(outcome.oltp_p50_us),
            fmt_num(outcome.olap_p50_us),
        ]);
    }
    println!("{}", table.to_text());

    // Arrival-pattern shapes: gap variance of the three processes.
    let mut arrivals = TableReporter::new(
        "Arrival processes at 10k ops/sec (gap statistics)",
        &["process", "mean gap ms", "gap variance"],
    );
    for (name, process) in [
        ("uniform", ArrivalProcess::Uniform),
        ("poisson", ArrivalProcess::Poisson),
        ("bursty x8", ArrivalProcess::Bursty { burst_factor: 8.0 }),
    ] {
        let spec = ArrivalSpec::Open { rate_per_sec: 10_000.0, process };
        let slots = schedule(&spec, 5_000, 3).expect("schedules");
        let gaps: Vec<f64> = slots.windows(2).map(|w| w[1].at_ms - w[0].at_ms).collect();
        let s = bdb_common::stats::Summary::of(&gaps);
        arrivals.add_row(&[name.into(), fmt_num(s.mean()), fmt_num(s.variance())]);
    }
    println!("{}", arrivals.to_text());
    println!("Shape: throughput drops as the analytics share grows (queries cost\n~1000x a point op) while each class's own latency stays flat; burstier\narrival processes show strictly larger gap variance at equal mean rate.");
}

fn bench(c: &mut Criterion) {
    report();
    let mut group = c.benchmark_group("s52_hybrid_mix");
    for share in [0.9f64, 0.5] {
        group.bench_with_input(
            BenchmarkId::new("oltp_share", format!("{share}")),
            &share,
            |b, &share| {
                let cfg = HybridConfig {
                    oltp_weight: share,
                    olap_weight: 1.0 - share,
                    operations: 500,
                    kv_records: 2_000,
                    table_rows: 2_000,
                    ..Default::default()
                };
                b.iter(|| black_box(run_hybrid(&cfg, 7).expect("runs")));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = bdb_bench::criterion();
    targets = bench
}
criterion_main!(benches);
