//! TAB1 — Table 1: comparison of data generation techniques.
//!
//! Regenerates the paper's Table 1 by *measuring* every suite's volume
//! scalability, velocity controllability, variety, and veracity, then
//! benches the measurement probes themselves.

use bdb_suites::table1::{measure_suite, render_table1};
use bdb_suites::{all_suites, BenchmarkSuite};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn report() {
    bdb_bench::banner("TAB1", "measured 4V classification of all surveyed suites");
    let suites = all_suites();
    let (rows, text) = render_table1(&suites, 0xBD).expect("harness runs");
    println!("{text}");
    let matches = rows
        .iter()
        .zip(&suites)
        .filter(|(r, s)| r.matches(&s.descriptor()))
        .count();
    println!(
        "{matches}/{} measured rows match the paper's published classification.",
        rows.len()
    );
    println!("Shape: only BigDataBench reaches 'considered' veracity among the\nsurveyed suites; no surveyed suite controls update frequency; this\nframework adds the Section 5.1 extensions (fully controllable row).");
    assert_eq!(matches, rows.len(), "classification drifted from the paper");
}

fn bench(c: &mut Criterion) {
    report();
    let hibench = bdb_suites::catalog::HiBench;
    let bigdatabench = bdb_suites::catalog::BigDataBench;
    c.bench_function("table1_measure_unconsidered_suite", |b| {
        b.iter(|| black_box(measure_suite(&hibench, 1).expect("measures")));
    });
    c.bench_function("table1_measure_considered_suite", |b| {
        b.iter(|| black_box(measure_suite(&bigdatabench, 1).expect("measures")));
    });
    c.bench_function("table1_veracity_probe", |b| {
        b.iter(|| black_box(bigdatabench.veracity_probe(1)));
    });
}

criterion_group! {
    name = benches;
    config = bdb_bench::criterion();
    targets = bench
}
criterion_main!(benches);
