//! TAB2 — Table 2: comparison of benchmarking techniques.
//!
//! Regenerates the paper's Table 2 by running every suite's workload set
//! and tabulating the measured workload categories, then benches a
//! representative workload from each category.

use bdb_suites::table2::render_table2;
use bdb_suites::{all_suites, BenchmarkSuite};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn report() {
    bdb_bench::banner("TAB2", "measured workload comparison of all surveyed suites");
    let suites = all_suites();
    let (all_results, text) = render_table2(&suites, 400, 0xBD).expect("harness runs");
    println!("{text}");
    let total: usize = all_results.iter().map(Vec::len).sum();
    println!("{total} workloads executed across {} suites.", suites.len());
    println!("Shape: YCSB/LinkBench are online-services only; HiBench mixes\noffline + real-time; only BigDataBench (and this framework) cover all\nthree categories — the paper's hybrid-coverage claim.");
}

fn bench(c: &mut Criterion) {
    report();
    // One representative workload per Table 2 category.
    c.bench_function("table2_online_ycsb", |b| {
        let suite = bdb_suites::catalog::Ycsb;
        b.iter(|| black_box(suite.run_workloads(300, 1).expect("runs")));
    });
    c.bench_function("table2_offline_hibench", |b| {
        let suite = bdb_suites::catalog::HiBench;
        b.iter(|| black_box(suite.run_workloads(300, 1).expect("runs")));
    });
    c.bench_function("table2_realtime_pavlo", |b| {
        let suite = bdb_suites::catalog::PavloBenchmark;
        b.iter(|| black_box(suite.run_workloads(300, 1).expect("runs")));
    });
}

criterion_group! {
    name = benches;
    config = bdb_bench::criterion();
    targets = bench
}
criterion_main!(benches);
