//! Self-timing bench runner for the framework's hot paths.
//!
//! Unlike the Criterion benches (which regenerate paper artifacts), this
//! binary measures the load-bearing code paths with plain wall-clock
//! timing and emits one machine-readable JSON report — the
//! perf-regression gate CI archives as `BENCH_8.json`:
//!
//! 1. parallel data generation throughput (items/s),
//! 2. engine dispatch (capability routing) latency,
//! 3. the streaming window pipeline (events/s),
//! 4. the behavioral sessionize kernel (events/s),
//! 5. LSM put and get throughput (ops/s),
//! 6. loadgen saturation: closed-loop concurrent-driver throughput and
//!    p99 latency per engine (kv, sql, native, streaming).
//!
//! Usage: `hotpaths [OUT.json]` (default `BENCH_8.json`).

use bdb_core::registry::GeneratorRegistry;
use bdb_datagen::volume::VolumeSpec;
use bdb_datagen::stream::PoissonArrivals;
use bdb_datagen::Dataset;
use bdb_exec::config::SystemConfig;
use bdb_exec::engine::{EngineRegistry, ExecutionRequest};
use bdb_exec::loadgen::{self, LoadProfile};
use bdb_exec::trace::RunTrace;
use bdb_kv::lsm::LsmStore;
use bdb_testgen::{PrescriptionRepository, SystemKind};
use bdb_workloads::behavioral::{run_behavioral, BehavioralSpec};
use bdb_workloads::streaming::{windowed_aggregation, StreamAnalyticsConfig};
use std::collections::BTreeMap;
use std::time::Instant;

const SEED: u64 = 42;

/// One measured hot path.
struct Sample {
    name: &'static str,
    /// Work units processed (items, routes, events, ops).
    units: u64,
    secs: f64,
    /// Tail latency, for paths driven by the concurrent load driver.
    p99_us: Option<f64>,
}

impl Sample {
    fn plain(name: &'static str, units: u64, secs: f64) -> Self {
        Self { name, units, secs, p99_us: None }
    }

    fn per_sec(&self) -> f64 {
        self.units as f64 / self.secs.max(1e-9)
    }

    fn json(&self) -> String {
        let tail = self
            .p99_us
            .map_or(String::new(), |p| format!(r#","p99_us":{p:.3}"#));
        format!(
            r#"{{"name":"{}","units":{},"secs":{:.6},"per_sec":{:.1}{}}}"#,
            self.name,
            self.units,
            self.secs,
            self.per_sec(),
            tail
        )
    }
}

fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

fn bench_datagen(items: u64) -> Sample {
    let generator = GeneratorRegistry::with_builtins()
        .build("text/lda")
        .expect("builtin generator");
    let (dataset, secs) = time(|| {
        generator
            .generate_parallel(SEED, &VolumeSpec::Items(items), 4)
            .expect("generation")
    });
    Sample::plain("datagen_parallel_items", dataset.item_count() as u64, secs)
}

fn bench_dispatch(iterations: u64) -> (Sample, BTreeMap<String, Dataset>) {
    let repo = PrescriptionRepository::with_builtins();
    let prescription = repo.get("micro/wordcount").expect("builtin prescription");
    let generators = GeneratorRegistry::with_builtins();
    let mut datasets = BTreeMap::new();
    for (i, d) in prescription.data.iter().enumerate() {
        let dataset = generators
            .build(&d.generator)
            .and_then(|g| g.generate(SEED.wrapping_add(i as u64), &VolumeSpec::Items(d.items)))
            .expect("dataset");
        datasets.insert(d.name.clone(), dataset);
    }
    let config = SystemConfig::default();
    let trace = RunTrace::new();
    let registry = EngineRegistry::with_builtins();
    let request = ExecutionRequest {
        prescription,
        system: SystemKind::Native,
        seed: SEED,
        scale: 1000,
        datasets: &datasets,
        config: &config,
        trace: &trace,
        routing: bdb_exec::planner::RoutingPolicy::default(),
    };
    let (routed, secs) = time(|| {
        let mut routed = 0u64;
        for _ in 0..iterations {
            routed += registry.route_all(&request).expect("routable").len() as u64;
        }
        routed
    });
    assert!(routed >= iterations);
    (Sample::plain("dispatch_route_all", iterations, secs), datasets)
}

fn bench_window_pipeline(events: u64) -> Sample {
    let evts = PoissonArrivals::new(1000.0, 20)
        .expect("arrival config")
        .generate_events(SEED, events);
    let n = evts.len() as u64;
    let ((outcome, _), secs) =
        time(|| windowed_aggregation(evts, &StreamAnalyticsConfig::default()));
    assert_eq!(outcome.events_in, n);
    Sample::plain("window_pipeline_events", n, secs)
}

fn bench_behavioral(events: u64) -> Sample {
    let generator = GeneratorRegistry::with_builtins()
        .build("behavioral/events")
        .expect("builtin generator");
    let dataset = generator
        .generate_parallel(SEED, &VolumeSpec::Items(events), 4)
        .expect("generation");
    let Dataset::Stream(evts) = dataset else { panic!("behavioral/events yields a stream") };
    let spec = BehavioralSpec::Sessionize { gap_ms: 10_000 };
    let (outcome, secs) = time(|| run_behavioral(&evts, &spec));
    assert_eq!(outcome.events, events);
    Sample::plain("behavioral_sessionize_events", events, secs)
}

fn bench_lsm(ops: u64) -> (Sample, Sample) {
    let mut store = LsmStore::default();
    let (_, put_secs) = time(|| {
        for i in 0..ops {
            let key = format!("user{:012}", i * 7919 % ops);
            store.put(key.into_bytes(), vec![0u8; 100]);
        }
    });
    let (hits, get_secs) = time(|| {
        let mut hits = 0u64;
        for i in 0..ops {
            let key = format!("user{:012}", i % ops);
            if store.get(key.as_bytes()).is_some() {
                hits += 1;
            }
        }
        hits
    });
    assert!(hits > 0);
    (
        Sample::plain("lsm_put_ops", ops, put_secs),
        Sample::plain("lsm_get_ops", ops, get_secs),
    )
}

/// Saturation throughput + p99 per engine under the closed-loop
/// concurrent load driver (4 clients × 8 in-flight lanes).
fn bench_loadgen(duration_ms: u64) -> Vec<Sample> {
    let profile = LoadProfile {
        clients: 4,
        inflight: 8,
        duration_ms,
        ..LoadProfile::default()
    };
    let registry = EngineRegistry::with_builtins();
    let trace = RunTrace::new();
    let reports =
        loadgen::run_load(&registry, &profile, SEED, &trace).expect("load drive");
    reports
        .into_iter()
        .map(|r| {
            assert!(r.conformance_passed, "{} diverged under load", r.engine);
            let name: &'static str = match r.engine.as_str() {
                "kv" => "loadgen_saturation_kv",
                "sql" => "loadgen_saturation_sql",
                "native" => "loadgen_saturation_native",
                "streaming" => "loadgen_saturation_streaming",
                other => panic!("unexpected engine {other}"),
            };
            Sample { name, units: r.completed, secs: r.duration_secs, p99_us: Some(r.p99_us) }
        })
        .collect()
}

fn main() {
    let out = std::env::args().nth(1).unwrap_or_else(|| "BENCH_8.json".to_string());
    let (dispatch, _datasets) = bench_dispatch(10_000);
    let (lsm_put, lsm_get) = bench_lsm(50_000);
    let mut samples = vec![
        bench_datagen(200_000),
        dispatch,
        bench_window_pipeline(200_000),
        bench_behavioral(200_000),
        lsm_put,
        lsm_get,
    ];
    samples.extend(bench_loadgen(400));
    for s in &samples {
        println!("{:<26} {:>12} units  {:>10.4} s  {:>14.0} /s", s.name, s.units, s.secs, s.per_sec());
    }
    let body: Vec<String> = samples.iter().map(Sample::json).collect();
    let json = format!(
        "{{\"bench\":\"hotpaths\",\"seed\":{SEED},\"results\":[\n  {}\n]}}\n",
        body.join(",\n  ")
    );
    std::fs::write(&out, json).expect("write report");
    eprintln!("wrote {out}");
}
