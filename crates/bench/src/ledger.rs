//! The perf-regression ledger: `BENCH_N.json` read/write and comparison.
//!
//! A ledger records, per hot path, the full sampled throughput
//! distribution — every sample, the MAD outlier split, mean/stddev/
//! min/max and t-distribution 95% confidence bounds — plus tail-latency
//! distributions for the load-driver paths. Ledgers from before the
//! statistical bench (single-shot `secs`/`per_sec` entries) still parse;
//! their intervals degenerate to points.
//!
//! Parsing is strict and *named*: a malformed or shape-inconsistent
//! field fails with an error naming the offending hot path, so a
//! tampered or hand-edited ledger can never silently pass the CI gate.

use crate::sampling::Distribution;
use bdb_common::{BdbError, Result};
use bdb_exec::analyzer::{BenchComparison, PathCi};
use bdb_exec::reporter::{fmt_num, TableReporter};
use serde::{get_field, Content, DeError, Deserialize};
use std::fmt::Write as _;

/// One hot path's ledger entry.
///
/// The first four fields are the legacy single-shot surface; the
/// `Option` fields carry the sampled distribution and are present in
/// every ledger the statistical bench emits.
#[derive(Debug, Clone, PartialEq)]
pub struct PathEntry {
    /// Hot-path name (e.g. `lsm_put_ops`).
    pub name: String,
    /// Work units processed per sample (items, routes, events, ops).
    pub units: u64,
    /// Mean wall-clock of one sample, seconds.
    pub secs: f64,
    /// Mean throughput over kept samples, units/s.
    pub per_sec: f64,
    /// Sample standard deviation of throughput.
    pub stddev: Option<f64>,
    /// Smallest kept throughput sample.
    pub min: Option<f64>,
    /// Largest kept throughput sample.
    pub max: Option<f64>,
    /// Lower 95% confidence bound on mean throughput.
    pub ci_lo: Option<f64>,
    /// Upper 95% confidence bound on mean throughput.
    pub ci_hi: Option<f64>,
    /// Samples kept after outlier removal.
    pub kept: Option<u64>,
    /// Samples classified as MAD outliers.
    pub outliers: Option<u64>,
    /// Every recorded throughput sample, in measurement order.
    pub samples_per_sec: Option<Vec<f64>>,
    /// Mean p99 latency, microseconds (load-driver paths only).
    pub p99_us: Option<f64>,
    /// Lower 95% confidence bound on mean p99.
    pub p99_ci_lo_us: Option<f64>,
    /// Upper 95% confidence bound on mean p99.
    pub p99_ci_hi_us: Option<f64>,
    /// Every recorded p99 sample.
    pub p99_samples_us: Option<Vec<f64>>,
}

impl PathEntry {
    /// Build an entry from sampled throughput (and optionally p99)
    /// distributions.
    pub fn from_distributions(
        name: &str,
        units: u64,
        mean_secs: f64,
        throughput: &Distribution,
        p99: Option<&Distribution>,
    ) -> Self {
        let s = &throughput.stats;
        Self {
            name: name.to_string(),
            units,
            secs: mean_secs,
            per_sec: s.mean,
            stddev: Some(s.stddev),
            min: Some(s.min),
            max: Some(s.max),
            ci_lo: Some(s.ci_lo),
            ci_hi: Some(s.ci_hi),
            kept: Some(throughput.kept()),
            outliers: Some(throughput.outliers()),
            samples_per_sec: Some(throughput.samples.clone()),
            p99_us: p99.map(|d| d.stats.mean),
            p99_ci_lo_us: p99.map(|d| d.stats.ci_lo),
            p99_ci_hi_us: p99.map(|d| d.stats.ci_hi),
            p99_samples_us: p99.map(|d| d.samples.clone()),
        }
    }

    /// The entry's throughput interval for comparison. Legacy entries
    /// without distribution fields degenerate to a single-sample point.
    pub fn path_ci(&self) -> PathCi {
        PathCi {
            path: self.name.clone(),
            mean: self.per_sec,
            ci_lo: self.ci_lo.unwrap_or(self.per_sec),
            ci_hi: self.ci_hi.unwrap_or(self.per_sec),
            samples: self.kept.unwrap_or(1),
        }
    }

    /// The entry's p99-latency interval, when the path records one.
    /// Latency is inverted into a throughput-like "higher is better"
    /// scale (`1e6 / p99_us`) so [`BenchComparison`]'s verdict polarity
    /// applies unchanged.
    pub fn p99_ci(&self) -> Option<PathCi> {
        let p99 = self.p99_us?;
        let (lo, hi) = (self.p99_ci_lo_us.unwrap_or(p99), self.p99_ci_hi_us.unwrap_or(p99));
        let inv = |x: f64| 1e6 / x.max(1e-9);
        Some(PathCi {
            path: format!("{}::p99", self.name),
            mean: inv(p99),
            // Inversion flips the bound order.
            ci_lo: inv(hi),
            ci_hi: inv(lo),
            samples: self.p99_samples_us.as_ref().map_or(1, |s| s.len() as u64),
        })
    }
}

/// A full bench ledger: one entry per measured hot path plus the
/// sampling protocol that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchLedger {
    /// Bench identifier (`hotpaths`).
    pub bench: String,
    /// The deterministic seed every path ran under.
    pub seed: u64,
    /// Recorded samples per path (absent in legacy single-shot ledgers).
    pub samples: Option<u64>,
    /// Discarded warmup iterations per path.
    pub warmup: Option<u64>,
    /// Per-path entries.
    pub results: Vec<PathEntry>,
}

fn ctx<T: Deserialize>(v: &Content, what: &str) -> std::result::Result<T, DeError> {
    T::deserialize(v).map_err(|e| DeError::custom(format!("{what}: {e}")))
}

impl Deserialize for PathEntry {
    fn deserialize(v: &Content) -> std::result::Result<Self, DeError> {
        let map = v
            .as_map()
            .ok_or_else(|| DeError::custom(format!("expected a path object, found {}", v.kind())))?;
        let name = get_field(map, "name")
            .as_str()
            .ok_or_else(|| DeError::custom("field 'name': expected a string"))?
            .to_string();
        let f = |key: &str| format!("path '{name}': field '{key}'");
        Ok(Self {
            units: ctx(get_field(map, "units"), &f("units"))?,
            secs: ctx(get_field(map, "secs"), &f("secs"))?,
            per_sec: ctx(get_field(map, "per_sec"), &f("per_sec"))?,
            stddev: ctx(get_field(map, "stddev"), &f("stddev"))?,
            min: ctx(get_field(map, "min"), &f("min"))?,
            max: ctx(get_field(map, "max"), &f("max"))?,
            ci_lo: ctx(get_field(map, "ci_lo"), &f("ci_lo"))?,
            ci_hi: ctx(get_field(map, "ci_hi"), &f("ci_hi"))?,
            kept: ctx(get_field(map, "kept"), &f("kept"))?,
            outliers: ctx(get_field(map, "outliers"), &f("outliers"))?,
            samples_per_sec: ctx(get_field(map, "samples_per_sec"), &f("samples_per_sec"))?,
            p99_us: ctx(get_field(map, "p99_us"), &f("p99_us"))?,
            p99_ci_lo_us: ctx(get_field(map, "p99_ci_lo_us"), &f("p99_ci_lo_us"))?,
            p99_ci_hi_us: ctx(get_field(map, "p99_ci_hi_us"), &f("p99_ci_hi_us"))?,
            p99_samples_us: ctx(get_field(map, "p99_samples_us"), &f("p99_samples_us"))?,
            name,
        })
    }
}

impl Deserialize for BenchLedger {
    fn deserialize(v: &Content) -> std::result::Result<Self, DeError> {
        let map = v.as_map().ok_or_else(|| {
            DeError::custom(format!("top level: expected an object, found {}", v.kind()))
        })?;
        let bench = get_field(map, "bench")
            .as_str()
            .ok_or_else(|| DeError::custom("field 'bench': expected a string"))?
            .to_string();
        let results = get_field(map, "results")
            .as_seq()
            .ok_or_else(|| DeError::custom("field 'results': expected an array"))?
            .iter()
            .enumerate()
            .map(|(i, e)| {
                PathEntry::deserialize(e)
                    .map_err(|err| DeError::custom(format!("results[{i}]: {err}")))
            })
            .collect::<std::result::Result<Vec<_>, _>>()?;
        Ok(Self {
            bench,
            seed: ctx(get_field(map, "seed"), "field 'seed'")?,
            samples: ctx(get_field(map, "samples"), "field 'samples'")?,
            warmup: ctx(get_field(map, "warmup"), "field 'warmup'")?,
            results,
        })
    }
}

impl BenchLedger {
    /// Parse a ledger document, then shape-check it. Errors name the
    /// offending hot path and field.
    pub fn parse(text: &str) -> Result<Self> {
        let ledger: BenchLedger = serde_json::from_str(text)
            .map_err(|e| BdbError::Format(format!("bench ledger: {e}")))?;
        ledger.validate()?;
        Ok(ledger)
    }

    /// Read and parse a ledger file; errors carry the file path.
    pub fn load(path: &str) -> Result<Self> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| BdbError::Io(format!("reading bench ledger {path}: {e}")))?;
        Self::parse(&text).map_err(|e| BdbError::Format(format!("{path}: {e}")))
    }

    /// Internal-consistency checks beyond JSON well-formedness: a ledger
    /// whose numbers cannot have come from the sampling protocol
    /// (impossible counts, inverted or non-containing intervals,
    /// non-finite or non-positive throughput, duplicate paths) is
    /// rejected with the offending path named.
    pub fn validate(&self) -> Result<()> {
        let fail = |msg: String| Err(BdbError::Format(format!("bench ledger: {msg}")));
        if self.bench.is_empty() {
            return fail("field 'bench' must be non-empty".into());
        }
        if self.results.is_empty() {
            return fail("field 'results' must list at least one hot path".into());
        }
        for (i, e) in self.results.iter().enumerate() {
            let label = format!("path '{}'", e.name);
            if e.name.is_empty() {
                return fail(format!("results[{i}]: field 'name' must be non-empty"));
            }
            if self.results[..i].iter().any(|prev| prev.name == e.name) {
                return fail(format!("{label}: duplicate entry"));
            }
            if !(e.per_sec.is_finite() && e.per_sec > 0.0) {
                return fail(format!("{label}: 'per_sec' must be finite and positive"));
            }
            if !(e.secs.is_finite() && e.secs >= 0.0) {
                return fail(format!("{label}: 'secs' must be finite and non-negative"));
            }
            let dist_fields = [
                ("stddev", e.stddev.is_some()),
                ("min", e.min.is_some()),
                ("max", e.max.is_some()),
                ("ci_lo", e.ci_lo.is_some()),
                ("ci_hi", e.ci_hi.is_some()),
                ("kept", e.kept.is_some()),
                ("outliers", e.outliers.is_some()),
                ("samples_per_sec", e.samples_per_sec.is_some()),
            ];
            if dist_fields.iter().any(|(_, p)| *p) {
                if let Some((missing, _)) = dist_fields.iter().find(|(_, p)| !*p) {
                    return fail(format!(
                        "{label}: partial distribution (missing '{missing}')"
                    ));
                }
                let (kept, outliers) = (e.kept.unwrap(), e.outliers.unwrap());
                let n = e.samples_per_sec.as_ref().unwrap().len() as u64;
                if kept + outliers != n {
                    return fail(format!(
                        "{label}: kept ({kept}) + outliers ({outliers}) != {n} samples"
                    ));
                }
                if kept <= outliers {
                    return fail(format!(
                        "{label}: outlier classification dropped half the samples or more \
                         ({outliers}/{n})"
                    ));
                }
                let (lo, hi) = (e.ci_lo.unwrap(), e.ci_hi.unwrap());
                if !(lo.is_finite() && hi.is_finite() && lo <= e.per_sec && e.per_sec <= hi) {
                    return fail(format!(
                        "{label}: 95% CI [{lo}, {hi}] must contain the mean {}",
                        e.per_sec
                    ));
                }
                let (min, max) = (e.min.unwrap(), e.max.unwrap());
                if !(min <= e.per_sec && e.per_sec <= max) {
                    return fail(format!(
                        "{label}: mean {} outside sample range [{min}, {max}]",
                        e.per_sec
                    ));
                }
            }
            if e.p99_ci_lo_us.is_some() || e.p99_ci_hi_us.is_some() || e.p99_samples_us.is_some()
            {
                let Some(p99) = e.p99_us else {
                    return fail(format!("{label}: p99 bounds without 'p99_us'"));
                };
                let (lo, hi) = (e.p99_ci_lo_us.unwrap_or(p99), e.p99_ci_hi_us.unwrap_or(p99));
                if !(lo <= p99 && p99 <= hi) {
                    return fail(format!(
                        "{label}: p99 CI [{lo}, {hi}] must contain the mean {p99}"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Serialize to the ledger's on-disk form: one line per hot path, so
    /// committed ledgers diff reviewably. The output round-trips through
    /// [`BenchLedger::parse`].
    pub fn emit(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(r#"{{"bench":"{}","seed":{}"#, self.bench, self.seed));
        if let Some(s) = self.samples {
            let _ = write!(out, r#","samples":{s}"#);
        }
        if let Some(w) = self.warmup {
            let _ = write!(out, r#","warmup":{w}"#);
        }
        out.push_str(",\"results\":[\n");
        let vec_json = |xs: &[f64]| {
            xs.iter().map(|x| format!("{x:.1}")).collect::<Vec<_>>().join(",")
        };
        for (i, e) in self.results.iter().enumerate() {
            let _ = write!(
                out,
                r#"  {{"name":"{}","units":{},"secs":{:.6},"per_sec":{:.1}"#,
                e.name, e.units, e.secs, e.per_sec
            );
            if let (Some(sd), Some(min), Some(max)) = (e.stddev, e.min, e.max) {
                let _ = write!(out, r#","stddev":{sd:.1},"min":{min:.1},"max":{max:.1}"#);
            }
            if let (Some(lo), Some(hi)) = (e.ci_lo, e.ci_hi) {
                let _ = write!(out, r#","ci_lo":{lo:.1},"ci_hi":{hi:.1}"#);
            }
            if let (Some(k), Some(o)) = (e.kept, e.outliers) {
                let _ = write!(out, r#","kept":{k},"outliers":{o}"#);
            }
            if let Some(xs) = &e.samples_per_sec {
                let _ = write!(out, r#","samples_per_sec":[{}]"#, vec_json(xs));
            }
            if let Some(p) = e.p99_us {
                let _ = write!(out, r#","p99_us":{p:.3}"#);
            }
            if let (Some(lo), Some(hi)) = (e.p99_ci_lo_us, e.p99_ci_hi_us) {
                let _ = write!(out, r#","p99_ci_lo_us":{lo:.3},"p99_ci_hi_us":{hi:.3}"#);
            }
            if let Some(xs) = &e.p99_samples_us {
                let xs = xs.iter().map(|x| format!("{x:.3}")).collect::<Vec<_>>().join(",");
                let _ = write!(out, r#","p99_samples_us":[{xs}]"#);
            }
            out.push_str(if i + 1 < self.results.len() { "},\n" } else { "}\n" });
        }
        out.push_str("]}\n");
        out
    }

    /// Throughput intervals for every path, in ledger order.
    pub fn path_cis(&self) -> Vec<PathCi> {
        self.results.iter().map(PathEntry::path_ci).collect()
    }

    /// Compare this ledger (the new run) against a baseline under the
    /// non-overlapping-95%-CI significance rule with a minimum-effect
    /// floor. `gate` scopes which paths can fail the regression gate
    /// (empty = all).
    pub fn compare_against(
        &self,
        baseline: &BenchLedger,
        min_effect: f64,
        gate: &[String],
    ) -> BenchComparison {
        BenchComparison::of(&baseline.path_cis(), &self.path_cis(), min_effect, gate)
    }

    /// Render the ledger as an aligned text table: per path the mean
    /// throughput with its 95% CI, spread, the kept/outlier split, and
    /// mean p99 for load-driver paths.
    pub fn render(&self) -> String {
        let mut t = TableReporter::new(
            &format!(
                "Hot paths (seed {}, {} sample(s)/path, {} warmup)",
                self.seed,
                self.samples.unwrap_or(1),
                self.warmup.unwrap_or(0)
            ),
            &["path", "units", "ops/s", "95% CI", "stddev", "kept", "out", "p99 us"],
        );
        for e in &self.results {
            let ci = match (e.ci_lo, e.ci_hi) {
                (Some(lo), Some(hi)) => format!("[{}, {}]", fmt_num(lo), fmt_num(hi)),
                _ => "-".to_string(),
            };
            t.add_row(&[
                e.name.clone(),
                e.units.to_string(),
                fmt_num(e.per_sec),
                ci,
                e.stddev.map_or_else(|| "-".into(), fmt_num),
                e.kept.map_or_else(|| "1".into(), |k| k.to_string()),
                e.outliers.map_or_else(|| "0".into(), |o| o.to_string()),
                e.p99_us.map_or_else(|| "-".into(), fmt_num),
            ]);
        }
        t.to_text()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sampled_entry(name: &str, base: f64) -> PathEntry {
        let d = Distribution::from_samples(vec![base, base * 1.01, base * 0.99, base, base]);
        PathEntry::from_distributions(name, 1000, 1000.0 / base, &d, None)
    }

    fn ledger() -> BenchLedger {
        BenchLedger {
            bench: "hotpaths".into(),
            seed: 42,
            samples: Some(5),
            warmup: Some(1),
            results: vec![sampled_entry("alpha", 1000.0), sampled_entry("beta", 50.0)],
        }
    }

    #[test]
    fn emit_parse_roundtrip() {
        let l = ledger();
        let parsed = BenchLedger::parse(&l.emit()).expect("roundtrip");
        assert_eq!(parsed.results.len(), 2);
        assert_eq!(parsed.seed, 42);
        assert_eq!(parsed.samples, Some(5));
        let (a, b) = (&parsed.results[0], &l.results[0]);
        assert_eq!(a.name, b.name);
        assert_eq!(a.kept, b.kept);
        assert!((a.per_sec - b.per_sec).abs() < 0.1);
        assert!((a.ci_lo.unwrap() - b.ci_lo.unwrap()).abs() < 0.1);
        assert_eq!(a.samples_per_sec.as_ref().unwrap().len(), 5);
    }

    #[test]
    fn legacy_single_shot_ledger_parses_as_points() {
        let text = r#"{"bench":"hotpaths","seed":42,"results":[
          {"name":"lsm_put_ops","units":50000,"secs":0.022,"per_sec":2249793.0},
          {"name":"loadgen_saturation_kv","units":12800,"secs":0.141,"per_sec":90649.3,"p99_us":196.608}
        ]}"#;
        let l = BenchLedger::parse(text).expect("legacy parse");
        assert_eq!(l.samples, None);
        let cis = l.path_cis();
        assert_eq!(cis[0].samples, 1);
        assert_eq!(cis[0].ci_lo, cis[0].ci_hi);
        assert_eq!(l.results[1].p99_us, Some(196.608));
    }

    #[test]
    fn tampered_field_names_the_path() {
        let text = ledger().emit().replace(r#""ci_hi":"#, r#""ci_hi":"bogus","x":"#);
        let err = BenchLedger::parse(&text).unwrap_err().to_string();
        assert!(err.contains("path 'alpha'"), "{err}");
        assert!(err.contains("ci_hi"), "{err}");
    }

    #[test]
    fn inconsistent_counts_name_the_path() {
        let mut l = ledger();
        l.results[1].kept = Some(99);
        let err = BenchLedger::parse(&l.emit()).unwrap_err().to_string();
        assert!(err.contains("path 'beta'"), "{err}");
        assert!(err.contains("kept"), "{err}");
    }

    #[test]
    fn ci_not_containing_mean_is_rejected() {
        let mut l = ledger();
        l.results[0].ci_lo = Some(l.results[0].per_sec * 2.0);
        l.results[0].ci_hi = Some(l.results[0].per_sec * 3.0);
        let err = BenchLedger::parse(&l.emit()).unwrap_err().to_string();
        assert!(err.contains("path 'alpha'") && err.contains("CI"), "{err}");
    }

    #[test]
    fn duplicate_paths_are_rejected() {
        let mut l = ledger();
        l.results[1].name = "alpha".into();
        let err = BenchLedger::parse(&l.emit()).unwrap_err().to_string();
        assert!(err.contains("duplicate"), "{err}");
    }

    #[test]
    fn malformed_json_is_rejected() {
        let err = BenchLedger::parse("{\"bench\":").unwrap_err().to_string();
        assert!(err.contains("bench ledger"), "{err}");
        let err = BenchLedger::parse("[1,2]").unwrap_err().to_string();
        assert!(err.contains("top level"), "{err}");
    }

    #[test]
    fn self_comparison_is_all_unchanged() {
        let l = ledger();
        let c = l.compare_against(&l, 0.05, &[]);
        assert!(!c.has_regressions());
        assert!(c
            .rows
            .iter()
            .all(|r| r.verdict == bdb_exec::analyzer::BenchVerdict::Unchanged));
    }

    #[test]
    fn p99_interval_inverts_latency() {
        let d = Distribution::from_samples(vec![100.0, 101.0, 99.0, 100.0, 100.0]);
        let p99 = Distribution::from_samples(vec![200.0, 210.0, 190.0, 205.0, 195.0]);
        let e = PathEntry::from_distributions("kv", 1000, 0.1, &d, Some(&p99));
        let ci = e.p99_ci().expect("p99 interval");
        // Higher latency -> lower inverted score; bounds stay ordered.
        assert!(ci.ci_lo <= ci.mean && ci.mean <= ci.ci_hi);
        assert_eq!(ci.path, "kv::p99");
        assert_eq!(ci.samples, 5);
    }

    #[test]
    fn render_shows_intervals() {
        let text = ledger().render();
        assert!(text.contains("alpha"), "{text}");
        assert!(text.contains("95% CI"), "{text}");
        assert!(text.contains("5 sample(s)/path"), "{text}");
    }
}
