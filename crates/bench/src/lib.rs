//! `bdb-bench`: the statistical measurement subsystem plus the
//! experiment benches.
//!
//! Two halves live here:
//!
//! * The **statistical hot-path bench** behind `bdbench bench` —
//!   [`sampling`] (warmup discard, N repeated samples, MAD outlier
//!   classification, t-distribution 95% confidence intervals),
//!   [`hotpaths`] (the ten measured hot paths), and [`ledger`] (the
//!   committed `BENCH_N.json` perf-regression ledger and its
//!   non-overlapping-CI significance comparison).
//! * The **Criterion experiment benches** under `benches/`, each
//!   regenerating one paper artifact (a table or figure; see the
//!   experiment index in DESIGN.md): they print the paper-style rows
//!   once and then let Criterion measure the hot kernels.

pub mod hotpaths;
pub mod ledger;
pub mod sampling;

use criterion::Criterion;
use std::time::Duration;

/// A Criterion instance tuned for this suite: short measurement windows —
//  the experiment *shapes* matter, not ±1% timing precision.
pub fn criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(900))
        .warm_up_time(Duration::from_millis(300))
        .configure_from_args()
}

/// Print a banner naming the paper artifact a bench regenerates.
pub fn banner(id: &str, what: &str) {
    println!("\n================================================================");
    println!("{id}: {what}");
    println!("================================================================");
}
