//! Shared helpers for the experiment benches.
//!
//! Every bench regenerates one paper artifact (a table or figure; see the
//! experiment index in DESIGN.md): it prints the paper-style rows once and
//! then lets Criterion measure the hot kernels.

use criterion::Criterion;
use std::time::Duration;

/// A Criterion instance tuned for this suite: short measurement windows —
//  the experiment *shapes* matter, not ±1% timing precision.
pub fn criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(900))
        .warm_up_time(Duration::from_millis(300))
        .configure_from_args()
}

/// Print a banner naming the paper artifact a bench regenerates.
pub fn banner(id: &str, what: &str) {
    println!("\n================================================================");
    println!("{id}: {what}");
    println!("================================================================");
}
