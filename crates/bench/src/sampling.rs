//! Repeated-measurement sampling: warmup discard, N samples, and the
//! per-path distribution (mean, stddev, t-distribution 95% CI, MAD-based
//! outlier classification) the bench ledger records.
//!
//! The methodology follows the repeatability bar the paper's §3 sets and
//! the duckdb-behavioral benchmarking protocol: a result is a
//! *distribution*, not a number, and two results differ only when their
//! 95% confidence intervals do not overlap.

use bdb_common::stats::{classify_outliers, SampleStats};

/// Conventional conservative MAD cut: deviations beyond 3.5 scaled MADs
/// from the median are classified out.
pub const OUTLIER_MAD_SIGMAS: f64 = 3.5;

/// How a hot path is sampled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingConfig {
    /// Discarded warmup iterations before the first recorded sample
    /// (cold caches, lazy initialisation, frequency scaling).
    pub warmup: u32,
    /// Recorded samples per hot path.
    pub samples: u32,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        Self { warmup: 1, samples: 5 }
    }
}

impl SamplingConfig {
    /// Total iterations a path runs (warmup + recorded).
    pub fn iterations(&self) -> u32 {
        self.warmup + self.samples
    }

    /// Is iteration `i` (0-based) a recorded sample?
    pub fn is_recorded(&self, i: u32) -> bool {
        i >= self.warmup
    }
}

/// The distribution of one repeatedly-measured quantity: every recorded
/// sample, the MAD outlier split, and the summary statistics (with 95%
/// CI bounds) over the kept samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Distribution {
    /// All recorded samples, in measurement order (outliers included).
    pub samples: Vec<f64>,
    /// Per-sample outlier flags, aligned with `samples`.
    pub outlier_flags: Vec<bool>,
    /// Summary statistics over the kept (non-outlier) samples.
    pub stats: SampleStats,
}

impl Distribution {
    /// Classify outliers and summarise the kept samples.
    ///
    /// # Panics
    /// Panics on an empty sample set.
    pub fn from_samples(samples: Vec<f64>) -> Self {
        assert!(!samples.is_empty(), "empty sample set");
        let outlier_flags = classify_outliers(&samples, OUTLIER_MAD_SIGMAS);
        let kept: Vec<f64> = samples
            .iter()
            .zip(&outlier_flags)
            .filter(|(_, &out)| !out)
            .map(|(&x, _)| x)
            .collect();
        // The classifier never drops >= half the samples, so `kept` is
        // non-empty.
        let stats = SampleStats::from_samples(&kept);
        Self { samples, outlier_flags, stats }
    }

    /// Samples kept after outlier removal.
    pub fn kept(&self) -> u64 {
        self.stats.n
    }

    /// Samples classified as outliers.
    pub fn outliers(&self) -> u64 {
        self.samples.len() as u64 - self.stats.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_separates_warmup_from_recorded() {
        let cfg = SamplingConfig { warmup: 2, samples: 3 };
        assert_eq!(cfg.iterations(), 5);
        assert!(!cfg.is_recorded(0));
        assert!(!cfg.is_recorded(1));
        assert!(cfg.is_recorded(2));
        assert!(cfg.is_recorded(4));
    }

    #[test]
    fn distribution_excludes_the_spike_from_stats() {
        let d = Distribution::from_samples(vec![100.0, 101.0, 99.0, 100.5, 1000.0]);
        assert_eq!(d.kept(), 4);
        assert_eq!(d.outliers(), 1);
        assert!(d.stats.mean < 110.0, "outlier must not drag the mean");
        assert!(d.stats.ci_lo <= d.stats.mean && d.stats.mean <= d.stats.ci_hi);
        assert_eq!(d.samples.len(), 5);
        assert_eq!(d.outlier_flags, vec![false, false, false, false, true]);
    }

    #[test]
    fn distribution_of_identical_samples_is_a_point() {
        let d = Distribution::from_samples(vec![7.0; 5]);
        assert_eq!(d.outliers(), 0);
        assert_eq!(d.stats.ci_width(), 0.0);
        assert_eq!(d.stats.mean, 7.0);
    }

    #[test]
    fn distribution_keeps_a_majority_always() {
        let d = Distribution::from_samples(vec![1.0, 2.0, 1000.0, 2000.0, 3000.0, 4000.0]);
        assert!(d.kept() as usize > d.samples.len() / 2);
    }
}
