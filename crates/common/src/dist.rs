//! Statistical distributions used by the 4V data generators.
//!
//! The paper's survey (Table 1) observes that most suites generate data from
//! "traditional synthetic distributions such as a Gaussian distribution"
//! (TPC-DS/MUDD) while veracity-aware suites fit models to real data. Both
//! styles need a common sampler vocabulary, provided here:
//!
//! * [`UniformU64`] / [`UniformF64`] — raw uniforms.
//! * [`Zipf`] — the skewed key-popularity law used by YCSB and LinkBench.
//! * [`Gaussian`], [`LogNormal`], [`Exponential`], [`Pareto`], [`Poisson`] —
//!   MUDD-style column and arrival-process distributions.
//! * [`Categorical`] / [`Alias`] — empirical discrete distributions fitted
//!   from real data (the veracity-preserving path of Figure 3).
//!
//! All samplers implement [`Distribution`] and draw from `&mut dyn Rng`, so
//! they compose with any seeded stream from [`crate::rng`].

use crate::rng::Rng;

/// A sampler producing values of type `T` from a source of random bits.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample(&self, rng: &mut dyn Rng) -> T;

    /// Draw `n` samples into a vector.
    fn sample_n(&self, rng: &mut dyn Rng, n: usize) -> Vec<T> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Uniform integers in `[lo, hi]` (inclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformU64 {
    lo: u64,
    hi: u64,
}

impl UniformU64 {
    /// A uniform distribution over the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn new(lo: u64, hi: u64) -> Self {
        assert!(lo <= hi, "UniformU64 requires lo <= hi");
        Self { lo, hi }
    }
}

impl Distribution<u64> for UniformU64 {
    fn sample(&self, rng: &mut dyn Rng) -> u64 {
        if self.lo == 0 && self.hi == u64::MAX {
            return rng.next_u64();
        }
        self.lo + rng.next_bounded(self.hi - self.lo + 1)
    }
}

/// Uniform floats in `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformF64 {
    lo: f64,
    hi: f64,
}

impl UniformF64 {
    /// A uniform distribution over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if the range is empty or not finite.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo < hi && lo.is_finite() && hi.is_finite(), "bad uniform range");
        Self { lo, hi }
    }
}

impl Distribution<f64> for UniformF64 {
    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        self.lo + (self.hi - self.lo) * rng.next_f64()
    }
}

/// Zipfian distribution over ranks `0..n`, P(k) ∝ 1/(k+1)^s.
///
/// This is the workhorse of OLTP benchmarking: YCSB draws record keys
/// Zipf(0.99) so a small set of records is hot. Sampling uses the
/// rejection-inversion method of Hörmann & Derflinger, which is O(1) per
/// draw and exact for any exponent `s > 0`, so generating billions of keys
/// is cheap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zipf {
    n: u64,
    s: f64,
    // Precomputed constants for rejection-inversion (Hörmann & Derflinger):
    // H(1.5) - 1, H(n + 0.5), and the acceptance shortcut threshold.
    h_x1: f64,
    h_n: f64,
    dividing: f64,
}

/// `ln(1 + x) / x`, stable near zero.
fn helper1(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.ln_1p() / x
    } else {
        1.0 - x / 2.0 + x * x / 3.0
    }
}

/// `(exp(x) - 1) / x`, stable near zero.
fn helper2(x: f64) -> f64 {
    if x.abs() > 1e-8 {
        x.exp_m1() / x
    } else {
        1.0 + x / 2.0 + x * x / 6.0
    }
}

impl Zipf {
    /// A Zipf distribution over `n` items with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s <= 0`.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(s > 0.0 && s.is_finite(), "Zipf exponent must be positive");
        let mut z = Self { n, s, h_x1: 0.0, h_n: 0.0, dividing: 0.0 };
        z.h_x1 = z.h_integral(1.5) - 1.0;
        z.h_n = z.h_integral(n as f64 + 0.5);
        z.dividing = 2.0 - z.h_integral_inv(z.h_integral(2.5) - z.h(2.0));
        z
    }

    /// `H(x) = (x^(1-s) - 1) / (1-s)`, with the `s = 1` limit `ln x`.
    fn h_integral(&self, x: f64) -> f64 {
        let log_x = x.ln();
        helper2((1.0 - self.s) * log_x) * log_x
    }

    /// The density proxy `h(x) = x^(-s)`.
    fn h(&self, x: f64) -> f64 {
        (-self.s * x.ln()).exp()
    }

    /// Inverse of `h_integral`.
    fn h_integral_inv(&self, x: f64) -> f64 {
        let t = (x * (1.0 - self.s)).max(-1.0);
        (helper1(t) * x).exp()
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew exponent.
    pub fn exponent(&self) -> f64 {
        self.s
    }
}

impl Distribution<u64> for Zipf {
    fn sample(&self, rng: &mut dyn Rng) -> u64 {
        // Rejection-inversion over ranks 1..=n, returned 0-based.
        loop {
            let u = self.h_n + rng.next_f64() * (self.h_x1 - self.h_n);
            let x = self.h_integral_inv(u);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            if k - x <= self.dividing || u >= self.h_integral(k + 0.5) - self.h(k) {
                return k as u64 - 1;
            }
        }
    }
}

/// Normal distribution via the Marsaglia polar method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gaussian {
    mean: f64,
    std_dev: f64,
}

impl Gaussian {
    /// A normal distribution with the given mean and standard deviation.
    ///
    /// # Panics
    /// Panics if `std_dev < 0` or either parameter is not finite.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(std_dev >= 0.0 && mean.is_finite() && std_dev.is_finite());
        Self { mean, std_dev }
    }
}

impl Distribution<f64> for Gaussian {
    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        // Marsaglia polar method; discards the second variate for
        // statelessness (samplers are immutable and shared across threads).
        loop {
            let u = 2.0 * rng.next_f64() - 1.0;
            let v = 2.0 * rng.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                return self.mean + self.std_dev * u * factor;
            }
        }
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
///
/// Used for document lengths and session durations, which are heavy-tailed
/// in real web data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    norm: Gaussian,
}

impl LogNormal {
    /// Log-normal with location `mu` and scale `sigma` of the underlying
    /// normal.
    pub fn new(mu: f64, sigma: f64) -> Self {
        Self { norm: Gaussian::new(mu, sigma) }
    }
}

impl Distribution<f64> for LogNormal {
    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        self.norm.sample(rng).exp()
    }
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
///
/// The inter-arrival law of a Poisson process; drives the stream data
/// generator's arrival timestamps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// An exponential distribution with rate `lambda > 0`.
    ///
    /// # Panics
    /// Panics if `lambda <= 0`.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0 && lambda.is_finite());
        Self { lambda }
    }
}

impl Distribution<f64> for Exponential {
    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        // Inversion: -ln(1-U)/lambda; 1-U avoids ln(0).
        -(1.0 - rng.next_f64()).ln() / self.lambda
    }
}

/// Pareto (power-law) distribution with scale `x_min` and shape `alpha`.
///
/// Degree distributions of social graphs are approximately Pareto; the graph
/// veracity metrics fit `alpha` from raw data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// A Pareto distribution; both parameters must be positive.
    ///
    /// # Panics
    /// Panics on non-positive parameters.
    pub fn new(x_min: f64, alpha: f64) -> Self {
        assert!(x_min > 0.0 && alpha > 0.0);
        Self { x_min, alpha }
    }
}

impl Distribution<f64> for Pareto {
    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        self.x_min / (1.0 - rng.next_f64()).powf(1.0 / self.alpha)
    }
}

/// Poisson distribution with mean `lambda`.
///
/// Small means use Knuth's product method; large means use the normal
/// approximation with continuity correction (adequate for arrival counts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// A Poisson distribution with mean `lambda > 0`.
    ///
    /// # Panics
    /// Panics if `lambda <= 0`.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0 && lambda.is_finite());
        Self { lambda }
    }
}

impl Distribution<u64> for Poisson {
    fn sample(&self, rng: &mut dyn Rng) -> u64 {
        if self.lambda < 30.0 {
            let l = (-self.lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= rng.next_f64();
                if p <= l {
                    return k;
                }
                k += 1;
            }
        } else {
            let g = Gaussian::new(self.lambda, self.lambda.sqrt());
            let x = g.sample(rng);
            if x < 0.0 {
                0
            } else {
                (x + 0.5) as u64
            }
        }
    }
}

/// Gamma distribution (shape `k`, scale 1) via Marsaglia–Tsang.
///
/// Used to sample Dirichlet vectors for the LDA text generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
}

impl Gamma {
    /// A Gamma(shape, 1) distribution.
    ///
    /// # Panics
    /// Panics if `shape <= 0`.
    pub fn new(shape: f64) -> Self {
        assert!(shape > 0.0 && shape.is_finite());
        Self { shape }
    }
}

impl Distribution<f64> for Gamma {
    fn sample(&self, rng: &mut dyn Rng) -> f64 {
        if self.shape < 1.0 {
            // Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
            let g = Gamma::new(self.shape + 1.0).sample(rng);
            let u = rng.next_f64().max(f64::MIN_POSITIVE);
            return g * u.powf(1.0 / self.shape);
        }
        let d = self.shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        let normal = Gaussian::new(0.0, 1.0);
        loop {
            let x = normal.sample(rng);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u = rng.next_f64();
            if u < 1.0 - 0.0331 * x.powi(4)
                || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln())
            {
                return d * v;
            }
        }
    }
}

/// Draw a probability vector from a symmetric Dirichlet(alpha) of dimension
/// `dim` — the document-topic prior used when generating LDA documents.
pub fn sample_dirichlet(rng: &mut dyn Rng, alpha: f64, dim: usize) -> Vec<f64> {
    assert!(dim > 0 && alpha > 0.0);
    let g = Gamma::new(alpha);
    let mut xs: Vec<f64> = (0..dim).map(|_| g.sample(rng).max(1e-300)).collect();
    let total: f64 = xs.iter().sum();
    for x in &mut xs {
        *x /= total;
    }
    xs
}

/// An empirical categorical distribution sampled by linear CDF walk.
///
/// Fine for small supports (enum columns); for large supports use [`Alias`].
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical {
    cdf: Vec<f64>,
}

impl Categorical {
    /// Build from (possibly unnormalised) non-negative weights.
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative value, or sums to 0.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "empty categorical");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "categorical weights must sum > 0");
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|&w| {
                assert!(w >= 0.0, "negative categorical weight");
                acc += w / total;
                acc
            })
            .collect();
        Self { cdf }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when there are no categories (never constructible; kept for API
    /// symmetry with `len`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

impl Distribution<usize> for Categorical {
    fn sample(&self, rng: &mut dyn Rng) -> usize {
        let u = rng.next_f64();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Walker's alias method: O(1) sampling from an arbitrary discrete
/// distribution after O(n) setup.
///
/// The LDA text generator samples word ids from topic-word distributions
/// with vocabularies of tens of thousands of entries, which makes the alias
/// method essential for generation throughput (the *velocity* axis).
#[derive(Debug, Clone, PartialEq)]
pub struct Alias {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl Alias {
    /// Build an alias table from (possibly unnormalised) weights.
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative value, or sums to 0.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "empty alias table");
        let n = weights.len();
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "alias weights must sum > 0");
        let mut scaled: Vec<f64> = weights
            .iter()
            .map(|&w| {
                assert!(w >= 0.0, "negative alias weight");
                w * n as f64 / total
            })
            .collect();
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        let mut prob = vec![0.0; n];
        let mut alias = vec![0usize; n];
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        for i in small.into_iter().chain(large) {
            prob[i] = 1.0;
            alias[i] = i;
        }
        Self { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Always false: an alias table has at least one category.
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }
}

impl Distribution<usize> for Alias {
    fn sample(&self, rng: &mut dyn Rng) -> usize {
        let i = rng.next_bounded(self.prob.len() as u64) as usize;
        if rng.next_f64() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    fn rng() -> Xoshiro256 {
        Xoshiro256::new(0xBEEF)
    }

    fn mean_of(xs: &[f64]) -> f64 {
        xs.iter().sum::<f64>() / xs.len() as f64
    }

    #[test]
    fn uniform_u64_stays_in_bounds() {
        let d = UniformU64::new(10, 20);
        let mut g = rng();
        for _ in 0..10_000 {
            let v = d.sample(&mut g);
            assert!((10..=20).contains(&v));
        }
    }

    #[test]
    fn uniform_f64_mean_matches() {
        let d = UniformF64::new(0.0, 10.0);
        let mut g = rng();
        let xs = d.sample_n(&mut g, 100_000);
        assert!((mean_of(&xs) - 5.0).abs() < 0.05);
    }

    #[test]
    fn zipf_rank_zero_dominates() {
        let d = Zipf::new(1000, 1.0);
        let mut g = rng();
        let mut counts = vec![0usize; 1000];
        for _ in 0..100_000 {
            counts[d.sample(&mut g) as usize] += 1;
        }
        // Rank 0 should be the most frequent and roughly twice rank 1.
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[3]);
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((1.6..2.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn zipf_covers_only_valid_ranks() {
        let d = Zipf::new(5, 0.99);
        let mut g = rng();
        for _ in 0..10_000 {
            assert!(d.sample(&mut g) < 5);
        }
    }

    #[test]
    fn zipf_handles_exponent_one_exactly() {
        let d = Zipf::new(100, 1.0);
        let mut g = rng();
        let xs: Vec<u64> = (0..1000).map(|_| d.sample(&mut g)).collect();
        assert!(xs.iter().all(|&x| x < 100));
    }

    #[test]
    fn gaussian_moments() {
        let d = Gaussian::new(5.0, 2.0);
        let mut g = rng();
        let xs = d.sample_n(&mut g, 200_000);
        let m = mean_of(&xs);
        let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
        assert!((m - 5.0).abs() < 0.02, "mean {m}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let d = Exponential::new(4.0);
        let mut g = rng();
        let xs = d.sample_n(&mut g, 200_000);
        assert!((mean_of(&xs) - 0.25).abs() < 0.01);
    }

    #[test]
    fn pareto_respects_minimum() {
        let d = Pareto::new(2.0, 3.0);
        let mut g = rng();
        for _ in 0..10_000 {
            assert!(d.sample(&mut g) >= 2.0);
        }
    }

    #[test]
    fn poisson_small_mean() {
        let d = Poisson::new(3.0);
        let mut g = rng();
        let xs: Vec<u64> = (0..100_000).map(|_| d.sample(&mut g)).collect();
        let m = xs.iter().sum::<u64>() as f64 / xs.len() as f64;
        assert!((m - 3.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn poisson_large_mean_uses_normal_approx() {
        let d = Poisson::new(500.0);
        let mut g = rng();
        let xs: Vec<u64> = (0..50_000).map(|_| d.sample(&mut g)).collect();
        let m = xs.iter().sum::<u64>() as f64 / xs.len() as f64;
        assert!((m - 500.0).abs() < 1.0, "mean {m}");
    }

    #[test]
    fn lognormal_is_positive() {
        let d = LogNormal::new(0.0, 1.0);
        let mut g = rng();
        for _ in 0..10_000 {
            assert!(d.sample(&mut g) > 0.0);
        }
    }

    #[test]
    fn categorical_tracks_weights() {
        let d = Categorical::new(&[1.0, 3.0]);
        let mut g = rng();
        let ones = (0..100_000).filter(|_| d.sample(&mut g) == 1).count();
        let frac = ones as f64 / 100_000.0;
        assert!((frac - 0.75).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn categorical_zero_weight_category_never_sampled() {
        let d = Categorical::new(&[1.0, 0.0, 1.0]);
        let mut g = rng();
        for _ in 0..50_000 {
            assert_ne!(d.sample(&mut g), 1);
        }
    }

    #[test]
    fn alias_matches_categorical_frequencies() {
        let weights = [0.1, 0.2, 0.3, 0.4];
        let d = Alias::new(&weights);
        let mut g = rng();
        let mut counts = [0usize; 4];
        let n = 400_000;
        for _ in 0..n {
            counts[d.sample(&mut g)] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let frac = counts[i] as f64 / n as f64;
            assert!((frac - w).abs() < 0.01, "cat {i}: {frac} vs {w}");
        }
    }

    #[test]
    fn alias_single_category() {
        let d = Alias::new(&[7.0]);
        let mut g = rng();
        for _ in 0..100 {
            assert_eq!(d.sample(&mut g), 0);
        }
    }

    #[test]
    fn gamma_mean_matches_shape() {
        let d = Gamma::new(4.0);
        let mut g = rng();
        let xs = d.sample_n(&mut g, 100_000);
        assert!((mean_of(&xs) - 4.0).abs() < 0.05);
    }

    #[test]
    fn gamma_small_shape_is_positive() {
        let d = Gamma::new(0.3);
        let mut g = rng();
        let xs = d.sample_n(&mut g, 50_000);
        assert!(xs.iter().all(|&x| x >= 0.0));
        assert!((mean_of(&xs) - 0.3).abs() < 0.02);
    }

    #[test]
    fn dirichlet_sums_to_one() {
        let mut g = rng();
        let v = sample_dirichlet(&mut g, 0.5, 8);
        assert_eq!(v.len(), 8);
        assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(v.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn dirichlet_low_alpha_is_sparse() {
        // With alpha << 1 most mass concentrates on few components.
        let mut g = rng();
        let mut max_sum = 0.0;
        for _ in 0..100 {
            let v = sample_dirichlet(&mut g, 0.05, 10);
            max_sum += v.iter().cloned().fold(0.0, f64::max);
        }
        assert!(max_sum / 100.0 > 0.7, "mean max {}", max_sum / 100.0);
    }

    #[test]
    #[should_panic(expected = "empty categorical")]
    fn categorical_rejects_empty() {
        let _ = Categorical::new(&[]);
    }

    #[test]
    #[should_panic]
    fn zipf_rejects_zero_items() {
        let _ = Zipf::new(0, 1.0);
    }
}
