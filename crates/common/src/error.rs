//! Error type shared across the workspace.

use std::fmt;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, BdbError>;

/// Unified error for the benchmarking framework.
///
/// Variants are grouped by the layer that raises them (Figure 2 of the
/// paper): data generation, test generation, execution, and analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum BdbError {
    /// A configuration value is out of range or inconsistent.
    InvalidConfig(String),
    /// A data generator was asked for something its model cannot produce.
    DataGen(String),
    /// A prescription or abstract plan is malformed (cycles, arity errors,
    /// unbound data sets).
    TestGen(String),
    /// An engine failed while executing a prescribed test.
    Execution(String),
    /// A schema/type mismatch between a value and its declared type.
    TypeMismatch { expected: String, found: String },
    /// A named entity (table, column, prescription, suite) does not exist.
    NotFound(String),
    /// Format conversion failed (parse error, unsupported format).
    Format(String),
    /// An I/O failure, carried as a string so the error stays `Clone`.
    Io(String),
    /// The process (or an injected kill point) aborted mid-operation.
    /// Crashes are terminal: the recovery loop must not retry or fail
    /// over past one — the run ends and durable state is whatever was
    /// already written. Recovery happens on the next open/resume.
    Crashed(String),
}

impl BdbError {
    /// True for [`BdbError::Crashed`] — the one error class retry,
    /// failover and deadline machinery must never absorb.
    pub fn is_crash(&self) -> bool {
        matches!(self, BdbError::Crashed(_))
    }
}

impl fmt::Display for BdbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BdbError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            BdbError::DataGen(m) => write!(f, "data generation error: {m}"),
            BdbError::TestGen(m) => write!(f, "test generation error: {m}"),
            BdbError::Execution(m) => write!(f, "execution error: {m}"),
            BdbError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            BdbError::NotFound(m) => write!(f, "not found: {m}"),
            BdbError::Format(m) => write!(f, "format error: {m}"),
            BdbError::Io(m) => write!(f, "io error: {m}"),
            BdbError::Crashed(m) => write!(f, "crashed: {m}"),
        }
    }
}

impl std::error::Error for BdbError {}

impl From<std::io::Error> for BdbError {
    fn from(e: std::io::Error) -> Self {
        BdbError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_each_variant() {
        let cases: Vec<(BdbError, &str)> = vec![
            (BdbError::InvalidConfig("x".into()), "invalid configuration: x"),
            (BdbError::DataGen("x".into()), "data generation error: x"),
            (BdbError::TestGen("x".into()), "test generation error: x"),
            (BdbError::Execution("x".into()), "execution error: x"),
            (
                BdbError::TypeMismatch { expected: "Int".into(), found: "Text".into() },
                "type mismatch: expected Int, found Text",
            ),
            (BdbError::NotFound("x".into()), "not found: x"),
            (BdbError::Format("x".into()), "format error: x"),
            (BdbError::Io("x".into()), "io error: x"),
            (BdbError::Crashed("x".into()), "crashed: x"),
        ];
        for (err, want) in cases {
            assert_eq!(err.to_string(), want);
        }
    }

    #[test]
    fn only_crashes_are_crashes() {
        assert!(BdbError::Crashed("kill point".into()).is_crash());
        assert!(!BdbError::Execution("retryable".into()).is_crash());
        assert!(!BdbError::Io("disk".into()).is_crash());
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::other("boom");
        let err: BdbError = io.into();
        assert_eq!(err, BdbError::Io("boom".into()));
    }
}
