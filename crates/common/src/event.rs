//! The timestamped event record shared by the stream generator and the
//! streaming engine — the container for the fourth data source of the
//! paper's *variety* axis (table, text, graph, **stream**).

/// One timestamped stream event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Event time in milliseconds since stream start.
    pub ts_ms: u64,
    /// Partitioning / grouping key.
    pub key: u64,
    /// Payload measure.
    pub value: f64,
}

impl Event {
    /// Construct an event.
    pub fn new(ts_ms: u64, key: u64, value: f64) -> Self {
        Self { ts_ms, key, value }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_sets_fields() {
        let e = Event::new(5, 7, 1.5);
        assert_eq!(e.ts_ms, 5);
        assert_eq!(e.key, 7);
        assert_eq!(e.value, 1.5);
    }
}
