//! Crash-safe filesystem primitives.
//!
//! Every durable artifact in the benchmark — the KV store's manifest and
//! SSTables, run-journal checkpoints, golden-run records — goes to disk
//! through [`write_atomic`]: write a temp file in the destination
//! directory, then rename over the target. POSIX rename is atomic within
//! a filesystem, so a reader (including a recovering process) observes
//! either the old content or the new, never a torn prefix.

use crate::error::{BdbError, Result};
use std::path::Path;

/// Write `bytes` to `path` via temp-file + rename in the same directory.
///
/// The temp file is named `.<target>.tmp-<pid>`, so concurrent writers in
/// different processes cannot collide and crash leftovers are
/// recognisable (and ignorable — loaders only read the target name).
///
/// # Errors
/// Fails on filesystem errors; the temp file is removed when the rename
/// fails.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<()> {
    let dir = path.parent().unwrap_or(Path::new("."));
    let tmp = dir.join(format!(
        ".{}.tmp-{}",
        path.file_name().and_then(|n| n.to_str()).unwrap_or("file"),
        std::process::id()
    ));
    std::fs::write(&tmp, bytes)
        .map_err(|e| BdbError::Io(format!("write {}: {e}", tmp.display())))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        BdbError::Io(format!("rename {} -> {}: {e}", tmp.display(), path.display()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replaces_content_without_leftovers() {
        let dir = std::env::temp_dir().join(format!("bdb-fsio-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("file.json");
        write_atomic(&path, b"one").unwrap();
        write_atomic(&path, b"two").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"two");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp-"))
            .collect();
        assert!(leftovers.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fails_cleanly_when_target_dir_is_missing() {
        let path = std::env::temp_dir()
            .join(format!("bdb-fsio-missing-{}", std::process::id()))
            .join("nope")
            .join("file.json");
        assert!(write_atomic(&path, b"x").is_err());
    }
}
