//! Graph containers for the social-network data path.
//!
//! The paper treats graphs as a first-class data source (*variety*): social
//! graph volume is measured in vertices (e.g. "2^20 vertices"), and
//! veracity for graphs means preserving structural characteristics such as
//! the degree distribution. [`EdgeListGraph`] is the mutable builder the
//! generators write into; [`CsrGraph`] is the compressed read-optimised form
//! the analytics workloads (PageRank, connected components) run on.

use crate::histogram::Histogram;

/// A directed graph stored as an edge list; cheap to build incrementally.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeListGraph {
    num_vertices: usize,
    edges: Vec<(u32, u32)>,
}

impl EdgeListGraph {
    /// An empty graph with `n` vertices and no edges.
    pub fn new(num_vertices: usize) -> Self {
        assert!(num_vertices <= u32::MAX as usize, "vertex ids are u32");
        Self { num_vertices, edges: Vec::new() }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Add a directed edge `u -> v`, growing the vertex count if needed.
    pub fn add_edge(&mut self, u: u32, v: u32) {
        let hi = u.max(v) as usize + 1;
        if hi > self.num_vertices {
            self.num_vertices = hi;
        }
        self.edges.push((u, v));
    }

    /// Add both `u -> v` and `v -> u`.
    pub fn add_undirected_edge(&mut self, u: u32, v: u32) {
        self.add_edge(u, v);
        self.add_edge(v, u);
    }

    /// The raw edge list.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Out-degree of every vertex.
    pub fn out_degrees(&self) -> Vec<u32> {
        let mut d = vec![0u32; self.num_vertices];
        for &(u, _) in &self.edges {
            d[u as usize] += 1;
        }
        d
    }

    /// In-degree of every vertex.
    pub fn in_degrees(&self) -> Vec<u32> {
        let mut d = vec![0u32; self.num_vertices];
        for &(_, v) in &self.edges {
            d[v as usize] += 1;
        }
        d
    }

    /// Remove duplicate edges and self-loops.
    pub fn dedup(&mut self) {
        self.edges.retain(|(u, v)| u != v);
        self.edges.sort_unstable();
        self.edges.dedup();
    }

    /// Convert to the compressed sparse-row form.
    pub fn to_csr(&self) -> CsrGraph {
        CsrGraph::from_edges(self.num_vertices, &self.edges)
    }
}

/// A read-only compressed sparse-row graph.
///
/// `offsets[v]..offsets[v+1]` indexes into `targets`, giving `v`'s
/// out-neighbours. Construction counts then places, so it is O(V + E) with
/// no per-vertex allocation — the layout PageRank iterates over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    targets: Vec<u32>,
}

impl CsrGraph {
    /// Build from a directed edge list over `n` vertices.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut counts = vec![0usize; n + 1];
        for &(u, _) in edges {
            counts[u as usize + 1] += 1;
        }
        for i in 1..=n {
            counts[i] += counts[i - 1];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut targets = vec![0u32; edges.len()];
        for &(u, v) in edges {
            targets[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
        }
        Self { offsets, targets }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-neighbours of `v`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let v = v as usize;
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: u32) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }
}

/// The degree distribution of a graph: the key structural veracity
/// characteristic for graph data (Section 5.1).
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeDistribution {
    /// `counts[d]` = number of vertices with degree `d`.
    counts: Vec<u64>,
    total_vertices: u64,
}

impl DegreeDistribution {
    /// Compute the out-degree distribution of a graph.
    pub fn from_degrees(degrees: &[u32]) -> Self {
        let max = degrees.iter().copied().max().unwrap_or(0) as usize;
        let mut counts = vec![0u64; max + 1];
        for &d in degrees {
            counts[d as usize] += 1;
        }
        Self { counts, total_vertices: degrees.len() as u64 }
    }

    /// P(degree = d) for each d, as a dense probability vector.
    pub fn pmf(&self) -> Vec<f64> {
        if self.total_vertices == 0 {
            return Vec::new();
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total_vertices as f64)
            .collect()
    }

    /// Mean degree.
    pub fn mean(&self) -> f64 {
        if self.total_vertices == 0 {
            return 0.0;
        }
        let sum: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(d, &c)| d as u64 * c)
            .sum();
        sum as f64 / self.total_vertices as f64
    }

    /// Maximum observed degree.
    pub fn max_degree(&self) -> usize {
        self.counts.len().saturating_sub(1)
    }

    /// Maximum-likelihood estimate of a power-law exponent alpha for
    /// degrees >= `d_min` (Clauset–Shalizi–Newman discrete approximation).
    ///
    /// Returns `None` when fewer than two vertices qualify.
    pub fn power_law_alpha(&self, d_min: usize) -> Option<f64> {
        let d_min = d_min.max(1);
        let mut n = 0u64;
        let mut log_sum = 0.0f64;
        for (d, &c) in self.counts.iter().enumerate().skip(d_min) {
            if c > 0 {
                n += c;
                log_sum += c as f64 * ((d as f64) / (d_min as f64 - 0.5)).ln();
            }
        }
        if n < 2 || log_sum <= 0.0 {
            return None;
        }
        Some(1.0 + n as f64 / log_sum)
    }

    /// Histogram view (log-bucketed) for reporting.
    pub fn to_histogram(&self) -> Histogram {
        let mut h = Histogram::with_bounds(0.0, self.counts.len() as f64, 32);
        for (d, &c) in self.counts.iter().enumerate() {
            for _ in 0..c.min(100_000) {
                h.record(d as f64);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> EdgeListGraph {
        let mut g = EdgeListGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        g
    }

    #[test]
    fn edge_list_basics() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_degrees(), vec![1, 1, 1]);
        assert_eq!(g.in_degrees(), vec![1, 1, 1]);
    }

    #[test]
    fn add_edge_grows_vertex_count() {
        let mut g = EdgeListGraph::new(0);
        g.add_edge(5, 2);
        assert_eq!(g.num_vertices(), 6);
    }

    #[test]
    fn dedup_removes_loops_and_duplicates() {
        let mut g = EdgeListGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        g.add_edge(1, 1);
        g.dedup();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn csr_matches_edge_list() {
        let g = triangle();
        let csr = g.to_csr();
        assert_eq!(csr.num_vertices(), 3);
        assert_eq!(csr.num_edges(), 3);
        assert_eq!(csr.neighbors(0), &[1]);
        assert_eq!(csr.neighbors(2), &[0]);
        assert_eq!(csr.out_degree(1), 1);
    }

    #[test]
    fn csr_handles_isolated_vertices() {
        let csr = CsrGraph::from_edges(4, &[(0, 1)]);
        assert_eq!(csr.neighbors(2), &[] as &[u32]);
        assert_eq!(csr.out_degree(3), 0);
    }

    #[test]
    fn csr_multiple_neighbors_in_order() {
        let edges = vec![(0, 3), (0, 1), (0, 2)];
        let csr = CsrGraph::from_edges(4, &edges);
        // Placement preserves edge-list order.
        assert_eq!(csr.neighbors(0), &[3, 1, 2]);
    }

    #[test]
    fn degree_distribution_pmf_sums_to_one() {
        let degrees = vec![1, 1, 2, 3, 3, 3];
        let dd = DegreeDistribution::from_degrees(&degrees);
        let pmf = dd.pmf();
        let total: f64 = pmf.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((dd.mean() - 13.0 / 6.0).abs() < 1e-12);
        assert_eq!(dd.max_degree(), 3);
    }

    #[test]
    fn power_law_fit_recovers_steepness_ordering() {
        // A steeper (more skewed) distribution should fit a larger alpha.
        let shallow: Vec<u32> = (1..=100).flat_map(|d| vec![d; (1000 / d) as usize]).collect();
        let steep: Vec<u32> = (1..=100)
            .flat_map(|d| vec![d; (10_000 / (d as u64 * d as u64 * d as u64)) as usize])
            .collect();
        let a_shallow = DegreeDistribution::from_degrees(&shallow)
            .power_law_alpha(1)
            .unwrap();
        let a_steep = DegreeDistribution::from_degrees(&steep)
            .power_law_alpha(1)
            .unwrap();
        assert!(a_steep > a_shallow, "{a_steep} vs {a_shallow}");
    }

    #[test]
    fn power_law_fit_needs_data() {
        let dd = DegreeDistribution::from_degrees(&[0]);
        assert_eq!(dd.power_law_alpha(1), None);
    }

    #[test]
    fn empty_distribution() {
        let dd = DegreeDistribution::from_degrees(&[]);
        assert!(dd.pmf().is_empty());
        assert_eq!(dd.mean(), 0.0);
    }
}
