//! Histograms for latency metrics and distribution comparisons.
//!
//! Two shapes are provided: [`Histogram`] with fixed-width buckets over a
//! known range (distribution veracity comparisons need aligned buckets on
//! both sides), and [`LogHistogram`] with exponentially growing buckets
//! (latencies span nanoseconds to seconds; the metrics layer reports
//! p50/p95/p99 from it).

/// A fixed-width-bucket histogram over `[lo, hi)`.
///
/// Out-of-range samples are clamped into the first/last bucket so that
/// `count` always equals the number of recorded samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// A histogram over `[lo, hi)` with `n` buckets.
    ///
    /// # Panics
    /// Panics when the range is empty or `n == 0`.
    pub fn with_bounds(lo: f64, hi: f64, n: usize) -> Self {
        assert!(lo < hi && n > 0, "bad histogram shape");
        Self {
            lo,
            hi,
            buckets: vec![0; n],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        let n = self.buckets.len();
        let idx = if x < self.lo {
            0
        } else if x >= self.hi {
            n - 1
        } else {
            (((x - self.lo) / (self.hi - self.lo)) * n as f64) as usize
        };
        self.buckets[idx.min(n - 1)] += 1;
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded sample.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest recorded sample.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Bucket counts normalised to a probability vector.
    ///
    /// This is the input shape for the KL/JS divergence veracity metrics:
    /// build two histograms with identical bounds over the raw and the
    /// synthetic data, then compare their `pmf()`s.
    pub fn pmf(&self) -> Vec<f64> {
        if self.count == 0 {
            return vec![0.0; self.buckets.len()];
        }
        self.buckets
            .iter()
            .map(|&c| c as f64 / self.count as f64)
            .collect()
    }

    /// Approximate quantile via linear interpolation within the bucket.
    /// Both endpoints are exact: `quantile(0.0)` returns the smallest
    /// recorded sample and `quantile(1.0)` the largest, rather than a
    /// bucket edge that may overshoot the data. Interior estimates are
    /// clamped to the recorded `[min, max]` (interpolation inside the
    /// first/last occupied bucket would otherwise overshoot both), and an
    /// empty target bucket resolves to its left edge rather than its
    /// midpoint — together these keep the estimate monotonic in `q`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.count == 0 {
            return 0.0;
        }
        if q == 0.0 {
            return self.min;
        }
        if q == 1.0 {
            return self.max;
        }
        let target = q * self.count as f64;
        let mut acc = 0u64;
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        for (i, &c) in self.buckets.iter().enumerate() {
            let next = acc + c;
            if next as f64 >= target {
                let within = if c == 0 {
                    0.0
                } else {
                    (target - acc as f64) / c as f64
                };
                let estimate = self.lo + (i as f64 + within) * width;
                return estimate.clamp(self.min, self.max);
            }
            acc = next;
        }
        self.max
    }

    /// Merge another histogram's samples into this one.
    ///
    /// Thread-local capture plus merge-at-quiesce is the aggregation
    /// shape concurrent drivers use, so merging must be exactly
    /// equivalent to recording every sample into one histogram — which
    /// requires identical bucket geometry on both sides.
    ///
    /// # Panics
    /// Panics when the two histograms' bounds or bucket counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo
                && self.hi == other.hi
                && self.buckets.len() == other.buckets.len(),
            "histogram merge needs identical bounds and bucket counts"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A log-bucketed histogram for non-negative samples (latencies in ns).
///
/// Bucket `i` covers `[2^i, 2^(i+1))` (bucket 0 also catches 0), giving
/// ~constant relative error across nine orders of magnitude with 64 buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; 64],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self { buckets: [0; 64], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Record one non-negative sample (e.g. nanoseconds).
    pub fn record(&mut self, x: u64) {
        let idx = 63u32.saturating_sub(x.leading_zeros()).min(63) as usize;
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += x as u128;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample (`u64::MAX` when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate quantile: geometric midpoint of the bucket containing the
    /// q-th sample.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.count == 0 {
            return 0;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= target {
                let lo = if i == 0 { 0u64 } else { 1u64 << i };
                let hi = if i >= 63 { u64::MAX } else { 1u64 << (i + 1) };
                return lo + (hi - lo) / 2;
            }
        }
        self.max
    }

    /// Merge another histogram's samples into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_histogram_counts_and_moments() {
        let mut h = Histogram::with_bounds(0.0, 10.0, 10);
        for i in 0..10 {
            h.record(i as f64 + 0.5);
        }
        assert_eq!(h.count(), 10);
        assert!((h.mean() - 5.0).abs() < 1e-12);
        assert_eq!(h.min(), 0.5);
        assert_eq!(h.max(), 9.5);
        assert!(h.buckets().iter().all(|&c| c == 1));
    }

    #[test]
    fn fixed_histogram_clamps_out_of_range() {
        let mut h = Histogram::with_bounds(0.0, 1.0, 4);
        h.record(-5.0);
        h.record(99.0);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[3], 1);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn fixed_histogram_pmf_normalises() {
        let mut h = Histogram::with_bounds(0.0, 4.0, 4);
        h.record(0.5);
        h.record(0.6);
        h.record(2.5);
        let pmf = h.pmf();
        assert!((pmf.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((pmf[0] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn fixed_histogram_median() {
        let mut h = Histogram::with_bounds(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64);
        }
        let med = h.quantile(0.5);
        assert!((med - 50.0).abs() < 2.0, "median {med}");
    }

    #[test]
    fn zero_quantile_is_the_minimum_not_a_bucket_midpoint() {
        // Regression: quantile(0.0) used to hit bucket 0's midpoint even
        // when every sample lived in higher buckets.
        let mut h = Histogram::with_bounds(0.0, 100.0, 10);
        h.record(73.0);
        h.record(88.0);
        assert_eq!(h.quantile(0.0), 73.0);
        // Still exact when bucket 0 is occupied but not at its midpoint.
        let mut g = Histogram::with_bounds(0.0, 100.0, 10);
        g.record(9.9);
        assert_eq!(g.quantile(0.0), 9.9);
    }

    #[test]
    fn one_quantile_is_the_maximum_not_a_bucket_edge() {
        // Regression: quantile(1.0) used to interpolate to the right edge
        // of the last occupied bucket — here 80.0, above the recorded max
        // of 73.0.
        let mut h = Histogram::with_bounds(0.0, 100.0, 10);
        h.record(73.0);
        assert_eq!(h.quantile(1.0), 73.0);
        // Overshoot also occurred with several samples in one bucket.
        let mut g = Histogram::with_bounds(0.0, 100.0, 10);
        g.record(41.0);
        g.record(42.0);
        g.record(44.0);
        assert_eq!(g.quantile(1.0), 44.0);
        assert!(g.quantile(0.99) <= g.quantile(1.0));
    }

    #[test]
    fn sparse_histogram_quantiles_are_monotonic_and_bounded() {
        // Regression: with a long run of empty buckets between two
        // occupied ones, interpolation could overshoot the recorded max
        // (and midpoint resolution of an empty target bucket could exceed
        // estimates for larger q). Every estimate must stay within the
        // recorded [min, max] and be monotonic in q.
        let mut h = Histogram::with_bounds(0.0, 100.0, 10);
        h.record(5.0);
        h.record(95.0);
        let mut prev = h.quantile(0.0);
        for q in 1..=100 {
            let cur = h.quantile(f64::from(q) / 100.0);
            assert!(prev <= cur, "quantile({}) = {prev} > quantile({q}%) = {cur}", q - 1);
            assert!((5.0..=95.0).contains(&cur), "quantile({q}%) = {cur} outside the data");
            prev = cur;
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]
        #[test]
        fn quantiles_are_monotonic_in_q(
            samples in proptest::collection::vec(0u32..1000, 1..64),
            qs in proptest::collection::vec(0u32..=100, 2..8),
        ) {
            let mut h = Histogram::with_bounds(0.0, 1000.0, 16);
            for s in &samples {
                h.record(*s as f64);
            }
            let mut qs: Vec<f64> = qs.iter().map(|q| *q as f64 / 100.0).collect();
            qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for pair in qs.windows(2) {
                let (lo, hi) = (h.quantile(pair[0]), h.quantile(pair[1]));
                proptest::prop_assert!(
                    lo <= hi,
                    "quantile({}) = {} > quantile({}) = {}",
                    pair[0], lo, pair[1], hi
                );
            }
            // Endpoints are exact.
            proptest::prop_assert_eq!(h.quantile(0.0), h.min());
            proptest::prop_assert_eq!(h.quantile(1.0), h.max());
        }
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = Histogram::with_bounds(0.0, 1.0, 4);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn log_histogram_orders_quantiles() {
        let mut h = LogHistogram::new();
        for i in 1..=1000u64 {
            h.record(i * 1000);
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p99);
        assert!(h.min() == 1000);
        assert!(h.max() == 1_000_000);
        assert!((h.mean() - 500_500.0).abs() < 1.0);
    }

    #[test]
    fn log_histogram_zero_sample() {
        let mut h = LogHistogram::new();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.5), 1); // midpoint of [0,2)
    }

    #[test]
    fn fixed_histogram_merge_equals_single_recording() {
        let mut merged = Histogram::with_bounds(0.0, 100.0, 20);
        let mut single = Histogram::with_bounds(0.0, 100.0, 20);
        let mut parts = vec![
            Histogram::with_bounds(0.0, 100.0, 20),
            Histogram::with_bounds(0.0, 100.0, 20),
            Histogram::with_bounds(0.0, 100.0, 20),
        ];
        for i in 0..300 {
            let x = (i as f64 * 7.31) % 100.0;
            single.record(x);
            parts[i % 3].record(x);
        }
        for p in &parts {
            merged.merge(p);
        }
        // The bucket distribution and extrema are exactly equal; the
        // running sum can differ by float addition order, so the mean
        // is compared within epsilon instead.
        assert_eq!(merged.count(), single.count());
        assert_eq!(merged.min(), single.min());
        assert_eq!(merged.max(), single.max());
        assert!((merged.mean() - single.mean()).abs() < 1e-9);
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(merged.quantile(q), single.quantile(q));
        }
    }

    #[test]
    fn fixed_histogram_merge_empty_is_identity() {
        let mut h = Histogram::with_bounds(0.0, 10.0, 4);
        h.record(3.0);
        let before = h.clone();
        h.merge(&Histogram::with_bounds(0.0, 10.0, 4));
        assert_eq!(h, before);
        // And merging into an empty histogram copies the other side.
        let mut empty = Histogram::with_bounds(0.0, 10.0, 4);
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    #[should_panic(expected = "identical bounds")]
    fn fixed_histogram_merge_rejects_mismatched_shape() {
        let mut a = Histogram::with_bounds(0.0, 10.0, 4);
        let b = Histogram::with_bounds(0.0, 20.0, 4);
        a.merge(&b);
    }

    #[test]
    fn log_histogram_merge() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn quantile_rejects_out_of_range() {
        let h = LogHistogram::new();
        let _ = h.quantile(1.5);
    }
}
