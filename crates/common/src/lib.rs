//! Foundational types shared by every `bdbench` crate.
//!
//! `bdb-common` deliberately has no heavyweight dependencies: it provides the
//! deterministic random-number generators and statistical distributions that
//! the data generators are built on ([`rng`], [`dist`]), the dynamic value /
//! schema / record model used by the table generators and the relational
//! engine ([`value`], [`record`]), graph and text containers ([`graph`],
//! [`text`]), and the measurement primitives (histograms in [`histogram`],
//! divergence and hypothesis-test statistics in [`stats`]) that back both the
//! metrics layer and the paper's Section 5.1 *veracity metrics*. The
//! std-only worker pool in [`pool`] gives the generators their BDGS-style
//! parallel, deterministic shard dispatch.
//!
//! Everything here is deterministic given a seed: the benchmark framework's
//! credo (following PDGF, which the paper cites for BigBench's table
//! generation) is that any slice of a synthetic data set can be regenerated
//! independently and reproducibly.

pub mod dist;
pub mod event;
pub mod error;
pub mod fsio;
pub mod graph;
pub mod histogram;
pub mod pool;
pub mod record;
pub mod rng;
pub mod stats;
pub mod text;
pub mod value;

pub use error::{BdbError, Result};

/// Convenient glob-import for downstream crates:
/// `use bdb_common::prelude::*;`.
pub mod prelude {
    pub use crate::dist::{
        sample_dirichlet, Alias, Categorical, Distribution, Exponential, Gamma, Gaussian,
        LogNormal, Pareto, Poisson, UniformF64, UniformU64, Zipf,
    };
    pub use crate::error::{BdbError, Result};
    pub use crate::event::Event;
    pub use crate::graph::{CsrGraph, DegreeDistribution, EdgeListGraph};
    pub use crate::histogram::{Histogram, LogHistogram};
    pub use crate::record::{Record, Table};
    pub use crate::rng::{Rng, SeedTree, SplitMix64, Xoshiro256};
    pub use crate::stats::{
        chi_square_statistic, js_divergence, kl_divergence, ks_statistic, Summary,
    };
    pub use crate::text::{tokenize, Document, Vocabulary};
    pub use crate::value::{DataType, Field, Schema, Value};
}
