//! A scoped, chunk-dispatching worker pool built on `std::thread::scope`.
//!
//! The data generators need BDGS/PDGF-style parallelism: N workers produce
//! disjoint slices of one logical data set, and the concatenation of the
//! slices — in slice order — must equal a sequential run of the same seed.
//! The pool therefore separates *scheduling* from *merging*: chunks are
//! handed to whichever worker is free (an atomic cursor, so a slow chunk
//! never stalls the others), but results are always returned in chunk-index
//! order, making the output independent of thread timing.
//!
//! No external crates: the registry is offline, so this mirrors the
//! `std::thread::scope` pattern already used by `bdb-mapreduce`'s runtime
//! instead of pulling in rayon. Worker count `0` means "use
//! [`std::thread::available_parallelism`]" everywhere.
//!
//! The pool is panic-hardened: a task that panics is caught in its worker
//! and surfaced as a structured [`WorkerPanic`] by the `try_` variants
//! ([`try_par_map_chunks`], [`try_par_map`]) instead of tearing down the
//! process — which is what lets the resilient execution layer treat a
//! crashed generator worker as a retryable fault. The panic-propagating
//! [`par_map_chunks`]/[`par_map`] wrappers keep the old contract for
//! callers whose tasks cannot fail.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// A worker panic caught by the pool, surfaced as a structured error so a
/// crashing task fails the operation instead of aborting the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Index of the chunk/item whose task panicked (the lowest index when
    /// several workers panic).
    pub task_index: usize,
    /// The panic payload rendered as text.
    pub message: String,
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pool worker panicked on task {}: {}", self.task_index, self.message)
    }
}

impl std::error::Error for WorkerPanic {}

/// Render a panic payload (`&str` or `String` payloads, the ones `panic!`
/// produces) as text.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Resolve a requested worker count: `0` = available parallelism.
pub fn effective_workers(workers: usize) -> usize {
    if workers > 0 {
        workers
    } else {
        std::thread::available_parallelism().map_or(4, |n| n.get())
    }
}

/// One contiguous slice of a logical item range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// Position of this chunk in the merged output.
    pub index: usize,
    /// First item of the chunk.
    pub offset: u64,
    /// Number of items in the chunk.
    pub len: u64,
}

/// Split `total` items into `parts` contiguous chunks of near-equal size
/// (the first `total % parts` chunks get one extra item). Empty chunks are
/// never emitted; fewer than `parts` chunks are returned when
/// `total < parts`.
pub fn split_even(total: u64, parts: usize) -> Vec<Chunk> {
    let parts = parts.max(1) as u64;
    let base = total / parts;
    let extra = total % parts;
    let mut chunks = Vec::new();
    let mut offset = 0;
    for i in 0..parts {
        let len = base + u64::from(i < extra);
        if len == 0 {
            break;
        }
        chunks.push(Chunk { index: chunks.len(), offset, len });
        offset += len;
    }
    chunks
}

/// Split `total` items into chunks of at most `chunk_size` items.
pub fn chunk_ranges(total: u64, chunk_size: u64) -> Vec<Chunk> {
    let chunk_size = chunk_size.max(1);
    let mut chunks = Vec::with_capacity((total / chunk_size + 1) as usize);
    let mut offset = 0;
    while offset < total {
        let len = chunk_size.min(total - offset);
        chunks.push(Chunk { index: chunks.len(), offset, len });
        offset += len;
    }
    chunks
}

/// Run `f` over every chunk on `workers` threads (0 = available
/// parallelism) and return the results **in chunk-index order**,
/// independent of which worker ran which chunk. A panicking task is
/// caught and returned as a [`WorkerPanic`] naming the lowest panicking
/// chunk index; remaining chunks are not started once a panic is seen.
///
/// Chunks are dispatched through a shared atomic cursor, so load imbalance
/// between chunks is absorbed by whichever workers finish early.
pub fn try_par_map_chunks<R, F>(
    workers: usize,
    chunks: Vec<Chunk>,
    f: F,
) -> Result<Vec<R>, WorkerPanic>
where
    R: Send,
    F: Fn(Chunk) -> R + Sync,
{
    let workers = effective_workers(workers).min(chunks.len().max(1));
    if workers <= 1 || chunks.len() <= 1 {
        return chunks
            .into_iter()
            .enumerate()
            .map(|(i, c)| {
                catch_unwind(AssertUnwindSafe(|| f(c))).map_err(|p| WorkerPanic {
                    task_index: i,
                    message: panic_message(p.as_ref()),
                })
            })
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let panic: Mutex<Option<WorkerPanic>> = Mutex::new(None);
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..chunks.len()).map(|_| None).collect());
    let chunks = &chunks;
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    if failed.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= chunks.len() {
                        break;
                    }
                    match catch_unwind(AssertUnwindSafe(|| f(chunks[i]))) {
                        Ok(out) => slots.lock().expect("pool slots poisoned")[i] = Some(out),
                        Err(payload) => {
                            let caught = WorkerPanic {
                                task_index: i,
                                message: panic_message(payload.as_ref()),
                            };
                            let mut first = panic.lock().expect("pool panic slot poisoned");
                            // Keep the lowest-index panic so the reported
                            // error is independent of thread timing.
                            if first.as_ref().is_none_or(|p| caught.task_index < p.task_index) {
                                *first = Some(caught);
                            }
                            failed.store(true, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("pool worker thread died outside a task");
        }
    });
    if let Some(p) = panic.into_inner().expect("pool panic slot poisoned") {
        return Err(p);
    }
    Ok(slots
        .into_inner()
        .expect("pool slots poisoned")
        .into_iter()
        .map(|s| s.expect("every chunk produced a result"))
        .collect())
}

/// Panic-propagating wrapper around [`try_par_map_chunks`] for callers
/// whose tasks are known not to panic.
pub fn par_map_chunks<R, F>(workers: usize, chunks: Vec<Chunk>, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Chunk) -> R + Sync,
{
    try_par_map_chunks(workers, chunks, f).unwrap_or_else(|p| panic!("{p}"))
}

/// Map `f` over `items` on `workers` threads, preserving input order in
/// the output and catching task panics. Convenience wrapper for task
/// lists that are not ranges.
pub fn try_par_map<T, R, F>(workers: usize, items: Vec<T>, f: F) -> Result<Vec<R>, WorkerPanic>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let workers = effective_workers(workers).min(items.len().max(1));
    if workers <= 1 || items.len() <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| {
                catch_unwind(AssertUnwindSafe(|| f(item))).map_err(|p| WorkerPanic {
                    task_index: i,
                    message: panic_message(p.as_ref()),
                })
            })
            .collect();
    }
    // Slot items behind Options so workers can take them by index.
    let cells: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let cursor = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let panic: Mutex<Option<WorkerPanic>> = Mutex::new(None);
    let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..cells.len()).map(|_| None).collect());
    let cells = &cells;
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    if failed.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= cells.len() {
                        break;
                    }
                    let item = cells[i]
                        .lock()
                        .expect("pool item poisoned")
                        .take()
                        .expect("item taken once");
                    match catch_unwind(AssertUnwindSafe(|| f(item))) {
                        Ok(out) => slots.lock().expect("pool slots poisoned")[i] = Some(out),
                        Err(payload) => {
                            let caught = WorkerPanic {
                                task_index: i,
                                message: panic_message(payload.as_ref()),
                            };
                            let mut first = panic.lock().expect("pool panic slot poisoned");
                            if first.as_ref().is_none_or(|p| caught.task_index < p.task_index) {
                                *first = Some(caught);
                            }
                            failed.store(true, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("pool worker thread died outside a task");
        }
    });
    if let Some(p) = panic.into_inner().expect("pool panic slot poisoned") {
        return Err(p);
    }
    Ok(slots
        .into_inner()
        .expect("pool slots poisoned")
        .into_iter()
        .map(|s| s.expect("every item produced a result"))
        .collect())
}

/// Panic-propagating wrapper around [`try_par_map`] for callers whose
/// tasks are known not to panic.
pub fn par_map<T, R, F>(workers: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    try_par_map(workers, items, f).unwrap_or_else(|p| panic!("{p}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_workers_resolves_zero() {
        assert!(effective_workers(0) >= 1);
        assert_eq!(effective_workers(3), 3);
    }

    #[test]
    fn split_even_partitions_exactly() {
        let chunks = split_even(10, 3);
        assert_eq!(chunks.len(), 3);
        assert_eq!(
            chunks.iter().map(|c| (c.offset, c.len)).collect::<Vec<_>>(),
            vec![(0, 4), (4, 3), (7, 3)]
        );
        let total: u64 = chunks.iter().map(|c| c.len).sum();
        assert_eq!(total, 10);
        // Fewer items than parts: no empty chunks.
        assert_eq!(split_even(2, 8).len(), 2);
        assert!(split_even(0, 4).is_empty());
    }

    #[test]
    fn chunk_ranges_covers_total() {
        let chunks = chunk_ranges(10, 4);
        assert_eq!(
            chunks.iter().map(|c| (c.offset, c.len)).collect::<Vec<_>>(),
            vec![(0, 4), (4, 4), (8, 2)]
        );
        assert!(chunk_ranges(0, 4).is_empty());
        assert_eq!(chunk_ranges(5, 0).len(), 5); // clamped to 1
    }

    #[test]
    fn par_map_chunks_merges_in_index_order() {
        for workers in [1, 2, 4, 0] {
            let chunks = chunk_ranges(1000, 37);
            let got = par_map_chunks(workers, chunks.clone(), |c| {
                (c.offset..c.offset + c.len).collect::<Vec<u64>>()
            });
            let flat: Vec<u64> = got.into_iter().flatten().collect();
            assert_eq!(flat, (0..1000).collect::<Vec<_>>(), "workers {workers}");
        }
    }

    #[test]
    fn par_map_chunks_is_deterministic_under_imbalance() {
        // Uneven per-chunk work must not perturb merge order.
        let chunks = split_even(64, 16);
        let run = || {
            par_map_chunks(4, chunks.clone(), |c| {
                if c.index % 3 == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                c.offset
            })
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u32> = (0..100).collect();
        let got = par_map(3, items, |x| x * 2);
        assert_eq!(got, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        // Degenerate sizes.
        assert!(par_map(4, Vec::<u32>::new(), |x| x).is_empty());
        assert_eq!(par_map(4, vec![7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn panicking_task_surfaces_structured_error() {
        for workers in [1, 4] {
            let err = try_par_map_chunks(workers, split_even(32, 8), |c| {
                if c.index == 3 {
                    panic!("chunk {} exploded", c.index);
                }
                c.offset
            })
            .unwrap_err();
            assert_eq!(err.task_index, 3, "workers {workers}");
            assert_eq!(err.message, "chunk 3 exploded");
            assert!(err.to_string().contains("pool worker panicked on task 3"));
        }
    }

    #[test]
    fn try_par_map_catches_item_panics() {
        let err = try_par_map(3, (0..20u32).collect(), |x| {
            if x == 7 {
                panic!("bad item");
            }
            x * 2
        })
        .unwrap_err();
        assert_eq!(err.task_index, 7);
        assert_eq!(err.message, "bad item");
        // And the clean path still returns everything in order.
        let ok = try_par_map(3, (0..20u32).collect(), |x| x * 2).unwrap();
        assert_eq!(ok, (0..20).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "pool worker panicked on task 0")]
    fn panic_propagating_wrapper_keeps_old_contract() {
        let _ = par_map(2, vec![1u32, 2], |_| panic!("boom"));
    }

    #[test]
    fn panic_message_renders_payload_kinds() {
        let err = try_par_map(1, vec![0u8], |_| panic!("{}", String::from("heap msg")))
            .unwrap_err();
        assert_eq!(err.message, "heap msg");
    }

    #[test]
    fn pool_actually_runs_on_multiple_threads() {
        use std::collections::BTreeSet;
        let ids = par_map_chunks(4, split_even(64, 64), |_c| {
            std::thread::sleep(std::time::Duration::from_millis(1));
            format!("{:?}", std::thread::current().id())
        });
        let distinct: BTreeSet<&String> = ids.iter().collect();
        assert!(distinct.len() > 1, "expected multiple worker threads");
    }
}
