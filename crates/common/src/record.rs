//! Rows and tables: the structured-data container used across the stack.
//!
//! [`Table`] is a row-major container with a [`Schema`]; the relational
//! engine converts it to columnar batches internally, but at the framework
//! boundary (generators, format conversion, workload inputs) row-major is
//! the simpler, clearer representation.

use crate::value::{Schema, Value};
use crate::{BdbError, Result};
use serde::{Deserialize, Serialize};

/// One row of values.
pub type Record = Vec<Value>;

/// A schema-carrying collection of rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Table {
    schema: Schema,
    rows: Vec<Record>,
}

impl Table {
    /// An empty table with the given schema.
    pub fn new(schema: Schema) -> Self {
        Self { schema, rows: Vec::new() }
    }

    /// An empty table with capacity for `n` rows.
    pub fn with_capacity(schema: Schema, n: usize) -> Self {
        Self { schema, rows: Vec::with_capacity(n) }
    }

    /// Build from pre-validated rows.
    ///
    /// Validates every row against the schema; prefer this over repeated
    /// [`Table::push`] when the row count is known.
    pub fn from_rows(schema: Schema, rows: Vec<Record>) -> Result<Self> {
        for r in &rows {
            schema.validate_row(r)?;
        }
        Ok(Self { schema, rows })
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The rows in insertion order.
    pub fn rows(&self) -> &[Record] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a row after validating it against the schema.
    pub fn push(&mut self, row: Record) -> Result<()> {
        self.schema.validate_row(&row)?;
        self.rows.push(row);
        Ok(())
    }

    /// Append a row without validation.
    ///
    /// Generators that construct rows directly from the schema use this to
    /// avoid paying validation per row; the debug assertion still catches
    /// arity bugs in tests.
    pub fn push_unchecked(&mut self, row: Record) {
        debug_assert_eq!(row.len(), self.schema.len());
        self.rows.push(row);
    }

    /// The value at `(row, col)`.
    pub fn value(&self, row: usize, col: usize) -> Option<&Value> {
        self.rows.get(row).and_then(|r| r.get(col))
    }

    /// All values of the named column, cloned.
    pub fn column(&self, name: &str) -> Result<Vec<Value>> {
        let idx = self
            .schema
            .index_of(name)
            .ok_or_else(|| BdbError::NotFound(format!("column {name}")))?;
        Ok(self.rows.iter().map(|r| r[idx].clone()).collect())
    }

    /// Approximate in-memory data size in bytes (sum of cell sizes).
    ///
    /// This is the *volume* measure reported by the table data generators.
    pub fn byte_size(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.iter().map(Value::byte_size).sum::<usize>())
            .sum()
    }

    /// Consume the table, returning its rows.
    pub fn into_rows(self) -> Vec<Record> {
        self.rows
    }

    /// Keep only rows matching the predicate.
    pub fn retain<F: FnMut(&Record) -> bool>(&mut self, f: F) {
        self.rows.retain(f);
    }

    /// Append all rows of `other`.
    ///
    /// # Errors
    /// Fails when the schemas differ.
    pub fn append(&mut self, other: Table) -> Result<()> {
        if other.schema != self.schema {
            return Err(BdbError::TypeMismatch {
                expected: format!("schema {:?}", self.schema),
                found: format!("schema {:?}", other.schema),
            });
        }
        self.rows.extend(other.rows);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("name", DataType::Text),
        ])
    }

    fn sample() -> Table {
        let mut t = Table::new(schema());
        t.push(vec![Value::Int(1), Value::from("a")]).unwrap();
        t.push(vec![Value::Int(2), Value::from("bb")]).unwrap();
        t
    }

    #[test]
    fn push_validates() {
        let mut t = Table::new(schema());
        assert!(t.push(vec![Value::Int(1)]).is_err());
        assert!(t.push(vec![Value::from("x"), Value::from("a")]).is_err());
        assert!(t.push(vec![Value::Int(1), Value::from("a")]).is_ok());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn from_rows_validates_all() {
        let ok = Table::from_rows(
            schema(),
            vec![vec![Value::Int(1), Value::from("a")]],
        );
        assert!(ok.is_ok());
        let bad = Table::from_rows(schema(), vec![vec![Value::Int(1)]]);
        assert!(bad.is_err());
    }

    #[test]
    fn column_extraction() {
        let t = sample();
        let names = t.column("name").unwrap();
        assert_eq!(names, vec![Value::from("a"), Value::from("bb")]);
        assert!(t.column("missing").is_err());
    }

    #[test]
    fn byte_size_sums_cells() {
        let t = sample();
        // Each row: 8 bytes int + text length (1 then 2).
        assert_eq!(t.byte_size(), 8 + 1 + 8 + 2);
    }

    #[test]
    fn append_requires_same_schema() {
        let mut a = sample();
        let b = sample();
        a.append(b).unwrap();
        assert_eq!(a.len(), 4);
        let other = Table::new(Schema::new(vec![Field::new("x", DataType::Int)]));
        assert!(a.append(other).is_err());
    }

    #[test]
    fn value_accessor_bounds() {
        let t = sample();
        assert_eq!(t.value(0, 0), Some(&Value::Int(1)));
        assert_eq!(t.value(9, 0), None);
        assert_eq!(t.value(0, 9), None);
    }

    #[test]
    fn retain_filters_rows() {
        let mut t = sample();
        t.retain(|r| r[0].as_i64() == Some(2));
        assert_eq!(t.len(), 1);
        assert_eq!(t.value(0, 1), Some(&Value::from("bb")));
    }
}
