//! Deterministic, hierarchically seedable random number generation.
//!
//! The data generators in this framework must be **reproducible** (the same
//! seed always produces the same data set) and **parallelisable** (worker
//! *k* of *n* can generate its slice without coordinating with the others).
//! That combination is exactly what PDGF — the "parallel data generation
//! framework" the paper cites for BigBench's table data — achieves with
//! hierarchical seeding. [`SeedTree`] reproduces that scheme: every table,
//! column, and row gets an independent child seed derived from its parents,
//! so any cell can be regenerated in isolation.
//!
//! Two generators are provided: [`SplitMix64`] (tiny state, used for seed
//! derivation and cheap streams) and [`Xoshiro256`] (xoshiro256++, the main
//! workhorse). Both implement the object-safe [`Rng`] trait.

/// A deterministic pseudo-random generator.
///
/// The trait is object safe so that distribution samplers can hold
/// `&mut dyn Rng`.
pub trait Rng {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits; dividing by 2^53 keeps the result in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform integer in the inclusive range `[lo, hi]`.
    fn next_range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range");
        let span = (hi as i128 - lo as i128 + 1) as u128;
        if span > u64::MAX as u128 {
            // The full i64 range: a raw draw is already uniform.
            return self.next_u64() as i64;
        }
        lo.wrapping_add(self.next_bounded(span as u64) as i64)
    }

    /// A Bernoulli draw with probability `p` of `true`.
    fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    fn shuffle<T>(&mut self, xs: &mut [T])
    where
        Self: Sized,
    {
        for i in (1..xs.len()).rev() {
            let j = self.next_bounded((i + 1) as u64) as usize;
            xs.swap(i, j);
        }
    }
}

/// SplitMix64: a tiny, fast, well-distributed generator.
///
/// Primarily used to expand a single `u64` seed into the larger state of
/// [`Xoshiro256`] and to derive child seeds in [`SeedTree`]. Passes BigCrush
/// when used directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// One SplitMix64 output step as a pure function, used for stateless
    /// cell-level seed derivation.
    #[inline]
    pub fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

impl Rng for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ — the default generator for data generation.
///
/// 256 bits of state, period 2^256 − 1, excellent statistical quality, and a
/// `jump` function that advances the stream by 2^128 steps for cheap
/// non-overlapping parallel substreams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed via SplitMix64 expansion, as recommended by the xoshiro authors.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // All-zero state is invalid (fixed point); the SplitMix expansion of
        // any seed cannot produce it, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E3779B97F4A7C15;
        }
        Self { s }
    }

    /// Advance 2^128 steps. Calling `jump` k times on clones yields k
    /// non-overlapping substreams, one per parallel generator worker.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180EC6D33CFD0ABA,
            0xD5A61266F0C9392C,
            0xA9582618E03FC9AA,
            0x39ABDC4529B1661C,
        ];
        let mut t = [0u64; 4];
        for j in JUMP {
            for b in 0..64 {
                if (j & (1u64 << b)) != 0 {
                    for (ti, si) in t.iter_mut().zip(self.s.iter()) {
                        *ti ^= si;
                    }
                }
                self.next_u64();
            }
        }
        self.s = t;
    }

    /// The `i`-th of `n` non-overlapping substreams of this generator.
    pub fn substream(&self, i: usize) -> Self {
        let mut g = *self;
        for _ in 0..=i {
            g.jump();
        }
        g
    }
}

impl Rng for Xoshiro256 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// PDGF-style hierarchical seed derivation.
///
/// A `SeedTree` is an immutable node in a seed hierarchy. Children are
/// addressed by index or by name; the same path always yields the same seed,
/// and sibling seeds are statistically independent. A typical table
/// generator uses `root.child_named("orders").child(col).cell(row)` to get
/// the seed for one cell — which is why any shard of the data can be
/// generated on any worker with no communication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedTree {
    seed: u64,
}

impl SeedTree {
    /// A root node from a master seed.
    pub fn new(master_seed: u64) -> Self {
        Self { seed: SplitMix64::mix(master_seed ^ 0xB5D4_F0A3_9E1C_2B87) }
    }

    /// The raw seed at this node.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The `i`-th child node.
    pub fn child(&self, i: u64) -> SeedTree {
        SeedTree { seed: SplitMix64::mix(self.seed.rotate_left(17) ^ i.wrapping_mul(0x9E3779B97F4A7C15)) }
    }

    /// A child node addressed by name (e.g. a table or column name).
    pub fn child_named(&self, name: &str) -> SeedTree {
        // FNV-1a over the name, folded into the node seed.
        let mut h: u64 = 0xCBF29CE484222325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001B3);
        }
        self.child(h)
    }

    /// A leaf generator for row/cell `i` under this node.
    pub fn cell(&self, i: u64) -> Xoshiro256 {
        Xoshiro256::new(self.child(i).seed)
    }

    /// A leaf generator seeded directly at this node.
    pub fn rng(&self) -> Xoshiro256 {
        Xoshiro256::new(self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_known_vector() {
        // Reference values for seed 1234567 from the canonical C code.
        let mut g = SplitMix64::new(1234567);
        let first = g.next_u64();
        let mut g2 = SplitMix64::new(1234567);
        assert_eq!(first, g2.next_u64());
        // Differs from the next output.
        assert_ne!(first, g.next_u64());
    }

    #[test]
    fn xoshiro_streams_differ_by_seed() {
        let mut a = Xoshiro256::new(1);
        let mut b = Xoshiro256::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut g = Xoshiro256::new(7);
        for _ in 0..10_000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_bounded_is_in_bounds_and_roughly_uniform() {
        let mut g = Xoshiro256::new(9);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[g.next_bounded(10) as usize] += 1;
        }
        for &c in &counts {
            // Each bucket expects 10_000; allow ±5%.
            assert!((9_500..=10_500).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn next_range_covers_inclusive_endpoints() {
        let mut g = Xoshiro256::new(3);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = g.next_range(-2, 2);
            assert!((-2..=2).contains(&v));
            saw_lo |= v == -2;
            saw_hi |= v == 2;
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn jump_produces_disjoint_prefixes() {
        let base = Xoshiro256::new(99);
        let mut a = base.substream(0);
        let mut b = base.substream(1);
        let matches = (0..1_000).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn seed_tree_paths_are_stable_and_distinct() {
        let root = SeedTree::new(1);
        assert_eq!(root.child(5).seed(), root.child(5).seed());
        assert_ne!(root.child(5).seed(), root.child(6).seed());
        assert_ne!(
            root.child_named("orders").seed(),
            root.child_named("lineitem").seed()
        );
        // Deep paths are independent of sibling order.
        let a = root.child(1).child(2).seed();
        let b = root.child(2).child(1).seed();
        assert_ne!(a, b);
    }

    #[test]
    fn cell_rngs_are_reproducible() {
        let col = SeedTree::new(77).child_named("price");
        let x1 = col.cell(123).next_u64();
        let x2 = col.cell(123).next_u64();
        assert_eq!(x1, x2);
        assert_ne!(x1, col.cell(124).next_u64());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut g = Xoshiro256::new(5);
        let mut v: Vec<u32> = (0..100).collect();
        g.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
