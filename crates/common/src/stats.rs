//! Statistical machinery for the veracity metrics of Section 5.1.
//!
//! The paper proposes two families of veracity metrics — raw-data vs fitted
//! model, and raw data vs synthetic data — and names Kullback–Leibler
//! divergence as the comparison statistic for distributions. This module
//! provides KL and its symmetric, bounded cousin Jensen–Shannon, plus the
//! chi-square and Kolmogorov–Smirnov statistics used for table-column
//! comparisons, and a running [`Summary`] for scalar series.

/// Kullback–Leibler divergence `D(p ‖ q)` in nats.
///
/// Zero-probability buckets in `q` with non-zero `p` would be infinite, so
/// both distributions are smoothed with a small epsilon mass and
/// renormalised — the standard remedy when comparing empirical histograms.
///
/// # Panics
/// Panics when the slices have different lengths or are empty.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    assert!(!p.is_empty(), "empty distributions");
    const EPS: f64 = 1e-10;
    let ps: f64 = p.iter().sum::<f64>() + EPS * p.len() as f64;
    let qs: f64 = q.iter().sum::<f64>() + EPS * q.len() as f64;
    let mut d = 0.0;
    for (&pi, &qi) in p.iter().zip(q.iter()) {
        let pp = (pi + EPS) / ps;
        let qq = (qi + EPS) / qs;
        d += pp * (pp / qq).ln();
    }
    d.max(0.0)
}

/// Jensen–Shannon divergence: symmetric, bounded by `ln 2`.
///
/// Preferred for reporting veracity scores because it is comparable across
/// data types (a JS of 0.01 means "very close" whether the distributions
/// are word frequencies or vertex degrees).
pub fn js_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    let m: Vec<f64> = p.iter().zip(q.iter()).map(|(a, b)| 0.5 * (a + b)).collect();
    0.5 * kl_divergence(p, &m) + 0.5 * kl_divergence(q, &m)
}

/// Pearson chi-square statistic of observed counts against expected counts.
///
/// Buckets with zero expectation are skipped (they contribute no evidence).
///
/// # Panics
/// Panics when lengths differ.
pub fn chi_square_statistic(observed: &[f64], expected: &[f64]) -> f64 {
    assert_eq!(observed.len(), expected.len(), "length mismatch");
    observed
        .iter()
        .zip(expected.iter())
        .filter(|(_, &e)| e > 0.0)
        .map(|(&o, &e)| (o - e) * (o - e) / e)
        .sum()
}

/// Two-sample Kolmogorov–Smirnov statistic: the maximum distance between
/// the empirical CDFs of two scalar samples.
///
/// Returns 0 when either sample is empty.
pub fn ks_statistic(a: &[f64], b: &[f64]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut xa = a.to_vec();
    let mut xb = b.to_vec();
    xa.sort_by(|x, y| x.partial_cmp(y).unwrap());
    xb.sort_by(|x, y| x.partial_cmp(y).unwrap());
    let (na, nb) = (xa.len() as f64, xb.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < xa.len() && j < xb.len() {
        let x = xa[i].min(xb[j]);
        while i < xa.len() && xa[i] <= x {
            i += 1;
        }
        while j < xb.len() && xb[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    d
}

/// Running summary statistics (Welford's online algorithm).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Self { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Build a summary from a slice.
    pub fn of(xs: &[f64]) -> Self {
        let mut s = Self::new();
        for &x in xs {
            s.record(x);
        }
        s
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another summary (parallel collection).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kl_of_identical_distributions_is_near_zero() {
        let p = vec![0.25, 0.25, 0.25, 0.25];
        let d = kl_divergence(&p, &p);
        assert!(d < 1e-9, "kl {d}");
    }

    #[test]
    fn kl_is_positive_for_different_distributions() {
        let p = vec![0.9, 0.1];
        let q = vec![0.1, 0.9];
        assert!(kl_divergence(&p, &q) > 0.5);
    }

    #[test]
    fn kl_is_asymmetric() {
        let p = vec![0.8, 0.15, 0.05];
        let q = vec![0.4, 0.4, 0.2];
        let d1 = kl_divergence(&p, &q);
        let d2 = kl_divergence(&q, &p);
        assert!((d1 - d2).abs() > 1e-6);
    }

    #[test]
    fn kl_handles_zero_buckets() {
        let p = vec![1.0, 0.0];
        let q = vec![0.0, 1.0];
        let d = kl_divergence(&p, &q);
        assert!(d.is_finite() && d > 1.0);
    }

    #[test]
    fn js_is_symmetric_and_bounded() {
        let p = vec![1.0, 0.0, 0.0];
        let q = vec![0.0, 0.0, 1.0];
        let d1 = js_divergence(&p, &q);
        let d2 = js_divergence(&q, &p);
        assert!((d1 - d2).abs() < 1e-9);
        assert!(d1 <= 2f64.ln() + 1e-6, "js {d1}");
        assert!(js_divergence(&p, &p) < 1e-9);
    }

    #[test]
    fn chi_square_zero_for_exact_match() {
        let o = vec![10.0, 20.0, 30.0];
        assert_eq!(chi_square_statistic(&o, &o), 0.0);
        assert!(chi_square_statistic(&[15.0, 25.0, 20.0], &o) > 0.0);
    }

    #[test]
    fn chi_square_skips_zero_expectation() {
        let stat = chi_square_statistic(&[5.0, 1.0], &[5.0, 0.0]);
        assert_eq!(stat, 0.0);
    }

    #[test]
    fn ks_identical_samples_zero() {
        let a = vec![1.0, 2.0, 3.0];
        assert_eq!(ks_statistic(&a, &a), 0.0);
    }

    #[test]
    fn ks_disjoint_samples_one() {
        let a = vec![1.0, 2.0];
        let b = vec![10.0, 20.0];
        assert!((ks_statistic(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ks_empty_sample_zero() {
        assert_eq!(ks_statistic(&[], &[1.0]), 0.0);
    }

    #[test]
    fn summary_moments() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.variance() - 1.25).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn summary_merge_matches_bulk() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let bulk = Summary::of(&xs);
        let mut a = Summary::of(&xs[..37]);
        let b = Summary::of(&xs[37..]);
        a.merge(&b);
        assert_eq!(a.count(), bulk.count());
        assert!((a.mean() - bulk.mean()).abs() < 1e-9);
        assert!((a.variance() - bulk.variance()).abs() < 1e-9);
    }

    #[test]
    fn summary_merge_with_empty() {
        let mut a = Summary::new();
        let b = Summary::of(&[5.0]);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        assert_eq!(a.mean(), 5.0);
        let mut c = Summary::of(&[5.0]);
        c.merge(&Summary::new());
        assert_eq!(c.count(), 1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn kl_rejects_length_mismatch() {
        let _ = kl_divergence(&[0.5, 0.5], &[1.0]);
    }
}
