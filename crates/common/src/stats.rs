//! Statistical machinery for the veracity metrics of Section 5.1.
//!
//! The paper proposes two families of veracity metrics — raw-data vs fitted
//! model, and raw data vs synthetic data — and names Kullback–Leibler
//! divergence as the comparison statistic for distributions. This module
//! provides KL and its symmetric, bounded cousin Jensen–Shannon, plus the
//! chi-square and Kolmogorov–Smirnov statistics used for table-column
//! comparisons, and a running [`Summary`] for scalar series.

/// Kullback–Leibler divergence `D(p ‖ q)` in nats.
///
/// Zero-probability buckets in `q` with non-zero `p` would be infinite, so
/// both distributions are smoothed with a small epsilon mass and
/// renormalised — the standard remedy when comparing empirical histograms.
///
/// # Panics
/// Panics when the slices have different lengths or are empty.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    assert!(!p.is_empty(), "empty distributions");
    const EPS: f64 = 1e-10;
    let ps: f64 = p.iter().sum::<f64>() + EPS * p.len() as f64;
    let qs: f64 = q.iter().sum::<f64>() + EPS * q.len() as f64;
    let mut d = 0.0;
    for (&pi, &qi) in p.iter().zip(q.iter()) {
        let pp = (pi + EPS) / ps;
        let qq = (qi + EPS) / qs;
        d += pp * (pp / qq).ln();
    }
    d.max(0.0)
}

/// Jensen–Shannon divergence: symmetric, bounded by `ln 2`.
///
/// Preferred for reporting veracity scores because it is comparable across
/// data types (a JS of 0.01 means "very close" whether the distributions
/// are word frequencies or vertex degrees).
pub fn js_divergence(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    let m: Vec<f64> = p.iter().zip(q.iter()).map(|(a, b)| 0.5 * (a + b)).collect();
    0.5 * kl_divergence(p, &m) + 0.5 * kl_divergence(q, &m)
}

/// Pearson chi-square statistic of observed counts against expected counts.
///
/// Buckets with zero expectation are skipped (they contribute no evidence).
///
/// # Panics
/// Panics when lengths differ.
pub fn chi_square_statistic(observed: &[f64], expected: &[f64]) -> f64 {
    assert_eq!(observed.len(), expected.len(), "length mismatch");
    observed
        .iter()
        .zip(expected.iter())
        .filter(|(_, &e)| e > 0.0)
        .map(|(&o, &e)| (o - e) * (o - e) / e)
        .sum()
}

/// Two-sample Kolmogorov–Smirnov statistic: the maximum distance between
/// the empirical CDFs of two scalar samples.
///
/// Returns 0 when either sample is empty.
pub fn ks_statistic(a: &[f64], b: &[f64]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut xa = a.to_vec();
    let mut xb = b.to_vec();
    xa.sort_by(|x, y| x.partial_cmp(y).unwrap());
    xb.sort_by(|x, y| x.partial_cmp(y).unwrap());
    let (na, nb) = (xa.len() as f64, xb.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < xa.len() && j < xb.len() {
        let x = xa[i].min(xb[j]);
        while i < xa.len() && xa[i] <= x {
            i += 1;
        }
        while j < xb.len() && xb[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    d
}

/// Two-sided 95% critical value of Student's t-distribution with `df`
/// degrees of freedom.
///
/// Exact table values for `df <= 30`, the usual coarse steps up to 120,
/// and the normal limit 1.96 beyond — the repeated-sampling bench takes
/// 5–100 samples per hot path, so the table region is the hot region.
/// `df == 0` (a single sample carries no spread information) returns
/// infinity: a one-sample confidence interval is unbounded.
pub fn t_critical_95(df: u64) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179,
        2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[df as usize - 1],
        31..=40 => 2.021,
        41..=60 => 2.000,
        61..=120 => 1.980,
        _ => 1.960,
    }
}

/// Median of a sample (averages the two central order statistics for
/// even sizes). Returns 0 for an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// Median absolute deviation: the median of `|x - median(xs)|`.
pub fn mad(xs: &[f64]) -> f64 {
    let m = median(xs);
    let devs: Vec<f64> = xs.iter().map(|x| (x - m).abs()).collect();
    median(&devs)
}

/// MAD-based outlier classification: `true` marks an outlier.
///
/// A sample is an outlier when its absolute deviation from the median
/// exceeds `k` scaled MADs (the MAD is scaled by 1.4826 so `k` reads as
/// "standard deviations under normality"; `k = 3.5` is the conventional
/// conservative cut). Two guards keep the classifier honest on the small
/// samples a bench run produces:
///
/// * a degenerate spread (MAD ≈ 0, e.g. all samples equal) classifies
///   nothing — with no spread estimate every deviation would be infinite
///   sigmas out;
/// * at most `floor((n-1)/2)` samples are ever classified out (the worst
///   deviations win), so the classifier never drops half the sample or
///   more.
pub fn classify_outliers(xs: &[f64], k: f64) -> Vec<bool> {
    let n = xs.len();
    let mut flags = vec![false; n];
    if n < 3 {
        return flags;
    }
    let m = median(xs);
    let scaled_mad = 1.4826 * mad(xs);
    if scaled_mad <= 1e-12_f64.max(1e-9 * m.abs()) {
        return flags;
    }
    let threshold = k * scaled_mad;
    let mut candidates: Vec<(usize, f64)> = xs
        .iter()
        .enumerate()
        .map(|(i, x)| (i, (x - m).abs()))
        .filter(|(_, d)| *d > threshold)
        .collect();
    candidates.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (i, _) in candidates.into_iter().take((n - 1) / 2) {
        flags[i] = true;
    }
    flags
}

/// Summary statistics of one repeated-measurement sample, with a
/// t-distribution 95% confidence interval on the mean.
///
/// Unlike [`Summary`] (population moments for streaming series), this is
/// the inferential view the bench ledger stores: the *sample* standard
/// deviation (n−1 denominator) and `mean ± t₀.₉₅(n−1) · s/√n` bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleStats {
    /// Number of observations.
    pub n: u64,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub stddev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Lower 95% confidence bound on the mean.
    pub ci_lo: f64,
    /// Upper 95% confidence bound on the mean.
    pub ci_hi: f64,
}

impl SampleStats {
    /// Compute the statistics of a non-empty sample.
    ///
    /// A single observation has no spread estimate: its interval
    /// degenerates to the point itself (`ci_lo == ci_hi == mean`), which
    /// keeps single-shot legacy ledgers comparable — significance then
    /// rests entirely on the other run's interval and the effect floor.
    ///
    /// # Panics
    /// Panics on an empty sample.
    pub fn from_samples(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "empty sample");
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if n < 2 {
            return Self { n: 1, mean, stddev: 0.0, min, max, ci_lo: mean, ci_hi: mean };
        }
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n as f64 - 1.0);
        let stddev = var.sqrt();
        let half_width = t_critical_95(n as u64 - 1) * stddev / (n as f64).sqrt();
        Self {
            n: n as u64,
            mean,
            stddev,
            min,
            max,
            ci_lo: mean - half_width,
            ci_hi: mean + half_width,
        }
    }

    /// Width of the 95% confidence interval.
    pub fn ci_width(&self) -> f64 {
        self.ci_hi - self.ci_lo
    }
}

/// Running summary statistics (Welford's online algorithm).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Self { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Build a summary from a slice.
    pub fn of(xs: &[f64]) -> Self {
        let mut s = Self::new();
        for &x in xs {
            s.record(x);
        }
        s
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another summary (parallel collection).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kl_of_identical_distributions_is_near_zero() {
        let p = vec![0.25, 0.25, 0.25, 0.25];
        let d = kl_divergence(&p, &p);
        assert!(d < 1e-9, "kl {d}");
    }

    #[test]
    fn kl_is_positive_for_different_distributions() {
        let p = vec![0.9, 0.1];
        let q = vec![0.1, 0.9];
        assert!(kl_divergence(&p, &q) > 0.5);
    }

    #[test]
    fn kl_is_asymmetric() {
        let p = vec![0.8, 0.15, 0.05];
        let q = vec![0.4, 0.4, 0.2];
        let d1 = kl_divergence(&p, &q);
        let d2 = kl_divergence(&q, &p);
        assert!((d1 - d2).abs() > 1e-6);
    }

    #[test]
    fn kl_handles_zero_buckets() {
        let p = vec![1.0, 0.0];
        let q = vec![0.0, 1.0];
        let d = kl_divergence(&p, &q);
        assert!(d.is_finite() && d > 1.0);
    }

    #[test]
    fn js_is_symmetric_and_bounded() {
        let p = vec![1.0, 0.0, 0.0];
        let q = vec![0.0, 0.0, 1.0];
        let d1 = js_divergence(&p, &q);
        let d2 = js_divergence(&q, &p);
        assert!((d1 - d2).abs() < 1e-9);
        assert!(d1 <= 2f64.ln() + 1e-6, "js {d1}");
        assert!(js_divergence(&p, &p) < 1e-9);
    }

    #[test]
    fn chi_square_zero_for_exact_match() {
        let o = vec![10.0, 20.0, 30.0];
        assert_eq!(chi_square_statistic(&o, &o), 0.0);
        assert!(chi_square_statistic(&[15.0, 25.0, 20.0], &o) > 0.0);
    }

    #[test]
    fn chi_square_skips_zero_expectation() {
        let stat = chi_square_statistic(&[5.0, 1.0], &[5.0, 0.0]);
        assert_eq!(stat, 0.0);
    }

    #[test]
    fn ks_identical_samples_zero() {
        let a = vec![1.0, 2.0, 3.0];
        assert_eq!(ks_statistic(&a, &a), 0.0);
    }

    #[test]
    fn ks_disjoint_samples_one() {
        let a = vec![1.0, 2.0];
        let b = vec![10.0, 20.0];
        assert!((ks_statistic(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ks_empty_sample_zero() {
        assert_eq!(ks_statistic(&[], &[1.0]), 0.0);
    }

    #[test]
    fn summary_moments() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.variance() - 1.25).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn summary_merge_matches_bulk() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let bulk = Summary::of(&xs);
        let mut a = Summary::of(&xs[..37]);
        let b = Summary::of(&xs[37..]);
        a.merge(&b);
        assert_eq!(a.count(), bulk.count());
        assert!((a.mean() - bulk.mean()).abs() < 1e-9);
        assert!((a.variance() - bulk.variance()).abs() < 1e-9);
    }

    #[test]
    fn summary_merge_with_empty() {
        let mut a = Summary::new();
        let b = Summary::of(&[5.0]);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        assert_eq!(a.mean(), 5.0);
        let mut c = Summary::of(&[5.0]);
        c.merge(&Summary::new());
        assert_eq!(c.count(), 1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn kl_rejects_length_mismatch() {
        let _ = kl_divergence(&[0.5, 0.5], &[1.0]);
    }

    #[test]
    fn t_critical_decreases_toward_normal_limit() {
        assert!(t_critical_95(0).is_infinite());
        assert!((t_critical_95(1) - 12.706).abs() < 1e-9);
        assert!((t_critical_95(4) - 2.776).abs() < 1e-9);
        let mut prev = f64::INFINITY;
        for df in 1..200 {
            let t = t_critical_95(df);
            assert!(t <= prev, "t must be non-increasing in df");
            prev = t;
        }
        assert_eq!(t_critical_95(10_000), 1.960);
    }

    #[test]
    fn median_and_mad() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[1.0, 9.0, 5.0]), 5.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
        assert_eq!(mad(&[1.0, 1.0, 1.0]), 0.0);
        // median 2, deviations {1, 0, 1} -> MAD 1
        assert_eq!(mad(&[1.0, 2.0, 3.0]), 1.0);
    }

    #[test]
    fn outlier_classification_flags_the_spike() {
        let xs = [10.0, 10.1, 9.9, 10.05, 100.0];
        let flags = classify_outliers(&xs, 3.5);
        assert_eq!(flags, vec![false, false, false, false, true]);
    }

    #[test]
    fn outlier_classification_degenerate_spread_flags_nothing() {
        // MAD is 0 (majority identical): without a spread estimate,
        // nothing is classified out, even the far point.
        let xs = [5.0, 5.0, 5.0, 5.0, 50.0];
        assert!(classify_outliers(&xs, 3.5).iter().all(|&f| !f));
        assert!(classify_outliers(&[1.0, 2.0], 3.5).iter().all(|&f| !f));
    }

    #[test]
    fn outlier_classification_never_drops_half() {
        // Three far points in a sample of five, but only (5-1)/2 = 2 may go.
        let xs = [10.0, 10.1, 9.9, 1000.0, 2000.0, 3000.0];
        let dropped = classify_outliers(&xs, 3.5).iter().filter(|&&f| f).count();
        assert!(dropped <= (xs.len() - 1) / 2, "dropped {dropped}");
    }

    #[test]
    fn sample_stats_ci_contains_mean() {
        let s = SampleStats::from_samples(&[10.0, 11.0, 9.0, 10.5, 9.5]);
        assert_eq!(s.n, 5);
        assert!((s.mean - 10.0).abs() < 1e-9);
        assert!(s.ci_lo <= s.mean && s.mean <= s.ci_hi);
        assert!(s.min <= s.ci_lo || s.stddev > 0.0);
        assert!(s.stddev > 0.0);
    }

    #[test]
    fn sample_stats_single_observation_is_a_point() {
        let s = SampleStats::from_samples(&[42.0]);
        assert_eq!((s.ci_lo, s.ci_hi, s.stddev), (42.0, 42.0, 0.0));
    }

    #[test]
    fn sample_stats_ci_width_shrinks_with_n() {
        // Same spread pattern at two sample sizes: the t/sqrt(n) factor
        // must tighten the interval.
        let small: Vec<f64> = (0..5).map(|i| 100.0 + (i as f64).sin() * 5.0).collect();
        let large: Vec<f64> = (0..50).map(|i| 100.0 + (i as f64).sin() * 5.0).collect();
        let ws = SampleStats::from_samples(&small).ci_width();
        let wl = SampleStats::from_samples(&large).ci_width();
        assert!(wl < ws, "width(50)={wl} must be < width(5)={ws}");
    }
}
