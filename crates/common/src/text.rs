//! Text containers: tokenisation, vocabularies, and documents.
//!
//! The text path of Figure 3 learns a word dictionary from a real corpus,
//! fits a topic model, and generates synthetic documents. [`Vocabulary`]
//! is the shared dictionary (word ⇄ id); [`Document`] is a bag/sequence of
//! word ids, which is what both the LDA trainer and the WordCount-style
//! workloads consume.

use std::collections::HashMap;

/// Lower-cases and splits text into alphanumeric word tokens.
///
/// Deliberately simple — the benchmark's veracity comparisons only need the
/// raw and synthetic corpora to flow through the *same* tokenizer.
pub fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|w| !w.is_empty())
        .map(|w| w.to_lowercase())
        .collect()
}

/// A bidirectional word ⇄ id dictionary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Vocabulary {
    words: Vec<String>,
    ids: HashMap<String, u32>,
}

impl Vocabulary {
    /// An empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a vocabulary from a corpus, keeping every distinct token.
    pub fn from_corpus<'a>(texts: impl IntoIterator<Item = &'a str>) -> Self {
        let mut v = Self::new();
        for t in texts {
            for w in tokenize(t) {
                v.intern(&w);
            }
        }
        v
    }

    /// Intern a word, returning its id (existing or new).
    pub fn intern(&mut self, word: &str) -> u32 {
        if let Some(&id) = self.ids.get(word) {
            return id;
        }
        let id = self.words.len() as u32;
        self.words.push(word.to_string());
        self.ids.insert(word.to_string(), id);
        id
    }

    /// The id of a word, if present.
    pub fn id(&self, word: &str) -> Option<u32> {
        self.ids.get(word).copied()
    }

    /// The word for an id, if in range.
    pub fn word(&self, id: u32) -> Option<&str> {
        self.words.get(id as usize).map(String::as_str)
    }

    /// Number of distinct words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when no words have been interned.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

/// A document as a sequence of word ids over a shared [`Vocabulary`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Document {
    /// Word ids in order of appearance.
    pub words: Vec<u32>,
}

impl Document {
    /// Tokenise `text`, interning new words into `vocab`.
    pub fn from_text(text: &str, vocab: &mut Vocabulary) -> Self {
        let words = tokenize(text).iter().map(|w| vocab.intern(w)).collect();
        Self { words }
    }

    /// Document length in tokens.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True for a zero-token document.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Word frequency counts over a vocabulary of size `vocab_size`.
    pub fn term_counts(&self, vocab_size: usize) -> Vec<u32> {
        let mut counts = vec![0u32; vocab_size];
        for &w in &self.words {
            if (w as usize) < vocab_size {
                counts[w as usize] += 1;
            }
        }
        counts
    }

    /// Render back to text via the vocabulary (unknown ids are skipped).
    pub fn to_text(&self, vocab: &Vocabulary) -> String {
        let mut out = String::with_capacity(self.words.len() * 6);
        for (i, &w) in self.words.iter().enumerate() {
            if let Some(word) = vocab.word(w) {
                if i > 0 {
                    out.push(' ');
                }
                out.push_str(word);
            }
        }
        out
    }
}

/// Aggregate word frequencies across a corpus of documents.
pub fn corpus_word_frequencies(docs: &[Document], vocab_size: usize) -> Vec<f64> {
    let mut counts = vec![0u64; vocab_size];
    let mut total = 0u64;
    for d in docs {
        for &w in &d.words {
            if (w as usize) < vocab_size {
                counts[w as usize] += 1;
                total += 1;
            }
        }
    }
    if total == 0 {
        return vec![0.0; vocab_size];
    }
    counts.into_iter().map(|c| c as f64 / total as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_lowercases_and_splits() {
        assert_eq!(
            tokenize("Hello, World! 42-times"),
            vec!["hello", "world", "42", "times"]
        );
        assert!(tokenize("...").is_empty());
    }

    #[test]
    fn vocabulary_interning_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("data");
        let b = v.intern("data");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
        assert_eq!(v.word(a), Some("data"));
        assert_eq!(v.id("data"), Some(a));
        assert_eq!(v.id("missing"), None);
        assert_eq!(v.word(99), None);
    }

    #[test]
    fn vocabulary_from_corpus() {
        let v = Vocabulary::from_corpus(["big data", "data systems"]);
        assert_eq!(v.len(), 3);
        assert!(v.id("big").is_some());
        assert!(v.id("systems").is_some());
    }

    #[test]
    fn document_round_trip() {
        let mut v = Vocabulary::new();
        let d = Document::from_text("big data big", &mut v);
        assert_eq!(d.len(), 3);
        assert_eq!(d.to_text(&v), "big data big");
        let counts = d.term_counts(v.len());
        assert_eq!(counts[v.id("big").unwrap() as usize], 2);
        assert_eq!(counts[v.id("data").unwrap() as usize], 1);
    }

    #[test]
    fn corpus_frequencies_normalise() {
        let mut v = Vocabulary::new();
        let docs = vec![
            Document::from_text("a a b", &mut v),
            Document::from_text("b c", &mut v),
        ];
        let freq = corpus_word_frequencies(&docs, v.len());
        let total: f64 = freq.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((freq[v.id("a").unwrap() as usize] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn corpus_frequencies_empty_corpus() {
        let freq = corpus_word_frequencies(&[], 3);
        assert_eq!(freq, vec![0.0, 0.0, 0.0]);
    }
}
