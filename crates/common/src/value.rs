//! Dynamic values and schemas for structured (table) data.
//!
//! The paper's *variety* axis requires the framework to handle structured
//! data alongside text, graph and stream data. [`Value`] is the dynamic cell
//! type shared by the table generator, the relational engine and the format
//! conversion tools; [`Schema`] describes a table's columns.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Text,
    /// Boolean.
    Bool,
    /// Milliseconds since an arbitrary epoch; the stream generators use it
    /// for event time.
    Timestamp,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Bool => "BOOL",
            DataType::Timestamp => "TIMESTAMP",
        };
        f.write_str(s)
    }
}

/// A dynamically typed cell value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Text(String),
    /// Boolean.
    Bool(bool),
    /// Milliseconds since an arbitrary epoch.
    Timestamp(i64),
}

impl Value {
    /// The value's runtime type, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Bool(_) => Some(DataType::Bool),
            Value::Timestamp(_) => Some(DataType::Timestamp),
        }
    }

    /// True for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view: ints, floats and timestamps as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Timestamp(t) => Some(*t as f64),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Timestamp(t) => Some(*t),
            _ => None,
        }
    }

    /// String view (only for `Text`).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Approximate in-memory footprint in bytes, used by the *volume*
    /// accounting of the data generators.
    pub fn byte_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) | Value::Float(_) | Value::Timestamp(_) => 8,
            Value::Bool(_) => 1,
            Value::Text(s) => s.len(),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_values(other) == Some(Ordering::Equal)
    }
}

impl Value {
    /// Total ordering across comparable values; `None` when the variants are
    /// incomparable (e.g. Text vs Int). NULL compares equal to NULL and less
    /// than everything else, matching the sort semantics of the SQL engine.
    pub fn cmp_values(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, Null) => Some(Ordering::Equal),
            (Null, _) => Some(Ordering::Less),
            (_, Null) => Some(Ordering::Greater),
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Timestamp(a), Timestamp(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => a.partial_cmp(b).or(Some(Ordering::Equal)),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            (Text(a), Text(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => f.write_str(s),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Timestamp(t) => write!(f, "@{t}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Column type.
    pub data_type: DataType,
    /// Whether NULLs are permitted.
    pub nullable: bool,
}

impl Field {
    /// A non-nullable field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Self { name: name.into(), data_type, nullable: false }
    }

    /// A nullable field.
    pub fn nullable(name: impl Into<String>, data_type: DataType) -> Self {
        Self { name: name.into(), data_type, nullable: true }
    }
}

/// An ordered list of fields describing a table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build a schema from fields.
    ///
    /// # Panics
    /// Panics if two fields share a name.
    pub fn new(fields: Vec<Field>) -> Self {
        for (i, f) in fields.iter().enumerate() {
            for g in &fields[i + 1..] {
                assert_ne!(f.name, g.name, "duplicate column name {}", f.name);
            }
        }
        Self { fields }
    }

    /// The fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True for a zero-column schema.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the column named `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// The field named `name`.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Check a row of values against this schema (arity, types, nullability).
    pub fn validate_row(&self, row: &[Value]) -> crate::Result<()> {
        if row.len() != self.fields.len() {
            return Err(crate::BdbError::TypeMismatch {
                expected: format!("{} columns", self.fields.len()),
                found: format!("{} columns", row.len()),
            });
        }
        for (v, f) in row.iter().zip(&self.fields) {
            match v.data_type() {
                None if f.nullable => {}
                None => {
                    return Err(crate::BdbError::TypeMismatch {
                        expected: f.data_type.to_string(),
                        found: format!("NULL in non-nullable column {}", f.name),
                    })
                }
                Some(t) if t == f.data_type => {}
                Some(t) => {
                    return Err(crate::BdbError::TypeMismatch {
                        expected: format!("{} for column {}", f.data_type, f.name),
                        found: t.to_string(),
                    })
                }
            }
        }
        Ok(())
    }

    /// A new schema with only the named columns, in the given order.
    pub fn project(&self, names: &[&str]) -> crate::Result<Schema> {
        let mut fields = Vec::with_capacity(names.len());
        for n in names {
            let f = self
                .field(n)
                .ok_or_else(|| crate::BdbError::NotFound(format!("column {n}")))?;
            fields.push(f.clone());
        }
        Ok(Schema::new(fields))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("name", DataType::Text),
            Field::nullable("score", DataType::Float),
        ])
    }

    #[test]
    fn value_type_introspection() {
        assert_eq!(Value::Int(1).data_type(), Some(DataType::Int));
        assert_eq!(Value::Null.data_type(), None);
        assert!(Value::Null.is_null());
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Text("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
    }

    #[test]
    fn value_ordering_null_first() {
        assert_eq!(
            Value::Null.cmp_values(&Value::Int(0)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Int(0).cmp_values(&Value::Null),
            Some(Ordering::Greater)
        );
        assert_eq!(Value::Null.cmp_values(&Value::Null), Some(Ordering::Equal));
    }

    #[test]
    fn value_cross_numeric_comparison() {
        assert_eq!(
            Value::Int(2).cmp_values(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Int(2), Value::Float(2.0));
    }

    #[test]
    fn incomparable_values() {
        assert_eq!(Value::Int(1).cmp_values(&Value::Text("1".into())), None);
    }

    #[test]
    fn byte_size_accounting() {
        assert_eq!(Value::Int(1).byte_size(), 8);
        assert_eq!(Value::Text("abcd".into()).byte_size(), 4);
        assert_eq!(Value::Null.byte_size(), 1);
    }

    #[test]
    fn schema_lookup_and_projection() {
        let s = schema();
        assert_eq!(s.index_of("name"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        let p = s.project(&["score", "id"]).unwrap();
        assert_eq!(p.fields()[0].name, "score");
        assert_eq!(p.fields()[1].name, "id");
        assert!(s.project(&["nope"]).is_err());
    }

    #[test]
    fn validate_row_accepts_valid() {
        let s = schema();
        let row = vec![Value::Int(1), Value::from("a"), Value::Null];
        assert!(s.validate_row(&row).is_ok());
    }

    #[test]
    fn validate_row_rejects_null_in_non_nullable() {
        let s = schema();
        let row = vec![Value::Null, Value::from("a"), Value::Null];
        assert!(s.validate_row(&row).is_err());
    }

    #[test]
    fn validate_row_rejects_wrong_arity_and_type() {
        let s = schema();
        assert!(s.validate_row(&[Value::Int(1)]).is_err());
        let row = vec![Value::from("oops"), Value::from("a"), Value::Null];
        assert!(s.validate_row(&row).is_err());
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn schema_rejects_duplicate_names() {
        let _ = Schema::new(vec![
            Field::new("x", DataType::Int),
            Field::new("x", DataType::Text),
        ]);
    }

    #[test]
    fn display_round_trip_like() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Timestamp(5).to_string(), "@5");
        assert_eq!(DataType::Timestamp.to_string(), "TIMESTAMP");
    }
}
