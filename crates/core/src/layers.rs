//! The three-layer architecture of Figure 2.
//!
//! "The *User Interface Layer* provides interfaces to assist system owners
//! to specify their benchmarking requirements … The *Function Layer* has
//! three components: data generators, test generators and metrics … The
//! *Execution Layer* offers several functions to support the execution of
//! benchmark tests over different software stacks."

use crate::registry::GeneratorRegistry;
use bdb_exec::config::SystemConfig;
use bdb_exec::engine::EngineRegistry;
use bdb_exec::fault::FaultPlan;
use bdb_exec::loadgen::LoadProfile;
use bdb_exec::planner::RoutingPolicy;
use bdb_metrics::{CostModel, PowerModel};
use bdb_testgen::{PrescriptionRepository, SystemKind};
use bdb_verify::VerifyMode;

/// User Interface Layer: what a system owner specifies — "the selected
/// data, workloads, metrics and the preferred data volume and velocity".
#[derive(Debug, Clone)]
pub struct BenchmarkSpec {
    /// Run name (for reports).
    pub name: String,
    /// Which prescription from the repository to run.
    pub prescription: String,
    /// Target system for the prescribed test.
    pub system: SystemKind,
    /// Data volume: overrides the prescription's item counts when set.
    pub scale: Option<u64>,
    /// Target data generation rate (items/sec), if velocity-controlled.
    pub target_rate: Option<f64>,
    /// Parallel generator workers for the data generation step. `None`
    /// defers to the Execution Layer's [`SystemConfig`]; `Some(n)` is an
    /// explicit request (so `Some(1)` forces sequential generation even
    /// when the system config asks for parallelism).
    pub generator_workers: Option<usize>,
    /// Master seed.
    pub seed: u64,
    /// Deterministic fault plan for chaos runs (`None` = no injection).
    pub faults: Option<FaultPlan>,
    /// Retries per operation after the first attempt (0 = fail fast).
    pub retries: u32,
    /// Per-operation wall-clock deadline, milliseconds (`None` = none).
    pub deadline_ms: Option<u64>,
    /// Differential conformance verification for the run's results
    /// (`None` = no verification, the historical behaviour).
    pub verify: Option<VerifyMode>,
    /// Explicit golden-store directory for verification. `None` defers to
    /// `$BDB_GOLDENS_DIR` / the `goldens/` discovery rule.
    pub goldens_dir: Option<String>,
    /// Concurrent load-driving profile for [`Benchmark::run_load`]
    /// (`None` = the default profile when a load run is requested).
    ///
    /// [`Benchmark::run_load`]: crate::pipeline::Benchmark::run_load
    pub load: Option<LoadProfile>,
    /// How the registry orders capable engines for the run: the
    /// historical first-capable default, static cost ranking, or the
    /// adaptive observed-runtime loop.
    pub routing: RoutingPolicy,
}

impl BenchmarkSpec {
    /// A spec with defaults (micro/wordcount on the native system).
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            prescription: "micro/wordcount".to_string(),
            system: SystemKind::Native,
            scale: None,
            target_rate: None,
            generator_workers: None,
            seed: 0xBDBE,
            faults: None,
            retries: 0,
            deadline_ms: None,
            verify: None,
            goldens_dir: None,
            load: None,
            routing: RoutingPolicy::default(),
        }
    }

    /// Choose the prescription by repository name.
    pub fn with_prescription(mut self, name: &str) -> Self {
        self.prescription = name.to_string();
        self
    }

    /// Target a specific system.
    pub fn with_system(mut self, system: SystemKind) -> Self {
        self.system = system;
        self
    }

    /// Override the data volume (items).
    pub fn with_scale(mut self, items: u64) -> Self {
        self.scale = Some(items);
        self
    }

    /// Request a data generation rate.
    pub fn with_target_rate(mut self, items_per_sec: f64) -> Self {
        self.target_rate = Some(items_per_sec);
        self
    }

    /// Deploy N parallel data generators (0 = available parallelism,
    /// 1 = sequential). An explicit setting always wins over the
    /// Execution Layer's default.
    pub fn with_generator_workers(mut self, workers: usize) -> Self {
        self.generator_workers = Some(workers);
        self
    }

    /// Set the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Inject faults from a deterministic plan during the run.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Allow up to `retries` retries per operation (with backoff).
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Bound each operation (including its retries and failovers) by a
    /// wall-clock deadline in milliseconds.
    pub fn with_deadline_ms(mut self, deadline_ms: u64) -> Self {
        self.deadline_ms = Some(deadline_ms);
        self
    }

    /// Verify the run's results against the reference oracle and/or the
    /// golden-run store.
    pub fn with_verify(mut self, mode: VerifyMode) -> Self {
        self.verify = Some(mode);
        self
    }

    /// Use an explicit golden-store directory instead of discovery.
    pub fn with_goldens_dir(mut self, dir: &str) -> Self {
        self.goldens_dir = Some(dir.to_string());
        self
    }

    /// Configure the concurrent load driver for this spec.
    pub fn with_load(mut self, profile: LoadProfile) -> Self {
        self.load = Some(profile);
        self
    }

    /// Choose how the registry ranks capable engines.
    pub fn with_routing(mut self, routing: RoutingPolicy) -> Self {
        self.routing = routing;
        self
    }
}

/// Alias making the Figure 2 naming explicit.
pub type UserInterfaceLayer = BenchmarkSpec;

/// Function Layer: data generators + test generator + metrics models.
#[derive(Debug)]
pub struct FunctionLayer {
    /// The data generators component.
    pub generators: GeneratorRegistry,
    /// The test generator component (prescription repository + binding).
    pub repository: PrescriptionRepository,
    /// Metrics: the energy model.
    pub power_model: PowerModel,
    /// Metrics: the cost model.
    pub cost_model: CostModel,
}

impl Default for FunctionLayer {
    fn default() -> Self {
        Self {
            generators: GeneratorRegistry::with_builtins(),
            repository: PrescriptionRepository::with_builtins(),
            power_model: PowerModel::default(),
            cost_model: CostModel::default(),
        }
    }
}

/// Execution Layer: system configuration plus the pluggable engine
/// registry that maps prescribed tests onto software stacks (format
/// conversion and analysis live in `bdb-exec` and are re-exported through
/// the pipeline's report).
#[derive(Debug)]
pub struct ExecutionLayer {
    /// Engine configuration for the run.
    pub system_config: SystemConfig,
    /// The registered engine backends, in routing order.
    pub engines: EngineRegistry,
}

impl Default for ExecutionLayer {
    fn default() -> Self {
        Self {
            system_config: SystemConfig::default(),
            engines: EngineRegistry::with_builtins(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builder_chains() {
        let s = BenchmarkSpec::new("x")
            .with_prescription("micro/sort")
            .with_system(SystemKind::MapReduce)
            .with_scale(1000)
            .with_target_rate(5000.0)
            .with_generator_workers(4)
            .with_seed(7)
            .with_faults("error@exec:0.5".parse().unwrap())
            .with_retries(3)
            .with_deadline_ms(500);
        assert_eq!(s.prescription, "micro/sort");
        assert_eq!(s.system, SystemKind::MapReduce);
        assert_eq!(s.scale, Some(1000));
        assert_eq!(s.target_rate, Some(5000.0));
        assert_eq!(s.generator_workers, Some(4));
        assert_eq!(s.seed, 7);
        assert_eq!(s.faults.as_ref().unwrap().clauses.len(), 1);
        assert_eq!(s.retries, 3);
        assert_eq!(s.deadline_ms, Some(500));
    }

    #[test]
    fn spec_defaults_are_resilience_neutral() {
        let s = BenchmarkSpec::new("x");
        assert!(s.faults.is_none());
        assert_eq!(s.retries, 0);
        assert!(s.deadline_ms.is_none());
        assert_eq!(s.routing, RoutingPolicy::FirstCapable);
    }

    #[test]
    fn spec_routing_builder() {
        let s = BenchmarkSpec::new("x").with_routing(RoutingPolicy::Adaptive);
        assert_eq!(s.routing, RoutingPolicy::Adaptive);
    }

    #[test]
    fn function_layer_defaults_are_loaded() {
        let f = FunctionLayer::default();
        assert!(f.repository.get("micro/wordcount").is_ok());
        assert!(f.generators.ids().contains(&"text/lda"));
    }
}
