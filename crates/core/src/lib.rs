//! The benchmark framework facade: Figure 1's process over Figure 2's
//! layers.
//!
//! * [`registry`] — the data-generator registry: prescriptions name
//!   generators by id ("text/lda", "table/retail-fitted", …); the registry
//!   materialises them.
//! * [`layers`] — the three-layer architecture of Figure 2: the *User
//!   Interface Layer* ([`layers::BenchmarkSpec`]), the *Function Layer*
//!   (data generators + test generator + metrics), and the *Execution
//!   Layer* (system configuration, format conversion, analysis).
//! * [`pipeline`] — the five-step benchmarking process of Figure 1:
//!   Planning → Data generation → Test generation → Execution →
//!   Analysis & Evaluation, with per-step timings.
//!
//! ```
//! use bdb_core::pipeline::Benchmark;
//! use bdb_core::layers::BenchmarkSpec;
//!
//! let spec = BenchmarkSpec::new("demo")
//!     .with_prescription("micro/wordcount")
//!     .with_scale(200)
//!     .with_seed(42);
//! let run = Benchmark::new().run(&spec).unwrap();
//! assert_eq!(run.phases.len(), 5);
//! assert!(!run.results.is_empty());
//! ```

pub mod layers;
pub mod matrix;
pub mod pipeline;
pub mod registry;

pub use layers::{BenchmarkSpec, ExecutionLayer, FunctionLayer, UserInterfaceLayer};
pub use matrix::{verify_matrix, verify_matrix_routed, MatrixCell, MatrixReport, MatrixRouting};
pub use pipeline::{Benchmark, BenchmarkRun, LoadRun, PhaseTiming};
pub use registry::GeneratorRegistry;

/// Glob import for applications.
pub mod prelude {
    pub use crate::layers::BenchmarkSpec;
    pub use crate::matrix::{verify_matrix, verify_matrix_routed, MatrixReport, MatrixRouting};
    pub use crate::pipeline::{Benchmark, BenchmarkRun, LoadRun};
    pub use bdb_exec::loadgen::{LoadArrival, LoadProfile};
    pub use bdb_verify::VerifyMode;
    pub use crate::registry::GeneratorRegistry;
    pub use bdb_common::prelude::*;
    pub use bdb_datagen::volume::VolumeSpec;
    pub use bdb_datagen::{DataGenerator, DataSourceKind, Dataset};
    pub use bdb_metrics::MetricReport;
    pub use bdb_testgen::{Prescription, PrescriptionRepository, SystemKind};
    pub use bdb_workloads::{WorkloadCategory, WorkloadResult};
}
