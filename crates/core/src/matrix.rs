//! The verification matrix: every built-in prescription swept across
//! every capable built-in engine, each cell verified differentially.
//!
//! [`verify_matrix`] is the harness behind `bdbench verify`: it runs each
//! (prescription, engine) pair in isolation — a single-engine registry,
//! so capability routing cannot silently substitute a different backend —
//! and collects the conformance verdicts per cell. Engine threads are
//! pinned (4) so Element-class cells produce machine-independent golden
//! digests regardless of the host's parallelism.

use crate::layers::BenchmarkSpec;
use crate::pipeline::Benchmark;
use bdb_common::{BdbError, Result};
use bdb_exec::config::SystemConfig;
use bdb_exec::engine::{
    Engine, EngineRegistry, KvEngine, MapReduceEngine, NativeEngine, SqlEngine, StreamingEngine,
};
use bdb_testgen::{PrescriptionRepository, SystemKind};
use bdb_verify::VerifyMode;

/// Engine threads pinned for matrix runs, keeping KV client sharding —
/// and therefore Element-class golden digests — machine-independent.
pub const MATRIX_THREADS: usize = 4;

/// One verified (prescription, engine) cell.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// Prescription name.
    pub prescription: String,
    /// Engine that executed it.
    pub engine: &'static str,
    /// Conformance checks the cell ran.
    pub checks: u64,
    /// All checks passed (and at least one ran).
    pub passed: bool,
    /// Failure details, when any check diverged.
    pub failures: Vec<String>,
}

/// The outcome of a full matrix sweep.
#[derive(Debug, Clone)]
pub struct MatrixReport {
    /// Verification mode the sweep ran under.
    pub mode: VerifyMode,
    /// Verified cells, in prescription-major order.
    pub cells: Vec<MatrixCell>,
}

impl MatrixReport {
    /// True when every cell verified clean.
    pub fn all_passed(&self) -> bool {
        !self.cells.is_empty() && self.cells.iter().all(|c| c.passed)
    }

    /// Cells that diverged.
    pub fn failed_cells(&self) -> Vec<&MatrixCell> {
        self.cells.iter().filter(|c| !c.passed).collect()
    }

    /// Render the sweep as an aligned text table.
    pub fn render(&self) -> String {
        use bdb_exec::reporter::TableReporter;
        let mut t = TableReporter::new(
            &format!("Verification matrix ({} mode)", self.mode),
            &["prescription", "engine", "checks", "verdict"],
        );
        for c in &self.cells {
            t.add_row(&[
                c.prescription.clone(),
                c.engine.to_string(),
                c.checks.to_string(),
                if c.passed { "pass".into() } else { "FAIL".into() },
            ]);
        }
        let mut out = t.to_text();
        for c in self.failed_cells() {
            for f in &c.failures {
                out.push_str(&format!("  {}@{}: {f}\n", c.prescription, c.engine));
            }
        }
        let verdict = if self.all_passed() { "CONFORMANT" } else { "DIVERGED" };
        out.push_str(&format!(
            "{} cells, {} passed: {verdict}\n",
            self.cells.len(),
            self.cells.iter().filter(|c| c.passed).count()
        ));
        out
    }
}

/// Fresh instances of the five built-in engines, in registration order.
fn builtin_engines() -> Vec<Box<dyn Engine>> {
    vec![
        Box::new(NativeEngine),
        Box::new(SqlEngine),
        Box::new(KvEngine),
        Box::new(StreamingEngine),
        Box::new(MapReduceEngine),
    ]
}

/// Sweep every built-in prescription across every capable built-in
/// engine, verifying each cell under `mode`. Incapable pairs are skipped
/// (they are not matrix cells); a capable pair that fails to execute is
/// an error.
///
/// # Errors
/// Fails when a capable cell cannot run at all (generation or execution
/// error) — divergence is reported in the cells, not as an error.
pub fn verify_matrix(
    scale: u64,
    seed: u64,
    mode: VerifyMode,
    goldens_dir: Option<&str>,
) -> Result<MatrixReport> {
    let names: Vec<String> = PrescriptionRepository::with_builtins()
        .names()
        .iter()
        .map(|n| n.to_string())
        .collect();
    let mut cells = Vec::new();
    for name in &names {
        for engine in builtin_engines() {
            let engine_name = engine.name();
            let system = engine
                .capabilities()
                .systems
                .first()
                .copied()
                .unwrap_or(SystemKind::Native);
            let mut bench = Benchmark::new();
            bench.execution_layer_mut().system_config =
                SystemConfig::default().with_threads(MATRIX_THREADS);
            let mut registry = EngineRegistry::new();
            registry.register(engine);
            bench.execution_layer_mut().engines = registry;
            let mut spec = BenchmarkSpec::new(&format!("verify/{name}/{engine_name}"))
                .with_prescription(name)
                .with_system(system)
                .with_scale(scale)
                .with_seed(seed)
                .with_verify(mode);
            if let Some(dir) = goldens_dir {
                spec = spec.with_goldens_dir(dir);
            }
            match bench.run(&spec) {
                Ok(run) => cells.push(MatrixCell {
                    prescription: name.clone(),
                    engine: engine_name,
                    checks: run.conformance.checks,
                    passed: run.conformance.all_passed() && run.conformance.checks > 0,
                    failures: run
                        .conformance
                        .failures
                        .iter()
                        .map(|(_, _, check, detail)| format!("{check}: {detail}"))
                        .collect(),
                }),
                // The single-engine registry routes nothing it cannot
                // support: that pair is outside the matrix, not a failure.
                Err(BdbError::Execution(msg)) if msg.contains("no engine can execute") => {}
                Err(e) => return Err(e),
            }
        }
    }
    Ok(MatrixReport { mode, cells })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_engines_are_the_five() {
        let names: Vec<&str> = builtin_engines().iter().map(|e| e.name()).collect();
        assert_eq!(names, vec!["native", "sql", "kv", "streaming", "mapreduce"]);
    }

    #[test]
    fn empty_report_does_not_pass() {
        let r = MatrixReport { mode: VerifyMode::Digest, cells: Vec::new() };
        assert!(!r.all_passed());
    }
}
