//! The verification matrix: every built-in prescription swept across
//! every capable built-in engine, each cell verified differentially.
//!
//! [`verify_matrix`] is the harness behind `bdbench verify`: it runs each
//! (prescription, engine) pair in isolation — a single-engine registry,
//! so capability routing cannot silently substitute a different backend —
//! and collects the conformance verdicts per cell. Engine threads are
//! pinned (4) so Element-class cells produce machine-independent golden
//! digests regardless of the host's parallelism.
//!
//! [`verify_matrix_with`] adds crash durability to the sweep: an optional
//! [`RunJournal`] checkpoints every completed cell atomically, and an
//! optional [`FaultPlan`] arms kill points *between* cells — one injector
//! spans the whole sweep (per-cell injectors would reset the draw
//! sequence and kill every cell), and a fired `crash` clause aborts the
//! run with [`BdbError::Crashed`], leaving the journal behind. Re-running
//! with the same journal resumes: checkpointed cells are skipped, their
//! recorded digests re-verified against the golden store, and only the
//! remaining cells execute — so a killed-and-resumed sweep's verdicts are
//! comparable cell-for-cell with an uninterrupted run's.

use crate::layers::BenchmarkSpec;
use crate::pipeline::Benchmark;
use bdb_common::{BdbError, Result};
use bdb_exec::analyzer::{RecoverySummary, RoutingSummary};
use bdb_exec::config::SystemConfig;
use bdb_exec::cost::ObservedCosts;
use bdb_exec::engine::{
    Engine, EngineRegistry, KvEngine, MapReduceEngine, NativeEngine, SqlEngine, StreamingEngine,
};
use bdb_exec::fault::{FaultInjector, FaultKind, FaultPlan, FaultSite};
use bdb_exec::journal::{CellCheckpoint, RunJournal};
use bdb_exec::planner::RoutingPolicy;
use bdb_exec::trace::{RunTrace, TraceEvent};
use bdb_testgen::{PrescriptionRepository, SystemKind};
use bdb_verify::{GoldenStore, VerifyMode};
use std::sync::Arc;

/// Engine threads pinned for matrix runs, keeping KV client sharding —
/// and therefore Element-class golden digests — machine-independent.
pub const MATRIX_THREADS: usize = 4;

/// One verified (prescription, engine) cell.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// Prescription name.
    pub prescription: String,
    /// Engine that executed it.
    pub engine: &'static str,
    /// Conformance checks the cell ran.
    pub checks: u64,
    /// All checks passed (and at least one ran).
    pub passed: bool,
    /// Failure details, when any check diverged.
    pub failures: Vec<String>,
    /// Canonical digest of the cell's output payload, 16 hex digits
    /// (`"-"` when the engine attached no payload).
    pub digest: String,
    /// True when the cell was taken from a run journal instead of
    /// executing (the prior, crashed run completed it).
    pub resumed: bool,
}

/// The outcome of a full matrix sweep.
#[derive(Debug, Clone)]
pub struct MatrixReport {
    /// Verification mode the sweep ran under.
    pub mode: VerifyMode,
    /// Verified cells, in prescription-major order.
    pub cells: Vec<MatrixCell>,
    /// Recovery activity of the sweep itself: checkpoints written, cells
    /// resumed from a journal, kill points fired.
    pub recovery: RecoverySummary,
    /// Routing activity across the sweep's cells: dispatch decisions,
    /// cost predictions vs observations, engine migrations. Empty under
    /// the first-capable default.
    pub routing: RoutingSummary,
}

impl MatrixReport {
    /// True when every cell verified clean.
    pub fn all_passed(&self) -> bool {
        !self.cells.is_empty() && self.cells.iter().all(|c| c.passed)
    }

    /// Cells that diverged.
    pub fn failed_cells(&self) -> Vec<&MatrixCell> {
        self.cells.iter().filter(|c| !c.passed).collect()
    }

    /// Render the sweep as an aligned text table.
    pub fn render(&self) -> String {
        use bdb_exec::reporter::TableReporter;
        let mut t = TableReporter::new(
            &format!("Verification matrix ({} mode)", self.mode),
            &["prescription", "engine", "checks", "verdict"],
        );
        for c in &self.cells {
            t.add_row(&[
                c.prescription.clone(),
                c.engine.to_string(),
                c.checks.to_string(),
                match (c.passed, c.resumed) {
                    (true, false) => "pass".into(),
                    (true, true) => "pass (resumed)".into(),
                    (false, false) => "FAIL".into(),
                    (false, true) => "FAIL (resumed)".into(),
                },
            ]);
        }
        let mut out = t.to_text();
        for c in self.failed_cells() {
            for f in &c.failures {
                out.push_str(&format!("  {}@{}: {f}\n", c.prescription, c.engine));
            }
        }
        if !self.recovery.is_quiet() || self.recovery.checkpoints_written > 0 {
            out.push('\n');
            out.push_str(&bdb_exec::reporter::render_resilience(&self.recovery));
        }
        if !self.routing.is_empty() {
            out.push('\n');
            out.push_str(&bdb_exec::reporter::render_routing(&self.routing));
        }
        let verdict = if self.all_passed() { "CONFORMANT" } else { "DIVERGED" };
        let resumed = self.cells.iter().filter(|c| c.resumed).count();
        out.push_str(&format!(
            "{} cells, {} passed{}: {verdict}\n",
            self.cells.len(),
            self.cells.iter().filter(|c| c.passed).count(),
            if resumed > 0 {
                format!(" ({resumed} resumed from journal)")
            } else {
                String::new()
            }
        ));
        out
    }
}

/// Fresh instances of the five built-in engines, in registration order.
fn builtin_engines() -> Vec<Box<dyn Engine>> {
    vec![
        Box::new(NativeEngine),
        Box::new(SqlEngine),
        Box::new(KvEngine),
        Box::new(StreamingEngine),
        Box::new(MapReduceEngine),
    ]
}

/// Durability knobs for a matrix sweep: where to checkpoint and which
/// kill points to arm.
#[derive(Debug, Default)]
pub struct MatrixDurability<'a> {
    /// Journal completed cells here (and honour any checkpoints already
    /// present — an existing journal resumes the sweep).
    pub journal: Option<&'a RunJournal>,
    /// Kill points for the sweep. Only `crash` clauses act at this level
    /// (sampled once after every completed cell, by one injector spanning
    /// the sweep); other kinds belong in per-cell run specs.
    pub faults: Option<&'a FaultPlan>,
}

/// Routing knobs for a matrix sweep: which dispatch policy each cell
/// runs under, and the observed-cost store cells share.
///
/// The store is the adaptive loop's memory: every cell folds its engines'
/// observed runtimes into it, so later cells (and later *sweeps*, when
/// the caller reuses one store across passes) rank engines by what the
/// matrix actually measured instead of the static table.
#[derive(Debug, Clone)]
pub struct MatrixRouting {
    /// Dispatch policy for every cell in the sweep.
    pub policy: RoutingPolicy,
    /// EWMA store shared by all cells (and across passes when reused).
    pub observed: Arc<ObservedCosts>,
    /// Extra system-config parameters applied to every cell's execution
    /// layer (e.g. the `breaker.*` knobs from the CLI). Invalid values
    /// fail the first cell loudly instead of being silently ignored.
    pub parameters: Vec<(String, String)>,
}

impl Default for MatrixRouting {
    fn default() -> Self {
        Self {
            policy: RoutingPolicy::default(),
            observed: Arc::new(ObservedCosts::new()),
            parameters: Vec::new(),
        }
    }
}

impl MatrixRouting {
    /// A routing config under `policy` with a fresh observed-cost store.
    pub fn with_policy(policy: RoutingPolicy) -> Self {
        Self { policy, ..Self::default() }
    }
}

/// Sweep every built-in prescription across every capable built-in
/// engine, verifying each cell under `mode`. Incapable pairs are skipped
/// (they are not matrix cells); a capable pair that fails to execute is
/// an error.
///
/// # Errors
/// Fails when a capable cell cannot run at all (generation or execution
/// error) — divergence is reported in the cells, not as an error.
pub fn verify_matrix(
    scale: u64,
    seed: u64,
    mode: VerifyMode,
    goldens_dir: Option<&str>,
) -> Result<MatrixReport> {
    verify_matrix_with(scale, seed, mode, goldens_dir, &MatrixDurability::default())
}

/// [`verify_matrix`] with journaling, resumption and kill points — see
/// the module docs for the crash/resume contract.
///
/// # Errors
/// Fails as [`verify_matrix`] does, plus [`BdbError::Crashed`] when an
/// armed kill point fires mid-sweep (completed cells stay checkpointed
/// in the journal).
pub fn verify_matrix_with(
    scale: u64,
    seed: u64,
    mode: VerifyMode,
    goldens_dir: Option<&str>,
    durability: &MatrixDurability<'_>,
) -> Result<MatrixReport> {
    verify_matrix_routed(scale, seed, mode, goldens_dir, durability, &MatrixRouting::default())
}

/// [`verify_matrix_with`] under an explicit dispatch policy. Each cell
/// still runs in a single-engine registry — the sweep is a conformance
/// harness, so the routed engine must stay the cell's engine — but every
/// cell's registry shares `routing.observed`, records its routing
/// decisions into the report, and feeds observed runtimes back for the
/// next cell (or the next pass, when the caller reuses the store).
///
/// # Errors
/// Fails as [`verify_matrix_with`] does.
pub fn verify_matrix_routed(
    scale: u64,
    seed: u64,
    mode: VerifyMode,
    goldens_dir: Option<&str>,
    durability: &MatrixDurability<'_>,
    routing: &MatrixRouting,
) -> Result<MatrixReport> {
    let names: Vec<String> = PrescriptionRepository::with_builtins()
        .names()
        .iter()
        .map(|n| n.to_string())
        .collect();
    // ONE injector spans the sweep: a fresh injector per cell would
    // restart the deterministic draw sequence and a `crash@exec:1`
    // clause would kill every cell instead of one point in the run.
    let injector = durability
        .faults
        .filter(|p| !p.is_empty())
        .map(|p| FaultInjector::new(p.clone(), seed));
    let golden_store = goldens_dir.map(GoldenStore::at).or_else(|| GoldenStore::discover(false));
    let sweep_trace = RunTrace::new();
    if let Some(journal) = durability.journal {
        let completed = journal.completed().len();
        if completed > 0 {
            sweep_trace.record(TraceEvent::RunResumed {
                journal: journal.dir().display().to_string(),
                completed,
            });
        }
    }
    let mut cells = Vec::new();
    let mut routing_events = Vec::new();
    for name in &names {
        for engine in builtin_engines() {
            let engine_name = engine.name();
            let key = RunJournal::cell_key(name, engine_name, seed, scale);
            // A checkpointed cell was completed by the prior (crashed)
            // run: honour its verdicts, re-verify its digest against the
            // golden store, and skip execution.
            if let Some(cp) = durability.journal.and_then(|j| j.load(&key)) {
                cells.push(resume_cell(cp, engine_name, &sweep_trace, golden_store.as_ref()));
                continue;
            }
            let system = engine
                .capabilities()
                .systems
                .first()
                .copied()
                .unwrap_or(SystemKind::Native);
            let mut bench = Benchmark::new();
            let mut config = SystemConfig::default().with_threads(MATRIX_THREADS);
            for (key, value) in &routing.parameters {
                config = config.with_parameter(key, value);
            }
            bench.execution_layer_mut().system_config = config;
            let mut registry = EngineRegistry::new();
            registry.register(engine);
            // All cells share the sweep's observed-cost store: each cell
            // feeds its runtime into the EWMA the next cell (or pass)
            // ranks with.
            registry.set_observed(routing.observed.clone());
            bench.execution_layer_mut().engines = registry;
            let mut spec = BenchmarkSpec::new(&format!("verify/{name}/{engine_name}"))
                .with_prescription(name)
                .with_system(system)
                .with_scale(scale)
                .with_seed(seed)
                .with_verify(mode)
                .with_routing(routing.policy);
            if let Some(dir) = goldens_dir {
                spec = spec.with_goldens_dir(dir);
            }
            match bench.run(&spec) {
                Ok(run) => {
                    routing_events.extend(run.trace.events().iter().filter(|e| {
                        matches!(
                            e,
                            TraceEvent::RoutingDecision { .. } | TraceEvent::CostObserved { .. }
                        )
                    }).cloned());
                    let digest = run
                        .results
                        .iter()
                        .find_map(|r| r.output.as_ref())
                        .map_or_else(|| "-".to_string(), |p| format!("{:016x}", p.digest()));
                    let cell = MatrixCell {
                        prescription: name.clone(),
                        engine: engine_name,
                        checks: run.conformance.checks,
                        passed: run.conformance.all_passed() && run.conformance.checks > 0,
                        failures: run
                            .conformance
                            .failures
                            .iter()
                            .map(|(_, _, check, detail)| format!("{check}: {detail}"))
                            .collect(),
                        digest,
                        resumed: false,
                    };
                    if let Some(journal) = durability.journal {
                        journal.record(&checkpoint_of(&cell, &run, &key, seed, scale))?;
                        sweep_trace.record(TraceEvent::CheckpointWritten {
                            key: key.clone(),
                            digest: cell.digest.clone(),
                        });
                    }
                    cells.push(cell);
                    // The kill point sits between cells: the checkpoint
                    // for the finished cell is durable, the next cell
                    // never starts — exactly a process death mid-sweep.
                    if let Some(fired) = injector
                        .as_ref()
                        .and_then(|inj| inj.sample(&FaultSite::execution(engine_name, name)))
                    {
                        if fired.kind == FaultKind::Crash {
                            sweep_trace.record(TraceEvent::FaultInjected {
                                site: format!("exec/{engine_name}:{name}"),
                                kind: "crash".into(),
                                latency_ms: 0,
                            });
                            return Err(BdbError::Crashed(format!(
                                "injected kill point mid-matrix after {name}@{engine_name} \
                                 ({} cells completed{})",
                                cells.len(),
                                if durability.journal.is_some() {
                                    ", checkpointed for --resume"
                                } else {
                                    ""
                                }
                            )));
                        }
                    }
                }
                // The single-engine registry routes nothing it cannot
                // support: that pair is outside the matrix, not a failure.
                Err(BdbError::Execution(msg)) if msg.contains("no engine can execute") => {}
                Err(e) => return Err(e),
            }
        }
    }
    let recovery = RecoverySummary::from_events(&sweep_trace.events());
    let routing = RoutingSummary::from_events(&routing_events);
    Ok(MatrixReport { mode, cells, recovery, routing })
}

/// Turn a journal checkpoint back into a matrix cell, re-verifying its
/// recorded digest against the golden store when one is available.
fn resume_cell(
    cp: CellCheckpoint,
    engine_name: &'static str,
    trace: &RunTrace,
    store: Option<&GoldenStore>,
) -> MatrixCell {
    let mut failures = cp.failures.clone();
    let mut passed = cp.passed;
    let golden = store.and_then(|s| s.load(&cp.key));
    if let Some(golden) = &golden {
        if golden.digest != cp.digest && cp.digest != "-" {
            passed = false;
            failures.push(format!(
                "resume: journal digest {} != golden digest {}",
                cp.digest, golden.digest
            ));
        }
    }
    trace.record(TraceEvent::CellResumed {
        key: cp.key.clone(),
        digest: cp.digest.clone(),
        reverified: golden.is_some(),
    });
    MatrixCell {
        prescription: cp.prescription,
        engine: engine_name,
        checks: u64::from(cp.checks),
        passed,
        failures,
        digest: cp.digest,
        resumed: true,
    }
}

/// The checkpoint a completed cell writes: the cell's verdicts plus the
/// payload coordinates (shape, length, digest) of its first output.
fn checkpoint_of(
    cell: &MatrixCell,
    run: &crate::pipeline::BenchmarkRun,
    key: &str,
    seed: u64,
    scale: u64,
) -> CellCheckpoint {
    let payload = run.results.iter().find_map(|r| r.output.as_ref());
    CellCheckpoint {
        key: key.to_string(),
        prescription: cell.prescription.clone(),
        engine: cell.engine.to_string(),
        seed,
        scale,
        shape: payload.map_or_else(|| "none".to_string(), |p| p.label().to_string()),
        len: payload.map_or(0, |p| p.len() as u64),
        digest: cell.digest.clone(),
        checks: cell.checks.min(u64::from(u32::MAX)) as u32,
        passed: cell.passed,
        failures: cell.failures.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_engines_are_the_five() {
        let names: Vec<&str> = builtin_engines().iter().map(|e| e.name()).collect();
        assert_eq!(names, vec!["native", "sql", "kv", "streaming", "mapreduce"]);
    }

    #[test]
    fn empty_report_does_not_pass() {
        let r = MatrixReport {
            mode: VerifyMode::Digest,
            cells: Vec::new(),
            recovery: RecoverySummary::default(),
            routing: RoutingSummary::default(),
        };
        assert!(!r.all_passed());
    }

    #[test]
    fn resumed_cells_render_as_resumed() {
        let cell = |resumed: bool| MatrixCell {
            prescription: "micro/sort".into(),
            engine: "sql",
            checks: 2,
            passed: true,
            failures: Vec::new(),
            digest: "00000000deadbeef".into(),
            resumed,
        };
        let r = MatrixReport {
            mode: VerifyMode::Digest,
            cells: vec![cell(false), cell(true)],
            recovery: RecoverySummary::default(),
            routing: RoutingSummary::default(),
        };
        let text = r.render();
        assert!(text.contains("pass (resumed)"), "{text}");
        assert!(text.contains("(1 resumed from journal)"), "{text}");
        assert!(r.all_passed());
    }

    #[test]
    fn resume_cell_flags_digest_drift_against_goldens() {
        use bdb_verify::golden::GoldenRecord;
        let dir = std::env::temp_dir()
            .join(format!("bdb-matrix-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = GoldenStore::at(&dir);
        let key = RunJournal::cell_key("micro/sort", "sql", 1, 10);
        store
            .store(
                &key,
                &GoldenRecord {
                    prescription: "micro/sort".into(),
                    engine: "sql".into(),
                    seed: 1,
                    scale: 10,
                    shape: "ordered".into(),
                    len: 10,
                    digest: "00000000000000aa".into(),
                },
            )
            .unwrap();
        let cp = |digest: &str| CellCheckpoint {
            key: key.clone(),
            prescription: "micro/sort".into(),
            engine: "sql".into(),
            seed: 1,
            scale: 10,
            shape: "ordered".into(),
            len: 10,
            digest: digest.into(),
            checks: 2,
            passed: true,
            failures: Vec::new(),
        };
        let trace = RunTrace::new();
        let good = resume_cell(cp("00000000000000aa"), "sql", &trace, Some(&store));
        assert!(good.passed && good.resumed);
        let drifted = resume_cell(cp("00000000000000bb"), "sql", &trace, Some(&store));
        assert!(!drifted.passed, "journal/golden digest drift must fail the cell");
        assert!(drifted.failures.iter().any(|f| f.contains("resume:")), "{:?}", drifted.failures);
        let events = trace.events();
        assert_eq!(events.iter().filter(|e| e.label() == "cell_resumed").count(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
