//! The five-step benchmarking process of Figure 1.
//!
//! Planning → Data generation → Test generation → Execution → Analysis &
//! Evaluation. [`Benchmark::run`] walks all five steps for a
//! [`BenchmarkSpec`], timing each, and produces a [`BenchmarkRun`] whose
//! analysis text is rendered by the Execution Layer's reporter.
//!
//! The execution step itself is delegated to the Execution Layer's
//! [`EngineRegistry`](bdb_exec::engine::EngineRegistry): the pipeline
//! builds one [`ExecutionRequest`] and the registry routes it to the
//! capable engine — resiliently, when the spec configures a fault plan,
//! retries or a deadline ([`BenchmarkSpec::faults`] and friends): data-set
//! generation and engine execution then run inside the recovery loop
//! ([`bdb_exec::fault::run_with_recovery`]) with capability failover.
//! Every step, generated data set, dispatch decision, executed operation
//! and recovery event is recorded in the run's [`RunTrace`].

use crate::layers::{BenchmarkSpec, ExecutionLayer, FunctionLayer};
use bdb_common::{pool, Result};
use bdb_datagen::velocity::VelocityController;
use bdb_datagen::volume::VolumeSpec;
use bdb_datagen::{merge_datasets, Dataset};
use bdb_exec::analyzer::{
    ConformanceSummary, HealthSummary, LoadSummary, RecoverySummary, RoutingSummary,
};
use bdb_exec::engine::ExecutionRequest;
use bdb_exec::fault::{self, FaultSite, Resilience, RetryPolicy};
use bdb_exec::loadgen::{self, LoadProfile};
use bdb_exec::reporter::{
    fmt_num, render_conformance, render_health, render_load, render_resilience, render_routing,
    TableReporter,
};
use bdb_exec::trace::{RunTrace, TraceEvent};
use bdb_metrics::GenerationMetrics;
use bdb_testgen::TestGenerator;
use bdb_verify::{Conformance, GoldenStore, VerifyMode};
use bdb_workloads::WorkloadResult;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// One of the five Figure 1 steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Determine object, domain and metrics.
    Planning,
    /// Generate the input data sets.
    DataGeneration,
    /// Generate the prescribed test.
    TestGeneration,
    /// Run the test on the target system.
    Execution,
    /// Analyse and report.
    Analysis,
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Phase::Planning => "planning",
            Phase::DataGeneration => "data generation",
            Phase::TestGeneration => "test generation",
            Phase::Execution => "execution",
            Phase::Analysis => "analysis",
        };
        f.write_str(s)
    }
}

/// Wall-clock timing of one step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseTiming {
    /// The step.
    pub phase: Phase,
    /// Its duration.
    pub duration: Duration,
}

/// The complete output of a benchmark run.
#[derive(Debug)]
pub struct BenchmarkRun {
    /// Spec name.
    pub name: String,
    /// Per-step timings, in Figure 1 order.
    pub phases: Vec<PhaseTiming>,
    /// (dataset name, kind, items, approx bytes) per generated input.
    pub data_summary: Vec<(String, String, usize, usize)>,
    /// Achieved generation rate (items/sec) and its error vs target.
    pub generation_rate: Option<(f64, Option<f64>)>,
    /// Generation throughput across all datasets of the run (items/s,
    /// bytes/s, workers used); `None` only when the spec generated no data.
    pub generation: Option<GenerationMetrics>,
    /// Workload results from the execution step.
    pub results: Vec<WorkloadResult>,
    /// Conformance verdicts distilled from the trace. Empty (zero
    /// checks) unless the spec asked for verification.
    pub conformance: ConformanceSummary,
    /// The rendered analysis table.
    pub analysis: String,
    /// Structured events of the whole run: phase spans, generated data
    /// sets, engine dispatch decisions and executed operations.
    pub trace: RunTrace,
}

/// The complete output of a concurrent load drive ([`Benchmark::run_load`]).
#[derive(Debug)]
pub struct LoadRun {
    /// The profile that was driven.
    pub profile: LoadProfile,
    /// Per-engine reports plus session/shed event counts.
    pub summary: LoadSummary,
    /// Conformance verdicts for the sampled-result oracle checks.
    pub conformance: ConformanceSummary,
    /// The rendered load table.
    pub analysis: String,
    /// Structured events: session start/stop, shed, conformance.
    pub trace: RunTrace,
    /// Issued-op digest — identical for any client count at a fixed seed.
    pub digest: String,
}

/// The benchmark runner: Function + Execution layers with a run method.
#[derive(Debug, Default)]
pub struct Benchmark {
    function_layer: FunctionLayer,
    execution_layer: ExecutionLayer,
}

impl Benchmark {
    /// A runner with default layers (built-in generators + prescriptions).
    pub fn new() -> Self {
        Self::default()
    }

    /// Access the function layer (to register generators/prescriptions).
    pub fn function_layer_mut(&mut self) -> &mut FunctionLayer {
        &mut self.function_layer
    }

    /// Access the execution layer configuration.
    pub fn execution_layer_mut(&mut self) -> &mut ExecutionLayer {
        &mut self.execution_layer
    }

    /// Run the five-step process for `spec`.
    pub fn run(&self, spec: &BenchmarkSpec) -> Result<BenchmarkRun> {
        let trace = RunTrace::new();
        let resilience = Resilience::new(
            spec.faults.clone(),
            RetryPolicy {
                max_retries: spec.retries,
                deadline_ms: spec.deadline_ms,
                ..RetryPolicy::default()
            },
            spec.seed,
        );
        // Fresh breakers per run: the health store is shared with the
        // router, so stale trips from a previous run must not leak into
        // this one's routing or admission decisions.
        self.execution_layer
            .engines
            .health()
            .reset(self.execution_layer.system_config.breaker_policy()?, spec.seed);
        let mut phases = Vec::with_capacity(5);
        let mut finish_phase = |trace: &RunTrace, phase: Phase, started: Instant| {
            let duration = started.elapsed();
            trace.phase_finished(phase, duration);
            phases.push(PhaseTiming { phase, duration });
        };

        // ---- 1. Planning ----
        trace.phase_started(Phase::Planning);
        let t0 = Instant::now();
        let prescription = self.function_layer.repository.get(&spec.prescription)?.clone();
        prescription.validate()?;
        finish_phase(&trace, Phase::Planning, t0);

        // ---- 2. Data generation ----
        trace.phase_started(Phase::DataGeneration);
        let t0 = Instant::now();
        let mut datasets: BTreeMap<String, Dataset> = BTreeMap::new();
        let mut data_summary = Vec::new();
        let mut generation_rate = None;
        let mut generation: Option<GenerationMetrics> = None;
        // An explicit spec worker knob wins; otherwise the exec-layer
        // system config decides (its default, 1, means sequential; 0 means
        // available parallelism).
        let workers = pool::effective_workers(
            spec.generator_workers
                .unwrap_or(self.execution_layer.system_config.generator_workers),
        );
        for (i, data_spec) in prescription.data.iter().enumerate() {
            let generator = self.function_layer.generators.build(&data_spec.generator)?;
            let items = spec.scale.unwrap_or(data_spec.items);
            let seed = spec.seed.wrapping_add(i as u64);
            let gen_started = Instant::now();
            let site = FaultSite::datagen(&data_spec.name);
            // Each data set generates inside the recovery loop: injected
            // faults (including worker panics surfaced by the hardened
            // pool) are retried under the spec's policy.
            let dataset = fault::run_with_recovery(
                &resilience,
                &trace,
                &site,
                gen_started,
                &mut || {
                    if let Some(rate) = spec.target_rate {
                        // Rate-throttled generation needs the velocity
                        // controller's pacing loop; plain parallel
                        // generation goes through the deterministic
                        // sharded path below instead.
                        let controller = VelocityController::new(workers)?
                            .with_chunk_items((items / 8).max(16))
                            .with_target_rate(rate);
                        let outcome = controller.run(generator.as_ref(), seed, items)?;
                        generation_rate = Some((outcome.achieved_rate, outcome.rate_error()));
                        merge_datasets(outcome.datasets)
                    } else if workers > 1 {
                        // Sharded parallel generation: byte-identical to
                        // the sequential path for shardable generators.
                        generator.generate_parallel(seed, &VolumeSpec::Items(items), workers)
                    } else {
                        generator.generate(seed, &VolumeSpec::Items(items))
                    }
                },
            )
            .map_err(|failure| failure.error)?
            .value;
            let gen_elapsed = gen_started.elapsed();
            let gm = GenerationMetrics::measure(
                dataset.item_count() as u64,
                dataset.byte_size() as u64,
                gen_elapsed,
                workers,
            );
            if spec.target_rate.is_none() && workers > 1 {
                generation_rate = Some((gm.items_per_sec(), None));
            }
            match &mut generation {
                Some(total) => total.merge(&gm),
                None => generation = Some(gm),
            }
            trace.record(TraceEvent::DatasetGenerated {
                name: data_spec.name.clone(),
                kind: dataset.kind().to_string(),
                items: dataset.item_count() as u64,
                bytes: dataset.byte_size() as u64,
                workers,
                micros: gen_elapsed.as_micros().min(u128::from(u64::MAX)) as u64,
            });
            data_summary.push((
                data_spec.name.clone(),
                dataset.kind().to_string(),
                dataset.item_count(),
                dataset.byte_size(),
            ));
            datasets.insert(data_spec.name.clone(), dataset);
        }
        finish_phase(&trace, Phase::DataGeneration, t0);

        // ---- 3. Test generation ----
        trace.phase_started(Phase::TestGeneration);
        let t0 = Instant::now();
        let test = TestGenerator::materialize(prescription, spec.system, spec.seed)?;
        finish_phase(&trace, Phase::TestGeneration, t0);

        // ---- 4. Execution ----
        trace.phase_started(Phase::Execution);
        let t0 = Instant::now();
        let scale = spec
            .scale
            .unwrap_or_else(|| test.prescription.data.first().map_or(1000, |d| d.items));
        let request = ExecutionRequest {
            prescription: &test.prescription,
            system: spec.system,
            seed: spec.seed,
            scale,
            datasets: &datasets,
            config: &self.execution_layer.system_config,
            trace: &trace,
            routing: spec.routing,
        };
        let results = self.execution_layer.engines.dispatch_resilient(&request, &resilience)?;
        finish_phase(&trace, Phase::Execution, t0);

        // ---- 5. Analysis & evaluation ----
        trace.phase_started(Phase::Analysis);
        let t0 = Instant::now();
        // Evaluation: when the spec asks for verification, re-check every
        // result against the reference oracle / golden store. Verdicts
        // land in the trace; the summary distils them for the report.
        if let Some(mode) = spec.verify {
            let store = spec
                .goldens_dir
                .as_ref()
                .map(GoldenStore::at)
                .or_else(|| GoldenStore::discover(mode == VerifyMode::Update));
            Conformance::with_store(mode, store).check(&request, &results);
        }
        let conformance = ConformanceSummary::from_events(&trace.events());
        let analysis = render_analysis(
            &spec.name,
            &results,
            &data_summary,
            generation.as_ref(),
            &trace,
            &conformance,
        );
        finish_phase(&trace, Phase::Analysis, t0);

        Ok(BenchmarkRun {
            name: spec.name.clone(),
            phases,
            data_summary,
            generation_rate,
            generation,
            results,
            conformance,
            analysis,
            trace,
        })
    }

    /// Drive the spec's concurrent load profile against the execution
    /// layer's engines and distil tail-latency/saturation reports.
    ///
    /// Uses [`BenchmarkSpec::load`] when set, the default
    /// [`LoadProfile`] otherwise; the spec's seed fixes the issued-op
    /// schedule, so reruns (at any client count) issue identical ops.
    ///
    /// # Errors
    /// Fails on an invalid profile, an empty engine filter, or a worker
    /// panic inside a client session.
    pub fn run_load(&self, spec: &BenchmarkSpec) -> Result<LoadRun> {
        let trace = RunTrace::new();
        let profile = spec.load.clone().unwrap_or_default();
        // The spec's fault plan rides into every lane: each issued op runs
        // inside the recovery loop and feeds the per-engine breakers.
        let resilience = Resilience::new(
            spec.faults.clone(),
            RetryPolicy {
                max_retries: spec.retries,
                deadline_ms: spec.deadline_ms,
                ..RetryPolicy::default()
            },
            spec.seed,
        );
        self.execution_layer
            .engines
            .health()
            .reset(self.execution_layer.system_config.breaker_policy()?, spec.seed);
        trace.phase_started("load");
        let t0 = Instant::now();
        let reports = loadgen::run_load_resilient(
            &self.execution_layer.engines,
            &profile,
            &resilience,
            spec.seed,
            &trace,
        )?;
        trace.phase_finished("load", t0.elapsed());
        let events = trace.events();
        let summary = LoadSummary::new(reports, &events);
        let conformance = ConformanceSummary::from_events(&events);
        let digest = summary
            .reports
            .first()
            .map(|r| r.digest.clone())
            .unwrap_or_default();
        // Breaker activity appears only when chaos tripped something —
        // clean drives keep their analysis unchanged.
        let health = HealthSummary::from_events(&events);
        let health_section = if health.is_empty() {
            String::new()
        } else {
            format!("\n{}", render_health(&health))
        };
        let analysis =
            format!("{}: load\n{}{}", spec.name, render_load(&summary), health_section);
        Ok(LoadRun { profile, summary, conformance, analysis, trace, digest })
    }
}

fn render_analysis(
    name: &str,
    results: &[WorkloadResult],
    data_summary: &[(String, String, usize, usize)],
    generation: Option<&GenerationMetrics>,
    trace: &RunTrace,
    conformance: &ConformanceSummary,
) -> String {
    let mut data = TableReporter::new(
        &format!("{name}: generated data"),
        &["dataset", "kind", "items", "bytes"],
    );
    for (n, k, items, bytes) in data_summary {
        data.add_row(&[n.clone(), k.clone(), items.to_string(), bytes.to_string()]);
    }
    let gen_line = generation.map_or(String::new(), |g| {
        format!(
            "generation: {} items/s, {} bytes/s on {} worker(s)\n",
            fmt_num(g.items_per_sec()),
            fmt_num(g.bytes_per_sec()),
            g.workers
        )
    });
    let dispatch_lines: String = trace
        .events()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::EngineDispatched { prescription, engine, explicit, .. } => Some(format!(
                "dispatch: {prescription} -> {engine} engine ({})\n",
                if *explicit { "requested system" } else { "capability fallback" }
            )),
            _ => None,
        })
        .collect();
    let mut table = TableReporter::new(
        &format!("{name}: results"),
        &["workload", "system", "category", "secs", "ops/s", "Mrops", "joules", "dollars"],
    );
    for r in results {
        table.add_row(&[
            r.report.workload.clone(),
            r.report.system.clone(),
            r.category.to_string(),
            fmt_num(r.report.user.duration_secs),
            fmt_num(r.report.user.throughput_ops_per_sec),
            fmt_num(r.report.arch.mrops),
            fmt_num(r.report.energy_joules),
            fmt_num(r.report.cost_dollars),
        ]);
    }
    // Recovery metrics appear only when the run saw recovery activity —
    // clean runs keep their analysis unchanged.
    let recovery = RecoverySummary::from_events(&trace.events());
    let resilience_section = if recovery.is_quiet() {
        String::new()
    } else {
        format!("\n{}", render_resilience(&recovery))
    };
    // Conformance appears only on verified runs — like recovery, clean
    // unverified runs keep their analysis unchanged.
    let conformance_section = if conformance.is_empty() {
        String::new()
    } else {
        format!("\n{}", render_conformance(conformance))
    };
    // Routing appears only under cost/adaptive policies — first-capable
    // runs record no routing events and keep their analysis unchanged.
    let routing_summary = RoutingSummary::from_events(&trace.events());
    let routing_section = if routing_summary.is_empty() {
        String::new()
    } else {
        format!("\n{}", render_routing(&routing_summary))
    };
    // Health appears only when a breaker changed state — runs whose
    // breakers stayed closed keep their analysis unchanged.
    let health_summary = HealthSummary::from_events(&trace.events());
    let health_section = if health_summary.is_empty() {
        String::new()
    } else {
        format!("\n{}", render_health(&health_summary))
    };
    format!(
        "{}\n{}{}{}{}{}{}{}",
        data.to_text(),
        gen_line,
        dispatch_lines,
        table.to_text(),
        resilience_section,
        conformance_section,
        routing_section,
        health_section
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_testgen::SystemKind;
    use bdb_workloads::WorkloadCategory;

    fn run(prescription: &str, system: SystemKind, scale: u64) -> BenchmarkRun {
        let spec = BenchmarkSpec::new("test")
            .with_prescription(prescription)
            .with_system(system)
            .with_scale(scale)
            .with_seed(5);
        Benchmark::new().run(&spec).unwrap()
    }

    #[test]
    fn five_phases_in_order() {
        let r = run("micro/wordcount", SystemKind::Native, 100);
        let order: Vec<Phase> = r.phases.iter().map(|p| p.phase).collect();
        assert_eq!(
            order,
            vec![
                Phase::Planning,
                Phase::DataGeneration,
                Phase::TestGeneration,
                Phase::Execution,
                Phase::Analysis,
            ]
        );
        assert_eq!(r.results.len(), 1);
        assert!(r.analysis.contains("micro/wordcount"));
        // The structured trace spans all five Figure 1 phases and saw the
        // dispatch decision plus at least one executed operation.
        assert!(!r.trace.is_empty());
        assert_eq!(
            r.trace.phases_finished(),
            vec![
                "analysis",
                "data generation",
                "execution",
                "planning",
                "test generation"
            ]
        );
        let events = r.trace.events();
        assert!(events.iter().any(|e| e.label() == "dataset_generated"));
        assert!(events.iter().any(|e| e.label() == "engine_dispatched"));
        assert!(events.iter().any(|e| e.label() == "operation_executed"));
    }

    #[test]
    fn wordcount_runs_on_both_systems() {
        let native = run("micro/wordcount", SystemKind::Native, 100);
        let mr = run("micro/wordcount", SystemKind::MapReduce, 100);
        assert_eq!(native.results[0].report.system, "native");
        assert_eq!(mr.results[0].report.system, "mapreduce");
    }

    #[test]
    fn grep_dispatches() {
        let r = run("micro/grep", SystemKind::Native, 100);
        assert_eq!(r.results[0].report.workload, "micro/grep");
    }

    #[test]
    fn relational_prescription_binds_to_sql_and_mapreduce() {
        let sql = run("relational/select-aggregate", SystemKind::Sql, 300);
        let mr = run("relational/select-aggregate", SystemKind::MapReduce, 300);
        assert_eq!(sql.results[0].report.system, "sql");
        assert_eq!(mr.results[0].report.system, "mapreduce");
        // Functional view: identical output row counts.
        assert_eq!(
            sql.results[0].detail("output_rows"),
            mr.results[0].detail("output_rows")
        );
    }

    #[test]
    fn verified_run_records_conformance() {
        let spec = BenchmarkSpec::new("test")
            .with_prescription("micro/wordcount")
            .with_system(SystemKind::Native)
            .with_scale(100)
            .with_seed(5)
            .with_verify(bdb_verify::VerifyMode::Strict);
        let r = Benchmark::new().run(&spec).unwrap();
        assert!(r.conformance.checks >= 1);
        assert!(r.conformance.all_passed());
        assert!(r.analysis.contains("Conformance"));
        assert!(r.trace.events().iter().any(|e| e.label() == "conformance_checked"));
    }

    #[test]
    fn unverified_run_stays_quiet() {
        let r = run("micro/wordcount", SystemKind::Native, 100);
        assert!(r.conformance.is_empty());
        assert!(!r.analysis.contains("Conformance"));
        // First-capable runs record no routing events and no section.
        assert!(!r.analysis.contains("== Routing =="));
        assert!(!r.trace.events().iter().any(|e| e.label() == "routing_decision"));
    }

    #[test]
    fn cost_routed_run_records_decisions() {
        let spec = BenchmarkSpec::new("routed")
            .with_prescription("relational/select-aggregate")
            .with_system(SystemKind::Sql)
            .with_scale(300)
            .with_seed(5)
            .with_routing(bdb_exec::planner::RoutingPolicy::Cost);
        let r = Benchmark::new().run(&spec).unwrap();
        assert_eq!(r.results[0].report.system, "sql");
        let events = r.trace.events();
        assert!(events.iter().any(|e| e.label() == "routing_decision"));
        assert!(events.iter().any(|e| e.label() == "cost_observed"));
        assert!(r.analysis.contains("== Routing =="));
        // Cost routing must not change the result itself.
        let baseline = run("relational/select-aggregate", SystemKind::Sql, 300);
        assert_eq!(
            r.results[0].detail("output_rows"),
            baseline.results[0].detail("output_rows")
        );
    }

    #[test]
    fn oltp_prescription_runs_on_kv() {
        let r = run("oltp/read-mostly", SystemKind::KeyValue, 300);
        assert_eq!(r.results[0].report.system, "kv");
        assert_eq!(r.results[0].category, WorkloadCategory::OnlineServices);
    }

    #[test]
    fn iterative_graph_prescription_runs_pagerank() {
        let r = run("search/pagerank", SystemKind::Native, 256);
        assert_eq!(r.results[0].report.workload, "search/pagerank");
        assert!(r.results[0].detail("iterations").unwrap() >= 1.0);
    }

    #[test]
    fn iterative_cc_prescription() {
        let r = run("social/connected-components", SystemKind::Native, 256);
        assert_eq!(r.results[0].report.workload, "social/connected-components");
    }

    #[test]
    fn iterative_table_prescription_runs_kmeans() {
        let r = run("social/kmeans", SystemKind::Native, 300);
        assert_eq!(r.results[0].report.workload, "social/kmeans");
    }

    #[test]
    fn velocity_controlled_generation_reports_rate() {
        let spec = BenchmarkSpec::new("rate")
            .with_prescription("micro/wordcount")
            .with_scale(200)
            .with_generator_workers(2)
            .with_target_rate(5_000.0)
            .with_seed(1);
        let r = Benchmark::new().run(&spec).unwrap();
        let (rate, err) = r.generation_rate.unwrap();
        assert!(rate > 0.0);
        assert!(err.unwrap() < 0.5, "rate error {err:?}");
        // All requested items were generated.
        assert_eq!(r.data_summary[0].2, 200);
    }

    #[test]
    fn parallel_generation_matches_sequential_output() {
        // The sharded parallel path must produce the same data the
        // sequential path produces — not just the same count.
        let base = BenchmarkSpec::new("par")
            .with_prescription("relational/select-aggregate")
            .with_system(SystemKind::Sql)
            .with_scale(400)
            .with_seed(9);
        let seq = Benchmark::new().run(&base.clone()).unwrap();
        let par = Benchmark::new()
            .run(&base.with_generator_workers(4))
            .unwrap();
        assert_eq!(seq.data_summary, par.data_summary);
        assert_eq!(
            seq.results[0].detail("output_rows"),
            par.results[0].detail("output_rows")
        );
        // And the parallel run reports its generation throughput.
        let g = par.generation.unwrap();
        assert_eq!(g.workers, 4);
        assert!(g.items_per_sec() > 0.0);
        assert!(g.bytes_per_sec() > 0.0);
        assert!(par.analysis.contains("generation:"));
    }

    #[test]
    fn exec_config_plumbs_generator_workers() {
        let spec = BenchmarkSpec::new("cfg")
            .with_prescription("micro/wordcount")
            .with_scale(150)
            .with_seed(2);
        let mut b = Benchmark::new();
        b.execution_layer_mut().system_config =
            b.execution_layer_mut().system_config.clone().with_generator_workers(2);
        let r = b.run(&spec).unwrap();
        assert_eq!(r.generation.unwrap().workers, 2);
        assert!(r.generation_rate.is_some());
        assert_eq!(r.data_summary[0].2, 150);
    }

    #[test]
    fn load_run_reports_every_selected_engine() {
        let profile = LoadProfile {
            clients: 2,
            inflight: 4,
            duration_ms: 10,
            engines: Some(vec!["native".into(), "kv".into()]),
            ..LoadProfile::default()
        };
        let spec = BenchmarkSpec::new("drive").with_seed(11).with_load(profile);
        let r = Benchmark::new().run_load(&spec).unwrap();
        let names: Vec<&str> = r.summary.reports.iter().map(|x| x.engine.as_str()).collect();
        assert_eq!(names, vec!["kv", "native"]);
        assert!(r.summary.total_completed() > 0);
        assert!(r.summary.all_conformant());
        assert!(r.conformance.all_passed());
        assert!(r.analysis.contains("drive: load"));
        assert!(r.analysis.contains("p99 us"));
        assert!(r.digest.starts_with("0x"));
        // Both engines drove the same deterministic schedule.
        assert_eq!(r.summary.reports[0].digest, r.summary.reports[1].digest);
        let events = r.trace.events();
        assert!(events.iter().any(|e| e.label() == "load_session_started"));
        assert!(events.iter().any(|e| e.label() == "load_session_finished"));
        assert!(events.iter().any(|e| e.label() == "conformance_checked"));
    }

    #[test]
    fn load_run_digest_is_client_count_invariant() {
        let base = LoadProfile {
            inflight: 4,
            duration_ms: 10,
            engines: Some(vec!["native".into()]),
            ..LoadProfile::default()
        };
        let one = BenchmarkSpec::new("c1")
            .with_seed(7)
            .with_load(LoadProfile { clients: 1, ..base.clone() });
        let eight = BenchmarkSpec::new("c8")
            .with_seed(7)
            .with_load(LoadProfile { clients: 8, ..base });
        let b = Benchmark::new();
        let r1 = b.run_load(&one).unwrap();
        let r8 = b.run_load(&eight).unwrap();
        assert_eq!(r1.digest, r8.digest);
        assert_eq!(
            r1.summary.reports[0].issued,
            r8.summary.reports[0].issued
        );
    }

    #[test]
    fn load_run_rejects_invalid_profile() {
        let spec = BenchmarkSpec::new("bad")
            .with_load(LoadProfile { clients: 0, ..LoadProfile::default() });
        assert!(Benchmark::new().run_load(&spec).is_err());
    }

    #[test]
    fn unknown_prescription_fails_in_planning() {
        let spec = BenchmarkSpec::new("x").with_prescription("nope/nothing");
        assert!(Benchmark::new().run(&spec).is_err());
    }
}
