//! The data-generator registry.
//!
//! Prescriptions reference generators by id (their `DataSpec.generator`
//! field); the registry maps ids to factories so the pipeline can
//! materialise data sets. Built-ins cover the framework's generator
//! families; applications register their own under new ids.

use bdb_common::{BdbError, Result};
use bdb_datagen::behavioral::BehavioralEvents;
use bdb_datagen::corpus::{karate_club_graph, raw_retail_table, RAW_TEXT_CORPUS};
use bdb_datagen::graph::{fit_rmat, BaGenerator, ErdosRenyiGenerator, RmatGenerator};
use bdb_datagen::stream::{MmppArrivals, PoissonArrivals};
use bdb_datagen::table::TableGenerator;
use bdb_datagen::text::lda::{LdaConfig, LdaModel};
use bdb_datagen::text::markov::MarkovTextGenerator;
use bdb_datagen::text::NaiveTextGenerator;
use bdb_datagen::DataGenerator;
use std::collections::BTreeMap;
use std::sync::Arc;

type Factory = Arc<dyn Fn() -> Result<Box<dyn DataGenerator>> + Send + Sync>;

/// A name → generator-factory registry.
#[derive(Clone, Default)]
pub struct GeneratorRegistry {
    factories: BTreeMap<String, Factory>,
}

impl std::fmt::Debug for GeneratorRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GeneratorRegistry")
            .field("ids", &self.ids())
            .finish()
    }
}

impl GeneratorRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry with every built-in generator family registered.
    pub fn with_builtins() -> Self {
        let mut r = Self::new();
        r.register("text/lda", || {
            let config = LdaConfig { num_topics: 4, alpha: 0.1, beta: 0.01, iterations: 80 };
            Ok(Box::new(LdaModel::train(&RAW_TEXT_CORPUS, config, 0xBD)?))
        });
        r.register("text/markov-bigram", || {
            Ok(Box::new(MarkovTextGenerator::train(&RAW_TEXT_CORPUS)?))
        });
        r.register("text/naive-uniform", || {
            Ok(Box::new(NaiveTextGenerator::from_corpus(&RAW_TEXT_CORPUS)))
        });
        r.register("table/retail-fitted", || {
            Ok(Box::new(TableGenerator::fit("retail", &raw_retail_table())?))
        });
        r.register("table/retail-naive", || {
            Ok(Box::new(TableGenerator::naive("retail", &raw_retail_table())?))
        });
        r.register("graph/rmat", || Ok(Box::new(RmatGenerator::standard(8.0))));
        r.register("graph/rmat-fitted", || {
            Ok(Box::new(fit_rmat(&karate_club_graph(), 0xBD)?))
        });
        r.register("graph/barabasi-albert", || Ok(Box::new(BaGenerator::new(4)?)));
        r.register("graph/erdos-renyi", || {
            Ok(Box::new(ErdosRenyiGenerator { edges_per_vertex: 8.0 }))
        });
        r.register("stream/poisson", || {
            Ok(Box::new(PoissonArrivals::new(2_000.0, 64)?))
        });
        r.register("stream/mmpp", || {
            Ok(Box::new(MmppArrivals::new(500.0, 4_000.0, 500.0, 64)?))
        });
        r.register("behavioral/events", || {
            Ok(Box::new(BehavioralEvents::new(64, 8, 500, 2_000)?))
        });
        r
    }

    /// Register a factory under an id (replacing any existing one).
    pub fn register<F>(&mut self, id: &str, factory: F)
    where
        F: Fn() -> Result<Box<dyn DataGenerator>> + Send + Sync + 'static,
    {
        self.factories.insert(id.to_string(), Arc::new(factory));
    }

    /// Instantiate the generator registered under `id`.
    pub fn build(&self, id: &str) -> Result<Box<dyn DataGenerator>> {
        let f = self
            .factories
            .get(id)
            .ok_or_else(|| BdbError::NotFound(format!("generator {id}")))?;
        f()
    }

    /// All registered ids, sorted.
    pub fn ids(&self) -> Vec<&str> {
        self.factories.keys().map(String::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_datagen::volume::VolumeSpec;
    use bdb_datagen::DataSourceKind;

    #[test]
    fn builtins_cover_all_four_kinds() {
        let r = GeneratorRegistry::with_builtins();
        let mut kinds = std::collections::BTreeSet::new();
        for id in r.ids() {
            // Skip LDA here: training is slow and covered below.
            if id == "text/lda" {
                kinds.insert(DataSourceKind::Text.to_string());
                continue;
            }
            let gen = r.build(id).unwrap();
            kinds.insert(gen.kind().to_string());
        }
        assert_eq!(kinds.len(), 4, "kinds: {kinds:?}");
    }

    #[test]
    fn built_generators_generate() {
        let r = GeneratorRegistry::with_builtins();
        let gen = r.build("table/retail-fitted").unwrap();
        let d = gen.generate(1, &VolumeSpec::Items(10)).unwrap();
        assert_eq!(d.item_count(), 10);
    }

    #[test]
    fn unknown_id_errors() {
        let r = GeneratorRegistry::with_builtins();
        assert!(r.build("nope").is_err());
    }

    #[test]
    fn custom_registration_overrides() {
        let mut r = GeneratorRegistry::new();
        r.register("mine", || {
            Ok(Box::new(NaiveTextGenerator::from_corpus(&["hello world"])))
        });
        assert!(r.build("mine").is_ok());
        assert_eq!(r.ids(), vec!["mine"]);
    }
}
