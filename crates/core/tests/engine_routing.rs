//! Integration tests for the capability-routed engine registry: every
//! builtin prescription reaches a capable engine on every requested
//! system, incapable pairings fail with a candidate-listing error, and
//! the SQL and MapReduce engines stay functionally interchangeable.

use bdb_core::layers::BenchmarkSpec;
use bdb_core::pipeline::{Benchmark, BenchmarkRun};
use bdb_exec::engine::{
    Capabilities, Engine, EngineRegistry, ExecutionRequest, NativeEngine,
};
use bdb_exec::planner::RoutingPolicy;
use bdb_exec::trace::{RunTrace, TraceEvent};
use bdb_exec::SystemConfig;
use bdb_testgen::arrival::ArrivalSpec;
use bdb_testgen::ops::AggSpec;
use bdb_testgen::pattern::WorkloadPattern;
use bdb_testgen::{MetricKind, Operation, Prescription, SystemKind};
use bdb_workloads::WorkloadResult;
use std::collections::BTreeMap;

const ALL_SYSTEMS: [SystemKind; 5] = [
    SystemKind::Native,
    SystemKind::MapReduce,
    SystemKind::Sql,
    SystemKind::KeyValue,
    SystemKind::Streaming,
];

fn run(prescription: &str, system: SystemKind) -> BenchmarkRun {
    let spec = BenchmarkSpec::new("routing")
        .with_prescription(prescription)
        .with_system(system)
        .with_scale(300)
        .with_seed(11);
    Benchmark::new()
        .run(&spec)
        .unwrap_or_else(|e| panic!("{prescription} on {system}: {e}"))
}

fn dispatched_engine(run: &BenchmarkRun) -> (String, bool) {
    let dispatches: Vec<(String, bool)> = run
        .trace
        .events()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::EngineDispatched { engine, explicit, .. } => {
                Some((engine.clone(), *explicit))
            }
            _ => None,
        })
        .collect();
    assert_eq!(dispatches.len(), 1, "expected exactly one dispatch decision");
    dispatches.into_iter().next().unwrap()
}

/// The engine each builtin prescription must land on per requested
/// system. This is the old hard-coded dispatch chain's behavior, now an
/// observable routing contract.
fn expected_engine(prescription: &str, system: SystemKind) -> &'static str {
    let domain = prescription.split('/').next().unwrap();
    match prescription {
        // Text kernels: native unless MapReduce is requested.
        "micro/wordcount" | "micro/grep" | "search/index" => match system {
            SystemKind::MapReduce => "mapreduce",
            _ => "native",
        },
        // Iterative kernels: same pairing, on graphs and tables.
        "search/pagerank" | "social/connected-components" | "social/kmeans" => match system {
            SystemKind::MapReduce => "mapreduce",
            _ => "native",
        },
        // Windowed streams only run on the streaming engine.
        "streaming/window-aggregation" => "streaming",
        _ => match domain {
            // Behavioral-analytics streams: streaming unless MapReduce is
            // explicitly requested (both engines implement the class).
            "behavioral" => match system {
                SystemKind::MapReduce => "mapreduce",
                _ => "streaming",
            },
            // Element-operation mixes only run on the KV store.
            "oltp" => "kv",
            // Relational patterns bind to SQL unless MapReduce is requested.
            _ => match system {
                SystemKind::MapReduce => "mapreduce",
                _ => "sql",
            },
        },
    }
}

#[test]
fn every_builtin_prescription_routes_on_every_system() {
    let repo = bdb_testgen::PrescriptionRepository::with_builtins();
    for name in repo.names() {
        for system in ALL_SYSTEMS {
            let r = run(name, system);
            assert!(!r.results.is_empty(), "{name} on {system}: no results");
            let (engine, explicit) = dispatched_engine(&r);
            assert_eq!(
                engine,
                expected_engine(name, system),
                "{name} on {system} routed to the wrong engine"
            );
            // An explicit route means the engine implements the requested
            // system; the report should agree with the routing decision.
            if explicit {
                assert_eq!(
                    r.results[0].report.system, engine,
                    "{name} on {system}: report disagrees with routing"
                );
            }
        }
    }
}

#[test]
fn incapable_pairing_lists_candidate_engines() {
    // A windowed aggregation over a *table* data set: the streaming
    // engine is the only one that understands windows but it only
    // consumes streams, so no registered engine is capable.
    let prescription = Prescription {
        name: "custom/windowed-table".into(),
        description: "window aggregation over structured data".into(),
        data: vec![bdb_testgen::DataSpec {
            name: "orders".into(),
            source: "table".into(),
            generator: "table/retail-fitted".into(),
            items: 100,
        }],
        pattern: WorkloadPattern::Single {
            op: Operation::WindowAggregate { window_ms: 1_000, function: AggSpec::Sum },
            input: "orders".into(),
        },
        arrival: ArrivalSpec::Batch,
        metrics: vec![MetricKind::UserPerceivable],
    };
    prescription.validate().unwrap();

    let mut bench = Benchmark::new();
    bench.function_layer_mut().repository.register(prescription).unwrap();
    let spec = BenchmarkSpec::new("impossible")
        .with_prescription("custom/windowed-table")
        .with_system(SystemKind::Streaming)
        .with_scale(100);
    let err = bench.run(&spec).unwrap_err().to_string();
    assert!(err.contains("no engine"), "unexpected error: {err}");
    for name in EngineRegistry::with_builtins().names() {
        assert!(err.contains(name), "error does not list candidate {name}: {err}");
    }
}

#[test]
fn empty_registry_reports_the_absence_of_candidates() {
    let trace = RunTrace::new();
    let datasets = BTreeMap::new();
    let config = SystemConfig::default();
    let prescription = Prescription {
        name: "micro/count".into(),
        description: "count".into(),
        data: vec![],
        pattern: WorkloadPattern::Single {
            op: Operation::Count,
            input: "t".into(),
        },
        arrival: ArrivalSpec::Batch,
        metrics: vec![MetricKind::UserPerceivable],
    };
    let request = ExecutionRequest {
        prescription: &prescription,
        system: SystemKind::Sql,
        seed: 1,
        scale: 10,
        datasets: &datasets,
        config: &config,
        trace: &trace,
        routing: bdb_exec::planner::RoutingPolicy::default(),
    };
    let err = EngineRegistry::new().dispatch(&request).unwrap_err().to_string();
    assert!(err.contains("no engine"), "unexpected error: {err}");
}

#[test]
fn sql_and_mapreduce_agree_on_relational_output() {
    // The functional contract behind Table 2's cross-engine rows: the
    // same prescription executed by the SQL and MapReduce engines must
    // produce identical sorted output, observable through the canonical
    // output hash each engine reports.
    for name in ["micro/sort", "relational/select-aggregate", "relational/join",
                 "ecommerce/collaborative-filtering", "ecommerce/naive-bayes"] {
        let sql = run(name, SystemKind::Sql);
        let mr = run(name, SystemKind::MapReduce);
        assert_eq!(sql.results[0].report.system, "sql");
        assert_eq!(mr.results[0].report.system, "mapreduce");
        assert_eq!(
            sql.results[0].detail("output_rows"),
            mr.results[0].detail("output_rows"),
            "{name}: row counts diverge"
        );
        assert_eq!(
            sql.results[0].detail("output_hash"),
            mr.results[0].detail("output_hash"),
            "{name}: sorted output diverges"
        );
        assert!(sql.results[0].detail("output_hash").is_some());
    }
}

fn run_routed(prescription: &str, system: SystemKind, routing: RoutingPolicy) -> BenchmarkRun {
    let spec = BenchmarkSpec::new("routing")
        .with_prescription(prescription)
        .with_system(system)
        .with_scale(300)
        .with_seed(11)
        .with_routing(routing);
    Benchmark::new()
        .run(&spec)
        .unwrap_or_else(|e| panic!("{prescription} on {system} ({routing}): {e}"))
}

#[test]
fn cost_routing_is_payload_identical_to_first_capable() {
    // The cost ranker may reorder candidates but must never change what a
    // run computes: across the full prescription × system matrix, the
    // output payload under `--routing cost` is byte-identical (same
    // shape, length and canonical digest) to the first-capable default's.
    let repo = bdb_testgen::PrescriptionRepository::with_builtins();
    for name in repo.names() {
        for system in ALL_SYSTEMS {
            let first = run_routed(name, system, RoutingPolicy::FirstCapable);
            let cost = run_routed(name, system, RoutingPolicy::Cost);
            let payload = |r: &BenchmarkRun| {
                r.results
                    .iter()
                    .find_map(|res| res.output.as_ref())
                    .map(|p| (p.label().to_string(), p.len(), p.digest()))
            };
            assert_eq!(
                payload(&first),
                payload(&cost),
                "{name} on {system}: cost routing changed the output payload"
            );
            // Cost routing records its decision; the default stays silent.
            assert!(first.trace.events().iter().all(|e| e.label() != "routing_decision"));
            assert!(cost.trace.events().iter().any(|e| e.label() == "routing_decision"));
        }
    }
}

/// A deliberately slow text engine whose optimistic self-estimate wins
/// the first adaptive dispatch — until its observed runtime feeds back.
struct SlowTextEngine;

impl Engine for SlowTextEngine {
    fn name(&self) -> &'static str {
        "slowtext"
    }

    fn capabilities(&self) -> Capabilities {
        NativeEngine.capabilities()
    }

    fn execute(&self, req: &ExecutionRequest<'_>) -> bdb_common::Result<Vec<WorkloadResult>> {
        // Busy-wait so the observed runtime dwarfs both the claimed
        // estimate and the native engine's actual runtime.
        let start = std::time::Instant::now();
        while start.elapsed() < std::time::Duration::from_millis(5) {
            std::hint::spin_loop();
        }
        NativeEngine.execute(req)
    }

    fn estimate_cost(&self, _req: &ExecutionRequest<'_>) -> Option<f64> {
        Some(1.0)
    }
}

#[test]
fn adaptive_routing_migrates_off_an_engine_that_lied_about_its_cost() {
    // Two explicit candidates for the native system: the slow engine is
    // registered first and claims to be near-free, so the static view
    // (and the first adaptive pass) picks it. Its observed runtime then
    // contradicts the claim, and the second pass migrates to the native
    // engine — the adaptive loop overruling a wrong cost model.
    let mut bench = Benchmark::new();
    let mut registry = EngineRegistry::new();
    registry.register(Box::new(SlowTextEngine));
    registry.register(Box::new(NativeEngine));
    bench.execution_layer_mut().engines = registry;
    let spec = BenchmarkSpec::new("adaptive")
        .with_prescription("micro/wordcount")
        .with_system(SystemKind::Native)
        .with_scale(200)
        .with_seed(17)
        .with_routing(RoutingPolicy::Adaptive);

    let pass1 = bench.run(&spec).unwrap();
    let (engine1, _) = dispatched_engine(&pass1);
    assert_eq!(engine1, "slowtext", "claimed cost of 1us must win the cold dispatch");

    let pass2 = bench.run(&spec).unwrap();
    let (engine2, _) = dispatched_engine(&pass2);
    assert_eq!(engine2, "native", "observed ~5ms must overrule the claimed 1us");

    // The second pass's decision shows slowtext rejected on its observed
    // EWMA, and both passes compute the same wordcount output.
    assert!(
        pass2.trace.events().iter().any(|e| matches!(
            e,
            TraceEvent::RoutingDecision { engine, rejected, .. }
                if engine == "native"
                    && rejected.iter().any(|r| r.starts_with("slowtext@") && r.ends_with("[observed]"))
        )),
        "pass 2 decision must cite slowtext's observed cost: {:?}",
        pass2.trace.events()
    );
    let payload = |r: &BenchmarkRun| {
        r.results.iter().find_map(|res| res.output.as_ref()).map(|p| (p.len(), p.digest()))
    };
    assert_eq!(payload(&pass1), payload(&pass2), "migration changed the computed output");
}

#[test]
fn run_trace_spans_the_five_figure1_phases() {
    let r = run("relational/join", SystemKind::Sql);
    assert!(!r.trace.is_empty());
    assert_eq!(
        r.trace.phases_finished(),
        vec!["analysis", "data generation", "execution", "planning", "test generation"]
    );
    // Phase spans nest correctly: every started phase also finished.
    let events = r.trace.events();
    let started = events.iter().filter(|e| e.label() == "phase_started").count();
    let finished = events.iter().filter(|e| e.label() == "phase_finished").count();
    assert_eq!(started, 5);
    assert_eq!(finished, 5);
    // The DAG engines record one operation event per executed step.
    assert!(events.iter().any(|e| matches!(
        e,
        TraceEvent::OperationExecuted { engine, .. } if engine == "sql"
    )));
}

#[test]
fn explicit_workers_override_system_config() {
    // --workers 1 (explicit) must force sequential generation even when
    // the execution layer's system config asks for parallelism.
    let spec = BenchmarkSpec::new("seq")
        .with_prescription("micro/wordcount")
        .with_scale(150)
        .with_generator_workers(1)
        .with_seed(3);
    let mut b = Benchmark::new();
    b.execution_layer_mut().system_config =
        b.execution_layer_mut().system_config.clone().with_generator_workers(4);
    let r = b.run(&spec).unwrap();
    assert_eq!(r.generation.unwrap().workers, 1);

    // And with no explicit setting the system config decides.
    let spec = BenchmarkSpec::new("cfg").with_prescription("micro/wordcount").with_scale(150);
    let r = b.run(&spec).unwrap();
    assert_eq!(r.generation.unwrap().workers, 4);
}
