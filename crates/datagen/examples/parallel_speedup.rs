//! Measures the parallel-generation speedup for a 1M-row fitted table.
//!
//! ```text
//! cargo run --release -p bdb-datagen --example parallel_speedup
//! ```
//!
//! On an N-core host the sharded path approaches N× the sequential rate;
//! on a single-core container the worker counts tie (no regression), since
//! the shards are CPU-bound and time-slice the one core.

use bdb_datagen::corpus::raw_retail_table;
use bdb_datagen::table::TableGenerator;
use bdb_datagen::volume::VolumeSpec;
use bdb_datagen::DataGenerator;
use std::time::Instant;

fn main() {
    let g = TableGenerator::fit("retail", &raw_retail_table()).unwrap();
    let vol = VolumeSpec::Items(1_000_000);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("available parallelism: {cores}");
    let mut base = None;
    for w in [1usize, 2, 4] {
        let t0 = Instant::now();
        let d = g.generate_parallel(9, &vol, w).unwrap();
        let secs = t0.elapsed().as_secs_f64();
        let rate = d.item_count() as f64 / secs;
        let b = *base.get_or_insert(rate);
        println!(
            "workers={w} items={} secs={secs:.3} rate={rate:.0}/s speedup={:.2}x",
            d.item_count(),
            rate / b
        );
    }
}
