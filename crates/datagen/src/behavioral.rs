//! Behavioral event-stream generation: user × action × timestamp.
//!
//! [`BehavioralEvents`] generates the clickstream the behavioral
//! operation class (sessionize / retention / window-funnel /
//! sequence-match) consumes: each event carries a Zipf-popular user id
//! (`Event::key`), a uniform action id (`Event::value`) and a timestamp
//! with **seeded out-of-orderness** — event `i`'s timestamp is
//! `i * mean_gap_ms` plus a uniform jitter wider than the gap, so
//! neighbouring events routinely arrive out of event-time order (the
//! disorder real collection pipelines exhibit) while the stream stays
//! globally ordered at coarse scale.
//!
//! Timestamps are a closed form of the event index, so
//! [`DataGenerator::generate_shard`] is *exact*: any shard reproduces the
//! sequential run's events bit-for-bit, with no re-anchor tolerance.

use crate::volume::VolumeSpec;
use crate::{DataGenerator, DataSourceKind, Dataset};
use bdb_common::prelude::*;
use bdb_common::{BdbError, Result};

pub use bdb_common::event::Event;

/// Generates behavioral event streams (user, action, jittered timestamp).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BehavioralEvents {
    /// Number of distinct users; user ids are Zipf(0.99)-popular.
    pub num_users: u64,
    /// Number of distinct action ids (uniform).
    pub num_actions: u64,
    /// Mean spacing between consecutive events in ms.
    pub mean_gap_ms: u64,
    /// Uniform timestamp jitter half-width in ms; a jitter wider than
    /// `mean_gap_ms` yields out-of-order arrival.
    pub jitter_ms: u64,
}

impl BehavioralEvents {
    /// A behavioral event generator.
    ///
    /// # Errors
    /// Fails on zero users, actions, or mean gap.
    pub fn new(num_users: u64, num_actions: u64, mean_gap_ms: u64, jitter_ms: u64) -> Result<Self> {
        if num_users == 0 || num_actions == 0 || mean_gap_ms == 0 {
            return Err(BdbError::InvalidConfig(
                "behavioral users, actions and gap must be positive".into(),
            ));
        }
        Ok(Self { num_users, num_actions, mean_gap_ms, jitter_ms })
    }

    /// Generate `n` events.
    pub fn generate_events(&self, seed: u64, n: u64) -> Vec<Event> {
        self.generate_events_shard(seed, 0, n)
    }

    /// Generate events `[offset, offset + n)` of the stream. Every field
    /// is a function of the event's own [`SeedTree`] cell and index, so
    /// shards match the sequential run exactly.
    pub fn generate_events_shard(&self, seed: u64, offset: u64, n: u64) -> Vec<Event> {
        let tree = SeedTree::new(seed).child_named("behavioral");
        let users = Zipf::new(self.num_users, 0.99);
        (offset..offset + n)
            .map(|i| {
                let mut rng = tree.cell(i);
                let user = users.sample(&mut rng);
                let action = rng.next_bounded(self.num_actions) as f64;
                let ts = i * self.mean_gap_ms + rng.next_bounded(2 * self.jitter_ms + 1);
                Event { ts_ms: ts, key: user, value: action }
            })
            .collect()
    }
}

impl DataGenerator for BehavioralEvents {
    fn name(&self) -> &str {
        "behavioral/events"
    }

    fn kind(&self) -> DataSourceKind {
        DataSourceKind::Stream
    }

    fn generate(&self, seed: u64, volume: &VolumeSpec) -> Result<Dataset> {
        let n = volume.resolve_items(std::mem::size_of::<Event>() as f64, 10_000)?;
        Ok(Dataset::Stream(self.generate_events(seed, n)))
    }

    fn plan_items(&self, _seed: u64, volume: &VolumeSpec) -> Result<Option<u64>> {
        volume
            .resolve_items(std::mem::size_of::<Event>() as f64, 10_000)
            .map(Some)
    }

    fn generate_shard(
        &self,
        seed: u64,
        _volume: &VolumeSpec,
        offset: u64,
        len: u64,
    ) -> Result<Dataset> {
        Ok(Dataset::Stream(self.generate_events_shard(seed, offset, len)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen() -> BehavioralEvents {
        BehavioralEvents::new(64, 8, 500, 2_000).unwrap()
    }

    #[test]
    fn rejects_bad_config() {
        assert!(BehavioralEvents::new(0, 8, 500, 100).is_err());
        assert!(BehavioralEvents::new(64, 0, 500, 100).is_err());
        assert!(BehavioralEvents::new(64, 8, 0, 100).is_err());
    }

    #[test]
    fn streams_are_seeded_and_deterministic() {
        let a = gen().generate_events(7, 500);
        let b = gen().generate_events(7, 500);
        let c = gen().generate_events(8, 500);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn events_are_out_of_order_but_coarsely_increasing() {
        let events = gen().generate_events(42, 2_000);
        let inversions = events.windows(2).filter(|w| w[1].ts_ms < w[0].ts_ms).count();
        assert!(inversions > 100, "jitter should produce disorder, got {inversions}");
        // Coarse order: far-apart events never invert (jitter span 4001ms
        // < 10 gaps of 500ms).
        assert!(events[0].ts_ms < events[100].ts_ms);
        assert!(events[1000].ts_ms < events[1100].ts_ms);
    }

    #[test]
    fn users_are_zipf_popular_and_actions_in_range() {
        let events = gen().generate_events(1, 10_000);
        let mut counts = std::collections::BTreeMap::new();
        for e in &events {
            assert!(e.key < 64, "user {}", e.key);
            assert!((e.value as u64) < 8, "action {}", e.value);
            *counts.entry(e.key).or_insert(0u64) += 1;
        }
        let top = counts.values().max().copied().unwrap();
        let mean = 10_000 / counts.len() as u64;
        assert!(top > 3 * mean, "Zipf head should dominate: top {top}, mean {mean}");
    }

    #[test]
    fn shards_match_the_sequential_run_exactly() {
        let g = gen();
        let full = g.generate_events(9, 1_000);
        let shard = g.generate_events_shard(9, 400, 300);
        assert_eq!(shard, full[400..700]);
        let par = g
            .generate_parallel(9, &VolumeSpec::Items(1_000), 4)
            .unwrap();
        match par {
            Dataset::Stream(events) => assert_eq!(events, full),
            other => panic!("expected a stream, got {other:?}"),
        }
    }
}
