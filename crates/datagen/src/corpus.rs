//! Embedded "raw data" stand-ins (step 1 of Figure 3).
//!
//! The paper observes that obtaining a variety of real data is not trivial
//! because owners will not share it; the accepted remedy is to fit models
//! to whatever real data *is* available and generate synthetic data from
//! the models. This module embeds three small public stand-ins that play
//! the role of the raw data in every veracity experiment:
//!
//! * [`RAW_TEXT_CORPUS`] — 48 short documents over four clear topics
//!   (astronomy, cooking, markets, football). Small, but with enough
//!   topical structure for LDA to recover distinct topics — which is all
//!   the veracity pipeline needs to demonstrate model-vs-naive divergence.
//! * [`karate_club_graph`] — Zachary's karate club network (34 vertices,
//!   78 undirected edges), the classic public social graph.
//! * [`raw_retail_table`] — a fixed 512-row orders table constructed once
//!   with a frozen seed and deliberately *non-textbook* distributions
//!   (mixture prices, popularity skew, weekly seasonality). The table
//!   generator must *fit* these from the data; it never sees the recipe.

use bdb_common::prelude::*;
use bdb_common::record::Table;
use bdb_common::value::{DataType, Field, Schema, Value};

/// Four-topic raw corpus: 12 documents per topic.
pub const RAW_TEXT_CORPUS: [&str; 48] = [
    // Astronomy
    "the telescope gathered faint light from the distant galaxy while astronomers measured the spectrum of each star and charted the slow drift of the nebula across the night sky",
    "a comet swung past the outer planets and its tail of dust and ice glowed as the solar wind pressed against it far beyond the orbit of mars",
    "the observatory dome opened at dusk and the survey camera began imaging clusters of stars hunting for the small dip in brightness that betrays a transiting planet",
    "gravity bends the path of light around a massive galaxy producing arcs and rings that let astronomers weigh the dark matter no telescope can see directly",
    "the radio dish listened to the quiet hiss of hydrogen across the galaxy mapping spiral arms and the rotation that hints at unseen mass in the halo",
    "astronomers compared the spectrum of the supernova with models of exploding stars and estimated the distance to its host galaxy from the fading light curve",
    "the moon passed before the sun and for four minutes the corona shimmered while instruments recorded particles streaming into space",
    "a young star still wrapped in gas and dust flickered in the infrared images and the disk around it showed gaps where planets may be forming",
    "the space probe fell past the icy moon and its camera caught plumes of water venting from cracks warmed by the tides of the giant planet",
    "each night the survey telescope scans the southern sky and software flags any star whose brightness changes comparing new images against the deep reference map",
    "light from the early universe stretched into microwaves carries a faint pattern that tells cosmologists how matter clumped into the first galaxies",
    "the asteroid tumbled slowly in the radar images and measurements of its orbit ruled out any close approach to earth for the next century",
    // Cooking
    "heat the olive oil in a heavy pan and soften the onion and garlic before adding the chopped tomato basil and a generous pinch of salt to the simmering sauce",
    "knead the dough until smooth and elastic then let it rest under a damp cloth while the oven warms and the yeast lifts the loaf with slow bubbles",
    "whisk the eggs with cream and a little salt then pour into the buttered pan folding gently over low heat until the curds are soft and glossy",
    "roast the chicken with lemon thyme and butter basting every twenty minutes until the skin turns golden and the juices run clear at the bone",
    "toast the spices in a dry pan until fragrant then grind them with garlic ginger and chili into a paste for the slow simmered curry",
    "fold the flour into the beaten butter and sugar add the eggs one at a time and bake the cake until a skewer comes out clean",
    "simmer the stock with onion carrot and celery skimming the surface then strain it clear and season the broth before adding the noodles",
    "slice the ripe tomato layer it with mozzarella and basil and finish the salad with olive oil flaky salt and a drizzle of vinegar",
    "sear the steak in a smoking pan rest it under foil then slice against the grain and serve with the pan sauce of butter and shallot",
    "stir the rice slowly adding warm stock one ladle at a time until the risotto turns creamy then fold in parmesan butter and black pepper",
    "steam the fish with ginger and spring onion pour over hot oil and soy sauce and serve at once with plain rice to catch the fragrant juices",
    "caramelize the sugar until amber whisk in cream and butter off the heat and let the sauce cool before pouring it over the baked apples",
    // Markets / finance
    "the central bank raised interest rates and bond yields climbed while equity investors weighed the risk of slower growth against stubborn inflation",
    "the quarterly earnings beat expectations and the stock rallied in early trading though analysts trimmed forecasts for margin growth next year",
    "currency traders watched the dollar strengthen as inflation data surprised and emerging market bonds sold off under the pressure of rising yields",
    "the fund rebalanced its portfolio shifting capital from growth stocks into value shares and hedging currency exposure with forward contracts",
    "oil prices spiked on supply fears and energy shares led the index higher while airlines warned that fuel costs would squeeze their margins",
    "the startup closed a new funding round at a lower valuation and investors demanded a clearer path to profit before the planned public offering",
    "credit spreads widened as default risk rose and banks tightened lending standards cooling the market for leveraged buyouts and corporate debt",
    "the exchange reported record trading volume as volatility jumped and market makers widened quotes to manage their inventory risk",
    "pension funds increased allocations to infrastructure seeking steady yield while insurers matched long liabilities with long duration bonds",
    "the retailer cut its dividend after weak holiday sales and the shares fell while bargain hunters debated whether the valuation had bottomed",
    "economists revised growth forecasts downward citing weak exports and soft consumer spending though the labor market remained surprisingly tight",
    "the merger cleared its final regulatory review and arbitrage traders captured the narrowing spread between the offer price and the market",
    // Football
    "the striker split the defense with a quick turn and curled the ball into the far corner sending the home crowd into a roar",
    "the keeper pushed the penalty onto the post and the defenders scrambled the rebound clear as the final whistle approached",
    "the manager switched to three at the back at halftime and the extra midfielder finally gave the team control of the tempo",
    "a long pass released the winger down the touchline and his low cross found the striker for a simple tap in at the near post",
    "the derby finished level after a late equalizer and both sets of fans argued about the referee and the disallowed goal",
    "the young midfielder won the ball high up the pitch and his through pass set up the decisive goal in the cup final",
    "injuries forced the coach to start a makeshift defense and the team dropped deep soaking up pressure and striking on the counter",
    "the captain headed home the corner in stoppage time and the league title race tightened with three games left to play",
    "scouts watched the academy forward score twice and noted his movement between the lines and his calm finishing in the box",
    "the visiting team pressed high from the kickoff forced an early error and scored inside two minutes silencing the stadium",
    "a video review overturned the offside call and the goal stood giving the underdogs a famous away win in the qualifier",
    "the transfer window closed with the club signing a veteran defender on loan and selling their top scorer to a rival league",
];

/// Zachary's karate club: 34 vertices, 78 undirected edges (1-indexed in
/// the classic listing; stored 0-indexed here).
const KARATE_EDGES: [(u32, u32); 78] = [
    (1, 2), (1, 3), (1, 4), (1, 5), (1, 6), (1, 7), (1, 8), (1, 9), (1, 11), (1, 12), (1, 13),
    (1, 14), (1, 18), (1, 20), (1, 22), (1, 32),
    (2, 3), (2, 4), (2, 8), (2, 14), (2, 18), (2, 20), (2, 22), (2, 31),
    (3, 4), (3, 8), (3, 9), (3, 10), (3, 14), (3, 28), (3, 29), (3, 33),
    (4, 8), (4, 13), (4, 14),
    (5, 7), (5, 11),
    (6, 7), (6, 11), (6, 17),
    (7, 17),
    (9, 31), (9, 33), (9, 34),
    (10, 34),
    (14, 34),
    (15, 33), (15, 34),
    (16, 33), (16, 34),
    (19, 33), (19, 34),
    (20, 34),
    (21, 33), (21, 34),
    (23, 33), (23, 34),
    (24, 26), (24, 28), (24, 30), (24, 33), (24, 34),
    (25, 26), (25, 28), (25, 32),
    (26, 32),
    (27, 30), (27, 34),
    (28, 34),
    (29, 32), (29, 34),
    (30, 33), (30, 34),
    (31, 33), (31, 34),
    (32, 33), (32, 34),
    (33, 34),
];

/// The karate-club graph as an undirected (bidirectional) edge-list graph.
pub fn karate_club_graph() -> EdgeListGraph {
    let mut g = EdgeListGraph::new(34);
    for &(u, v) in &KARATE_EDGES {
        g.add_undirected_edge(u - 1, v - 1);
    }
    g
}

/// The schema of the raw retail orders table.
pub fn retail_schema() -> Schema {
    Schema::new(vec![
        Field::new("order_id", DataType::Int),
        Field::new("customer_id", DataType::Int),
        Field::new("product", DataType::Text),
        Field::new("category", DataType::Text),
        Field::new("quantity", DataType::Int),
        Field::new("price", DataType::Float),
        Field::new("order_ts", DataType::Timestamp),
    ])
}

/// Product catalogue used by the raw table (name, category).
pub const RETAIL_PRODUCTS: [(&str, &str); 12] = [
    ("laptop", "electronics"),
    ("phone", "electronics"),
    ("headphones", "electronics"),
    ("monitor", "electronics"),
    ("desk", "furniture"),
    ("chair", "furniture"),
    ("lamp", "furniture"),
    ("notebook", "stationery"),
    ("pen", "stationery"),
    ("backpack", "accessories"),
    ("bottle", "accessories"),
    ("charger", "electronics"),
];

/// The fixed raw retail table: 512 orders.
///
/// Constructed once from a frozen seed with a recipe the fitting code never
/// sees: product popularity is Zipf(1.1), prices are a per-product base
/// times a lognormal jitter, quantities are geometric-ish, and timestamps
/// carry a weekly cycle (weekends ~2.4x weekday volume). It stands in for a
/// confidential production extract.
pub fn raw_retail_table() -> Table {
    let mut table = Table::with_capacity(retail_schema(), 512);
    let tree = SeedTree::new(0x5EED_0F0A_0B1E_0001);
    let zipf = Zipf::new(RETAIL_PRODUCTS.len() as u64, 1.1);
    let price_jitter = LogNormal::new(0.0, 0.25);
    let base_prices = [
        950.0, 620.0, 140.0, 310.0, 260.0, 180.0, 45.0, 6.0, 2.5, 55.0, 18.0, 25.0,
    ];
    let mut rng = tree.rng();
    let mut ts: i64 = 0;
    for order_id in 0..512i64 {
        let pidx = zipf.sample(&mut rng) as usize;
        let (name, category) = RETAIL_PRODUCTS[pidx];
        // Quantity: geometric with p = 0.55, capped at 8.
        let mut qty = 1i64;
        while qty < 8 && rng.next_f64() > 0.55 {
            qty += 1;
        }
        let price = base_prices[pidx] * price_jitter.sample(&mut rng);
        // Weekly cycle: weekend steps are shorter, concentrating volume.
        let day = (ts / 86_400_000) % 7;
        let mean_gap_ms = if day >= 5 { 35_000_000.0 } else { 85_000_000.0 };
        ts += (Exponential::new(1.0 / mean_gap_ms).sample(&mut rng)) as i64 + 1;
        let customer = rng.next_bounded(160) as i64;
        table.push_unchecked(vec![
            Value::Int(order_id),
            Value::Int(customer),
            Value::Text(name.to_string()),
            Value::Text(category.to_string()),
            Value::Int(qty),
            Value::Float((price * 100.0).round() / 100.0),
            Value::Timestamp(ts),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_four_topics_of_twelve() {
        assert_eq!(RAW_TEXT_CORPUS.len(), 48);
        // Topic markers appear only in their own quarter.
        assert!(RAW_TEXT_CORPUS[..12].iter().any(|d| d.contains("galaxy")));
        assert!(RAW_TEXT_CORPUS[12..24].iter().any(|d| d.contains("butter")));
        assert!(RAW_TEXT_CORPUS[24..36].iter().any(|d| d.contains("bond")));
        assert!(RAW_TEXT_CORPUS[36..].iter().any(|d| d.contains("goal")));
    }

    #[test]
    fn karate_club_shape() {
        let g = karate_club_graph();
        assert_eq!(g.num_vertices(), 34);
        assert_eq!(g.num_edges(), 156); // 78 undirected = 156 directed
        // Vertex 33 (0-indexed) is the instructor hub with degree 17.
        let degrees = g.out_degrees();
        assert_eq!(degrees[33], 17);
        assert_eq!(degrees[0], 16);
        // Degree sum equals directed edge count.
        assert_eq!(degrees.iter().sum::<u32>() as usize, 156);
    }

    #[test]
    fn raw_retail_table_is_stable() {
        let a = raw_retail_table();
        let b = raw_retail_table();
        assert_eq!(a, b);
        assert_eq!(a.len(), 512);
        a.schema().validate_row(&a.rows()[0]).unwrap();
    }

    #[test]
    fn raw_retail_popularity_is_skewed() {
        let t = raw_retail_table();
        let products = t.column("product").unwrap();
        let laptops = products
            .iter()
            .filter(|v| v.as_str() == Some("laptop"))
            .count();
        let monitors = products
            .iter()
            .filter(|v| v.as_str() == Some("monitor"))
            .count();
        assert!(laptops > monitors, "{laptops} vs {monitors}");
    }

    #[test]
    fn raw_retail_timestamps_are_monotonic() {
        let t = raw_retail_table();
        let ts = t.column("order_ts").unwrap();
        for w in ts.windows(2) {
            assert!(w[0].as_i64().unwrap() < w[1].as_i64().unwrap());
        }
    }
}
