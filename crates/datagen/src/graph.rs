//! Graph data generation (social-network path of Figure 3).
//!
//! Veracity for graph data means preserving structural characteristics of
//! a real graph — foremost its degree distribution. Three generators:
//!
//! * [`RmatGenerator`] — the recursive-matrix / stochastic-Kronecker
//!   family (BigDataBench generates its social graphs this way). Produces
//!   power-law degree distributions whose skew follows the quadrant
//!   probabilities.
//! * [`BaGenerator`] — Barabási–Albert preferential attachment, the
//!   classic scale-free model.
//! * [`ErdosRenyiGenerator`] — uniform random edges; the
//!   veracity-*un-considered* baseline (binomial degrees, no heavy tail)
//!   used by the ablation benches.
//!
//! [`fit_rmat`] closes the Figure 3 loop for graphs: given a raw graph, it
//! grid-searches RMAT skew parameters so generated graphs reproduce the
//! raw graph's hub concentration (the stable structural statistic for
//! small reference graphs) — a deliberately simple stand-in for KronFit,
//! documented in DESIGN.md.

use crate::volume::VolumeSpec;
use crate::{DataGenerator, DataSourceKind, Dataset};
use bdb_common::graph::DegreeDistribution;
use bdb_common::prelude::*;
use bdb_common::stats::js_divergence;
use bdb_common::{BdbError, Result};

/// R-MAT (recursive matrix) generator.
///
/// Each edge lands in one of four adjacency-matrix quadrants with
/// probabilities `(a, b, c, d)`, recursively, `log2(n)` times. `a >> d`
/// yields strong degree skew.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatGenerator {
    /// Probability of the top-left quadrant.
    pub a: f64,
    /// Top-right.
    pub b: f64,
    /// Bottom-left.
    pub c: f64,
    /// Average directed edges per vertex.
    pub edges_per_vertex: f64,
}

impl RmatGenerator {
    /// An R-MAT generator with quadrant probabilities `(a, b, c, 1-a-b-c)`.
    ///
    /// # Errors
    /// Fails unless `a, b, c >= 0`, `a + b + c < 1`, and
    /// `edges_per_vertex > 0`.
    pub fn new(a: f64, b: f64, c: f64, edges_per_vertex: f64) -> Result<Self> {
        if a < 0.0 || b < 0.0 || c < 0.0 || a + b + c >= 1.0 {
            return Err(BdbError::InvalidConfig(format!(
                "invalid RMAT quadrants ({a}, {b}, {c})"
            )));
        }
        if edges_per_vertex <= 0.0 {
            return Err(BdbError::InvalidConfig("edges_per_vertex must be positive".into()));
        }
        Ok(Self { a, b, c, edges_per_vertex })
    }

    /// The canonical skewed parameterisation (0.57, 0.19, 0.19).
    pub fn standard(edges_per_vertex: f64) -> Self {
        Self::new(0.57, 0.19, 0.19, edges_per_vertex).expect("standard params are valid")
    }

    /// Generate a graph with `2^scale` vertices.
    pub fn generate_graph(&self, seed: u64, scale: u32) -> EdgeListGraph {
        let n = 1u64 << scale;
        let m = (n as f64 * self.edges_per_vertex) as u64;
        self.generate_graph_shard(seed, scale, 0, m)
    }

    /// Generate edges `[edge_offset, edge_offset + edges)` of the
    /// sequential edge list for `(seed, scale)`. Each edge draws from its
    /// own [`SeedTree`] cell, so concatenating disjoint edge ranges in
    /// order reproduces [`generate_graph`](Self::generate_graph) exactly.
    pub fn generate_graph_shard(
        &self,
        seed: u64,
        scale: u32,
        edge_offset: u64,
        edges: u64,
    ) -> EdgeListGraph {
        let n = 1usize << scale;
        let tree = SeedTree::new(seed).child_named("rmat");
        let mut g = EdgeListGraph::new(n);
        let ab = self.a + self.b;
        let abc = ab + self.c;
        for e in edge_offset..edge_offset + edges {
            let mut rng = tree.cell(e);
            let (mut u, mut v) = (0usize, 0usize);
            for _ in 0..scale {
                u <<= 1;
                v <<= 1;
                let r = rng.next_f64();
                if r < self.a {
                    // top-left: no bits set
                } else if r < ab {
                    v |= 1;
                } else if r < abc {
                    u |= 1;
                } else {
                    u |= 1;
                    v |= 1;
                }
            }
            g.add_edge(u as u32, v as u32);
        }
        g
    }

    /// The `(scale, total_edges)` a volume spec resolves to — shared by
    /// the sequential and sharded trait paths.
    fn resolve_shape(&self, volume: &VolumeSpec) -> Result<(u32, u64)> {
        let vertices = volume.resolve_items(self.edges_per_vertex * 8.0, 1 << 10)?;
        let scale = (vertices.max(2) as f64).log2().ceil() as u32;
        let n = 1u64 << scale;
        Ok((scale, (n as f64 * self.edges_per_vertex) as u64))
    }
}

impl DataGenerator for RmatGenerator {
    fn name(&self) -> &str {
        "graph/rmat"
    }

    fn kind(&self) -> DataSourceKind {
        DataSourceKind::Graph
    }

    fn generate(&self, seed: u64, volume: &VolumeSpec) -> Result<Dataset> {
        let (scale, _) = self.resolve_shape(volume)?;
        Ok(Dataset::Graph(self.generate_graph(seed, scale)))
    }

    fn plan_items(&self, _seed: u64, volume: &VolumeSpec) -> Result<Option<u64>> {
        self.resolve_shape(volume).map(|(_, m)| Some(m))
    }

    fn generate_shard(
        &self,
        seed: u64,
        volume: &VolumeSpec,
        offset: u64,
        len: u64,
    ) -> Result<Dataset> {
        let (scale, _) = self.resolve_shape(volume)?;
        Ok(Dataset::Graph(self.generate_graph_shard(seed, scale, offset, len)))
    }
}

/// Barabási–Albert preferential attachment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaGenerator {
    /// Edges added per new vertex.
    pub edges_per_vertex: usize,
}

impl BaGenerator {
    /// A BA generator attaching `m` edges per new vertex.
    ///
    /// # Errors
    /// Fails when `m == 0`.
    pub fn new(m: usize) -> Result<Self> {
        if m == 0 {
            return Err(BdbError::InvalidConfig("BA needs m >= 1".into()));
        }
        Ok(Self { edges_per_vertex: m })
    }

    /// Generate a graph with `n` vertices.
    pub fn generate_graph(&self, seed: u64, n: usize) -> EdgeListGraph {
        let m = self.edges_per_vertex;
        let mut rng = SeedTree::new(seed).child_named("ba").rng();
        let mut g = EdgeListGraph::new(n.max(m + 1));
        // Attachment target pool: vertex v appears once per incident edge,
        // so uniform draws from the pool are degree-proportional.
        let mut pool: Vec<u32> = Vec::with_capacity(2 * m * n);
        // Seed clique over the first m+1 vertices.
        for u in 0..=(m as u32) {
            for v in 0..u {
                g.add_undirected_edge(u, v);
                pool.push(u);
                pool.push(v);
            }
        }
        for u in (m as u32 + 1)..(n as u32) {
            let mut targets = std::collections::BTreeSet::new();
            while targets.len() < m {
                let t = pool[rng.next_bounded(pool.len() as u64) as usize];
                if t != u {
                    targets.insert(t);
                }
            }
            for &t in &targets {
                g.add_undirected_edge(u, t);
                pool.push(u);
                pool.push(t);
            }
        }
        g
    }
}

// Preferential attachment depends on the degrees of *all* earlier edges,
// so BA keeps the default `plan_items = None`: `generate_parallel` falls
// back to the sequential path rather than pretend to shard.
impl DataGenerator for BaGenerator {
    fn name(&self) -> &str {
        "graph/barabasi-albert"
    }

    fn kind(&self) -> DataSourceKind {
        DataSourceKind::Graph
    }

    fn generate(&self, seed: u64, volume: &VolumeSpec) -> Result<Dataset> {
        let vertices = volume.resolve_items(self.edges_per_vertex as f64 * 16.0, 1 << 10)?;
        Ok(Dataset::Graph(self.generate_graph(seed, vertices as usize)))
    }
}

/// Erdős–Rényi G(n, m): the no-veracity baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErdosRenyiGenerator {
    /// Average directed edges per vertex.
    pub edges_per_vertex: f64,
}

impl ErdosRenyiGenerator {
    /// Generate a graph with `n` vertices and `n * edges_per_vertex` edges.
    pub fn generate_graph(&self, seed: u64, n: usize) -> EdgeListGraph {
        let m = (n as f64 * self.edges_per_vertex) as u64;
        self.generate_graph_shard(seed, n, 0, m)
    }

    /// Generate edges `[edge_offset, edge_offset + edges)` of the
    /// sequential edge list for `(seed, n)` — per-edge seed cells make any
    /// edge range independently reproducible.
    pub fn generate_graph_shard(
        &self,
        seed: u64,
        n: usize,
        edge_offset: u64,
        edges: u64,
    ) -> EdgeListGraph {
        let tree = SeedTree::new(seed).child_named("er");
        let mut g = EdgeListGraph::new(n);
        for e in edge_offset..edge_offset + edges {
            let mut rng = tree.cell(e);
            let u = rng.next_bounded(n as u64) as u32;
            let v = rng.next_bounded(n as u64) as u32;
            g.add_edge(u, v);
        }
        g
    }

    fn resolve_shape(&self, volume: &VolumeSpec) -> Result<(usize, u64)> {
        let n = volume.resolve_items(self.edges_per_vertex * 8.0, 1 << 10)? as usize;
        Ok((n, (n as f64 * self.edges_per_vertex) as u64))
    }
}

impl DataGenerator for ErdosRenyiGenerator {
    fn name(&self) -> &str {
        "graph/erdos-renyi"
    }

    fn kind(&self) -> DataSourceKind {
        DataSourceKind::Graph
    }

    fn generate(&self, seed: u64, volume: &VolumeSpec) -> Result<Dataset> {
        let (n, _) = self.resolve_shape(volume)?;
        Ok(Dataset::Graph(self.generate_graph(seed, n)))
    }

    fn plan_items(&self, _seed: u64, volume: &VolumeSpec) -> Result<Option<u64>> {
        self.resolve_shape(volume).map(|(_, m)| Some(m))
    }

    fn generate_shard(
        &self,
        seed: u64,
        volume: &VolumeSpec,
        offset: u64,
        len: u64,
    ) -> Result<Dataset> {
        let (n, _) = self.resolve_shape(volume)?;
        Ok(Dataset::Graph(self.generate_graph_shard(seed, n, offset, len)))
    }
}

/// Degree-distribution distance between two graphs: JS divergence between
/// their out-degree pmfs over aligned support.
pub fn degree_distribution_distance(a: &EdgeListGraph, b: &EdgeListGraph) -> f64 {
    let da = DegreeDistribution::from_degrees(&a.out_degrees()).pmf();
    let db = DegreeDistribution::from_degrees(&b.out_degrees()).pmf();
    let len = da.len().max(db.len()).max(1);
    let pad = |mut v: Vec<f64>| {
        v.resize(len, 0.0);
        v
    };
    js_divergence(&pad(da), &pad(db))
}

/// Share of directed edges incident to the top-10% highest out-degree
/// vertices: the hub-dominance statistic used to fit and validate graph
/// models. Stable even for very small reference graphs, unlike the raw
/// degree pmf.
pub fn hub_concentration(g: &EdgeListGraph) -> f64 {
    let mut d = g.out_degrees();
    d.sort_unstable_by(|a, b| b.cmp(a));
    let k = (d.len() / 10).max(1);
    let top: u32 = d[..k].iter().sum();
    let total: u32 = d.iter().sum();
    top as f64 / total.max(1) as f64
}

/// Fit R-MAT skew to a raw graph by grid search (KronFit stand-in).
///
/// Tries a grid of `a` values (with `b = c` splitting the remainder) and
/// keeps the parameters whose generated graphs best match the raw graph's
/// [`hub_concentration`], averaged over a few sample seeds so the fit is
/// stable for small reference graphs.
pub fn fit_rmat(raw: &EdgeListGraph, seed: u64) -> Result<RmatGenerator> {
    if raw.num_vertices() < 2 || raw.num_edges() == 0 {
        return Err(BdbError::DataGen("raw graph too small to fit".into()));
    }
    let scale = (raw.num_vertices() as f64).log2().ceil() as u32;
    let epv = raw.num_edges() as f64 / raw.num_vertices() as f64;
    let target = hub_concentration(raw);
    let mut best: Option<(f64, RmatGenerator)> = None;
    for step in 0..=8 {
        let a = 0.25 + 0.07 * step as f64; // 0.25 (uniform) .. 0.81 (extreme)
        let rest = (1.0 - a) / 3.0;
        let cand = RmatGenerator::new(a, rest, rest, epv)?;
        let mut d = 0.0;
        for round in 0..3u64 {
            let sample = cand.generate_graph(seed.wrapping_add(round * 6151), scale);
            d += (hub_concentration(&sample) - target).abs() / 3.0;
        }
        if best.as_ref().is_none_or(|(bd, _)| d < *bd) {
            best = Some((d, cand));
        }
    }
    Ok(best.expect("grid is non-empty").1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::karate_club_graph;

    #[test]
    fn rmat_rejects_bad_params() {
        assert!(RmatGenerator::new(0.5, 0.3, 0.3, 8.0).is_err());
        assert!(RmatGenerator::new(-0.1, 0.3, 0.3, 8.0).is_err());
        assert!(RmatGenerator::new(0.5, 0.2, 0.2, 0.0).is_err());
    }

    #[test]
    fn rmat_generates_requested_shape() {
        let g = RmatGenerator::standard(8.0).generate_graph(1, 10);
        assert_eq!(g.num_vertices(), 1024);
        assert_eq!(g.num_edges(), 8 * 1024);
    }

    #[test]
    fn rmat_is_deterministic() {
        let gen = RmatGenerator::standard(4.0);
        assert_eq!(gen.generate_graph(5, 8), gen.generate_graph(5, 8));
        assert_ne!(gen.generate_graph(5, 8), gen.generate_graph(6, 8));
    }

    #[test]
    fn rmat_skew_raises_max_degree() {
        let uniform = RmatGenerator::new(0.25, 0.25, 0.25, 8.0)
            .unwrap()
            .generate_graph(1, 10);
        let skewed = RmatGenerator::new(0.7, 0.1, 0.1, 8.0)
            .unwrap()
            .generate_graph(1, 10);
        let max_u = *uniform.out_degrees().iter().max().unwrap();
        let max_s = *skewed.out_degrees().iter().max().unwrap();
        assert!(max_s > 2 * max_u, "skewed {max_s} vs uniform {max_u}");
    }

    #[test]
    fn ba_produces_connected_scale_free_graph() {
        let g = BaGenerator::new(3).unwrap().generate_graph(1, 500);
        assert_eq!(g.num_vertices(), 500);
        // (m+1 choose 2) clique edges + m per later vertex, doubled.
        let expected = 2 * (6 + 3 * (500 - 4));
        assert_eq!(g.num_edges(), expected);
        let degrees = g.out_degrees();
        // Every vertex has degree >= m.
        assert!(degrees.iter().all(|&d| d >= 3));
        // Heavy tail: some vertex far above the mean.
        let mean = degrees.iter().sum::<u32>() as f64 / degrees.len() as f64;
        let max = *degrees.iter().max().unwrap() as f64;
        assert!(max > 4.0 * mean, "max {max}, mean {mean}");
    }

    #[test]
    fn ba_rejects_zero_m() {
        assert!(BaGenerator::new(0).is_err());
    }

    #[test]
    fn erdos_renyi_has_no_heavy_tail() {
        let g = ErdosRenyiGenerator { edges_per_vertex: 8.0 }.generate_graph(1, 1024);
        let degrees = g.out_degrees();
        let max = *degrees.iter().max().unwrap() as f64;
        // Binomial(n, 8/n) max degree stays within a small factor of the mean.
        assert!(max < 4.0 * 8.0, "max {max}");
    }

    #[test]
    fn degree_distance_is_zero_for_same_graph() {
        let g = karate_club_graph();
        assert!(degree_distribution_distance(&g, &g) < 1e-9);
    }

    #[test]
    fn fit_rmat_prefers_skew_for_karate_club() {
        let raw = karate_club_graph();
        let fitted = fit_rmat(&raw, 7).unwrap();
        // The karate club is hub-dominated; the fit should not pick the
        // uniform corner.
        assert!(fitted.a > 0.25, "fitted a = {}", fitted.a);
        // And the fitted model should match the raw hub concentration
        // better than the uniform model, averaged over seeds.
        let scale = (raw.num_vertices() as f64).log2().ceil() as u32;
        let epv = raw.num_edges() as f64 / raw.num_vertices() as f64;
        let uniform = RmatGenerator::new(0.25, 0.25, 0.25, epv).unwrap();
        let target = hub_concentration(&raw);
        let (mut d_fit, mut d_uni) = (0.0, 0.0);
        for s in 0..5 {
            d_fit += (hub_concentration(&fitted.generate_graph(s, scale)) - target).abs();
            d_uni += (hub_concentration(&uniform.generate_graph(s, scale)) - target).abs();
        }
        assert!(d_fit < d_uni, "fit {d_fit} vs uniform {d_uni}");
    }

    #[test]
    fn hub_concentration_basics() {
        // A star graph concentrates all edges on the hub.
        let mut star = EdgeListGraph::new(20);
        for v in 1..20 {
            star.add_edge(0, v);
        }
        assert!((hub_concentration(&star) - 1.0).abs() < 1e-12);
        // A cycle spreads edges uniformly: top-10% holds ~10%.
        let mut cycle = EdgeListGraph::new(20);
        for v in 0..20u32 {
            cycle.add_edge(v, (v + 1) % 20);
        }
        assert!((hub_concentration(&cycle) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn fit_rmat_rejects_tiny_graph() {
        assert!(fit_rmat(&EdgeListGraph::new(1), 1).is_err());
    }

    #[test]
    fn rmat_edge_shards_union_to_full_graph() {
        let gen = RmatGenerator::standard(4.0);
        let full = gen.generate_graph(3, 8);
        let m = full.num_edges() as u64;
        let mut merged = gen.generate_graph_shard(3, 8, 0, m / 3);
        for &(u, v) in gen.generate_graph_shard(3, 8, m / 3, m - m / 3).edges() {
            merged.add_edge(u, v);
        }
        assert_eq!(full, merged);
    }

    #[test]
    fn parallel_graph_generation_matches_sequential() {
        let gen = RmatGenerator::standard(4.0);
        let vol = VolumeSpec::Items(512);
        let seq = gen.generate(2, &vol).unwrap();
        let par = gen.generate_parallel(2, &vol, 4).unwrap();
        match (seq, par) {
            (Dataset::Graph(a), Dataset::Graph(b)) => assert_eq!(a, b),
            _ => panic!("expected graphs"),
        }
        let er = ErdosRenyiGenerator { edges_per_vertex: 4.0 };
        let seq = er.generate(2, &vol).unwrap();
        let par = er.generate_parallel(2, &vol, 3).unwrap();
        match (seq, par) {
            (Dataset::Graph(a), Dataset::Graph(b)) => assert_eq!(a, b),
            _ => panic!("expected graphs"),
        }
    }

    #[test]
    fn ba_falls_back_to_sequential_in_parallel_mode() {
        let gen = BaGenerator::new(2).unwrap();
        let vol = VolumeSpec::Items(100);
        assert!(gen.plan_items(1, &vol).unwrap().is_none());
        let seq = gen.generate(1, &vol).unwrap();
        let par = gen.generate_parallel(1, &vol, 4).unwrap();
        match (seq, par) {
            (Dataset::Graph(a), Dataset::Graph(b)) => assert_eq!(a, b),
            _ => panic!("expected graphs"),
        }
    }

    #[test]
    fn generators_implement_volume_specs() {
        let d = RmatGenerator::standard(4.0)
            .generate(1, &VolumeSpec::Items(512))
            .unwrap();
        match d {
            Dataset::Graph(g) => assert_eq!(g.num_vertices(), 512),
            _ => panic!("expected graph"),
        }
    }
}
