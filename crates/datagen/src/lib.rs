//! Data generators preserving the 4V properties of big data (Figure 3).
//!
//! This crate implements the paper's data-generation methodology end to end:
//!
//! 1. **Select real data** — [`corpus`] embeds public stand-ins for the
//!    confidential real data sets the paper says owners will not share: a
//!    topical text corpus, Zachary's karate-club social graph, and a fixed
//!    retail orders table.
//! 2. **Fit a data model & sample** — [`text`] fits LDA (collapsed Gibbs)
//!    and n-gram Markov models; [`table`] fits per-column distribution
//!    models (and offers MUDD-style purely synthetic columns); [`graph`]
//!    fits a power-law degree model and generates with R-MAT/Kronecker or
//!    Barabási–Albert; [`stream`] models arrivals with Poisson or bursty
//!    MMPP processes. [`volume`] provides the paper's "sampling tools" for
//!    scaling data *down*.
//! 3. **Control volume and velocity** — every generator is parameterised by
//!    a [`volume::VolumeSpec`]; [`velocity`] provides both velocity-control
//!    strategies of Section 5.1 (parallel deployment of generators, and
//!    algorithmic adjustment of the generator itself) plus update-frequency
//!    control.
//! 4. **Format conversion** — conversion tools live in `bdb-exec`; the
//!    generators here emit in-memory [`Dataset`]s.
//!
//! [`veracity`] implements the Section 5.1 veracity *metrics*: divergence
//! of raw-vs-model and raw-vs-synthetic distributions per data type.

pub mod behavioral;
pub mod corpus;
pub mod graph;
pub mod stream;
pub mod table;
pub mod text;
pub mod velocity;
pub mod veracity;
pub mod volume;

use bdb_common::graph::EdgeListGraph;
use bdb_common::pool;
use bdb_common::record::Table;
use bdb_common::text::{Document, Vocabulary};
use bdb_common::{BdbError, Result};

/// A generated data set of one of the four source types the paper's
/// *variety* axis requires (table, text, graph, stream).
#[derive(Debug, Clone)]
pub enum Dataset {
    /// Unstructured text: documents over a shared vocabulary.
    Text {
        /// Generated documents (word-id sequences).
        docs: Vec<Document>,
        /// The dictionary mapping word ids to words.
        vocab: Vocabulary,
    },
    /// Structured rows with a schema.
    Table(Table),
    /// A directed graph (social-network data).
    Graph(EdgeListGraph),
    /// Timestamped events (semi-structured stream data).
    Stream(Vec<stream::Event>),
}

impl Dataset {
    /// The data source kind, for variety accounting.
    pub fn kind(&self) -> DataSourceKind {
        match self {
            Dataset::Text { .. } => DataSourceKind::Text,
            Dataset::Table(_) => DataSourceKind::Table,
            Dataset::Graph(_) => DataSourceKind::Graph,
            Dataset::Stream(_) => DataSourceKind::Stream,
        }
    }

    /// Approximate data volume in bytes.
    pub fn byte_size(&self) -> usize {
        match self {
            Dataset::Text { docs, .. } => docs.iter().map(|d| d.len() * 4).sum(),
            Dataset::Table(t) => t.byte_size(),
            Dataset::Graph(g) => g.num_edges() * 8,
            Dataset::Stream(evts) => evts.len() * std::mem::size_of::<stream::Event>(),
        }
    }

    /// Number of logical items (documents, rows, edges, events).
    pub fn item_count(&self) -> usize {
        match self {
            Dataset::Text { docs, .. } => docs.len(),
            Dataset::Table(t) => t.len(),
            Dataset::Graph(g) => g.num_edges(),
            Dataset::Stream(evts) => evts.len(),
        }
    }
}

/// The four representative data sources named by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DataSourceKind {
    /// Structured data.
    Table,
    /// Unstructured data.
    Text,
    /// Unstructured data with explicit structure between entities.
    Graph,
    /// Semi-structured, timestamped data.
    Stream,
}

impl std::fmt::Display for DataSourceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DataSourceKind::Table => "table",
            DataSourceKind::Text => "text",
            DataSourceKind::Graph => "graph",
            DataSourceKind::Stream => "stream",
        };
        f.write_str(s)
    }
}

/// A seeded, volume-controlled data generator (step 3 of Figure 3).
///
/// Implementations are immutable model objects: the same `(seed, volume)`
/// pair always yields the same data, and distinct seeds yield independent
/// data sets, which is what lets the velocity layer run many generators in
/// parallel.
///
/// Generators that can produce any contiguous item range independently —
/// the PDGF/BDGS property — additionally implement [`plan_items`] and
/// [`generate_shard`]; the provided [`generate_parallel`] then shards the
/// volume across a [`bdb_common::pool`] worker pool and merges the slices
/// in index order, so the parallel output equals the sequential output.
///
/// [`plan_items`]: DataGenerator::plan_items
/// [`generate_shard`]: DataGenerator::generate_shard
/// [`generate_parallel`]: DataGenerator::generate_parallel
pub trait DataGenerator: Send + Sync {
    /// Human-readable generator name (for reports).
    fn name(&self) -> &str;

    /// The kind of data this generator produces.
    fn kind(&self) -> DataSourceKind;

    /// Generate a data set of roughly `volume` size using `seed`.
    fn generate(&self, seed: u64, volume: &volume::VolumeSpec) -> Result<Dataset>;

    /// The number of shardable items (rows, documents, edges, events) a
    /// sequential [`generate`](DataGenerator::generate) of this volume
    /// would produce, or `None` when the generator cannot shard (its
    /// items depend on global state, like preferential attachment).
    fn plan_items(&self, _seed: u64, _volume: &volume::VolumeSpec) -> Result<Option<u64>> {
        Ok(None)
    }

    /// Generate items `[offset, offset + len)` of the sequential run for
    /// `(seed, volume)`. Shards of non-timestamp data concatenate to the
    /// exact sequential output; running clocks (stream timestamps,
    /// monotonic table columns) re-anchor at `offset` using the expected
    /// mean gap and carry a documented tolerance instead.
    fn generate_shard(
        &self,
        _seed: u64,
        _volume: &volume::VolumeSpec,
        _offset: u64,
        _len: u64,
    ) -> Result<Dataset> {
        Err(BdbError::DataGen(format!(
            "generator {} does not support sharded generation",
            self.name()
        )))
    }

    /// Generate `volume` items on `workers` threads (0 = available
    /// parallelism) by sharding through the common worker pool and
    /// merging the shards in index order.
    ///
    /// Falls back to the sequential path when the generator cannot shard
    /// or when one worker (or one item) makes sharding pointless, so it
    /// is always safe to call.
    fn generate_parallel(
        &self,
        seed: u64,
        volume: &volume::VolumeSpec,
        workers: usize,
    ) -> Result<Dataset> {
        let workers = pool::effective_workers(workers);
        let total = match self.plan_items(seed, volume)? {
            Some(n) => n,
            None => return self.generate(seed, volume),
        };
        if workers <= 1 || total < 2 {
            return self.generate(seed, volume);
        }
        // A few chunks per worker lets the pool absorb per-chunk cost
        // imbalance without changing the merged output.
        let chunks = pool::split_even(total, (workers * 4).min(total as usize));
        let parts = pool::par_map_chunks(workers, chunks, |c| {
            self.generate_shard(seed, volume, c.offset, c.len)
        });
        merge_datasets(parts.into_iter().collect::<Result<Vec<_>>>()?)
    }
}

/// Merge per-shard datasets (all of one kind) into one, in shard order.
///
/// Text shards share one vocabulary; tables append rows; graphs append
/// edge ranges (vertex counts must agree); streams concatenate events.
pub fn merge_datasets(mut parts: Vec<Dataset>) -> Result<Dataset> {
    let first = parts
        .drain(..1)
        .next()
        .ok_or_else(|| BdbError::DataGen("no data generated".into()))?;
    parts.into_iter().try_fold(first, |acc, part| {
        Ok(match (acc, part) {
            (Dataset::Text { mut docs, vocab }, Dataset::Text { docs: d2, .. }) => {
                docs.extend(d2);
                Dataset::Text { docs, vocab }
            }
            (Dataset::Table(mut t), Dataset::Table(t2)) => {
                t.append(t2)?;
                Dataset::Table(t)
            }
            (Dataset::Graph(mut g), Dataset::Graph(g2)) => {
                for &(u, v) in g2.edges() {
                    g.add_edge(u, v);
                }
                Dataset::Graph(g)
            }
            (Dataset::Stream(mut e), Dataset::Stream(e2)) => {
                e.extend(e2);
                Dataset::Stream(e)
            }
            _ => return Err(BdbError::DataGen("mixed dataset kinds in merge".into())),
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_common::value::{DataType, Field, Schema};

    #[test]
    fn dataset_kind_and_counts() {
        let t = Table::new(Schema::new(vec![Field::new("x", DataType::Int)]));
        let d = Dataset::Table(t);
        assert_eq!(d.kind(), DataSourceKind::Table);
        assert_eq!(d.item_count(), 0);
        assert_eq!(d.byte_size(), 0);
        assert_eq!(DataSourceKind::Stream.to_string(), "stream");
    }
}
