//! Stream data generation: arrival processes and update streams.
//!
//! The paper gives *velocity* three meanings; two of them live here:
//!
//! * **Processing-speed inputs** — [`PoissonArrivals`] and
//!   [`MmppArrivals`] generate timestamped event streams whose arrival
//!   law is controllable (smooth vs bursty); the streaming engine consumes
//!   them to measure processing speed.
//! * **Update frequency** — [`UpdateStreamGenerator`] emits a mixed
//!   insert/update/delete operation stream against a keyspace at a
//!   configured updates-per-second rate (the axis the paper says existing
//!   benchmarks ignore).

use crate::volume::VolumeSpec;
use crate::{DataGenerator, DataSourceKind, Dataset};
use bdb_common::prelude::*;
use bdb_common::{BdbError, Result};

pub use bdb_common::event::Event;

/// A Poisson process: exponential inter-arrival gaps at a constant rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonArrivals {
    /// Mean events per second.
    pub rate_per_sec: f64,
    /// Number of distinct keys; keys are Zipf(0.99)-popular.
    pub num_keys: u64,
}

impl PoissonArrivals {
    /// A Poisson arrival generator.
    ///
    /// # Errors
    /// Fails on non-positive rate or zero keys.
    pub fn new(rate_per_sec: f64, num_keys: u64) -> Result<Self> {
        if rate_per_sec <= 0.0 || num_keys == 0 {
            return Err(BdbError::InvalidConfig("rate and keys must be positive".into()));
        }
        Ok(Self { rate_per_sec, num_keys })
    }

    /// Generate `n` events.
    pub fn generate_events(&self, seed: u64, n: u64) -> Vec<Event> {
        self.generate_events_shard(seed, 0, n)
    }

    /// Generate events `[offset, offset + n)` of the stream.
    ///
    /// Every event draws its gap, key and value from its own [`SeedTree`]
    /// cell, so keys and values of any event range are *exactly* those of
    /// the sequential run. The running clock is sequential by nature: a
    /// shard re-anchors it at the expected arrival time of event `offset`
    /// (`offset / rate`), mirroring the table generator's
    /// `MonotonicTimestamp` re-anchor — timestamps carry that documented
    /// tolerance while remaining monotonic within the shard.
    pub fn generate_events_shard(&self, seed: u64, offset: u64, n: u64) -> Vec<Event> {
        let tree = SeedTree::new(seed).child_named("poisson");
        let gap = Exponential::new(self.rate_per_sec / 1000.0); // per ms
        let keys = Zipf::new(self.num_keys, 0.99);
        let value = Gaussian::new(100.0, 15.0);
        let mut ts = offset as f64 * (1000.0 / self.rate_per_sec);
        (offset..offset + n)
            .map(|i| {
                let mut rng = tree.cell(i);
                ts += gap.sample(&mut rng);
                Event {
                    ts_ms: ts as u64,
                    key: keys.sample(&mut rng),
                    value: value.sample(&mut rng),
                }
            })
            .collect()
    }
}

impl DataGenerator for PoissonArrivals {
    fn name(&self) -> &str {
        "stream/poisson"
    }

    fn kind(&self) -> DataSourceKind {
        DataSourceKind::Stream
    }

    fn generate(&self, seed: u64, volume: &VolumeSpec) -> Result<Dataset> {
        let n = volume.resolve_items(std::mem::size_of::<Event>() as f64, 10_000)?;
        Ok(Dataset::Stream(self.generate_events(seed, n)))
    }

    fn plan_items(&self, _seed: u64, volume: &VolumeSpec) -> Result<Option<u64>> {
        volume
            .resolve_items(std::mem::size_of::<Event>() as f64, 10_000)
            .map(Some)
    }

    fn generate_shard(
        &self,
        seed: u64,
        _volume: &VolumeSpec,
        offset: u64,
        len: u64,
    ) -> Result<Dataset> {
        Ok(Dataset::Stream(self.generate_events_shard(seed, offset, len)))
    }
}

/// A two-state Markov-modulated Poisson process: alternates between a calm
/// rate and a burst rate, producing the bursty traffic real services see.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MmppArrivals {
    /// Events per second in the calm state.
    pub calm_rate_per_sec: f64,
    /// Events per second in the burst state.
    pub burst_rate_per_sec: f64,
    /// Mean milliseconds spent in each state before switching.
    pub mean_state_ms: f64,
    /// Number of distinct keys.
    pub num_keys: u64,
}

impl MmppArrivals {
    /// An MMPP generator.
    ///
    /// # Errors
    /// Fails on non-positive rates, dwell time, or zero keys.
    pub fn new(
        calm_rate_per_sec: f64,
        burst_rate_per_sec: f64,
        mean_state_ms: f64,
        num_keys: u64,
    ) -> Result<Self> {
        if calm_rate_per_sec <= 0.0
            || burst_rate_per_sec <= 0.0
            || mean_state_ms <= 0.0
            || num_keys == 0
        {
            return Err(BdbError::InvalidConfig("MMPP parameters must be positive".into()));
        }
        Ok(Self { calm_rate_per_sec, burst_rate_per_sec, mean_state_ms, num_keys })
    }

    /// Generate `n` events.
    pub fn generate_events(&self, seed: u64, n: u64) -> Vec<Event> {
        self.generate_events_shard(seed, 0, n)
    }

    /// Generate events `[offset, offset + n)` of the stream.
    ///
    /// Per-event randomness (a unit-mean gap later scaled by the current
    /// state's rate, the key, the value) comes from the event's own
    /// [`SeedTree`] cell, so keys and values of any range are exactly the
    /// sequential run's. The calm/burst dwell process is its own
    /// deterministic boundary sequence (seed subtree `"dwell"`), walked
    /// from zero to the shard's clock anchor — the expected arrival time
    /// of event `offset` under the time-averaged rate — so a shard resumes
    /// in the same modulation state the sequential run would be near that
    /// time. Timestamps carry the documented anchor tolerance.
    pub fn generate_events_shard(&self, seed: u64, offset: u64, n: u64) -> Vec<Event> {
        let tree = SeedTree::new(seed).child_named("mmpp");
        let dwell_tree = tree.child_named("dwell");
        let keys = Zipf::new(self.num_keys, 0.99);
        let value = Gaussian::new(100.0, 15.0);
        let dwell = Exponential::new(1.0 / self.mean_state_ms);
        let unit_gap = Exponential::new(1.0);
        let avg_rate = (self.calm_rate_per_sec + self.burst_rate_per_sec) / 2.0;
        let mut ts = offset as f64 * (1000.0 / avg_rate);
        // Walk the dwell boundary sequence up to the anchor.
        let mut burst = false;
        let mut state_ends = dwell.sample(&mut dwell_tree.cell(0));
        let mut boundary = 1u64;
        while state_ends < ts {
            burst = !burst;
            state_ends += dwell.sample(&mut dwell_tree.cell(boundary));
            boundary += 1;
        }
        let mut events = Vec::with_capacity(n as usize);
        for i in offset..offset + n {
            let mut rng = tree.cell(i);
            let rate = if burst { self.burst_rate_per_sec } else { self.calm_rate_per_sec };
            ts += unit_gap.sample(&mut rng) * 1000.0 / rate;
            while ts > state_ends {
                burst = !burst;
                state_ends += dwell.sample(&mut dwell_tree.cell(boundary));
                boundary += 1;
            }
            events.push(Event {
                ts_ms: ts as u64,
                key: keys.sample(&mut rng),
                value: value.sample(&mut rng),
            });
        }
        events
    }
}

impl DataGenerator for MmppArrivals {
    fn name(&self) -> &str {
        "stream/mmpp"
    }

    fn kind(&self) -> DataSourceKind {
        DataSourceKind::Stream
    }

    fn generate(&self, seed: u64, volume: &VolumeSpec) -> Result<Dataset> {
        let n = volume.resolve_items(std::mem::size_of::<Event>() as f64, 10_000)?;
        Ok(Dataset::Stream(self.generate_events(seed, n)))
    }

    fn plan_items(&self, _seed: u64, volume: &VolumeSpec) -> Result<Option<u64>> {
        volume
            .resolve_items(std::mem::size_of::<Event>() as f64, 10_000)
            .map(Some)
    }

    fn generate_shard(
        &self,
        seed: u64,
        _volume: &VolumeSpec,
        offset: u64,
        len: u64,
    ) -> Result<Dataset> {
        Ok(Dataset::Stream(self.generate_events_shard(seed, offset, len)))
    }
}

/// One operation of an update stream.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateOp {
    /// Insert a fresh key.
    Insert {
        /// The new key.
        key: u64,
        /// Initial value.
        value: f64,
    },
    /// Overwrite an existing key.
    Update {
        /// Target key.
        key: u64,
        /// New value.
        value: f64,
    },
    /// Remove a key.
    Delete {
        /// Target key.
        key: u64,
    },
}

/// A timestamped update operation.
#[derive(Debug, Clone, PartialEq)]
pub struct TimestampedOp {
    /// Operation time in ms since stream start.
    pub ts_ms: u64,
    /// The operation.
    pub op: UpdateOp,
}

/// Generates a mixed insert/update/delete stream at a configured update
/// frequency — the paper's second meaning of data velocity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateStreamGenerator {
    /// Target operations per second.
    pub updates_per_sec: f64,
    /// Fraction of inserts (the rest splits between update and delete).
    pub insert_fraction: f64,
    /// Fraction of updates.
    pub update_fraction: f64,
    /// Initial keyspace size (keys `0..initial_keys` pre-exist).
    pub initial_keys: u64,
}

impl UpdateStreamGenerator {
    /// A generator with the given mix.
    ///
    /// # Errors
    /// Fails unless fractions are non-negative and sum to at most 1, and
    /// the rate is positive.
    pub fn new(
        updates_per_sec: f64,
        insert_fraction: f64,
        update_fraction: f64,
        initial_keys: u64,
    ) -> Result<Self> {
        if updates_per_sec <= 0.0 {
            return Err(BdbError::InvalidConfig("update rate must be positive".into()));
        }
        if insert_fraction < 0.0
            || update_fraction < 0.0
            || insert_fraction + update_fraction > 1.0
        {
            return Err(BdbError::InvalidConfig("bad operation mix".into()));
        }
        Ok(Self { updates_per_sec, insert_fraction, update_fraction, initial_keys })
    }

    /// Generate `n` operations.
    ///
    /// Updates and deletes always target currently live keys, so replaying
    /// the stream against a store never references a missing key.
    pub fn generate_ops(&self, seed: u64, n: u64) -> Vec<TimestampedOp> {
        let mut rng = SeedTree::new(seed).child_named("updates").rng();
        let gap = Exponential::new(self.updates_per_sec / 1000.0);
        let value = Gaussian::new(50.0, 10.0);
        let mut live: Vec<u64> = (0..self.initial_keys).collect();
        let mut next_key = self.initial_keys;
        let mut ts = 0.0f64;
        let mut ops = Vec::with_capacity(n as usize);
        for _ in 0..n {
            ts += gap.sample(&mut rng);
            let r = rng.next_f64();
            let op = if r < self.insert_fraction || live.is_empty() {
                let key = next_key;
                next_key += 1;
                live.push(key);
                UpdateOp::Insert { key, value: value.sample(&mut rng) }
            } else if r < self.insert_fraction + self.update_fraction {
                let idx = rng.next_bounded(live.len() as u64) as usize;
                UpdateOp::Update { key: live[idx], value: value.sample(&mut rng) }
            } else {
                let idx = rng.next_bounded(live.len() as u64) as usize;
                let key = live.swap_remove(idx);
                UpdateOp::Delete { key }
            };
            ops.push(TimestampedOp { ts_ms: ts as u64, op });
        }
        ops
    }

    /// The achieved update frequency of a generated stream, in ops/sec.
    pub fn measured_rate(ops: &[TimestampedOp]) -> f64 {
        match (ops.first(), ops.last()) {
            (Some(first), Some(last)) if last.ts_ms > first.ts_ms => {
                (ops.len() as f64 - 1.0) / ((last.ts_ms - first.ts_ms) as f64 / 1000.0)
            }
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_is_respected() {
        let g = PoissonArrivals::new(1000.0, 100).unwrap();
        let events = g.generate_events(1, 10_000);
        assert_eq!(events.len(), 10_000);
        let span_sec = events.last().unwrap().ts_ms as f64 / 1000.0;
        let rate = 10_000.0 / span_sec;
        assert!((900.0..1100.0).contains(&rate), "rate {rate}");
        // Timestamps are non-decreasing.
        assert!(events.windows(2).all(|w| w[0].ts_ms <= w[1].ts_ms));
    }

    #[test]
    fn poisson_rejects_bad_config() {
        assert!(PoissonArrivals::new(0.0, 10).is_err());
        assert!(PoissonArrivals::new(10.0, 0).is_err());
    }

    #[test]
    fn mmpp_is_burstier_than_poisson() {
        // Compare variance of per-window counts at matched mean rate.
        let poisson = PoissonArrivals::new(1000.0, 10).unwrap().generate_events(3, 20_000);
        let mmpp = MmppArrivals::new(200.0, 1800.0, 500.0, 10)
            .unwrap()
            .generate_events(3, 20_000);
        let window_counts = |evts: &[Event]| -> Vec<f64> {
            let mut counts = std::collections::BTreeMap::new();
            for e in evts {
                *counts.entry(e.ts_ms / 100).or_insert(0.0) += 1.0;
            }
            counts.into_values().collect()
        };
        let vp = Summary::of(&window_counts(&poisson)).variance();
        let vm = Summary::of(&window_counts(&mmpp)).variance();
        assert!(vm > 2.0 * vp, "mmpp var {vm} vs poisson var {vp}");
    }

    #[test]
    fn poisson_shard_keys_and_values_match_sequential() {
        let g = PoissonArrivals::new(500.0, 100).unwrap();
        let full = g.generate_events(9, 1000);
        let shard = g.generate_events_shard(9, 400, 300);
        for (i, e) in shard.iter().enumerate() {
            assert_eq!(e.key, full[400 + i].key, "event {i}");
            assert_eq!(e.value, full[400 + i].value, "event {i}");
        }
        // The anchored clock stays monotonic and lands near the sequential
        // clock: within a few mean gaps of the expected arrival time.
        assert!(shard.windows(2).all(|w| w[0].ts_ms <= w[1].ts_ms));
        let mean_gap_ms = 1000.0 / 500.0;
        let expect = 400.0 * mean_gap_ms;
        let drift = (shard[0].ts_ms as f64 - expect).abs();
        assert!(drift < 100.0 * mean_gap_ms, "drift {drift}ms");
    }

    #[test]
    fn mmpp_shard_keys_and_values_match_sequential() {
        let g = MmppArrivals::new(200.0, 1800.0, 500.0, 10).unwrap();
        let full = g.generate_events(5, 2000);
        let shard = g.generate_events_shard(5, 1500, 500);
        for (i, e) in shard.iter().enumerate() {
            assert_eq!(e.key, full[1500 + i].key, "event {i}");
            assert_eq!(e.value, full[1500 + i].value, "event {i}");
        }
        assert!(shard.windows(2).all(|w| w[0].ts_ms <= w[1].ts_ms));
    }

    #[test]
    fn parallel_stream_generation_preserves_count_and_keys() {
        let g = PoissonArrivals::new(1000.0, 50).unwrap();
        let vol = VolumeSpec::Items(4000);
        let seq = g.generate(3, &vol).unwrap();
        let par = g.generate_parallel(3, &vol, 4).unwrap();
        match (seq, par) {
            (Dataset::Stream(a), Dataset::Stream(b)) => {
                assert_eq!(a.len(), b.len());
                let keys = |e: &[Event]| e.iter().map(|x| x.key).collect::<Vec<_>>();
                assert_eq!(keys(&a), keys(&b));
                let vals = |e: &[Event]| e.iter().map(|x| x.value).collect::<Vec<_>>();
                assert_eq!(vals(&a), vals(&b));
            }
            _ => panic!("expected streams"),
        }
    }

    #[test]
    fn update_stream_mix_matches_config() {
        let g = UpdateStreamGenerator::new(100.0, 0.5, 0.3, 50).unwrap();
        let ops = g.generate_ops(1, 10_000);
        let inserts = ops
            .iter()
            .filter(|o| matches!(o.op, UpdateOp::Insert { .. }))
            .count() as f64
            / 10_000.0;
        let updates = ops
            .iter()
            .filter(|o| matches!(o.op, UpdateOp::Update { .. }))
            .count() as f64
            / 10_000.0;
        assert!((inserts - 0.5).abs() < 0.03, "inserts {inserts}");
        assert!((updates - 0.3).abs() < 0.03, "updates {updates}");
    }

    #[test]
    fn update_stream_never_touches_dead_keys() {
        let g = UpdateStreamGenerator::new(100.0, 0.2, 0.3, 10).unwrap();
        let ops = g.generate_ops(2, 5_000);
        let mut live: std::collections::BTreeSet<u64> = (0..10).collect();
        for op in &ops {
            match &op.op {
                UpdateOp::Insert { key, .. } => {
                    assert!(live.insert(*key), "duplicate insert of {key}");
                }
                UpdateOp::Update { key, .. } => {
                    assert!(live.contains(key), "update of dead key {key}");
                }
                UpdateOp::Delete { key } => {
                    assert!(live.remove(key), "delete of dead key {key}");
                }
            }
        }
    }

    #[test]
    fn update_rate_measurement() {
        let g = UpdateStreamGenerator::new(500.0, 0.4, 0.4, 10).unwrap();
        let ops = g.generate_ops(4, 5_000);
        let rate = UpdateStreamGenerator::measured_rate(&ops);
        assert!((400.0..600.0).contains(&rate), "rate {rate}");
        assert_eq!(UpdateStreamGenerator::measured_rate(&[]), 0.0);
    }

    #[test]
    fn update_generator_validates() {
        assert!(UpdateStreamGenerator::new(0.0, 0.5, 0.3, 1).is_err());
        assert!(UpdateStreamGenerator::new(10.0, 0.8, 0.3, 1).is_err());
    }
}
