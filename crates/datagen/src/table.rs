//! Structured (table) data generation with fitted column models.
//!
//! Table 1 of the paper distinguishes three veracity levels for table data:
//! purely synthetic distributions (YCSB — "un-considered"), mostly
//! synthetic with some realistic columns (TPC-DS's MUDD — "partially
//! considered"), and model-fitted generation (BigDataBench — "considered").
//! This module provides all three styles over one mechanism:
//!
//! * [`ColumnModel::fit`] learns a per-column model from raw data
//!   (empirical categoricals, log-normal/Gaussian numerics, gap models for
//!   timestamps) — the *considered* style.
//! * [`ColumnModel::naive_for`] substitutes the type-default distribution
//!   (uniform ints, Gaussian floats, uniform categories) — the
//!   *un-considered* baseline for the ablation benches.
//! * Hand-assembled models (e.g. Zipf foreign keys) reproduce the MUDD
//!   middle ground.
//!
//! Generation is PDGF-style: every cell's randomness comes from a
//! [`SeedTree`] path `(table → column → row)`, so any shard of rows can be
//! produced independently on any worker, deterministically.

use crate::volume::VolumeSpec;
use crate::{DataGenerator, DataSourceKind, Dataset};
use bdb_common::prelude::*;
use bdb_common::record::Table;
use bdb_common::value::{DataType, Field, Schema, Value};
use bdb_common::{BdbError, Result};

/// A generative model for one column.
#[derive(Debug, Clone)]
pub enum ColumnModel {
    /// `start + row_index`: surrogate keys.
    SequentialId {
        /// First id.
        start: i64,
    },
    /// Uniform integer in `[lo, hi]`.
    UniformInt {
        /// Lower bound (inclusive).
        lo: i64,
        /// Upper bound (inclusive).
        hi: i64,
    },
    /// Zipf-popular reference to `cardinality` entities (foreign keys,
    /// hot-key OLTP columns). `exponent = 0` degenerates to uniform.
    SkewedKey {
        /// Number of distinct keys.
        cardinality: u64,
        /// Zipf exponent; 0 means uniform.
        exponent: f64,
    },
    /// Gaussian float.
    GaussianFloat {
        /// Mean.
        mean: f64,
        /// Standard deviation.
        std_dev: f64,
    },
    /// Log-normal float (positive, right-skewed: prices, durations).
    LogNormalFloat {
        /// Location of `ln x`.
        mu: f64,
        /// Scale of `ln x`.
        sigma: f64,
    },
    /// Draw from an explicit empirical value distribution (fitted).
    Empirical {
        /// Distinct values.
        values: Vec<Value>,
        /// Matching non-negative weights.
        weights: Vec<f64>,
    },
    /// Bernoulli boolean.
    Bernoulli {
        /// P(true).
        p: f64,
    },
    /// Monotonically increasing timestamps with exponential gaps.
    MonotonicTimestamp {
        /// First timestamp (ms).
        start: i64,
        /// Mean gap between consecutive rows (ms).
        mean_gap_ms: f64,
    },
}

impl ColumnModel {
    /// Fit a model to a raw column (the veracity-*considered* path).
    ///
    /// Heuristics, in order: small-support columns become empirical
    /// categoricals (preserving the exact value distribution); consecutive
    /// integers become sequential ids; positive floats fit a log-normal;
    /// other numerics fit a Gaussian; timestamps fit a monotonic
    /// exponential-gap model.
    pub fn fit(field: &Field, values: &[Value]) -> Result<ColumnModel> {
        if values.is_empty() {
            return Err(BdbError::DataGen(format!(
                "cannot fit column {} from zero rows",
                field.name
            )));
        }
        match field.data_type {
            DataType::Text => Ok(Self::fit_empirical(values)),
            DataType::Bool => {
                let t = values.iter().filter(|v| v.as_bool() == Some(true)).count();
                Ok(ColumnModel::Bernoulli { p: t as f64 / values.len() as f64 })
            }
            DataType::Int => {
                let ints: Vec<i64> = values.iter().filter_map(Value::as_i64).collect();
                if ints.len() != values.len() {
                    return Err(BdbError::DataGen("nulls in int column".into()));
                }
                let distinct: std::collections::BTreeSet<i64> = ints.iter().copied().collect();
                if distinct.len() <= 32 {
                    return Ok(Self::fit_empirical(values));
                }
                let sequential = ints.windows(2).all(|w| w[1] == w[0] + 1);
                if sequential {
                    return Ok(ColumnModel::SequentialId { start: ints[0] });
                }
                let lo = *distinct.iter().next().unwrap();
                let hi = *distinct.iter().next_back().unwrap();
                Ok(ColumnModel::UniformInt { lo, hi })
            }
            DataType::Float => {
                let xs: Vec<f64> = values.iter().filter_map(Value::as_f64).collect();
                if xs.len() != values.len() {
                    return Err(BdbError::DataGen("nulls in float column".into()));
                }
                if xs.iter().all(|&x| x > 0.0) {
                    let logs: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
                    let s = Summary::of(&logs);
                    Ok(ColumnModel::LogNormalFloat { mu: s.mean(), sigma: s.std_dev().max(1e-6) })
                } else {
                    let s = Summary::of(&xs);
                    Ok(ColumnModel::GaussianFloat { mean: s.mean(), std_dev: s.std_dev().max(1e-6) })
                }
            }
            DataType::Timestamp => {
                let ts: Vec<i64> = values.iter().filter_map(Value::as_i64).collect();
                if ts.len() < 2 {
                    return Ok(ColumnModel::MonotonicTimestamp { start: 0, mean_gap_ms: 1000.0 });
                }
                let gaps: Vec<f64> = ts.windows(2).map(|w| (w[1] - w[0]).max(1) as f64).collect();
                Ok(ColumnModel::MonotonicTimestamp {
                    start: ts[0],
                    mean_gap_ms: Summary::of(&gaps).mean(),
                })
            }
        }
    }

    fn fit_empirical(values: &[Value]) -> ColumnModel {
        let mut counts: std::collections::BTreeMap<String, (Value, u64)> = Default::default();
        for v in values {
            counts
                .entry(v.to_string())
                .or_insert_with(|| (v.clone(), 0))
                .1 += 1;
        }
        let (values, weights) = counts
            .into_values()
            .map(|(v, c)| (v, c as f64))
            .unzip();
        ColumnModel::Empirical { values, weights }
    }

    /// The veracity-*un-considered* baseline for a column: only the type
    /// (and value support, for categoricals) survives; all distribution
    /// shape is discarded.
    pub fn naive_for(field: &Field, values: &[Value]) -> ColumnModel {
        match field.data_type {
            DataType::Text => {
                let distinct: std::collections::BTreeSet<String> = values
                    .iter()
                    .filter_map(|v| v.as_str().map(str::to_string))
                    .collect();
                let vals: Vec<Value> = distinct.into_iter().map(Value::Text).collect();
                let n = vals.len().max(1);
                ColumnModel::Empirical { values: vals, weights: vec![1.0; n] }
            }
            DataType::Bool => ColumnModel::Bernoulli { p: 0.5 },
            DataType::Int => {
                let ints: Vec<i64> = values.iter().filter_map(Value::as_i64).collect();
                let lo = ints.iter().copied().min().unwrap_or(0);
                let hi = ints.iter().copied().max().unwrap_or(100);
                ColumnModel::UniformInt { lo, hi: hi.max(lo) }
            }
            DataType::Float => {
                let xs: Vec<f64> = values.iter().filter_map(Value::as_f64).collect();
                let s = Summary::of(&xs);
                // Gaussian with matched mean but arbitrary textbook sigma.
                ColumnModel::GaussianFloat {
                    mean: if s.count() > 0 { s.mean() } else { 0.0 },
                    std_dev: (if s.count() > 0 { s.mean().abs() } else { 1.0 }) * 0.1 + 1e-6,
                }
            }
            DataType::Timestamp => ColumnModel::MonotonicTimestamp { start: 0, mean_gap_ms: 1000.0 },
        }
    }

    /// Generate the value of this column at `row`, drawing from `rng`.
    ///
    /// `prev_ts` carries the running timestamp for monotonic columns.
    fn generate(&self, row: u64, rng: &mut dyn Rng, prev_ts: &mut i64) -> Value {
        match self {
            ColumnModel::SequentialId { start } => Value::Int(start + row as i64),
            ColumnModel::UniformInt { lo, hi } => Value::Int(rng.next_range(*lo, *hi)),
            ColumnModel::SkewedKey { cardinality, exponent } => {
                if *exponent <= 0.0 {
                    Value::Int(rng.next_bounded(*cardinality) as i64)
                } else {
                    Value::Int(Zipf::new(*cardinality, *exponent).sample(rng) as i64)
                }
            }
            ColumnModel::GaussianFloat { mean, std_dev } => {
                Value::Float(Gaussian::new(*mean, *std_dev).sample(rng))
            }
            ColumnModel::LogNormalFloat { mu, sigma } => {
                Value::Float(LogNormal::new(*mu, *sigma).sample(rng))
            }
            ColumnModel::Empirical { values, weights } => {
                let idx = Categorical::new(weights).sample(rng);
                values[idx].clone()
            }
            ColumnModel::Bernoulli { p } => Value::Bool(rng.next_bool(*p)),
            ColumnModel::MonotonicTimestamp { start, mean_gap_ms } => {
                if *prev_ts == i64::MIN {
                    *prev_ts = *start;
                } else {
                    let gap = Exponential::new(1.0 / mean_gap_ms.max(1.0)).sample(rng);
                    *prev_ts += gap as i64 + 1;
                }
                Value::Timestamp(*prev_ts)
            }
        }
    }
}

/// A schema plus one [`ColumnModel`] per column.
#[derive(Debug, Clone)]
pub struct TableGenerator {
    name: String,
    schema: Schema,
    models: Vec<ColumnModel>,
}

impl TableGenerator {
    /// Assemble a generator from explicit models (the MUDD / purely
    /// synthetic styles).
    ///
    /// # Errors
    /// Fails when the model count does not match the schema.
    pub fn new(name: impl Into<String>, schema: Schema, models: Vec<ColumnModel>) -> Result<Self> {
        if models.len() != schema.len() {
            return Err(BdbError::InvalidConfig(format!(
                "{} models for {} columns",
                models.len(),
                schema.len()
            )));
        }
        Ok(Self { name: name.into(), schema, models })
    }

    /// Fit every column from a raw table (veracity-considered).
    pub fn fit(name: impl Into<String>, raw: &Table) -> Result<Self> {
        let models = raw
            .schema()
            .fields()
            .iter()
            .map(|f| ColumnModel::fit(f, &raw.column(&f.name)?))
            .collect::<Result<Vec<_>>>()?;
        Self::new(name, raw.schema().clone(), models)
    }

    /// Type-default models for every column (veracity-un-considered).
    pub fn naive(name: impl Into<String>, raw: &Table) -> Result<Self> {
        let models = raw
            .schema()
            .fields()
            .iter()
            .map(|f| Ok(ColumnModel::naive_for(f, &raw.column(&f.name)?)))
            .collect::<Result<Vec<_>>>()?;
        Self::new(name, raw.schema().clone(), models)
    }

    /// The output schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The per-column models.
    pub fn models(&self) -> &[ColumnModel] {
        &self.models
    }

    /// Generate `rows` rows starting at `row_offset` — the PDGF-style
    /// parallel entry point: workers call this with disjoint offsets and
    /// the union equals a single sequential generation of the same seed,
    /// column by column.
    ///
    /// Monotonic timestamp columns are sequential by nature, so a shard
    /// re-anchors its running clock **unconditionally** at `row_offset`
    /// using the expected mean gap (`start + row_offset * mean_gap_ms`):
    /// those cells match the sequential run in expectation, not exactly.
    /// For byte-exact parallel timestamps use
    /// [`generate_shard_anchored`](Self::generate_shard_anchored) with
    /// anchors from [`ts_gap_sums`](Self::ts_gap_sums), which is what
    /// [`DataGenerator::generate_parallel`] does.
    pub fn generate_shard(&self, seed: u64, row_offset: u64, rows: u64) -> Table {
        let anchors: Vec<i64> = self
            .models
            .iter()
            .map(|m| match m {
                ColumnModel::MonotonicTimestamp { start, mean_gap_ms } if row_offset > 0 => {
                    start + (row_offset as f64 * mean_gap_ms) as i64
                }
                _ => i64::MIN,
            })
            .collect();
        self.generate_shard_anchored(seed, row_offset, rows, &anchors)
    }

    /// Generate `rows` rows starting at `row_offset`, with the running
    /// clock of each monotonic timestamp column pre-seeded to `anchors[c]`
    /// (`i64::MIN` = start fresh, i.e. row 0 semantics).
    ///
    /// When `anchors[c]` carries the **exact** timestamp of row
    /// `row_offset - 1` (see [`ts_gap_sums`](Self::ts_gap_sums)), the
    /// shard is cell-for-cell identical to the sequential run — including
    /// timestamp columns.
    pub fn generate_shard_anchored(
        &self,
        seed: u64,
        row_offset: u64,
        rows: u64,
        anchors: &[i64],
    ) -> Table {
        let tree = SeedTree::new(seed).child_named(&self.name);
        let mut out = Table::with_capacity(self.schema.clone(), rows as usize);
        let mut prev_ts: Vec<i64> = self
            .models
            .iter()
            .enumerate()
            .map(|(c, _)| anchors.get(c).copied().unwrap_or(i64::MIN))
            .collect();
        for r in row_offset..row_offset + rows {
            let row = self
                .models
                .iter()
                .enumerate()
                .map(|(c, m)| {
                    let mut rng = tree.child(c as u64).cell(r);
                    m.generate(r, &mut rng, &mut prev_ts[c])
                })
                .collect();
            out.push_unchecked(row);
        }
        out
    }

    /// For every column, the summed integer timestamp increments of rows
    /// `[row_offset, row_offset + rows)` — `0` for non-timestamp columns.
    ///
    /// The gap of row `r > 0` depends only on cell `(column, r)` of the
    /// seed tree, so per-chunk sums computed in parallel and prefix-summed
    /// yield the exact clock value at any row boundary: this is the first
    /// pass of the exact two-pass parallel table generation. Row 0
    /// contributes no gap (it emits `start` itself).
    pub fn ts_gap_sums(&self, seed: u64, row_offset: u64, rows: u64) -> Vec<i64> {
        let tree = SeedTree::new(seed).child_named(&self.name);
        self.models
            .iter()
            .enumerate()
            .map(|(c, m)| match m {
                ColumnModel::MonotonicTimestamp { mean_gap_ms, .. } => {
                    let col = tree.child(c as u64);
                    let dist = Exponential::new(1.0 / mean_gap_ms.max(1.0));
                    (row_offset.max(1)..row_offset + rows)
                        .map(|r| {
                            let mut rng = col.cell(r);
                            dist.sample(&mut rng) as i64 + 1
                        })
                        .sum()
                }
                _ => 0,
            })
            .collect()
    }

    /// Resolve a volume spec to a row count, probing a tiny shard for the
    /// average row size (the same resolution `generate` uses).
    fn resolve_rows(&self, seed: u64, volume: &VolumeSpec) -> Result<u64> {
        let probe = self.generate_shard(seed, 0, 8);
        let avg = (probe.byte_size() as f64 / 8.0).max(1.0);
        volume.resolve_items(avg, 1000)
    }
}

impl DataGenerator for TableGenerator {
    fn name(&self) -> &str {
        &self.name
    }

    fn kind(&self) -> DataSourceKind {
        DataSourceKind::Table
    }

    fn generate(&self, seed: u64, volume: &VolumeSpec) -> Result<Dataset> {
        let rows = self.resolve_rows(seed, volume)?;
        Ok(Dataset::Table(self.generate_shard(seed, 0, rows)))
    }

    fn plan_items(&self, seed: u64, volume: &VolumeSpec) -> Result<Option<u64>> {
        self.resolve_rows(seed, volume).map(Some)
    }

    fn generate_shard(
        &self,
        seed: u64,
        _volume: &VolumeSpec,
        offset: u64,
        len: u64,
    ) -> Result<Dataset> {
        Ok(Dataset::Table(TableGenerator::generate_shard(self, seed, offset, len)))
    }

    /// Exact two-pass parallel generation: pass 1 computes per-chunk
    /// timestamp-gap sums in parallel and prefix-sums them into exact
    /// clock anchors, pass 2 generates the anchored shards in parallel —
    /// so the merged table is byte-identical to the sequential run,
    /// monotonic timestamp columns included.
    fn generate_parallel(&self, seed: u64, volume: &VolumeSpec, workers: usize) -> Result<Dataset> {
        let workers = bdb_common::pool::effective_workers(workers);
        let rows = self.resolve_rows(seed, volume)?;
        if workers <= 1 || rows < 2 {
            return DataGenerator::generate(self, seed, volume);
        }
        let chunks =
            bdb_common::pool::split_even(rows, (workers * 4).min(rows as usize));
        let has_ts = self
            .models
            .iter()
            .any(|m| matches!(m, ColumnModel::MonotonicTimestamp { .. }));
        let anchors: Vec<Vec<i64>> = if has_ts {
            let sums = bdb_common::pool::par_map_chunks(workers, chunks.clone(), |c| {
                self.ts_gap_sums(seed, c.offset, c.len)
            });
            // Exclusive prefix sum over chunk gap sums, offset by each
            // column's `start`, gives the exact clock at each chunk start.
            let mut running: Vec<i64> = self
                .models
                .iter()
                .map(|m| match m {
                    ColumnModel::MonotonicTimestamp { start, .. } => *start,
                    _ => i64::MIN,
                })
                .collect();
            let mut anchors = Vec::with_capacity(chunks.len());
            // The first chunk starts fresh (row 0 emits `start` itself).
            anchors.push(vec![i64::MIN; self.models.len()]);
            for s in sums.iter().take(chunks.len() - 1) {
                for (c, sum) in s.iter().enumerate() {
                    if running[c] != i64::MIN {
                        running[c] += sum;
                    }
                }
                anchors.push(running.clone());
            }
            anchors
        } else {
            vec![vec![i64::MIN; self.models.len()]; chunks.len()]
        };
        let parts = bdb_common::pool::par_map_chunks(workers, chunks, |c| {
            self.generate_shard_anchored(seed, c.offset, c.len, &anchors[c.index])
        });
        let mut iter = parts.into_iter();
        let mut out = iter.next().expect("at least one chunk");
        for t in iter {
            out.append(t)?;
        }
        Ok(Dataset::Table(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::raw_retail_table;

    #[test]
    fn fit_recognises_sequential_ids() {
        let raw = raw_retail_table();
        let g = TableGenerator::fit("retail", &raw).unwrap();
        assert!(matches!(g.models()[0], ColumnModel::SequentialId { start: 0 }));
    }

    #[test]
    fn fit_text_becomes_empirical() {
        let raw = raw_retail_table();
        let g = TableGenerator::fit("retail", &raw).unwrap();
        let product_idx = raw.schema().index_of("product").unwrap();
        match &g.models()[product_idx] {
            ColumnModel::Empirical { values, weights } => {
                assert_eq!(values.len(), weights.len());
                assert!(values.len() <= 12);
            }
            m => panic!("expected empirical, got {m:?}"),
        }
    }

    #[test]
    fn fit_positive_floats_are_lognormal() {
        let raw = raw_retail_table();
        let g = TableGenerator::fit("retail", &raw).unwrap();
        let price_idx = raw.schema().index_of("price").unwrap();
        assert!(matches!(g.models()[price_idx], ColumnModel::LogNormalFloat { .. }));
    }

    #[test]
    fn generated_rows_validate_against_schema() {
        let raw = raw_retail_table();
        let g = TableGenerator::fit("retail", &raw).unwrap();
        let t = g.generate_shard(1, 0, 50);
        assert_eq!(t.len(), 50);
        for row in t.rows() {
            t.schema().validate_row(row).unwrap();
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let raw = raw_retail_table();
        let g = TableGenerator::fit("retail", &raw).unwrap();
        assert_eq!(g.generate_shard(9, 0, 30), g.generate_shard(9, 0, 30));
        assert_ne!(g.generate_shard(9, 0, 30), g.generate_shard(10, 0, 30));
    }

    #[test]
    fn shards_union_to_non_timestamp_columns_of_full_run() {
        let raw = raw_retail_table();
        let g = TableGenerator::fit("retail", &raw).unwrap();
        let full = g.generate_shard(4, 0, 40);
        let a = g.generate_shard(4, 0, 20);
        let b = g.generate_shard(4, 20, 20);
        // Non-timestamp cells must match cell-for-cell (PDGF property).
        let ts_idx = raw.schema().index_of("order_ts").unwrap();
        for r in 0..20 {
            for c in 0..raw.schema().len() {
                if c == ts_idx {
                    continue;
                }
                assert_eq!(full.value(r, c), a.value(r, c), "row {r} col {c}");
                assert_eq!(full.value(r + 20, c), b.value(r, c), "row {} col {c}", r + 20);
            }
        }
    }

    #[test]
    fn timestamps_are_monotonic_within_a_shard() {
        let raw = raw_retail_table();
        let g = TableGenerator::fit("retail", &raw).unwrap();
        let t = g.generate_shard(2, 0, 100);
        let ts = t.column("order_ts").unwrap();
        for w in ts.windows(2) {
            assert!(w[0].as_i64().unwrap() < w[1].as_i64().unwrap());
        }
    }

    #[test]
    fn naive_models_discard_shape() {
        let raw = raw_retail_table();
        let g = TableGenerator::naive("retail", &raw).unwrap();
        let product_idx = raw.schema().index_of("product").unwrap();
        match &g.models()[product_idx] {
            ColumnModel::Empirical { weights, .. } => {
                assert!(weights.windows(2).all(|w| w[0] == w[1]), "uniform weights");
            }
            m => panic!("expected empirical, got {m:?}"),
        }
    }

    #[test]
    fn skewed_key_model_generates_hot_keys() {
        let schema = Schema::new(vec![Field::new("k", DataType::Int)]);
        let g = TableGenerator::new(
            "t",
            schema,
            vec![ColumnModel::SkewedKey { cardinality: 100, exponent: 1.0 }],
        )
        .unwrap();
        let t = g.generate_shard(1, 0, 2000);
        let zeros = t
            .rows()
            .iter()
            .filter(|r| r[0].as_i64() == Some(0))
            .count();
        assert!(zeros > 100, "hot key count {zeros}");
    }

    #[test]
    fn model_count_mismatch_is_rejected() {
        let schema = Schema::new(vec![Field::new("k", DataType::Int)]);
        assert!(TableGenerator::new("t", schema, vec![]).is_err());
    }

    #[test]
    fn shard_reanchors_timestamps_unconditionally() {
        // Regression: the old re-anchor only fired when the shard's first
        // generated clock value equalled `start`, so an offset shard could
        // silently restart its clock at `start` and diverge from the
        // sequential run by the whole anchor offset. The anchor must apply
        // for every `row_offset > 0`, regardless of generated values.
        let schema = Schema::new(vec![Field::new("ts", DataType::Timestamp)]);
        let g = TableGenerator::new(
            "t",
            schema,
            vec![ColumnModel::MonotonicTimestamp { start: 1_000, mean_gap_ms: 100.0 }],
        )
        .unwrap();
        let shard = g.generate_shard(7, 500, 10);
        let anchor = 1_000 + (500.0 * 100.0) as i64;
        let first = shard.value(0, 0).unwrap().as_i64().unwrap();
        assert!(
            first > anchor && first < anchor + 20 * 100,
            "shard clock {first} must continue from anchor {anchor}, not restart at start"
        );
        // And it stays monotonic from there.
        let col = shard.column("ts").unwrap();
        for w in col.windows(2) {
            assert!(w[0].as_i64().unwrap() < w[1].as_i64().unwrap());
        }
    }

    #[test]
    fn parallel_generation_is_byte_identical_including_timestamps() {
        let raw = raw_retail_table();
        let g = TableGenerator::fit("retail", &raw).unwrap();
        let vol = VolumeSpec::Items(500);
        let seq = DataGenerator::generate(&g, 11, &vol).unwrap();
        for workers in [2, 3, 4] {
            let par = g.generate_parallel(11, &vol, workers).unwrap();
            match (&seq, &par) {
                (Dataset::Table(a), Dataset::Table(b)) => {
                    assert_eq!(a, b, "workers {workers}")
                }
                _ => panic!("expected tables"),
            }
        }
    }

    #[test]
    fn ts_gap_sums_match_sequential_clock() {
        let raw = raw_retail_table();
        let g = TableGenerator::fit("retail", &raw).unwrap();
        let ts_idx = raw.schema().index_of("order_ts").unwrap();
        let full = g.generate_shard(5, 0, 64);
        let sums = g.ts_gap_sums(5, 0, 40);
        let start = match g.models()[ts_idx] {
            ColumnModel::MonotonicTimestamp { start, .. } => start,
            _ => unreachable!(),
        };
        // start + gaps of rows 1..=39 == clock value at row 39.
        assert_eq!(
            start + sums[ts_idx],
            full.value(39, ts_idx).unwrap().as_i64().unwrap()
        );
    }

    #[test]
    fn volume_bytes_resolves() {
        let raw = raw_retail_table();
        let g = TableGenerator::fit("retail", &raw).unwrap();
        let d = g.generate(1, &VolumeSpec::Bytes(10_000)).unwrap();
        let size = d.byte_size();
        assert!((8_000..20_000).contains(&size), "size {size}");
    }
}
