//! Latent Dirichlet Allocation: the paper's worked veracity example.
//!
//! Section 3.2 describes the text path verbatim: "a text generator can
//! apply LDA to describe the topic and word distributions ... first learns
//! from a real text data set to obtain a word dictionary ... then trains
//! the parameters α and β of an LDA model ... finally generates synthetic
//! text data using the trained LDA model." [`LdaModel::train`] is the
//! collapsed Gibbs sampler; [`LdaModel::generate_doc`] is the generative
//! pass; [`LdaModel::infer_theta`] folds a document into trained topics so
//! the veracity metrics can compare topic distributions of raw and
//! synthetic corpora.

use crate::text::{fit_length_model, sample_length};
use crate::volume::VolumeSpec;
use crate::{DataGenerator, DataSourceKind, Dataset};
use bdb_common::prelude::*;
use bdb_common::{BdbError, Result};

/// A trained LDA topic model over a learned dictionary.
#[derive(Debug, Clone)]
pub struct LdaModel {
    vocab: Vocabulary,
    num_topics: usize,
    alpha: f64,
    /// Topic-word distributions φ, `num_topics × vocab_len`, each row a pmf.
    phi: Vec<Vec<f64>>,
    /// Alias tables per topic for O(1) word sampling during generation.
    word_samplers: Vec<Alias>,
    length_mu: f64,
    length_sigma: f64,
}

/// Training hyper-parameters for [`LdaModel::train`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LdaConfig {
    /// Number of latent topics K.
    pub num_topics: usize,
    /// Symmetric document-topic prior α.
    pub alpha: f64,
    /// Symmetric topic-word prior β.
    pub beta: f64,
    /// Collapsed-Gibbs sweeps over the corpus.
    pub iterations: usize,
}

impl Default for LdaConfig {
    fn default() -> Self {
        Self { num_topics: 4, alpha: 0.1, beta: 0.01, iterations: 200 }
    }
}

impl LdaModel {
    /// Learn a dictionary from raw texts and train the topic model on them.
    pub fn train(texts: &[&str], config: LdaConfig, seed: u64) -> Result<Self> {
        let mut vocab = Vocabulary::new();
        let docs: Vec<Document> = texts
            .iter()
            .map(|t| Document::from_text(t, &mut vocab))
            .collect();
        Self::train_documents(docs, vocab, config, seed)
    }

    /// Train on already-tokenised documents.
    pub fn train_documents(
        docs: Vec<Document>,
        vocab: Vocabulary,
        config: LdaConfig,
        seed: u64,
    ) -> Result<Self> {
        let k = config.num_topics;
        let v = vocab.len();
        if k == 0 || v == 0 || docs.is_empty() {
            return Err(BdbError::DataGen(
                "LDA training needs topics, a vocabulary and documents".into(),
            ));
        }
        let (alpha, beta) = (config.alpha, config.beta);
        if alpha <= 0.0 || beta <= 0.0 {
            return Err(BdbError::DataGen("LDA priors must be positive".into()));
        }

        let mut rng = Xoshiro256::new(seed);
        // Count matrices for collapsed Gibbs.
        let mut n_dk = vec![vec![0u32; k]; docs.len()]; // doc-topic
        let mut n_kw = vec![vec![0u32; v]; k]; // topic-word
        let mut n_k = vec![0u32; k]; // topic totals
        // Random topic initialisation.
        let mut assignments: Vec<Vec<usize>> = docs
            .iter()
            .enumerate()
            .map(|(d, doc)| {
                doc.words
                    .iter()
                    .map(|&w| {
                        let z = rng.next_bounded(k as u64) as usize;
                        n_dk[d][z] += 1;
                        n_kw[z][w as usize] += 1;
                        n_k[z] += 1;
                        z
                    })
                    .collect()
            })
            .collect();

        let v_beta = v as f64 * beta;
        let mut weights = vec![0.0f64; k];
        for _ in 0..config.iterations {
            for (d, doc) in docs.iter().enumerate() {
                for (i, &w) in doc.words.iter().enumerate() {
                    let w = w as usize;
                    let old = assignments[d][i];
                    n_dk[d][old] -= 1;
                    n_kw[old][w] -= 1;
                    n_k[old] -= 1;
                    // Full conditional p(z = t | rest).
                    let mut total = 0.0;
                    for (t, wt) in weights.iter_mut().enumerate() {
                        let p = (n_dk[d][t] as f64 + alpha)
                            * (n_kw[t][w] as f64 + beta)
                            / (n_k[t] as f64 + v_beta);
                        total += p;
                        *wt = total;
                    }
                    let u = rng.next_f64() * total;
                    let new = weights.partition_point(|&c| c < u).min(k - 1);
                    assignments[d][i] = new;
                    n_dk[d][new] += 1;
                    n_kw[new][w] += 1;
                    n_k[new] += 1;
                }
            }
        }

        // Point-estimate φ from the final counts.
        let phi: Vec<Vec<f64>> = (0..k)
            .map(|t| {
                let denom = n_k[t] as f64 + v_beta;
                (0..v)
                    .map(|w| (n_kw[t][w] as f64 + beta) / denom)
                    .collect()
            })
            .collect();
        let word_samplers = phi.iter().map(|row| Alias::new(row)).collect();
        let (length_mu, length_sigma) = fit_length_model(&docs);
        Ok(Self {
            vocab,
            num_topics: k,
            alpha,
            phi,
            word_samplers,
            length_mu,
            length_sigma,
        })
    }

    /// The learned dictionary.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Number of topics K.
    pub fn num_topics(&self) -> usize {
        self.num_topics
    }

    /// The trained topic-word distribution φ_t.
    pub fn topic_word_dist(&self, topic: usize) -> &[f64] {
        &self.phi[topic]
    }

    /// The `top_n` most probable words of a topic, for reports.
    pub fn top_words(&self, topic: usize, top_n: usize) -> Vec<&str> {
        let mut idx: Vec<usize> = (0..self.phi[topic].len()).collect();
        idx.sort_by(|&a, &b| self.phi[topic][b].partial_cmp(&self.phi[topic][a]).unwrap());
        idx.into_iter()
            .take(top_n)
            .filter_map(|w| self.vocab.word(w as u32))
            .collect()
    }

    /// Generate one synthetic document from the trained model.
    pub fn generate_doc(&self, rng: &mut dyn Rng) -> Document {
        let theta = sample_dirichlet(rng, self.alpha, self.num_topics);
        let topic_sampler = Categorical::new(&theta);
        let len = sample_length(self.length_mu, self.length_sigma, rng);
        let words = (0..len)
            .map(|_| {
                let t = topic_sampler.sample(rng);
                self.word_samplers[t].sample(rng) as u32
            })
            .collect();
        Document { words }
    }

    /// Generate one document with the memory-light sampler: a linear CDF
    /// scan over φ instead of the precomputed alias tables.
    ///
    /// This is the paper's Section 5.1 "algorithmic" velocity lever made
    /// concrete: the alias path trades O(K·V) extra memory for O(1) word
    /// draws; this path spends no extra memory and pays O(V) per word. The
    /// velocity benches measure the resulting rate difference.
    pub fn generate_doc_low_memory(&self, rng: &mut dyn Rng) -> Document {
        let theta = sample_dirichlet(rng, self.alpha, self.num_topics);
        let topic_sampler = Categorical::new(&theta);
        let len = sample_length(self.length_mu, self.length_sigma, rng);
        let words = (0..len)
            .map(|_| {
                let t = topic_sampler.sample(rng);
                let u = rng.next_f64();
                let mut acc = 0.0;
                let row = &self.phi[t];
                let mut picked = row.len() - 1;
                for (w, &p) in row.iter().enumerate() {
                    acc += p;
                    if u < acc {
                        picked = w;
                        break;
                    }
                }
                picked as u32
            })
            .collect();
        Document { words }
    }

    /// Fold-in estimate of a document's topic mixture θ under the trained
    /// φ (a few fixed-φ Gibbs sweeps). Used by the veracity metrics to
    /// compare raw-vs-synthetic topic distributions.
    pub fn infer_theta(&self, doc: &Document, rng: &mut dyn Rng) -> Vec<f64> {
        let k = self.num_topics;
        if doc.is_empty() {
            return vec![1.0 / k as f64; k];
        }
        let mut counts = vec![0u32; k];
        let mut z: Vec<usize> = doc
            .words
            .iter()
            .map(|_| {
                let t = rng.next_bounded(k as u64) as usize;
                counts[t] += 1;
                t
            })
            .collect();
        let mut weights = vec![0.0f64; k];
        for _ in 0..20 {
            for (i, &w) in doc.words.iter().enumerate() {
                let w = w as usize;
                counts[z[i]] -= 1;
                let mut total = 0.0;
                for (t, wt) in weights.iter_mut().enumerate() {
                    let pw = if w < self.phi[t].len() { self.phi[t][w] } else { 1e-12 };
                    let p = (counts[t] as f64 + self.alpha) * pw;
                    total += p;
                    *wt = total;
                }
                let u = rng.next_f64() * total;
                let new = weights.partition_point(|&c| c < u).min(k - 1);
                z[i] = new;
                counts[new] += 1;
            }
        }
        let denom = doc.len() as f64 + k as f64 * self.alpha;
        counts
            .iter()
            .map(|&c| (c as f64 + self.alpha) / denom)
            .collect()
    }
}

impl DataGenerator for LdaModel {
    fn name(&self) -> &str {
        "text/lda"
    }

    fn kind(&self) -> DataSourceKind {
        DataSourceKind::Text
    }

    fn generate(&self, seed: u64, volume: &VolumeSpec) -> Result<Dataset> {
        let n_docs = crate::text::resolve_docs(self.length_mu, self.length_sigma, volume)?;
        DataGenerator::generate_shard(self, seed, volume, 0, n_docs)
    }

    fn plan_items(&self, _seed: u64, volume: &VolumeSpec) -> Result<Option<u64>> {
        crate::text::resolve_docs(self.length_mu, self.length_sigma, volume).map(Some)
    }

    fn generate_shard(
        &self,
        seed: u64,
        _volume: &VolumeSpec,
        offset: u64,
        len: u64,
    ) -> Result<Dataset> {
        let docs =
            crate::text::docs_in_range(seed, offset, len, |rng| self.generate_doc(rng));
        Ok(Dataset::Text { docs, vocab: self.vocab.clone() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::RAW_TEXT_CORPUS;

    fn small_config() -> LdaConfig {
        LdaConfig { num_topics: 4, alpha: 0.1, beta: 0.01, iterations: 80 }
    }

    #[test]
    fn train_rejects_bad_inputs() {
        assert!(LdaModel::train(&[], small_config(), 1).is_err());
        let bad = LdaConfig { num_topics: 0, ..small_config() };
        assert!(LdaModel::train(&["a b"], bad, 1).is_err());
        let bad = LdaConfig { alpha: 0.0, ..small_config() };
        assert!(LdaModel::train(&["a b"], bad, 1).is_err());
    }

    #[test]
    fn phi_rows_are_distributions() {
        let m = LdaModel::train(&RAW_TEXT_CORPUS, small_config(), 42).unwrap();
        for t in 0..m.num_topics() {
            let total: f64 = m.topic_word_dist(t).iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "topic {t} sums to {total}");
            assert!(m.topic_word_dist(t).iter().all(|&p| p > 0.0));
        }
    }

    #[test]
    fn topics_separate_the_corpus() {
        // After training on the 4-topic corpus, the dominant topics of an
        // astronomy word and a cooking word should differ.
        let m = LdaModel::train(&RAW_TEXT_CORPUS, small_config(), 42).unwrap();
        let argmax_topic = |word: &str| -> usize {
            let w = m.vocabulary().id(word).unwrap() as usize;
            (0..m.num_topics())
                .max_by(|&a, &b| m.phi[a][w].partial_cmp(&m.phi[b][w]).unwrap())
                .unwrap()
        };
        assert_ne!(argmax_topic("galaxy"), argmax_topic("butter"));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let m = LdaModel::train(&RAW_TEXT_CORPUS, small_config(), 42).unwrap();
        let a = m.generate(7, &VolumeSpec::Items(10)).unwrap();
        let b = m.generate(7, &VolumeSpec::Items(10)).unwrap();
        match (a, b) {
            (Dataset::Text { docs: da, .. }, Dataset::Text { docs: db, .. }) => {
                assert_eq!(da, db);
                assert_eq!(da.len(), 10);
            }
            _ => panic!("expected text"),
        }
    }

    #[test]
    fn generated_words_are_in_vocabulary() {
        let m = LdaModel::train(&RAW_TEXT_CORPUS, small_config(), 42).unwrap();
        let v = m.vocabulary().len() as u32;
        let mut rng = Xoshiro256::new(9);
        let doc = m.generate_doc(&mut rng);
        assert!(!doc.is_empty());
        assert!(doc.words.iter().all(|&w| w < v));
    }

    #[test]
    fn infer_theta_is_a_distribution() {
        let m = LdaModel::train(&RAW_TEXT_CORPUS, small_config(), 42).unwrap();
        let mut rng = Xoshiro256::new(3);
        let doc = m.generate_doc(&mut rng);
        let theta = m.infer_theta(&doc, &mut rng);
        assert_eq!(theta.len(), 4);
        assert!((theta.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn infer_theta_empty_doc_is_uniform() {
        let m = LdaModel::train(&RAW_TEXT_CORPUS, small_config(), 42).unwrap();
        let mut rng = Xoshiro256::new(3);
        let theta = m.infer_theta(&Document::default(), &mut rng);
        assert!(theta.iter().all(|&p| (p - 0.25).abs() < 1e-12));
    }

    #[test]
    fn top_words_returns_requested_count() {
        let m = LdaModel::train(&RAW_TEXT_CORPUS, small_config(), 42).unwrap();
        assert_eq!(m.top_words(0, 5).len(), 5);
    }
}
