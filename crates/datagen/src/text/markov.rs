//! N-gram (Markov chain) text generation.
//!
//! A middle point on the veracity spectrum between uniform random words and
//! the full LDA topic model: the bigram chain preserves local word
//! co-occurrence statistics of the raw corpus (so "olive oil" stays
//! together), at the cost of any document-level topical structure. The
//! Table 1 ablation benches compare all three.

use crate::text::{fit_length_model, sample_length};
use crate::volume::VolumeSpec;
use crate::{DataGenerator, DataSourceKind, Dataset};
use bdb_common::prelude::*;
use bdb_common::{BdbError, Result};

/// A trained bigram chain over a learned dictionary.
#[derive(Debug, Clone)]
pub struct MarkovTextGenerator {
    vocab: Vocabulary,
    /// Per-word successor distributions as (successor id, cumulative count).
    transitions: Vec<Vec<(u32, u32)>>,
    /// Distribution of document-initial words.
    initial: Vec<(u32, u32)>,
    length_mu: f64,
    length_sigma: f64,
}

impl MarkovTextGenerator {
    /// Learn the dictionary and bigram counts from raw texts.
    pub fn train(texts: &[&str]) -> Result<Self> {
        let mut vocab = Vocabulary::new();
        let docs: Vec<Document> = texts
            .iter()
            .map(|t| Document::from_text(t, &mut vocab))
            .collect();
        if vocab.is_empty() {
            return Err(BdbError::DataGen("markov training corpus is empty".into()));
        }
        let v = vocab.len();
        let mut counts: Vec<std::collections::BTreeMap<u32, u32>> = vec![Default::default(); v];
        let mut initial_counts: std::collections::BTreeMap<u32, u32> = Default::default();
        for doc in &docs {
            if let Some(&first) = doc.words.first() {
                *initial_counts.entry(first).or_insert(0) += 1;
            }
            for w in doc.words.windows(2) {
                *counts[w[0] as usize].entry(w[1]).or_insert(0) += 1;
            }
        }
        let to_cumulative = |m: &std::collections::BTreeMap<u32, u32>| -> Vec<(u32, u32)> {
            let mut acc = 0;
            m.iter()
                .map(|(&w, &c)| {
                    acc += c;
                    (w, acc)
                })
                .collect()
        };
        let transitions = counts.iter().map(to_cumulative).collect();
        let initial = to_cumulative(&initial_counts);
        let (length_mu, length_sigma) = fit_length_model(&docs);
        Ok(Self { vocab, transitions, initial, length_mu, length_sigma })
    }

    /// The learned dictionary.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    fn draw(table: &[(u32, u32)], rng: &mut dyn Rng) -> Option<u32> {
        let total = table.last()?.1;
        let u = rng.next_bounded(total as u64) as u32;
        let idx = table.partition_point(|&(_, c)| c <= u);
        Some(table[idx.min(table.len() - 1)].0)
    }

    /// Generate one document by walking the chain.
    pub fn generate_doc(&self, rng: &mut dyn Rng) -> Document {
        let len = sample_length(self.length_mu, self.length_sigma, rng);
        let mut words = Vec::with_capacity(len);
        let mut current = match Self::draw(&self.initial, rng) {
            Some(w) => w,
            None => return Document::default(),
        };
        words.push(current);
        while words.len() < len {
            match Self::draw(&self.transitions[current as usize], rng) {
                Some(next) => {
                    words.push(next);
                    current = next;
                }
                // Dead end (corpus-final word): restart from an initial word.
                None => match Self::draw(&self.initial, rng) {
                    Some(w) => {
                        words.push(w);
                        current = w;
                    }
                    None => break,
                },
            }
        }
        Document { words }
    }
}

impl DataGenerator for MarkovTextGenerator {
    fn name(&self) -> &str {
        "text/markov-bigram"
    }

    fn kind(&self) -> DataSourceKind {
        DataSourceKind::Text
    }

    fn generate(&self, seed: u64, volume: &VolumeSpec) -> Result<Dataset> {
        let n_docs = crate::text::resolve_docs(self.length_mu, self.length_sigma, volume)?;
        DataGenerator::generate_shard(self, seed, volume, 0, n_docs)
    }

    fn plan_items(&self, _seed: u64, volume: &VolumeSpec) -> Result<Option<u64>> {
        crate::text::resolve_docs(self.length_mu, self.length_sigma, volume).map(Some)
    }

    fn generate_shard(
        &self,
        seed: u64,
        _volume: &VolumeSpec,
        offset: u64,
        len: u64,
    ) -> Result<Dataset> {
        let docs =
            crate::text::docs_in_range(seed, offset, len, |rng| self.generate_doc(rng));
        Ok(Dataset::Text { docs, vocab: self.vocab.clone() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::RAW_TEXT_CORPUS;

    #[test]
    fn train_rejects_empty() {
        assert!(MarkovTextGenerator::train(&[]).is_err());
        assert!(MarkovTextGenerator::train(&["..."]).is_err());
    }

    #[test]
    fn generated_bigrams_exist_in_corpus_chain() {
        let g = MarkovTextGenerator::train(&RAW_TEXT_CORPUS).unwrap();
        let mut rng = Xoshiro256::new(11);
        let doc = g.generate_doc(&mut rng);
        assert!(!doc.is_empty());
        // Every generated transition must be a trained transition or a
        // restart at a document-initial word.
        for w in doc.words.windows(2) {
            let trans_ok = g.transitions[w[0] as usize].iter().any(|&(n, _)| n == w[1]);
            let restart_ok = g.initial.iter().any(|&(n, _)| n == w[1]);
            assert!(trans_ok || restart_ok, "impossible bigram {:?}", w);
        }
    }

    #[test]
    fn deterministic_generation() {
        let g = MarkovTextGenerator::train(&RAW_TEXT_CORPUS).unwrap();
        let a = g.generate(3, &VolumeSpec::Items(5)).unwrap();
        let b = g.generate(3, &VolumeSpec::Items(5)).unwrap();
        match (a, b) {
            (Dataset::Text { docs: da, .. }, Dataset::Text { docs: db, .. }) => {
                assert_eq!(da, db)
            }
            _ => panic!(),
        }
    }

    #[test]
    fn single_word_corpus_generates() {
        let g = MarkovTextGenerator::train(&["hello"]).unwrap();
        let mut rng = Xoshiro256::new(1);
        let doc = g.generate_doc(&mut rng);
        // Only one word exists; the chain restarts repeatedly.
        assert!(doc.words.iter().all(|&w| w == 0));
    }
}
