//! Text data generation (the Figure 3 text path).
//!
//! Three generators with increasing veracity, mirroring the paper's Table 1
//! spectrum:
//!
//! * [`NaiveTextGenerator`] — i.i.d. words drawn uniformly from the
//!   dictionary; the "un-considered" veracity style of HiBench/GridMix's
//!   random text writers. Exists as the ablation baseline.
//! * [`markov::MarkovTextGenerator`] — an n-gram model that preserves local
//!   word co-occurrence.
//! * [`lda::LdaModel`] — the paper's worked example: learn a dictionary
//!   from a real corpus, train LDA topic/word distributions on it, then
//!   generate synthetic documents from the trained model.

pub mod lda;
pub mod markov;

use crate::volume::VolumeSpec;
use crate::{DataGenerator, DataSourceKind, Dataset};
use bdb_common::prelude::*;
use bdb_common::Result;

/// Fit a log-normal document-length model from a corpus.
///
/// Returns `(mu, sigma)` of the underlying normal of `ln(len)`; generators
/// draw synthetic document lengths from it so the length distribution is a
/// preserved characteristic too.
pub fn fit_length_model(docs: &[Document]) -> (f64, f64) {
    let lens: Vec<f64> = docs
        .iter()
        .filter(|d| !d.is_empty())
        .map(|d| (d.len() as f64).ln())
        .collect();
    if lens.is_empty() {
        return (3.0, 0.5);
    }
    let s = Summary::of(&lens);
    (s.mean(), s.std_dev().max(0.01))
}

/// Draw a document length from a fitted log-normal model, clamped to
/// `[1, 10_000]`.
pub fn sample_length(mu: f64, sigma: f64, rng: &mut dyn Rng) -> usize {
    let len = LogNormal::new(mu, sigma).sample(rng);
    (len.round() as usize).clamp(1, 10_000)
}

/// Resolve a volume spec to a document count under a fitted log-normal
/// length model (`avg words × ~4 bytes/word`). Shared by all three text
/// generators so `plan_items` and `generate` agree exactly.
pub(crate) fn resolve_docs(mu: f64, sigma: f64, volume: &VolumeSpec) -> Result<u64> {
    let avg_len = (mu + sigma * sigma / 2.0).exp();
    volume.resolve_items(avg_len * 4.0, 1000)
}

/// Generate documents `[offset, offset + len)` of the sequential run: every
/// document draws from its own [`SeedTree`] cell, so any document range is
/// reproducible independently — text's shard-determinism contract is exact.
pub(crate) fn docs_in_range(
    seed: u64,
    offset: u64,
    len: u64,
    gen_doc: impl Fn(&mut dyn Rng) -> Document,
) -> Vec<Document> {
    let tree = SeedTree::new(seed);
    (offset..offset + len)
        .map(|i| {
            let mut rng = tree.cell(i);
            gen_doc(&mut rng)
        })
        .collect()
}

/// Veracity-unaware baseline: uniform i.i.d. words over the vocabulary.
#[derive(Debug, Clone)]
pub struct NaiveTextGenerator {
    vocab: Vocabulary,
    length_mu: f64,
    length_sigma: f64,
}

impl NaiveTextGenerator {
    /// Build from a corpus: only the dictionary and length model are
    /// learned; word frequencies are deliberately ignored.
    pub fn from_corpus(texts: &[&str]) -> Self {
        let mut vocab = Vocabulary::new();
        let docs: Vec<Document> = texts
            .iter()
            .map(|t| Document::from_text(t, &mut vocab))
            .collect();
        let (mu, sigma) = fit_length_model(&docs);
        Self { vocab, length_mu: mu, length_sigma: sigma }
    }

    /// The dictionary this generator draws from.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }
}

impl DataGenerator for NaiveTextGenerator {
    fn name(&self) -> &str {
        "text/naive-uniform"
    }

    fn kind(&self) -> DataSourceKind {
        DataSourceKind::Text
    }

    fn generate(&self, seed: u64, volume: &VolumeSpec) -> Result<Dataset> {
        let n_docs = resolve_docs(self.length_mu, self.length_sigma, volume)?;
        DataGenerator::generate_shard(self, seed, volume, 0, n_docs)
    }

    fn plan_items(&self, _seed: u64, volume: &VolumeSpec) -> Result<Option<u64>> {
        resolve_docs(self.length_mu, self.length_sigma, volume).map(Some)
    }

    fn generate_shard(
        &self,
        seed: u64,
        _volume: &VolumeSpec,
        offset: u64,
        len: u64,
    ) -> Result<Dataset> {
        let v = self.vocab.len() as u64;
        let docs = docs_in_range(seed, offset, len, |rng| {
            let len = sample_length(self.length_mu, self.length_sigma, rng);
            let words = (0..len).map(|_| rng.next_bounded(v) as u32).collect();
            Document { words }
        });
        Ok(Dataset::Text { docs, vocab: self.vocab.clone() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::RAW_TEXT_CORPUS;

    #[test]
    fn length_model_reflects_corpus() {
        let mut v = Vocabulary::new();
        let docs: Vec<Document> = RAW_TEXT_CORPUS
            .iter()
            .map(|t| Document::from_text(t, &mut v))
            .collect();
        let (mu, sigma) = fit_length_model(&docs);
        // Corpus documents are ~25-40 words: ln in [3.2, 3.7].
        assert!((3.0..4.0).contains(&mu), "mu {mu}");
        assert!(sigma < 0.5, "sigma {sigma}");
    }

    #[test]
    fn length_model_empty_corpus_defaults() {
        assert_eq!(fit_length_model(&[]), (3.0, 0.5));
    }

    #[test]
    fn sample_length_clamps() {
        let mut rng = Xoshiro256::new(1);
        for _ in 0..100 {
            let l = sample_length(3.0, 0.5, &mut rng);
            assert!((1..=10_000).contains(&l));
        }
    }

    #[test]
    fn naive_generator_is_deterministic_and_sized() {
        let g = NaiveTextGenerator::from_corpus(&RAW_TEXT_CORPUS);
        let a = g.generate(5, &VolumeSpec::Items(20)).unwrap();
        let b = g.generate(5, &VolumeSpec::Items(20)).unwrap();
        match (&a, &b) {
            (Dataset::Text { docs: da, .. }, Dataset::Text { docs: db, .. }) => {
                assert_eq!(da, db);
                assert_eq!(da.len(), 20);
                assert!(da.iter().all(|d| !d.is_empty()));
            }
            _ => panic!("expected text datasets"),
        }
        let c = g.generate(6, &VolumeSpec::Items(20)).unwrap();
        match (&a, &c) {
            (Dataset::Text { docs: da, .. }, Dataset::Text { docs: dc, .. }) => {
                assert_ne!(da, dc);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn naive_generator_byte_volume() {
        let g = NaiveTextGenerator::from_corpus(&RAW_TEXT_CORPUS);
        let d = g.generate(1, &VolumeSpec::Bytes(40_000)).unwrap();
        // ~4 bytes per word, ~33 words per doc: ~300 docs.
        let n = d.item_count();
        assert!((150..=900).contains(&n), "docs {n}");
    }
}
