//! Velocity control: generation-rate management (Section 5.1).
//!
//! The paper describes two ways to control data velocity:
//!
//! 1. **Parallel strategy** — deploy multiple data generators; the rate
//!    scales with the worker count. [`VelocityController`] runs any
//!    [`DataGenerator`] across N threads with disjoint hierarchical seeds.
//! 2. **Algorithmic strategy** — adjust the generator algorithm itself
//!    (e.g. spend memory to gain speed). The framework's concrete lever is
//!    `LdaModel::generate_doc` (alias tables, memory-heavy, O(1)/word) vs
//!    `LdaModel::generate_doc_low_memory` (O(V)/word); the controller's
//!    [`measure_rate`] quantifies any such lever.
//!
//! Both strategies support a *target* rate: workers throttle with a
//! deadline pacer so the achieved rate tracks the target, and the outcome
//! reports the relative rate error (the Table 1 "velocity controllability"
//! probe).

use crate::volume::VolumeSpec;
use crate::{DataGenerator, Dataset};
use bdb_common::{BdbError, Result};
use std::time::{Duration, Instant};

/// Outcome of a rate-controlled generation run.
#[derive(Debug)]
pub struct GenerationOutcome {
    /// The generated data, one dataset per chunk.
    pub datasets: Vec<Dataset>,
    /// Total items generated.
    pub items: u64,
    /// Wall-clock duration of the run in seconds.
    pub elapsed_secs: f64,
    /// Items per second achieved.
    pub achieved_rate: f64,
    /// The requested rate, if any.
    pub target_rate: Option<f64>,
}

impl GenerationOutcome {
    /// Relative error |achieved − target| / target, if a target was set.
    pub fn rate_error(&self) -> Option<f64> {
        self.target_rate
            .map(|t| ((self.achieved_rate - t) / t).abs())
    }
}

/// Runs data generators across parallel workers at an optional target rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VelocityController {
    workers: usize,
    target_rate: Option<f64>,
    chunk_items: u64,
}

impl VelocityController {
    /// A controller with `workers` parallel generator instances.
    ///
    /// # Errors
    /// Fails when `workers == 0`.
    pub fn new(workers: usize) -> Result<Self> {
        if workers == 0 {
            return Err(BdbError::InvalidConfig("need at least one worker".into()));
        }
        Ok(Self { workers, target_rate: None, chunk_items: 256 })
    }

    /// Set a target aggregate rate in items/second.
    ///
    /// # Panics
    /// Panics on a non-positive rate.
    pub fn with_target_rate(mut self, items_per_sec: f64) -> Self {
        assert!(items_per_sec > 0.0, "target rate must be positive");
        self.target_rate = Some(items_per_sec);
        self
    }

    /// Set the per-chunk item count (pacing granularity).
    pub fn with_chunk_items(mut self, chunk: u64) -> Self {
        self.chunk_items = chunk.max(1);
        self
    }

    /// Number of parallel workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Generate `total_items` items from `generator`, spread over the
    /// workers, throttled to the target rate if one is set.
    ///
    /// Each (worker, chunk) pair derives an independent seed from `seed`,
    /// so the output is deterministic for a fixed worker count and
    /// independent of thread scheduling.
    pub fn run(
        &self,
        generator: &dyn DataGenerator,
        seed: u64,
        total_items: u64,
    ) -> Result<GenerationOutcome> {
        let per_worker = total_items / self.workers as u64;
        let remainder = total_items % self.workers as u64;
        let worker_rate = self.target_rate.map(|r| r / self.workers as f64);
        let start = Instant::now();
        let results: Vec<Result<Vec<Dataset>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.workers)
                .map(|w| {
                    let quota = per_worker + u64::from((w as u64) < remainder);
                    scope.spawn(move || self.worker_loop(generator, seed, w as u64, quota, worker_rate))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });
        let mut datasets = Vec::new();
        for r in results {
            datasets.extend(r?);
        }
        let elapsed = start.elapsed().as_secs_f64().max(1e-9);
        Ok(GenerationOutcome {
            items: total_items,
            elapsed_secs: elapsed,
            achieved_rate: total_items as f64 / elapsed,
            target_rate: self.target_rate,
            datasets,
        })
    }

    fn worker_loop(
        &self,
        generator: &dyn DataGenerator,
        seed: u64,
        worker: u64,
        quota: u64,
        rate: Option<f64>,
    ) -> Result<Vec<Dataset>> {
        let worker_seed_base = bdb_common::rng::SeedTree::new(seed).child(worker);
        let start = Instant::now();
        let mut produced = 0u64;
        let mut chunk_idx = 0u64;
        let mut out = Vec::new();
        while produced < quota {
            let n = self.chunk_items.min(quota - produced);
            let chunk_seed = worker_seed_base.child(chunk_idx).seed();
            out.push(generator.generate(chunk_seed, &VolumeSpec::Items(n))?);
            produced += n;
            chunk_idx += 1;
            if let Some(r) = rate {
                // Deadline pacing: item `produced` should complete at
                // produced / r seconds after start.
                let due = Duration::from_secs_f64(produced as f64 / r);
                let now = start.elapsed();
                if due > now {
                    std::thread::sleep(due - now);
                }
            }
        }
        Ok(out)
    }
}

/// Measure the raw rate (items/sec) of an arbitrary per-item generation
/// closure — the probe used to compare *algorithmic* velocity levers.
pub fn measure_rate<F: FnMut(u64)>(items: u64, mut f: F) -> f64 {
    let start = Instant::now();
    for i in 0..items {
        f(i);
    }
    items as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::RAW_TEXT_CORPUS;
    use crate::text::NaiveTextGenerator;

    fn gen() -> NaiveTextGenerator {
        NaiveTextGenerator::from_corpus(&RAW_TEXT_CORPUS)
    }

    #[test]
    fn controller_rejects_zero_workers() {
        assert!(VelocityController::new(0).is_err());
    }

    #[test]
    fn run_produces_requested_items() {
        let c = VelocityController::new(3).unwrap().with_chunk_items(16);
        let out = c.run(&gen(), 11, 100).unwrap();
        assert_eq!(out.items, 100);
        let total: usize = out.datasets.iter().map(Dataset::item_count).sum();
        assert_eq!(total, 100);
        assert!(out.achieved_rate > 0.0);
        assert_eq!(out.rate_error(), None);
    }

    #[test]
    fn run_is_deterministic_for_fixed_workers() {
        let c = VelocityController::new(2).unwrap().with_chunk_items(8);
        let a = c.run(&gen(), 4, 40).unwrap();
        let b = c.run(&gen(), 4, 40).unwrap();
        let docs = |o: &GenerationOutcome| -> Vec<usize> {
            o.datasets.iter().map(Dataset::item_count).collect()
        };
        assert_eq!(docs(&a), docs(&b));
    }

    #[test]
    fn throttling_tracks_target_rate() {
        // A slow target the machine can easily sustain: 2000 docs/sec.
        let c = VelocityController::new(2)
            .unwrap()
            .with_chunk_items(25)
            .with_target_rate(2000.0);
        let out = c.run(&gen(), 1, 1000).unwrap();
        let err = out.rate_error().unwrap();
        assert!(err < 0.25, "rate error {err}, achieved {}", out.achieved_rate);
    }

    #[test]
    fn unthrottled_beats_throttled() {
        let free = VelocityController::new(2).unwrap().with_chunk_items(50);
        let capped = free.with_target_rate(500.0);
        let fast = free.run(&gen(), 2, 500).unwrap();
        let slow = capped.run(&gen(), 2, 500).unwrap();
        assert!(fast.achieved_rate > slow.achieved_rate);
    }

    #[test]
    fn measure_rate_is_positive() {
        let mut acc = 0u64;
        let r = measure_rate(10_000, |i| acc = acc.wrapping_add(i));
        assert!(r > 0.0);
        assert!(acc > 0);
    }
}
