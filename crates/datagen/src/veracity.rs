//! Veracity metrics (Section 5.1): how close is synthetic data to raw data?
//!
//! The paper poses this as an open question and sketches the answer this
//! module implements: derive the characteristic distributions from both
//! data sets and compare them with statistical divergences. Per data type:
//!
//! * **Text** — word-frequency divergence, document-length KS, and (when a
//!   trained LDA model is supplied) topic-mixture divergence, exactly the
//!   "derive the topic and word distributions … then apply
//!   Kullback–Leibler divergence" recipe of Section 5.1.
//! * **Table** — per-column divergence: JS over categorical frequencies,
//!   KS over numeric samples.
//! * **Graph** — degree-distribution divergence and power-law exponent
//!   discrepancy.
//! * **Stream** — inter-arrival-time KS and per-window count divergence.
//!
//! All scores are reported so that **lower is better** and 0 means
//! indistinguishable under that statistic; JS scores are bounded by ln 2
//! (≈0.693), making them comparable across data types.

use crate::stream::Event;
use crate::text::lda::LdaModel;
use bdb_common::graph::DegreeDistribution;
use bdb_common::prelude::*;
use bdb_common::record::Table;
use bdb_common::stats::{js_divergence, ks_statistic};
use bdb_common::text::corpus_word_frequencies;
use bdb_common::value::DataType;
use bdb_common::{BdbError, Result};

/// A named collection of veracity scores (lower = more faithful).
#[derive(Debug, Clone, PartialEq)]
pub struct VeracityReport {
    /// Individual (metric name, score) pairs.
    pub metrics: Vec<(String, f64)>,
}

impl VeracityReport {
    /// Mean of all scores: the single-number veracity summary used by the
    /// Table 1 harness.
    pub fn overall(&self) -> f64 {
        if self.metrics.is_empty() {
            return 0.0;
        }
        self.metrics.iter().map(|(_, v)| v).sum::<f64>() / self.metrics.len() as f64
    }

    /// Look up one metric by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.metrics.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }
}

fn pad_to_common_len(mut a: Vec<f64>, mut b: Vec<f64>) -> (Vec<f64>, Vec<f64>) {
    let len = a.len().max(b.len()).max(1);
    a.resize(len, 0.0);
    b.resize(len, 0.0);
    (a, b)
}

/// Compare two corpora over a shared vocabulary.
///
/// With `model`, also compares average inferred topic mixtures (the
/// raw-vs-synthetic topic-distribution metric). `rng` drives the
/// fold-in inference.
pub fn text_veracity(
    raw: &[Document],
    synthetic: &[Document],
    vocab_size: usize,
    model: Option<&LdaModel>,
    rng: &mut dyn Rng,
) -> VeracityReport {
    let mut metrics = Vec::new();
    let fr = corpus_word_frequencies(raw, vocab_size);
    let fs = corpus_word_frequencies(synthetic, vocab_size);
    metrics.push(("word_freq_js".to_string(), js_divergence(&fr, &fs)));

    let lens = |docs: &[Document]| -> Vec<f64> { docs.iter().map(|d| d.len() as f64).collect() };
    metrics.push(("doc_length_ks".to_string(), ks_statistic(&lens(raw), &lens(synthetic))));

    if let Some(m) = model {
        // Per-document topic mixtures, compared as the *distribution of
        // topic peakedness* (each document's max θ component). A topical
        // corpus has strongly peaked documents; bag-of-uniform-words text
        // infers near-uniform mixtures. Comparing corpus-mean θ would
        // hide this: a balanced topical corpus and random text both
        // average to uniform.
        let peakedness_pmf = |docs: &[Document], rng: &mut dyn Rng| -> Vec<f64> {
            let mut hist = bdb_common::histogram::Histogram::with_bounds(0.0, 1.000001, 10);
            for d in docs {
                let theta = m.infer_theta(d, rng);
                let peak = theta.iter().cloned().fold(0.0, f64::max);
                hist.record(peak);
            }
            hist.pmf()
        };
        let tr = peakedness_pmf(raw, rng);
        let ts = peakedness_pmf(synthetic, rng);
        metrics.push(("topic_dist_js".to_string(), js_divergence(&tr, &ts)));
    }
    VeracityReport { metrics }
}

/// Compare two tables column by column.
///
/// # Errors
/// Fails when the schemas differ.
pub fn table_veracity(raw: &Table, synthetic: &Table) -> Result<VeracityReport> {
    if raw.schema() != synthetic.schema() {
        return Err(BdbError::TypeMismatch {
            expected: "matching schemas".into(),
            found: "different schemas".into(),
        });
    }
    let mut metrics = Vec::new();
    for field in raw.schema().fields() {
        let rv = raw.column(&field.name)?;
        let sv = synthetic.column(&field.name)?;
        match field.data_type {
            DataType::Text | DataType::Bool => {
                let freq = |vals: &[Value]| -> std::collections::BTreeMap<String, f64> {
                    let mut m = std::collections::BTreeMap::new();
                    for v in vals {
                        *m.entry(v.to_string()).or_insert(0.0) += 1.0;
                    }
                    let total: f64 = m.values().sum();
                    for x in m.values_mut() {
                        *x /= total.max(1.0);
                    }
                    m
                };
                let (fr, fs) = (freq(&rv), freq(&sv));
                let keys: std::collections::BTreeSet<&String> =
                    fr.keys().chain(fs.keys()).collect();
                let p: Vec<f64> = keys.iter().map(|k| *fr.get(*k).unwrap_or(&0.0)).collect();
                let q: Vec<f64> = keys.iter().map(|k| *fs.get(*k).unwrap_or(&0.0)).collect();
                metrics.push((format!("{}_js", field.name), js_divergence(&p, &q)));
            }
            DataType::Int | DataType::Float => {
                let nums = |vals: &[Value]| -> Vec<f64> {
                    vals.iter().filter_map(Value::as_f64).collect()
                };
                metrics.push((
                    format!("{}_ks", field.name),
                    ks_statistic(&nums(&rv), &nums(&sv)),
                ));
            }
            DataType::Timestamp => {
                // Compare gap distributions, not absolute epochs.
                let gaps = |vals: &[Value]| -> Vec<f64> {
                    let ts: Vec<i64> = vals.iter().filter_map(Value::as_i64).collect();
                    ts.windows(2).map(|w| (w[1] - w[0]) as f64).collect()
                };
                metrics.push((
                    format!("{}_gap_ks", field.name),
                    ks_statistic(&gaps(&rv), &gaps(&sv)),
                ));
            }
        }
    }
    Ok(VeracityReport { metrics })
}

/// Compare the structural characteristics of two graphs.
pub fn graph_veracity(raw: &EdgeListGraph, synthetic: &EdgeListGraph) -> VeracityReport {
    let mut metrics = Vec::new();
    let dr = DegreeDistribution::from_degrees(&raw.out_degrees());
    let ds = DegreeDistribution::from_degrees(&synthetic.out_degrees());
    let (p, q) = pad_to_common_len(dr.pmf(), ds.pmf());
    metrics.push(("degree_dist_js".to_string(), js_divergence(&p, &q)));

    if let (Some(ar), Some(as_)) = (dr.power_law_alpha(2), ds.power_law_alpha(2)) {
        // Relative exponent gap, capped at 1 so the score stays bounded.
        let gap = ((ar - as_).abs() / ar.abs().max(1e-9)).min(1.0);
        metrics.push(("power_law_alpha_gap".to_string(), gap));
    }
    let mean_gap = {
        let (mr, ms) = (dr.mean(), ds.mean());
        ((mr - ms).abs() / mr.max(1e-9)).min(1.0)
    };
    metrics.push(("mean_degree_gap".to_string(), mean_gap));
    VeracityReport { metrics }
}

/// Compare the temporal characteristics of two event streams.
pub fn stream_veracity(raw: &[Event], synthetic: &[Event]) -> VeracityReport {
    let mut metrics = Vec::new();
    let gaps = |evts: &[Event]| -> Vec<f64> {
        evts.windows(2)
            .map(|w| (w[1].ts_ms.saturating_sub(w[0].ts_ms)) as f64)
            .collect()
    };
    metrics.push((
        "interarrival_ks".to_string(),
        ks_statistic(&gaps(raw), &gaps(synthetic)),
    ));
    // Per-100ms window count distributions, as histograms over count value.
    let window_pmf = |evts: &[Event]| -> Vec<f64> {
        let mut counts: std::collections::BTreeMap<u64, u64> = Default::default();
        for e in evts {
            *counts.entry(e.ts_ms / 100).or_insert(0) += 1;
        }
        let max = counts.values().copied().max().unwrap_or(0) as usize;
        let mut pmf = vec![0.0; max + 1];
        for &c in counts.values() {
            pmf[c as usize] += 1.0;
        }
        let total: f64 = pmf.iter().sum();
        for p in &mut pmf {
            *p /= total.max(1.0);
        }
        pmf
    };
    let (p, q) = pad_to_common_len(window_pmf(raw), window_pmf(synthetic));
    metrics.push(("window_count_js".to_string(), js_divergence(&p, &q)));
    VeracityReport { metrics }
}

/// Compare key-popularity distributions of two event streams (Zipf shape).
pub fn key_popularity_divergence(raw: &[Event], synthetic: &[Event]) -> f64 {
    let pmf = |evts: &[Event]| -> Vec<f64> {
        let mut counts: std::collections::BTreeMap<u64, f64> = Default::default();
        for e in evts {
            *counts.entry(e.key).or_insert(0.0) += 1.0;
        }
        let mut v: Vec<f64> = counts.into_values().collect();
        v.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let total: f64 = v.iter().sum();
        v.iter().map(|c| c / total.max(1.0)).collect()
    };
    let (p, q) = pad_to_common_len(pmf(raw), pmf(synthetic));
    js_divergence(&p, &q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{karate_club_graph, raw_retail_table, RAW_TEXT_CORPUS};
    use crate::graph::{fit_rmat, ErdosRenyiGenerator};
    use crate::stream::PoissonArrivals;
    use crate::table::TableGenerator;
    use crate::text::lda::{LdaConfig, LdaModel};
    use crate::text::NaiveTextGenerator;
    use crate::volume::VolumeSpec;
    use crate::{DataGenerator, Dataset};

    fn raw_docs() -> (Vec<Document>, Vocabulary) {
        let mut vocab = Vocabulary::new();
        let docs = RAW_TEXT_CORPUS
            .iter()
            .map(|t| Document::from_text(t, &mut vocab))
            .collect();
        (docs, vocab)
    }

    #[test]
    fn identical_corpora_score_zero() {
        let (docs, vocab) = raw_docs();
        let mut rng = Xoshiro256::new(1);
        let r = text_veracity(&docs, &docs, vocab.len(), None, &mut rng);
        assert!(r.overall() < 1e-9, "overall {}", r.overall());
        assert_eq!(r.metrics.len(), 2);
        assert!(r.get("word_freq_js").is_some());
        assert!(r.get("missing").is_none());
    }

    #[test]
    fn lda_text_beats_naive_text() {
        // The headline veracity ablation: model-based generation must be
        // measurably closer to the raw corpus than uniform-random words.
        let (docs, vocab) = raw_docs();
        let config = LdaConfig { iterations: 60, ..Default::default() };
        let model = LdaModel::train(&RAW_TEXT_CORPUS, config, 42).unwrap();
        let naive = NaiveTextGenerator::from_corpus(&RAW_TEXT_CORPUS);
        let volume = VolumeSpec::Items(200);
        let synth_lda = match model.generate(7, &volume).unwrap() {
            Dataset::Text { docs, .. } => docs,
            _ => unreachable!(),
        };
        let synth_naive = match naive.generate(7, &volume).unwrap() {
            Dataset::Text { docs, .. } => docs,
            _ => unreachable!(),
        };
        let mut rng = Xoshiro256::new(5);
        let lda_score = text_veracity(&docs, &synth_lda, vocab.len(), None, &mut rng)
            .get("word_freq_js")
            .unwrap();
        let naive_score = text_veracity(&docs, &synth_naive, vocab.len(), None, &mut rng)
            .get("word_freq_js")
            .unwrap();
        assert!(
            lda_score < naive_score * 0.7,
            "lda {lda_score} vs naive {naive_score}"
        );
    }

    #[test]
    fn table_fitted_beats_naive() {
        let raw = raw_retail_table();
        let fitted = TableGenerator::fit("retail", &raw).unwrap();
        let naive = TableGenerator::naive("retail", &raw).unwrap();
        let synth_fit = fitted.generate_shard(3, 0, 512);
        let synth_naive = naive.generate_shard(3, 0, 512);
        let vf = table_veracity(&raw, &synth_fit).unwrap().overall();
        let vn = table_veracity(&raw, &synth_naive).unwrap().overall();
        assert!(vf < vn, "fitted {vf} vs naive {vn}");
    }

    #[test]
    fn table_veracity_requires_matching_schema() {
        let raw = raw_retail_table();
        let other = Table::new(bdb_common::value::Schema::new(vec![
            bdb_common::value::Field::new("x", DataType::Int),
        ]));
        assert!(table_veracity(&raw, &other).is_err());
    }

    #[test]
    fn graph_fitted_beats_uniform() {
        let raw = karate_club_graph();
        let fitted = fit_rmat(&raw, 3).unwrap();
        let scale = 6; // 64 >= 34 vertices
        let synth_fit = fitted.generate_graph(9, scale);
        let synth_er = ErdosRenyiGenerator {
            edges_per_vertex: raw.num_edges() as f64 / raw.num_vertices() as f64,
        }
        .generate_graph(9, 64);
        let vf = graph_veracity(&raw, &synth_fit)
            .get("degree_dist_js")
            .unwrap();
        let ve = graph_veracity(&raw, &synth_er)
            .get("degree_dist_js")
            .unwrap();
        assert!(vf <= ve * 1.1, "fitted {vf} vs er {ve}");
    }

    #[test]
    fn stream_same_process_scores_low() {
        let g = PoissonArrivals::new(500.0, 50).unwrap();
        let a = g.generate_events(1, 5000);
        let b = g.generate_events(2, 5000);
        let r = stream_veracity(&a, &b);
        assert!(r.overall() < 0.2, "overall {}", r.overall());
        // Key popularity of same Zipf process is close.
        assert!(key_popularity_divergence(&a, &b) < 0.1);
    }

    #[test]
    fn stream_different_rates_score_high() {
        let fast = PoissonArrivals::new(2000.0, 50).unwrap().generate_events(1, 5000);
        let slow = PoissonArrivals::new(100.0, 50).unwrap().generate_events(1, 5000);
        let r = stream_veracity(&fast, &slow);
        assert!(
            r.get("interarrival_ks").unwrap() > 0.3,
            "ks {}",
            r.get("interarrival_ks").unwrap()
        );
    }

    #[test]
    fn empty_report_overall_is_zero() {
        assert_eq!(VeracityReport { metrics: vec![] }.overall(), 0.0);
    }
}
