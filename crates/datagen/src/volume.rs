//! Volume control and scale-down sampling (the *volume* axis).
//!
//! The paper notes volume means different things per workload type: bytes
//! of text for sort/WordCount, vertex counts for social graphs.
//! [`VolumeSpec`] captures both, plus a relative scale factor (TPC-style
//! `SF`). The sampling tools implement the paper's "scaling down of data
//! set sizes": reservoir sampling for unbiased subsets and stratified
//! sampling that preserves group proportions (a veracity-friendly scaler).

use bdb_common::prelude::*;
use bdb_common::record::{Record, Table};
use bdb_common::{BdbError, Result};

/// How much data to generate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VolumeSpec {
    /// A number of logical items: rows, documents, events or — for graphs —
    /// vertices (the paper's "2^20 vertices" convention).
    Items(u64),
    /// A target size in bytes (the "1 TB text data" convention).
    Bytes(u64),
    /// A multiple of a generator-defined base size, like TPC scale factors.
    ScaleFactor(f64),
}

impl VolumeSpec {
    /// Resolve this spec to an item count, given the generator's average
    /// item size in bytes and its base item count for `ScaleFactor(1.0)`.
    ///
    /// # Errors
    /// Fails on a non-positive scale factor.
    pub fn resolve_items(&self, avg_item_bytes: f64, base_items: u64) -> Result<u64> {
        match *self {
            VolumeSpec::Items(n) => Ok(n),
            VolumeSpec::Bytes(b) => {
                if avg_item_bytes <= 0.0 {
                    return Err(BdbError::InvalidConfig(
                        "generator reported non-positive item size".into(),
                    ));
                }
                Ok((b as f64 / avg_item_bytes).ceil() as u64)
            }
            VolumeSpec::ScaleFactor(sf) => {
                if sf <= 0.0 || !sf.is_finite() {
                    return Err(BdbError::InvalidConfig(format!(
                        "scale factor must be positive, got {sf}"
                    )));
                }
                Ok((base_items as f64 * sf).ceil() as u64)
            }
        }
    }
}

impl std::fmt::Display for VolumeSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VolumeSpec::Items(n) => write!(f, "{n} items"),
            VolumeSpec::Bytes(b) => write!(f, "{b} bytes"),
            VolumeSpec::ScaleFactor(sf) => write!(f, "SF={sf}"),
        }
    }
}

/// Uniform reservoir sample of `k` items from an iterator (Algorithm R).
///
/// One pass, O(k) memory: suitable for scaling down data sets that do not
/// fit in memory at full size.
pub fn reservoir_sample<T, I>(items: I, k: usize, rng: &mut dyn Rng) -> Vec<T>
where
    I: IntoIterator<Item = T>,
{
    let mut reservoir: Vec<T> = Vec::with_capacity(k);
    if k == 0 {
        return reservoir;
    }
    for (i, item) in items.into_iter().enumerate() {
        if i < k {
            reservoir.push(item);
        } else {
            let j = rng.next_bounded(i as u64 + 1) as usize;
            if j < k {
                reservoir[j] = item;
            }
        }
    }
    reservoir
}

/// Stratified sample of a table: keeps `fraction` of the rows of each
/// stratum, where the stratum is the value of `strata_column`.
///
/// Preserves group proportions within rounding, which keeps categorical
/// column distributions — a veracity characteristic — intact while scaling
/// volume down.
pub fn stratified_sample(
    table: &Table,
    strata_column: &str,
    fraction: f64,
    rng: &mut dyn Rng,
) -> Result<Table> {
    if !(0.0..=1.0).contains(&fraction) {
        return Err(BdbError::InvalidConfig(format!(
            "fraction must be in [0,1], got {fraction}"
        )));
    }
    let idx = table
        .schema()
        .index_of(strata_column)
        .ok_or_else(|| BdbError::NotFound(format!("column {strata_column}")))?;
    // Group row indices per stratum value (string key; Display is total).
    let mut strata: std::collections::BTreeMap<String, Vec<usize>> = Default::default();
    for (i, row) in table.rows().iter().enumerate() {
        strata.entry(row[idx].to_string()).or_default().push(i);
    }
    let mut keep: Vec<usize> = Vec::new();
    for rows in strata.values() {
        let k = ((rows.len() as f64) * fraction).round() as usize;
        let sampled = reservoir_sample(rows.iter().copied(), k, rng);
        keep.extend(sampled);
    }
    keep.sort_unstable();
    let rows: Vec<Record> = keep.iter().map(|&i| table.rows()[i].clone()).collect();
    Table::from_rows(table.schema().clone(), rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_common::value::{DataType, Field, Schema, Value};

    #[test]
    fn resolve_items_direct() {
        assert_eq!(VolumeSpec::Items(7).resolve_items(10.0, 100).unwrap(), 7);
    }

    #[test]
    fn resolve_bytes_rounds_up() {
        assert_eq!(VolumeSpec::Bytes(95).resolve_items(10.0, 100).unwrap(), 10);
        assert_eq!(VolumeSpec::Bytes(100).resolve_items(10.0, 100).unwrap(), 10);
    }

    #[test]
    fn resolve_scale_factor() {
        assert_eq!(
            VolumeSpec::ScaleFactor(2.5).resolve_items(1.0, 100).unwrap(),
            250
        );
        assert!(VolumeSpec::ScaleFactor(0.0).resolve_items(1.0, 100).is_err());
        assert!(VolumeSpec::Bytes(10).resolve_items(0.0, 1).is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(VolumeSpec::Items(5).to_string(), "5 items");
        assert_eq!(VolumeSpec::Bytes(5).to_string(), "5 bytes");
        assert_eq!(VolumeSpec::ScaleFactor(2.0).to_string(), "SF=2");
    }

    #[test]
    fn reservoir_exact_when_fewer_items() {
        let mut rng = Xoshiro256::new(1);
        let s = reservoir_sample(0..3u32, 10, &mut rng);
        assert_eq!(s, vec![0, 1, 2]);
        assert!(reservoir_sample(0..3u32, 0, &mut rng).is_empty());
    }

    #[test]
    fn reservoir_is_roughly_uniform() {
        let mut hits = [0u32; 10];
        for seed in 0..4000 {
            let mut rng = Xoshiro256::new(seed);
            for x in reservoir_sample(0..10u32, 3, &mut rng) {
                hits[x as usize] += 1;
            }
        }
        // Each of 10 items should be kept ~30% of the time: 1200 ± 15%.
        for (i, &h) in hits.iter().enumerate() {
            assert!((1000..=1400).contains(&h), "item {i}: {h}");
        }
    }

    fn grouped_table() -> Table {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("grp", DataType::Text),
        ]);
        let mut t = Table::new(schema);
        for i in 0..80 {
            let g = if i % 4 == 0 { "a" } else { "b" }; // 25% a, 75% b
            t.push(vec![Value::Int(i), Value::from(g)]).unwrap();
        }
        t
    }

    #[test]
    fn stratified_sample_preserves_proportions() {
        let t = grouped_table();
        let mut rng = Xoshiro256::new(3);
        let s = stratified_sample(&t, "grp", 0.5, &mut rng).unwrap();
        assert_eq!(s.len(), 40);
        let grp = s.column("grp").unwrap();
        let a = grp.iter().filter(|v| v.as_str() == Some("a")).count();
        assert_eq!(a, 10); // exactly half of the 20 "a" rows
    }

    #[test]
    fn stratified_sample_validates_inputs() {
        let t = grouped_table();
        let mut rng = Xoshiro256::new(3);
        assert!(stratified_sample(&t, "missing", 0.5, &mut rng).is_err());
        assert!(stratified_sample(&t, "grp", 1.5, &mut rng).is_err());
    }
}
