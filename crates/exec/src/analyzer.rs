//! Result analysis: speedups, winners, crossovers.
//!
//! The benchmarking process's final step "analyse\[s\] and evaluate\[s\]" the
//! results. [`compare`] ranks two runs of the same workload;
//! [`find_crossover`] locates the input size where the faster system
//! changes — the shape the EXPERIMENTS.md reproduction checks care about.

use bdb_metrics::MetricReport;

/// The outcome of comparing two runs of one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Name of the faster system.
    pub winner: String,
    /// Name of the slower system.
    pub loser: String,
    /// How many times faster the winner was (>= 1).
    pub speedup: f64,
    /// Winner's advantage in ops/joule (>= 0; 0 when not computable).
    pub energy_ratio: f64,
}

/// Compare two metric reports of the same workload by duration.
pub fn compare(a: &MetricReport, b: &MetricReport) -> Comparison {
    let (w, l) = if a.user.duration_secs <= b.user.duration_secs {
        (a, b)
    } else {
        (b, a)
    };
    let speedup = l.user.duration_secs / w.user.duration_secs.max(1e-12);
    let energy_ratio = {
        let (we, le) = (w.ops_per_joule(), l.ops_per_joule());
        if le > 0.0 {
            we / le
        } else {
            0.0
        }
    };
    Comparison {
        winner: w.system.clone(),
        loser: l.system.clone(),
        speedup,
        energy_ratio,
    }
}

/// Given a series of `(x, duration_a, duration_b)` points sorted by `x`,
/// find the first `x` interval where the faster system flips. Returns the
/// `x` of the first point after the flip, or `None` when one system wins
/// everywhere (ties break toward `a`).
pub fn find_crossover(series: &[(f64, f64, f64)]) -> Option<f64> {
    let mut prev: Option<bool> = None;
    for &(x, a, b) in series {
        let a_wins = a <= b;
        if let Some(p) = prev {
            if p != a_wins {
                return Some(x);
            }
        }
        prev = Some(a_wins);
    }
    None
}

/// Geometric-mean speedup across many paired runs — the standard way to
/// summarise multi-workload suites.
pub fn geomean_speedup(pairs: &[(f64, f64)]) -> f64 {
    if pairs.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = pairs
        .iter()
        .map(|&(a, b)| (b.max(1e-12) / a.max(1e-12)).ln())
        .sum();
    (log_sum / pairs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_metrics::collector::UserMetrics;

    fn report(system: &str, duration: f64) -> MetricReport {
        MetricReport {
            system: system.into(),
            workload: "w".into(),
            user: UserMetrics { duration_secs: duration, operations: 100, ..Default::default() },
            energy_joules: duration * 100.0,
            ..Default::default()
        }
    }

    #[test]
    fn compare_picks_faster_system() {
        let a = report("sql", 1.0);
        let b = report("mapreduce", 4.0);
        let c = compare(&a, &b);
        assert_eq!(c.winner, "sql");
        assert_eq!(c.loser, "mapreduce");
        assert!((c.speedup - 4.0).abs() < 1e-9);
        // Energy scales with duration here, so the winner also wins energy.
        assert!(c.energy_ratio > 1.0);
    }

    #[test]
    fn compare_is_symmetric_in_winner() {
        let a = report("sql", 5.0);
        let b = report("mapreduce", 1.0);
        assert_eq!(compare(&a, &b).winner, "mapreduce");
        assert_eq!(compare(&b, &a).winner, "mapreduce");
    }

    #[test]
    fn crossover_found_at_flip() {
        let series = vec![
            (100.0, 1.0, 2.0), // a wins
            (1000.0, 2.0, 2.1),
            (10000.0, 5.0, 3.0), // b wins
        ];
        assert_eq!(find_crossover(&series), Some(10000.0));
    }

    #[test]
    fn no_crossover_when_one_system_dominates() {
        let series = vec![(1.0, 1.0, 2.0), (2.0, 2.0, 3.0)];
        assert_eq!(find_crossover(&series), None);
        assert_eq!(find_crossover(&[]), None);
    }

    #[test]
    fn geomean_is_scale_stable() {
        // Speedups of 2x and 8x → geomean 4x.
        let g = geomean_speedup(&[(1.0, 2.0), (1.0, 8.0)]);
        assert!((g - 4.0).abs() < 1e-9);
        assert_eq!(geomean_speedup(&[]), 1.0);
    }
}
