//! Result analysis: speedups, winners, crossovers, recovery metrics.
//!
//! The benchmarking process's final step "analyse\[s\] and evaluate\[s\]" the
//! results. [`compare`] ranks two runs of the same workload;
//! [`find_crossover`] locates the input size where the faster system
//! changes — the shape the EXPERIMENTS.md reproduction checks care about.
//! [`RecoverySummary`] condenses the recovery-path trace events of a
//! chaos run (injected faults, retries, failovers, deadline hits) into
//! the dependability metrics the resilience reports print.

use crate::trace::TraceEvent;
use bdb_metrics::MetricReport;
use std::collections::BTreeMap;

/// The outcome of comparing two runs of one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Name of the faster system.
    pub winner: String,
    /// Name of the slower system.
    pub loser: String,
    /// How many times faster the winner was (>= 1).
    pub speedup: f64,
    /// Winner's advantage in ops/joule (>= 0; 0 when not computable).
    pub energy_ratio: f64,
}

/// Compare two metric reports of the same workload by duration.
pub fn compare(a: &MetricReport, b: &MetricReport) -> Comparison {
    let (w, l) = if a.user.duration_secs <= b.user.duration_secs {
        (a, b)
    } else {
        (b, a)
    };
    let speedup = l.user.duration_secs / w.user.duration_secs.max(1e-12);
    let energy_ratio = {
        let (we, le) = (w.ops_per_joule(), l.ops_per_joule());
        if le > 0.0 {
            we / le
        } else {
            0.0
        }
    };
    Comparison {
        winner: w.system.clone(),
        loser: l.system.clone(),
        speedup,
        energy_ratio,
    }
}

/// Given a series of `(x, duration_a, duration_b)` points sorted by `x`,
/// find the first `x` interval where the faster system flips. Returns the
/// `x` of the first point after the flip, or `None` when one system wins
/// everywhere (ties break toward `a`).
pub fn find_crossover(series: &[(f64, f64, f64)]) -> Option<f64> {
    let mut prev: Option<bool> = None;
    for &(x, a, b) in series {
        let a_wins = a <= b;
        if let Some(p) = prev {
            if p != a_wins {
                return Some(x);
            }
        }
        prev = Some(a_wins);
    }
    None
}

/// Geometric-mean speedup across many paired runs — the standard way to
/// summarise multi-workload suites.
pub fn geomean_speedup(pairs: &[(f64, f64)]) -> f64 {
    if pairs.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = pairs
        .iter()
        .map(|&(a, b)| (b.max(1e-12) / a.max(1e-12)).ln())
        .sum();
    (log_sum / pairs.len() as f64).exp()
}

/// Recovery metrics distilled from a run's trace: how much chaos the run
/// absorbed and what it cost.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RecoverySummary {
    /// Injected faults by kind ("error", "latency", "panic", "crash").
    pub faults_by_kind: BTreeMap<String, u64>,
    /// Retries performed.
    pub retries: u64,
    /// Engine failovers performed.
    pub failovers: u64,
    /// Operations that ran out of their deadline.
    pub deadline_hits: u64,
    /// Latency added by injected spikes and retry backoffs, milliseconds.
    pub added_latency_ms: u64,
    /// Attempts per operation site (first attempt included), for every
    /// site that needed recovery.
    pub attempts_per_site: BTreeMap<String, u64>,
    /// Resilient operations the run executed (generated data sets plus
    /// engine dispatches) — the denominator for [`degraded_pct`](Self::degraded_pct).
    pub total_ops: u64,
    /// Run-journal checkpoints the run wrote (healthy bookkeeping, not
    /// recovery by itself).
    pub checkpoints_written: u64,
    /// Cells skipped on `--resume` because a prior (crashed) run already
    /// completed them.
    pub cells_resumed: u64,
}

impl RecoverySummary {
    /// Build the summary from a run's trace events.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut s = RecoverySummary::default();
        for e in events {
            match e {
                TraceEvent::DatasetGenerated { .. } | TraceEvent::EngineDispatched { .. } => {
                    s.total_ops += 1;
                }
                TraceEvent::FaultInjected { site, kind, latency_ms } => {
                    *s.faults_by_kind.entry(kind.clone()).or_insert(0) += 1;
                    s.added_latency_ms += latency_ms;
                    s.attempts_per_site.entry(site.clone()).or_insert(1);
                }
                TraceEvent::OperationRetried { site, delay_ms, .. } => {
                    s.retries += 1;
                    s.added_latency_ms += delay_ms;
                    // attempt n failed, so the site is at attempt n + 1.
                    let entry = s.attempts_per_site.entry(site.clone()).or_insert(1);
                    *entry += 1;
                }
                TraceEvent::EngineFailedOver { .. } => s.failovers += 1,
                TraceEvent::DeadlineExceeded { site, .. } => {
                    s.deadline_hits += 1;
                    s.attempts_per_site.entry(site.clone()).or_insert(1);
                }
                TraceEvent::CheckpointWritten { .. } => s.checkpoints_written += 1,
                TraceEvent::CellResumed { .. } => s.cells_resumed += 1,
                _ => {}
            }
        }
        s
    }

    /// Total injected faults across kinds.
    pub fn faults_injected(&self) -> u64 {
        self.faults_by_kind.values().sum()
    }

    /// True when the run saw no recovery activity at all. Checkpoint
    /// writes alone keep a run quiet (journaling is routine); resumed
    /// cells do not (the run recovered from a crash).
    pub fn is_quiet(&self) -> bool {
        self.faults_injected() == 0
            && self.retries == 0
            && self.failovers == 0
            && self.deadline_hits == 0
            && self.cells_resumed == 0
    }

    /// Fraction of resilient operations that were degraded (needed a
    /// fault recovery, a retry, or hit a deadline), in `[0, 1]`.
    pub fn degraded_pct(&self) -> f64 {
        if self.total_ops == 0 {
            return 0.0;
        }
        (self.attempts_per_site.len() as f64 / self.total_ops as f64).min(1.0)
    }
}

/// Conformance metrics distilled from a run's trace: how many results
/// were checked against the reference oracle / golden digests and which
/// diverged.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConformanceSummary {
    /// Checks performed, total.
    pub checks: u64,
    /// Checks that passed.
    pub passes: u64,
    /// Pass/fail counts per check kind ("oracle", "golden").
    pub by_check: BTreeMap<String, (u64, u64)>,
    /// Failed checks: `(prescription, engine, check kind, mismatch)`.
    pub failures: Vec<(String, String, String, String)>,
}

impl ConformanceSummary {
    /// Build the summary from a run's trace events.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut s = ConformanceSummary::default();
        for e in events {
            if let TraceEvent::ConformanceChecked {
                prescription,
                engine,
                check,
                passed,
                detail,
                ..
            } = e
            {
                s.checks += 1;
                let entry = s.by_check.entry(check.clone()).or_insert((0, 0));
                if *passed {
                    s.passes += 1;
                    entry.0 += 1;
                } else {
                    entry.1 += 1;
                    s.failures.push((
                        prescription.clone(),
                        engine.clone(),
                        check.clone(),
                        detail.clone(),
                    ));
                }
            }
        }
        s
    }

    /// True when no conformance checks ran.
    pub fn is_empty(&self) -> bool {
        self.checks == 0
    }

    /// True when every check passed (vacuously true with no checks).
    pub fn all_passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Load-driving metrics distilled from a run's [`LoadReport`]s and trace:
/// per-engine tail latency and saturation throughput plus session and
/// shedding bookkeeping.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LoadSummary {
    /// Per-engine reports, in drive order.
    pub reports: Vec<crate::loadgen::LoadReport>,
    /// Client sessions that started.
    pub sessions_started: u64,
    /// Client sessions that quiesced.
    pub sessions_finished: u64,
    /// `LoadShed` events recorded (one per engine that shed).
    pub shed_events: u64,
}

impl LoadSummary {
    /// Build the summary from the drive's reports and trace events.
    pub fn new(reports: Vec<crate::loadgen::LoadReport>, events: &[TraceEvent]) -> Self {
        let mut s = LoadSummary { reports, ..LoadSummary::default() };
        for e in events {
            match e {
                TraceEvent::LoadSessionStarted { .. } => s.sessions_started += 1,
                TraceEvent::LoadSessionFinished { .. } => s.sessions_finished += 1,
                TraceEvent::LoadShed { .. } => s.shed_events += 1,
                _ => {}
            }
        }
        s
    }

    /// True when nothing was driven.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// Ops completed across all engines.
    pub fn total_completed(&self) -> u64 {
        self.reports.iter().map(|r| r.completed).sum()
    }

    /// Ops shed across all engines.
    pub fn total_shed(&self) -> u64 {
        self.reports.iter().map(|r| r.shed).sum()
    }

    /// Ops that exhausted recovery and failed, across all engines.
    pub fn total_failed(&self) -> u64 {
        self.reports.iter().map(|r| r.failed).sum()
    }

    /// Faults injected across all engines' lanes.
    pub fn total_faults(&self) -> u64 {
        self.reports.iter().map(|r| r.faults).sum()
    }

    /// Breaker trips across all engines during the drive.
    pub fn total_breaker_trips(&self) -> u64 {
        self.reports.iter().map(|r| r.breaker_trips).sum()
    }

    /// True when every engine's sampled results matched the oracle.
    pub fn all_conformant(&self) -> bool {
        self.reports.iter().all(|r| r.conformance_passed)
    }
}

/// One engine's breaker history within a [`HealthSummary`].
#[derive(Debug, Clone, PartialEq)]
pub struct HealthEngineRow {
    /// Engine name.
    pub engine: String,
    /// Times the breaker tripped open.
    pub trips: u64,
    /// Times the breaker closed again after probing.
    pub recoveries: u64,
    /// Half-open probes admitted.
    pub probes: u64,
    /// Probes that failed (each re-opens the breaker).
    pub probe_failures: u64,
    /// The state the breaker quiesced in ("closed", "open", "half-open").
    pub final_state: String,
}

/// Health metrics distilled from a run's trace: per-engine circuit
/// breaker trips, probe outcomes, and recoveries, replayed from the
/// `breaker_*`/`probe_result` events resilient dispatch and the load
/// driver record.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HealthSummary {
    /// One row per engine whose breaker left the closed state, in
    /// first-trip order.
    pub engines: Vec<HealthEngineRow>,
}

impl HealthSummary {
    /// Build the summary from a run's trace events.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut s = HealthSummary::default();
        for e in events {
            match e {
                TraceEvent::BreakerOpened { engine, .. } => {
                    let row = s.row(engine);
                    row.trips += 1;
                    row.final_state = "open".into();
                }
                TraceEvent::BreakerHalfOpen { engine } => {
                    s.row(engine).final_state = "half-open".into();
                }
                TraceEvent::BreakerClosed { engine } => {
                    let row = s.row(engine);
                    row.recoveries += 1;
                    row.final_state = "closed".into();
                }
                TraceEvent::ProbeResult { engine, ok } => {
                    let row = s.row(engine);
                    row.probes += 1;
                    if !ok {
                        row.probe_failures += 1;
                    }
                }
                _ => {}
            }
        }
        s
    }

    fn row(&mut self, engine: &str) -> &mut HealthEngineRow {
        if let Some(i) = self.engines.iter().position(|r| r.engine == engine) {
            &mut self.engines[i]
        } else {
            self.engines.push(HealthEngineRow {
                engine: engine.to_string(),
                trips: 0,
                recoveries: 0,
                probes: 0,
                probe_failures: 0,
                final_state: "closed".into(),
            });
            self.engines.last_mut().expect("row just pushed")
        }
    }

    /// True when no breaker ever left the closed state.
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }

    /// Breaker trips across all engines.
    pub fn total_trips(&self) -> u64 {
        self.engines.iter().map(|r| r.trips).sum()
    }

    /// True when every tracked breaker quiesced closed (vacuously true
    /// when none ever tripped).
    pub fn all_closed(&self) -> bool {
        self.engines.iter().all(|r| r.final_state == "closed")
    }

    /// Engines whose breaker did not quiesce closed.
    pub fn not_closed(&self) -> Vec<String> {
        self.engines
            .iter()
            .filter(|r| r.final_state != "closed")
            .map(|r| r.engine.clone())
            .collect()
    }
}

/// Routing metrics distilled from a run's trace: what the cost-based
/// router decided, how its predictions compared with observed runtimes,
/// and which prescriptions migrated engines mid-run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RoutingSummary {
    /// Routing decisions recorded, total.
    pub decisions: u64,
    /// Decisions per winning engine.
    pub by_engine: BTreeMap<String, u64>,
    /// Decisions per prediction source ("observed", "engine", "static",
    /// "unknown").
    pub by_source: BTreeMap<String, u64>,
    /// Cost observations folded into the EWMA store.
    pub observations: u64,
    /// Prediction-vs-reality pairs:
    /// `(prescription, engine, predicted µs, observed µs)`, one per
    /// observation whose dispatch carried a usable prediction.
    pub pairs: Vec<(String, String, f64, f64)>,
    /// Engine migrations: `(prescription, from, to)` each time a repeated
    /// prescription's winning engine changed.
    pub migrations: Vec<(String, String, String)>,
}

impl RoutingSummary {
    /// Build the summary from a run's trace events.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut s = RoutingSummary::default();
        // Last winning engine per prescription (for migrations) and the
        // prediction attached to the most recent decision per
        // (prescription, engine) pair (to match with CostObserved).
        let mut last_engine: BTreeMap<String, String> = BTreeMap::new();
        let mut last_prediction: BTreeMap<(String, String), (f64, String)> = BTreeMap::new();
        for e in events {
            match e {
                TraceEvent::RoutingDecision {
                    prescription,
                    engine,
                    predicted_micros,
                    source,
                    ..
                } => {
                    s.decisions += 1;
                    *s.by_engine.entry(engine.clone()).or_insert(0) += 1;
                    *s.by_source.entry(source.clone()).or_insert(0) += 1;
                    if let Some(prev) = last_engine.insert(prescription.clone(), engine.clone()) {
                        if prev != *engine {
                            s.migrations.push((prescription.clone(), prev, engine.clone()));
                        }
                    }
                    last_prediction.insert(
                        (prescription.clone(), engine.clone()),
                        (*predicted_micros, source.clone()),
                    );
                }
                TraceEvent::CostObserved { prescription, engine, micros, .. } => {
                    s.observations += 1;
                    if let Some((predicted, source)) =
                        last_prediction.get(&(prescription.clone(), engine.clone()))
                    {
                        if source != "unknown" && *predicted > 0.0 {
                            s.pairs.push((
                                prescription.clone(),
                                engine.clone(),
                                *predicted,
                                *micros as f64,
                            ));
                        }
                    }
                }
                _ => {}
            }
        }
        s
    }

    /// True when the run recorded no routing activity (the default
    /// first-capable path).
    pub fn is_empty(&self) -> bool {
        self.decisions == 0 && self.observations == 0
    }

    /// Decisions whose prediction came from the observed-runtime store.
    pub fn from_observed(&self) -> u64 {
        self.by_source.get("observed").copied().unwrap_or(0)
    }

    /// Geometric mean of the prediction error ratio
    /// `max(predicted, observed) / min(predicted, observed)` across all
    /// pairs — 1.0 means perfect prediction; returns 1.0 with no pairs.
    pub fn mean_error_ratio(&self) -> f64 {
        if self.pairs.is_empty() {
            return 1.0;
        }
        let log_sum: f64 = self
            .pairs
            .iter()
            .map(|(_, _, p, o)| {
                let (p, o) = (p.max(1e-9), o.max(1e-9));
                (p.max(o) / p.min(o)).ln()
            })
            .sum();
        (log_sum / self.pairs.len() as f64).exp()
    }
}

/// One hot path's throughput distribution, as read from a bench ledger:
/// the sample mean in ops/s and its 95% confidence bounds.
///
/// A single-shot legacy measurement degenerates to a point
/// (`ci_lo == ci_hi == mean`, `samples == 1`); the comparison rules below
/// still apply, with significance resting on the other run's interval
/// and the effect floor.
#[derive(Debug, Clone, PartialEq)]
pub struct PathCi {
    /// Hot-path name (e.g. `lsm_put_ops`).
    pub path: String,
    /// Mean throughput over kept samples, ops/s.
    pub mean: f64,
    /// Lower 95% confidence bound on the mean.
    pub ci_lo: f64,
    /// Upper 95% confidence bound on the mean.
    pub ci_hi: f64,
    /// Samples behind the interval (after outlier removal).
    pub samples: u64,
}

/// Verdict for one hot path across two bench runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchVerdict {
    /// Significantly faster: non-overlapping CIs and the effect clears
    /// the floor, in the new run's favour.
    Improved,
    /// Significantly slower, same rule in the old run's favour.
    Regressed,
    /// No statistically significant difference (overlapping CIs or an
    /// effect below the floor).
    Unchanged,
    /// Path only present in the new ledger.
    Added,
    /// Path only present in the old ledger — a gated path going missing
    /// fails the regression gate (the bench silently stopped measuring
    /// it).
    Removed,
}

impl std::fmt::Display for BenchVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BenchVerdict::Improved => "improved",
            BenchVerdict::Regressed => "REGRESSED",
            BenchVerdict::Unchanged => "unchanged",
            BenchVerdict::Added => "added",
            BenchVerdict::Removed => "REMOVED",
        })
    }
}

/// One row of a [`BenchComparison`].
#[derive(Debug, Clone, PartialEq)]
pub struct BenchComparisonRow {
    /// Hot-path name.
    pub path: String,
    /// The baseline distribution, when the path exists there.
    pub old: Option<PathCi>,
    /// The new run's distribution, when the path exists there.
    pub new: Option<PathCi>,
    /// Symmetric effect size `max(new/old, old/new) − 1` (0 when either
    /// side is missing). Symmetric so A-vs-B and B-vs-A agree on
    /// significance.
    pub effect: f64,
    /// Signed relative mean change `new/old − 1` (0 when either side is
    /// missing).
    pub change: f64,
    /// The verdict under the significance rule.
    pub verdict: BenchVerdict,
    /// Is this path in the regression gate set?
    pub gated: bool,
}

/// A statistical comparison of two bench ledgers, path by path.
///
/// The significance rule follows the repeated-sampling methodology: two
/// runs differ on a path iff their 95% confidence intervals do **not**
/// overlap *and* the symmetric effect size clears `min_effect` (the
/// minimum-effect floor keeps micro-paths with razor-thin intervals from
/// flapping on machine noise). Verdicts are symmetric — swapping the
/// ledgers maps Improved ↔ Regressed and Added ↔ Removed — and a ledger
/// compared against itself is Unchanged everywhere.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchComparison {
    /// The minimum-effect floor the verdicts were computed under.
    pub min_effect: f64,
    /// Per-path rows, baseline order first, new-only paths appended.
    pub rows: Vec<BenchComparisonRow>,
}

impl BenchComparison {
    /// Compare a baseline against a new run.
    ///
    /// `gate` names the paths the regression gate protects; an empty
    /// gate protects every path.
    pub fn of(old: &[PathCi], new: &[PathCi], min_effect: f64, gate: &[String]) -> Self {
        let gated = |path: &str| gate.is_empty() || gate.iter().any(|g| g == path);
        let mut rows = Vec::new();
        for o in old {
            let row = match new.iter().find(|n| n.path == o.path) {
                Some(n) => {
                    let ratio = n.mean / o.mean.max(1e-12);
                    let effect = ratio.max(1.0 / ratio.max(1e-12)) - 1.0;
                    let overlap = n.ci_lo <= o.ci_hi && o.ci_lo <= n.ci_hi;
                    let verdict = if overlap || effect < min_effect {
                        BenchVerdict::Unchanged
                    } else if ratio > 1.0 {
                        BenchVerdict::Improved
                    } else {
                        BenchVerdict::Regressed
                    };
                    BenchComparisonRow {
                        path: o.path.clone(),
                        old: Some(o.clone()),
                        new: Some(n.clone()),
                        effect,
                        change: ratio - 1.0,
                        verdict,
                        gated: gated(&o.path),
                    }
                }
                None => BenchComparisonRow {
                    path: o.path.clone(),
                    old: Some(o.clone()),
                    new: None,
                    effect: 0.0,
                    change: 0.0,
                    verdict: BenchVerdict::Removed,
                    gated: gated(&o.path),
                },
            };
            rows.push(row);
        }
        for n in new {
            if !old.iter().any(|o| o.path == n.path) {
                rows.push(BenchComparisonRow {
                    path: n.path.clone(),
                    old: None,
                    new: Some(n.clone()),
                    effect: 0.0,
                    change: 0.0,
                    verdict: BenchVerdict::Added,
                    gated: gated(&n.path),
                });
            }
        }
        Self { min_effect, rows }
    }

    /// Gated rows that fail the regression gate: statistically
    /// significant regressions, plus gated paths the new run no longer
    /// measures.
    pub fn regressions(&self) -> Vec<&BenchComparisonRow> {
        self.rows
            .iter()
            .filter(|r| {
                r.gated
                    && matches!(r.verdict, BenchVerdict::Regressed | BenchVerdict::Removed)
            })
            .collect()
    }

    /// Does any gated path regress (or vanish)?
    pub fn has_regressions(&self) -> bool {
        !self.regressions().is_empty()
    }

    /// Count of rows with the given verdict.
    pub fn count(&self, verdict: BenchVerdict) -> usize {
        self.rows.iter().filter(|r| r.verdict == verdict).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_metrics::collector::UserMetrics;

    fn report(system: &str, duration: f64) -> MetricReport {
        MetricReport {
            system: system.into(),
            workload: "w".into(),
            user: UserMetrics { duration_secs: duration, operations: 100, ..Default::default() },
            energy_joules: duration * 100.0,
            ..Default::default()
        }
    }

    #[test]
    fn compare_picks_faster_system() {
        let a = report("sql", 1.0);
        let b = report("mapreduce", 4.0);
        let c = compare(&a, &b);
        assert_eq!(c.winner, "sql");
        assert_eq!(c.loser, "mapreduce");
        assert!((c.speedup - 4.0).abs() < 1e-9);
        // Energy scales with duration here, so the winner also wins energy.
        assert!(c.energy_ratio > 1.0);
    }

    #[test]
    fn compare_is_symmetric_in_winner() {
        let a = report("sql", 5.0);
        let b = report("mapreduce", 1.0);
        assert_eq!(compare(&a, &b).winner, "mapreduce");
        assert_eq!(compare(&b, &a).winner, "mapreduce");
    }

    #[test]
    fn crossover_found_at_flip() {
        let series = vec![
            (100.0, 1.0, 2.0), // a wins
            (1000.0, 2.0, 2.1),
            (10000.0, 5.0, 3.0), // b wins
        ];
        assert_eq!(find_crossover(&series), Some(10000.0));
    }

    #[test]
    fn no_crossover_when_one_system_dominates() {
        let series = vec![(1.0, 1.0, 2.0), (2.0, 2.0, 3.0)];
        assert_eq!(find_crossover(&series), None);
        assert_eq!(find_crossover(&[]), None);
    }

    #[test]
    fn recovery_summary_condenses_trace() {
        let events = vec![
            TraceEvent::DatasetGenerated {
                name: "events".into(),
                kind: "stream".into(),
                items: 10,
                bytes: 100,
                workers: 2,
                micros: 5,
            },
            TraceEvent::EngineDispatched {
                prescription: "micro/sort".into(),
                engine: "sql".into(),
                requested_system: "sql".into(),
                explicit: true,
                candidates: vec!["sql".into()],
            },
            TraceEvent::FaultInjected {
                site: "exec/sql:micro/sort".into(),
                kind: "error".into(),
                latency_ms: 0,
            },
            TraceEvent::OperationRetried {
                site: "exec/sql:micro/sort".into(),
                attempt: 1,
                delay_ms: 10,
                error: "injected engine fault".into(),
            },
            TraceEvent::FaultInjected {
                site: "exec/sql:micro/sort".into(),
                kind: "latency".into(),
                latency_ms: 25,
            },
            TraceEvent::EngineFailedOver {
                prescription: "micro/sort".into(),
                from: "sql".into(),
                to: "mapreduce".into(),
                attempts: 2,
                engine_attempts: 2,
                error: "injected engine fault".into(),
            },
            TraceEvent::DeadlineExceeded {
                site: "datagen/events".into(),
                elapsed_ms: 70,
                deadline_ms: 50,
            },
        ];
        let s = RecoverySummary::from_events(&events);
        assert_eq!(s.faults_injected(), 2);
        assert_eq!(s.faults_by_kind.get("error"), Some(&1));
        assert_eq!(s.faults_by_kind.get("latency"), Some(&1));
        assert_eq!(s.retries, 1);
        assert_eq!(s.failovers, 1);
        assert_eq!(s.deadline_hits, 1);
        assert_eq!(s.added_latency_ms, 10 + 25);
        assert_eq!(s.total_ops, 2);
        assert_eq!(s.attempts_per_site.get("exec/sql:micro/sort"), Some(&2));
        assert_eq!(s.attempts_per_site.get("datagen/events"), Some(&1));
        assert!((s.degraded_pct() - 1.0).abs() < 1e-9);
        assert!(!s.is_quiet());
    }

    #[test]
    fn recovery_summary_counts_checkpoints_and_resumes() {
        let checkpointed = RecoverySummary::from_events(&[
            TraceEvent::CheckpointWritten { key: "a__e__s1__n1".into(), digest: "0x1".into() },
            TraceEvent::CheckpointWritten { key: "b__e__s1__n1".into(), digest: "0x2".into() },
        ]);
        assert_eq!(checkpointed.checkpoints_written, 2);
        assert_eq!(checkpointed.cells_resumed, 0);
        assert!(checkpointed.is_quiet(), "journaling alone is not recovery");

        let resumed = RecoverySummary::from_events(&[
            TraceEvent::RunResumed { journal: "/tmp/run".into(), completed: 1 },
            TraceEvent::CellResumed {
                key: "a__e__s1__n1".into(),
                digest: "0x1".into(),
                reverified: true,
            },
        ]);
        assert_eq!(resumed.cells_resumed, 1);
        assert!(!resumed.is_quiet(), "a resumed run recovered from a crash");
    }

    #[test]
    fn recovery_summary_quiet_on_clean_trace() {
        let s = RecoverySummary::from_events(&[TraceEvent::PhaseStarted { phase: "planning".into() }]);
        assert!(s.is_quiet());
        assert_eq!(s.degraded_pct(), 0.0);
        assert_eq!(s.faults_injected(), 0);
    }

    #[test]
    fn conformance_summary_condenses_trace() {
        let check = |engine: &str, check: &str, passed: bool, detail: &str| {
            TraceEvent::ConformanceChecked {
                prescription: "micro/sort".into(),
                engine: engine.into(),
                check: check.into(),
                payload: "rowset".into(),
                passed,
                detail: detail.into(),
            }
        };
        let s = ConformanceSummary::from_events(&[
            TraceEvent::PhaseStarted { phase: "execution".into() },
            check("sql", "oracle", true, "digest 0x1"),
            check("sql", "golden", true, "digest 0x1"),
            check("mapreduce", "oracle", false, "rowset entry 3 differs"),
        ]);
        assert_eq!(s.checks, 3);
        assert_eq!(s.passes, 2);
        assert!(!s.all_passed());
        assert!(!s.is_empty());
        assert_eq!(s.by_check.get("oracle"), Some(&(1, 1)));
        assert_eq!(s.by_check.get("golden"), Some(&(1, 0)));
        assert_eq!(s.failures.len(), 1);
        assert_eq!(s.failures[0].1, "mapreduce");

        let quiet = ConformanceSummary::from_events(&[]);
        assert!(quiet.is_empty());
        assert!(quiet.all_passed());
    }

    #[test]
    fn load_summary_condenses_reports_and_events() {
        let report = crate::loadgen::LoadReport {
            engine: "kv".into(),
            clients: 2,
            inflight: 4,
            issued: 100,
            completed: 90,
            shed: 10,
            failed: 0,
            faults: 0,
            retries: 0,
            breaker_trips: 0,
            duration_secs: 1.0,
            throughput_ops_per_sec: 90.0,
            p50_us: 10.0,
            p99_us: 50.0,
            p999_us: 80.0,
            mean_queue_delay_ms: 0.5,
            sampled: 7,
            conformance_passed: true,
            digest: "0x1".into(),
        };
        let events = vec![
            TraceEvent::LoadSessionStarted { engine: "kv".into(), session: 0, lanes: 4 },
            TraceEvent::LoadSessionStarted { engine: "kv".into(), session: 1, lanes: 4 },
            TraceEvent::LoadSessionFinished {
                engine: "kv".into(),
                session: 0,
                completed: 45,
                micros: 10,
            },
            TraceEvent::LoadShed { engine: "kv".into(), count: 10 },
        ];
        let s = LoadSummary::new(vec![report], &events);
        assert!(!s.is_empty());
        assert_eq!(s.sessions_started, 2);
        assert_eq!(s.sessions_finished, 1);
        assert_eq!(s.shed_events, 1);
        assert_eq!(s.total_completed(), 90);
        assert_eq!(s.total_shed(), 10);
        assert!(s.all_conformant());

        let quiet = LoadSummary::new(Vec::new(), &[]);
        assert!(quiet.is_empty());
        assert!(quiet.all_conformant());
        assert_eq!(quiet.total_completed(), 0);
    }

    #[test]
    fn health_summary_replays_breaker_lifecycle() {
        let s = HealthSummary::from_events(&[
            TraceEvent::BreakerOpened { engine: "kv".into(), failure_rate: 0.75 },
            TraceEvent::BreakerHalfOpen { engine: "kv".into() },
            TraceEvent::ProbeResult { engine: "kv".into(), ok: false },
            TraceEvent::BreakerOpened { engine: "kv".into(), failure_rate: 0.8 },
            TraceEvent::BreakerHalfOpen { engine: "kv".into() },
            TraceEvent::ProbeResult { engine: "kv".into(), ok: true },
            TraceEvent::ProbeResult { engine: "kv".into(), ok: true },
            TraceEvent::BreakerClosed { engine: "kv".into() },
            TraceEvent::BreakerOpened { engine: "sql".into(), failure_rate: 1.0 },
        ]);
        assert!(!s.is_empty());
        assert_eq!(s.total_trips(), 3);
        assert_eq!(s.engines.len(), 2);
        let kv = &s.engines[0];
        assert_eq!(kv.engine, "kv");
        assert_eq!(kv.trips, 2);
        assert_eq!(kv.recoveries, 1);
        assert_eq!(kv.probes, 3);
        assert_eq!(kv.probe_failures, 1);
        assert_eq!(kv.final_state, "closed");
        // sql tripped and never recovered, so the run did not quiesce
        // healthy.
        assert!(!s.all_closed());
        assert_eq!(s.not_closed(), vec!["sql".to_string()]);

        let quiet = HealthSummary::from_events(&[]);
        assert!(quiet.is_empty());
        assert!(quiet.all_closed());
        assert_eq!(quiet.total_trips(), 0);
    }

    #[test]
    fn routing_summary_condenses_trace() {
        let decision = |prescription: &str, engine: &str, predicted: f64, source: &str| {
            TraceEvent::RoutingDecision {
                prescription: prescription.into(),
                policy: "adaptive".into(),
                engine: engine.into(),
                predicted_micros: predicted,
                source: source.into(),
                rejected: vec![],
            }
        };
        let observed = |prescription: &str, engine: &str, micros: u64| TraceEvent::CostObserved {
            prescription: prescription.into(),
            engine: engine.into(),
            key: format!("{engine}/relational/table/s2"),
            micros,
            ewma_micros: micros as f64,
            samples: 1,
        };
        let s = RoutingSummary::from_events(&[
            decision("relational/join", "mapreduce", 800.0, "static"),
            observed("relational/join", "mapreduce", 1600),
            decision("relational/join", "sql", 400.0, "observed"),
            observed("relational/join", "sql", 400),
            decision("micro/sort", "native", 0.0, "unknown"),
            observed("micro/sort", "native", 100),
        ]);
        assert!(!s.is_empty());
        assert_eq!(s.decisions, 3);
        assert_eq!(s.observations, 3);
        assert_eq!(s.by_engine.get("sql"), Some(&1));
        assert_eq!(s.by_source.get("static"), Some(&1));
        assert_eq!(s.from_observed(), 1);
        // The unknown-source decision contributes no prediction pair.
        assert_eq!(s.pairs.len(), 2);
        // mapreduce over-ran its prediction 2x, sql was exact → geomean √2.
        assert!((s.mean_error_ratio() - 2f64.sqrt()).abs() < 1e-9);
        assert_eq!(
            s.migrations,
            vec![("relational/join".to_string(), "mapreduce".to_string(), "sql".to_string())]
        );

        let quiet = RoutingSummary::from_events(&[]);
        assert!(quiet.is_empty());
        assert_eq!(quiet.mean_error_ratio(), 1.0);
    }

    #[test]
    fn routing_events_do_not_skew_recovery_total_ops() {
        let s = RecoverySummary::from_events(&[
            TraceEvent::RoutingDecision {
                prescription: "micro/sort".into(),
                policy: "cost".into(),
                engine: "native".into(),
                predicted_micros: 90.0,
                source: "static".into(),
                rejected: vec![],
            },
            TraceEvent::CostObserved {
                prescription: "micro/sort".into(),
                engine: "native".into(),
                key: "native/text/text/s2".into(),
                micros: 120,
                ewma_micros: 120.0,
                samples: 1,
            },
        ]);
        assert_eq!(s.total_ops, 0);
        assert!(s.is_quiet());
    }

    #[test]
    fn geomean_is_scale_stable() {
        // Speedups of 2x and 8x → geomean 4x.
        let g = geomean_speedup(&[(1.0, 2.0), (1.0, 8.0)]);
        assert!((g - 4.0).abs() < 1e-9);
        assert_eq!(geomean_speedup(&[]), 1.0);
    }

    fn ci(path: &str, mean: f64, half: f64) -> PathCi {
        PathCi { path: path.into(), mean, ci_lo: mean - half, ci_hi: mean + half, samples: 5 }
    }

    #[test]
    fn bench_comparison_is_reflexive() {
        let a = vec![ci("p1", 1000.0, 10.0), ci("p2", 50.0, 5.0)];
        let c = BenchComparison::of(&a, &a, 0.05, &[]);
        assert!(!c.has_regressions());
        assert!(c.rows.iter().all(|r| r.verdict == BenchVerdict::Unchanged));
    }

    #[test]
    fn bench_comparison_flags_a_2x_slowdown() {
        let old = vec![ci("lsm_put_ops", 1000.0, 10.0)];
        let new = vec![ci("lsm_put_ops", 500.0, 5.0)];
        let c = BenchComparison::of(&old, &new, 0.25, &[]);
        assert_eq!(c.rows[0].verdict, BenchVerdict::Regressed);
        assert!((c.rows[0].effect - 1.0).abs() < 1e-9);
        assert!((c.rows[0].change + 0.5).abs() < 1e-9);
        assert!(c.has_regressions());
        // The mirror comparison must call it an improvement.
        let back = BenchComparison::of(&new, &old, 0.25, &[]);
        assert_eq!(back.rows[0].verdict, BenchVerdict::Improved);
        assert!(!back.has_regressions());
    }

    #[test]
    fn bench_comparison_effect_floor_suppresses_tiny_significance() {
        // Non-overlapping CIs, but a 4% effect under a 25% floor.
        let old = vec![ci("p", 1000.0, 1.0)];
        let new = vec![ci("p", 960.0, 1.0)];
        let c = BenchComparison::of(&old, &new, 0.25, &[]);
        assert_eq!(c.rows[0].verdict, BenchVerdict::Unchanged);
    }

    #[test]
    fn bench_comparison_overlap_suppresses_large_point_change() {
        // A 2x mean change but wide overlapping intervals: not significant.
        let old = vec![ci("p", 1000.0, 800.0)];
        let new = vec![ci("p", 500.0, 700.0)];
        let c = BenchComparison::of(&old, &new, 0.25, &[]);
        assert_eq!(c.rows[0].verdict, BenchVerdict::Unchanged);
    }

    #[test]
    fn bench_comparison_gate_scopes_failures() {
        let old = vec![ci("gated", 1000.0, 10.0), ci("noisy", 1000.0, 10.0)];
        let new = vec![ci("gated", 900.0, 10.0), ci("noisy", 400.0, 10.0)];
        let gate = vec!["gated".to_string()];
        let c = BenchComparison::of(&old, &new, 0.25, &gate);
        // The gated path didn't significantly regress (10% < floor); the
        // ungated one did but is outside the gate.
        assert_eq!(c.rows[1].verdict, BenchVerdict::Regressed);
        assert!(!c.has_regressions());
    }

    #[test]
    fn bench_comparison_missing_gated_path_fails_the_gate() {
        let old = vec![ci("p1", 1000.0, 10.0)];
        let new = vec![ci("p2", 1000.0, 10.0)];
        let gate = vec!["p1".to_string()];
        let c = BenchComparison::of(&old, &new, 0.25, &gate);
        assert_eq!(c.count(BenchVerdict::Removed), 1);
        assert_eq!(c.count(BenchVerdict::Added), 1);
        assert!(c.has_regressions(), "a gated path going missing must fail");
    }

    #[test]
    fn bench_comparison_point_baseline_still_compares() {
        // Legacy single-shot baseline: a point interval against a tight
        // new interval — significance rests on the new CI and the floor.
        let old = vec![PathCi {
            path: "p".into(),
            mean: 1000.0,
            ci_lo: 1000.0,
            ci_hi: 1000.0,
            samples: 1,
        }];
        let slow = vec![ci("p", 400.0, 20.0)];
        let c = BenchComparison::of(&old, &slow, 0.25, &[]);
        assert_eq!(c.rows[0].verdict, BenchVerdict::Regressed);
    }
}
