//! System configuration tools.
//!
//! A [`SystemConfig`] carries everything needed to run a prescribed test
//! on one engine: concurrency, memory budget, and free-form engine
//! parameters. A [`SoftwareStack`] names the stack a test runs on —
//! Table 2's "software stacks" column — so reports can attribute results.

use bdb_common::{BdbError, Result};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Runtime configuration for one engine under test.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
    /// Worker threads for parallel data generation (0 = available
    /// parallelism, 1 = sequential). Kept separate from `threads` because
    /// generation and execution are different phases with different
    /// scaling behaviour.
    pub generator_workers: usize,
    /// Memory budget in bytes the engine should respect.
    pub memory_budget_bytes: usize,
    /// Engine-specific free-form parameters.
    pub parameters: BTreeMap<String, String>,
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            generator_workers: 1,
            memory_budget_bytes: 256 << 20,
            parameters: BTreeMap::new(),
        }
    }
}

impl SystemConfig {
    /// Set the thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Set the data-generation worker count (0 = available parallelism).
    pub fn with_generator_workers(mut self, workers: usize) -> Self {
        self.generator_workers = workers;
        self
    }

    /// Set the memory budget.
    pub fn with_memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget_bytes = bytes;
        self
    }

    /// Set one engine parameter.
    pub fn with_parameter(mut self, key: &str, value: &str) -> Self {
        self.parameters.insert(key.to_string(), value.to_string());
        self
    }

    /// Effective thread count.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        }
    }

    /// EWMA smoothing factor for the router's observed-cost store: the
    /// `routing.ewma_alpha` parameter when set, else
    /// [`crate::cost::DEFAULT_EWMA_ALPHA`].
    ///
    /// # Errors
    /// Fails when the parameter is set but unparsable or outside `(0, 1]`
    /// — an alpha of 0 never learns and one above 1 diverges, so feeding
    /// either into the EWMA would silently corrupt every estimate.
    pub fn routing_ewma_alpha(&self) -> Result<f64> {
        if !self.parameters.contains_key("routing.ewma_alpha") {
            return Ok(crate::cost::DEFAULT_EWMA_ALPHA);
        }
        let alpha = self.parameter::<f64>("routing.ewma_alpha")?;
        if alpha > 0.0 && alpha <= 1.0 {
            Ok(alpha)
        } else {
            Err(BdbError::InvalidConfig(format!(
                "routing.ewma_alpha={alpha} out of range: must be in (0, 1]"
            )))
        }
    }

    /// Circuit-breaker thresholds for the run's [`HealthStore`]: each
    /// `breaker.*` parameter overrides the matching
    /// [`BreakerPolicy`] field, with
    /// every override range-checked before any engine runs.
    ///
    /// Recognised keys: `breaker.window`, `breaker.trip_ratio`,
    /// `breaker.min_samples`, `breaker.cooldown`, `breaker.probe_stride`,
    /// `breaker.close_after`.
    ///
    /// [`HealthStore`]: crate::health::HealthStore
    /// [`BreakerPolicy`]: crate::health::BreakerPolicy
    ///
    /// # Errors
    /// Fails when an override is unparsable or out of range — a breaker
    /// that can never trip (ratio > 1) or never probe (stride 0) would
    /// silently disable health-aware serving.
    pub fn breaker_policy(&self) -> Result<crate::health::BreakerPolicy> {
        let mut p = crate::health::BreakerPolicy::default();
        if self.parameters.contains_key("breaker.window") {
            p.window = self.parameter("breaker.window")?;
        }
        if self.parameters.contains_key("breaker.trip_ratio") {
            p.trip_ratio = self.parameter("breaker.trip_ratio")?;
        }
        if self.parameters.contains_key("breaker.min_samples") {
            p.min_samples = self.parameter("breaker.min_samples")?;
        }
        if self.parameters.contains_key("breaker.cooldown") {
            p.cooldown = self.parameter("breaker.cooldown")?;
        }
        if self.parameters.contains_key("breaker.probe_stride") {
            p.probe_stride = self.parameter("breaker.probe_stride")?;
        }
        if self.parameters.contains_key("breaker.close_after") {
            p.close_after = self.parameter("breaker.close_after")?;
        }
        p.validate()?;
        Ok(p)
    }

    /// Read a typed parameter.
    ///
    /// # Errors
    /// Fails when the parameter is missing or unparsable.
    pub fn parameter<T: std::str::FromStr>(&self, key: &str) -> Result<T> {
        let raw = self
            .parameters
            .get(key)
            .ok_or_else(|| BdbError::NotFound(format!("parameter {key}")))?;
        raw.parse()
            .map_err(|_| BdbError::InvalidConfig(format!("parameter {key}={raw} unparsable")))
    }
}

/// A named software stack (Table 2's stack column).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SoftwareStack {
    /// Stack name, e.g. "Hadoop-analog".
    pub name: String,
    /// The systems composing the stack, e.g. ["mapreduce"].
    pub systems: Vec<String>,
}

impl SoftwareStack {
    /// A stack of one system.
    pub fn single(name: &str, system: &str) -> Self {
        Self { name: name.to_string(), systems: vec![system.to_string()] }
    }

    /// Does the stack include a system?
    pub fn includes(&self, system: &str) -> bool {
        self.systems.iter().any(|s| s == system)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let c = SystemConfig::default()
            .with_threads(8)
            .with_generator_workers(4)
            .with_memory_budget(1 << 20)
            .with_parameter("reduce_tasks", "16");
        assert_eq!(c.effective_threads(), 8);
        assert_eq!(c.generator_workers, 4);
        assert_eq!(c.memory_budget_bytes, 1 << 20);
        assert_eq!(c.parameter::<usize>("reduce_tasks").unwrap(), 16);
    }

    #[test]
    fn generator_workers_default_is_sequential() {
        assert_eq!(SystemConfig::default().generator_workers, 1);
    }

    #[test]
    fn zero_threads_falls_back_to_parallelism() {
        let c = SystemConfig::default();
        assert!(c.effective_threads() >= 1);
    }

    #[test]
    fn routing_alpha_defaults_and_accepts_valid_range() {
        assert_eq!(
            SystemConfig::default().routing_ewma_alpha().unwrap(),
            crate::cost::DEFAULT_EWMA_ALPHA
        );
        let c = SystemConfig::default().with_parameter("routing.ewma_alpha", "0.9");
        assert!((c.routing_ewma_alpha().unwrap() - 0.9).abs() < 1e-12);
        // The upper bound is inclusive: alpha = 1 means "latest sample
        // wins", which is a valid (if forgetful) EWMA.
        let c = SystemConfig::default().with_parameter("routing.ewma_alpha", "1.0");
        assert_eq!(c.routing_ewma_alpha().unwrap(), 1.0);
    }

    #[test]
    fn routing_alpha_rejects_both_bounds() {
        // Lower bound is exclusive: alpha = 0 never learns.
        let c = SystemConfig::default().with_parameter("routing.ewma_alpha", "0.0");
        let err = c.routing_ewma_alpha().unwrap_err().to_string();
        assert!(err.contains("(0, 1]"), "error should name the valid range: {err}");
        // Above the upper bound the EWMA diverges.
        let c = SystemConfig::default().with_parameter("routing.ewma_alpha", "1.5");
        let err = c.routing_ewma_alpha().unwrap_err().to_string();
        assert!(err.contains("(0, 1]"), "error should name the valid range: {err}");
        // Negative values and garbage are rejected too.
        let c = SystemConfig::default().with_parameter("routing.ewma_alpha", "-0.3");
        assert!(c.routing_ewma_alpha().is_err());
        let c = SystemConfig::default().with_parameter("routing.ewma_alpha", "fast");
        assert!(c.routing_ewma_alpha().is_err());
    }

    #[test]
    fn breaker_policy_defaults_then_overrides() {
        let p = SystemConfig::default().breaker_policy().unwrap();
        assert_eq!(p, crate::health::BreakerPolicy::default());
        let c = SystemConfig::default()
            .with_parameter("breaker.window", "32")
            .with_parameter("breaker.trip_ratio", "0.25")
            .with_parameter("breaker.cooldown", "5");
        let p = c.breaker_policy().unwrap();
        assert_eq!(p.window, 32);
        assert!((p.trip_ratio - 0.25).abs() < 1e-12);
        assert_eq!(p.cooldown, 5);
        // Untouched fields keep their defaults.
        assert_eq!(p.probe_stride, crate::health::BreakerPolicy::default().probe_stride);
    }

    #[test]
    fn breaker_policy_rejects_out_of_range() {
        let c = SystemConfig::default().with_parameter("breaker.trip_ratio", "1.5");
        let err = c.breaker_policy().unwrap_err().to_string();
        assert!(err.contains("(0, 1]"), "error should name the valid range: {err}");
        let c = SystemConfig::default().with_parameter("breaker.cooldown", "0");
        let err = c.breaker_policy().unwrap_err().to_string();
        assert!(err.contains(">= 1"), "error should name the valid range: {err}");
        let c = SystemConfig::default().with_parameter("breaker.window", "lots");
        assert!(c.breaker_policy().is_err());
    }

    #[test]
    fn typed_parameter_errors() {
        let c = SystemConfig::default().with_parameter("x", "abc");
        assert!(c.parameter::<usize>("x").is_err());
        assert!(c.parameter::<usize>("missing").is_err());
    }

    #[test]
    fn stack_membership() {
        let s = SoftwareStack {
            name: "hybrid".into(),
            systems: vec!["sql".into(), "mapreduce".into()],
        };
        assert!(s.includes("sql"));
        assert!(!s.includes("kv"));
        assert!(SoftwareStack::single("h", "mapreduce").includes("mapreduce"));
    }
}
