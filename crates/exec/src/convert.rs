//! Data format conversion tools.
//!
//! "Big data benchmarks need to provide format conversion, which can
//! transfer a data set into an appropriate format capable of being used as
//! the input of a test running on a specific system." Tables convert to
//! and from CSV/TSV, JSON-lines and a length-prefixed binary format; text
//! corpora convert to plain-text lines. Every conversion round-trips,
//! which the tests (and a proptest in the integration suite) verify.

use bdb_common::record::{Record, Table};
use bdb_common::text::{Document, Vocabulary};
use bdb_common::value::{DataType, Schema, Value};
use bdb_common::{BdbError, Result};

/// The formats the conversion tools understand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataFormat {
    /// Comma-separated values with a header row.
    Csv,
    /// Tab-separated values with a header row.
    Tsv,
    /// One JSON object per line.
    JsonLines,
    /// Length-prefixed binary.
    Binary,
}

fn sep(format: DataFormat) -> Result<char> {
    match format {
        DataFormat::Csv => Ok(','),
        DataFormat::Tsv => Ok('\t'),
        _ => Err(BdbError::Format("separator only defined for CSV/TSV".into())),
    }
}

fn escape(field: &str, sep: char) -> String {
    if field.contains(sep) || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

fn render_value(v: &Value) -> String {
    match v {
        Value::Null => String::new(),
        Value::Float(f) => format!("{f:?}"), // keeps .0 so types round-trip
        other => other.to_string(),
    }
}

/// Serialise a table to delimited text (CSV or TSV) with a header.
pub fn table_to_delimited(table: &Table, format: DataFormat) -> Result<String> {
    let s = sep(format)?;
    let mut out = String::new();
    let header: Vec<String> = table
        .schema()
        .fields()
        .iter()
        .map(|f| escape(&format!("{}:{}", f.name, f.data_type), s))
        .collect();
    out.push_str(&header.join(&s.to_string()));
    out.push('\n');
    for row in table.rows() {
        let cells: Vec<String> = row.iter().map(|v| escape(&render_value(v), s)).collect();
        out.push_str(&cells.join(&s.to_string()));
        out.push('\n');
    }
    Ok(out)
}

/// Split one delimited line honouring quotes.
fn split_line(line: &str, sep: char) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut quoted = false;
    while let Some(c) = chars.next() {
        if quoted {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    quoted = false;
                }
            } else {
                cur.push(c);
            }
        } else if c == '"' {
            quoted = true;
        } else if c == sep {
            fields.push(std::mem::take(&mut cur));
        } else {
            cur.push(c);
        }
    }
    fields.push(cur);
    fields
}

fn parse_value(text: &str, dt: DataType) -> Result<Value> {
    if text.is_empty() {
        return Ok(Value::Null);
    }
    let v = match dt {
        DataType::Int => Value::Int(
            text.parse()
                .map_err(|_| BdbError::Format(format!("bad int {text}")))?,
        ),
        DataType::Float => Value::Float(
            text.parse()
                .map_err(|_| BdbError::Format(format!("bad float {text}")))?,
        ),
        DataType::Bool => Value::Bool(
            text.parse()
                .map_err(|_| BdbError::Format(format!("bad bool {text}")))?,
        ),
        DataType::Timestamp => Value::Timestamp(
            text.strip_prefix('@')
                .unwrap_or(text)
                .parse()
                .map_err(|_| BdbError::Format(format!("bad timestamp {text}")))?,
        ),
        DataType::Text => Value::Text(text.to_string()),
    };
    Ok(v)
}

fn parse_data_type(text: &str) -> Result<DataType> {
    match text {
        "INT" => Ok(DataType::Int),
        "FLOAT" => Ok(DataType::Float),
        "TEXT" => Ok(DataType::Text),
        "BOOL" => Ok(DataType::Bool),
        "TIMESTAMP" => Ok(DataType::Timestamp),
        other => Err(BdbError::Format(format!("unknown type {other}"))),
    }
}

/// Parse a delimited table produced by [`table_to_delimited`].
pub fn delimited_to_table(text: &str, format: DataFormat) -> Result<Table> {
    let s = sep(format)?;
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| BdbError::Format("missing header".into()))?;
    let fields = split_line(header, s)
        .into_iter()
        .map(|h| {
            let (name, ty) = h
                .rsplit_once(':')
                .ok_or_else(|| BdbError::Format(format!("bad header field {h}")))?;
            Ok(bdb_common::value::Field::nullable(name, parse_data_type(ty)?))
        })
        .collect::<Result<Vec<_>>>()?;
    let schema = Schema::new(fields);
    let mut table = Table::new(schema.clone());
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let cells = split_line(line, s);
        if cells.len() != schema.len() {
            return Err(BdbError::Format(format!(
                "row has {} cells, schema has {} columns",
                cells.len(),
                schema.len()
            )));
        }
        let row: Record = cells
            .iter()
            .zip(schema.fields())
            .map(|(c, f)| parse_value(c, f.data_type))
            .collect::<Result<_>>()?;
        table.push(row)?;
    }
    Ok(table)
}

/// Serialise a table to JSON-lines (schema line first, then one array per
/// row).
pub fn table_to_jsonl(table: &Table) -> Result<String> {
    let mut out = serde_json::to_string(table.schema())
        .map_err(|e| BdbError::Format(e.to_string()))?;
    out.push('\n');
    for row in table.rows() {
        out.push_str(&serde_json::to_string(row).map_err(|e| BdbError::Format(e.to_string()))?);
        out.push('\n');
    }
    Ok(out)
}

/// Parse JSON-lines produced by [`table_to_jsonl`].
pub fn jsonl_to_table(text: &str) -> Result<Table> {
    let mut lines = text.lines().filter(|l| !l.is_empty());
    let schema: Schema = serde_json::from_str(
        lines
            .next()
            .ok_or_else(|| BdbError::Format("missing schema line".into()))?,
    )
    .map_err(|e| BdbError::Format(e.to_string()))?;
    let mut table = Table::new(schema);
    for line in lines {
        let row: Record =
            serde_json::from_str(line).map_err(|e| BdbError::Format(e.to_string()))?;
        table.push(row)?;
    }
    Ok(table)
}

/// Serialise a table to the length-prefixed binary format: the JSON-lines
/// bytes wrapped with a magic header and u32 length (a stand-in for a
/// columnar file format that still exercises a binary code path).
pub fn table_to_binary(table: &Table) -> Result<Vec<u8>> {
    let payload = table_to_jsonl(table)?.into_bytes();
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(b"BDB1");
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    Ok(out)
}

/// Parse the binary format produced by [`table_to_binary`].
pub fn binary_to_table(bytes: &[u8]) -> Result<Table> {
    if bytes.len() < 8 || &bytes[..4] != b"BDB1" {
        return Err(BdbError::Format("bad binary magic".into()));
    }
    let len = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")) as usize;
    if bytes.len() < 8 + len {
        return Err(BdbError::Format("truncated binary table".into()));
    }
    let payload = std::str::from_utf8(&bytes[8..8 + len])
        .map_err(|e| BdbError::Format(e.to_string()))?;
    jsonl_to_table(payload)
}

/// Render a text corpus as plain-text lines (one document per line).
pub fn corpus_to_plain_text(docs: &[Document], vocab: &Vocabulary) -> String {
    let mut out = String::new();
    for d in docs {
        out.push_str(&d.to_text(vocab));
        out.push('\n');
    }
    out
}

/// Parse plain-text lines back into documents over a shared vocabulary.
pub fn plain_text_to_corpus(text: &str) -> (Vec<Document>, Vocabulary) {
    let mut vocab = Vocabulary::new();
    let docs = text
        .lines()
        .filter(|l| !l.is_empty())
        .map(|l| Document::from_text(l, &mut vocab))
        .collect();
    (docs, vocab)
}

/// Serialise run-trace events as JSON-lines (one event per line).
pub fn trace_to_jsonl(events: &[crate::trace::TraceEvent]) -> Result<String> {
    let mut out = String::new();
    for e in events {
        out.push_str(
            &serde_json::to_string(e).map_err(|e| BdbError::Format(e.to_string()))?,
        );
        out.push('\n');
    }
    Ok(out)
}

/// Parse JSON-lines back into run-trace events.
pub fn jsonl_to_trace(text: &str) -> Result<Vec<crate::trace::TraceEvent>> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| serde_json::from_str(l).map_err(|e| BdbError::Format(e.to_string())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_common::value::Field;

    fn sample() -> Table {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::nullable("name", DataType::Text),
            Field::new("price", DataType::Float),
            Field::new("ok", DataType::Bool),
            Field::new("at", DataType::Timestamp),
        ]);
        let mut t = Table::new(schema);
        t.push(vec![
            Value::Int(1),
            Value::Text("plain".into()),
            Value::Float(2.5),
            Value::Bool(true),
            Value::Timestamp(99),
        ])
        .unwrap();
        t.push(vec![
            Value::Int(2),
            Value::Null,
            Value::Float(-0.25),
            Value::Bool(false),
            Value::Timestamp(100),
        ])
        .unwrap();
        t.push(vec![
            Value::Int(3),
            Value::Text("has,comma and \"quotes\"".into()),
            Value::Float(3.0),
            Value::Bool(true),
            Value::Timestamp(101),
        ])
        .unwrap();
        t
    }

    #[test]
    fn csv_round_trip() {
        let t = sample();
        let csv = table_to_delimited(&t, DataFormat::Csv).unwrap();
        let back = delimited_to_table(&csv, DataFormat::Csv).unwrap();
        assert_eq!(t.rows(), back.rows());
    }

    #[test]
    fn tsv_round_trip() {
        let t = sample();
        let tsv = table_to_delimited(&t, DataFormat::Tsv).unwrap();
        let back = delimited_to_table(&tsv, DataFormat::Tsv).unwrap();
        assert_eq!(t.rows(), back.rows());
    }

    #[test]
    fn jsonl_round_trip() {
        let t = sample();
        let back = jsonl_to_table(&table_to_jsonl(&t).unwrap()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn binary_round_trip_and_corruption() {
        let t = sample();
        let bytes = table_to_binary(&t).unwrap();
        let back = binary_to_table(&bytes).unwrap();
        assert_eq!(t, back);
        assert!(binary_to_table(b"XXXX").is_err());
        assert!(binary_to_table(&bytes[..6]).is_err());
        let mut truncated = bytes.clone();
        truncated.truncate(bytes.len() - 3);
        assert!(binary_to_table(&truncated).is_err());
    }

    #[test]
    fn csv_quoting_is_correct() {
        let t = sample();
        let csv = table_to_delimited(&t, DataFormat::Csv).unwrap();
        assert!(csv.contains("\"has,comma and \"\"quotes\"\"\""));
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(delimited_to_table("", DataFormat::Csv).is_err());
        assert!(delimited_to_table("a:INT\n1,2\n", DataFormat::Csv).is_err());
        assert!(delimited_to_table("a:INT\nxyz\n", DataFormat::Csv).is_err());
        assert!(delimited_to_table("a:WAT\n", DataFormat::Csv).is_err());
        assert!(jsonl_to_table("").is_err());
    }

    #[test]
    fn plain_text_corpus_round_trip() {
        let (docs, vocab) = plain_text_to_corpus("big data systems\nbench mark\n");
        assert_eq!(docs.len(), 2);
        let text = corpus_to_plain_text(&docs, &vocab);
        let (again, _) = plain_text_to_corpus(&text);
        assert_eq!(docs.len(), again.len());
        assert_eq!(docs[0].len(), again[0].len());
    }

    #[test]
    fn separator_is_undefined_for_other_formats() {
        assert!(table_to_delimited(&sample(), DataFormat::Binary).is_err());
    }

    #[test]
    fn trace_jsonl_round_trip() {
        use crate::trace::TraceEvent;
        let events = vec![
            TraceEvent::PhaseStarted { phase: "execution".into() },
            TraceEvent::OperationExecuted {
                engine: "sql".into(),
                op: "select".into(),
                rows_out: 42,
                micros: 7,
            },
            TraceEvent::PhaseFinished { phase: "execution".into(), micros: 99 },
        ];
        let jsonl = trace_to_jsonl(&events).unwrap();
        assert_eq!(jsonl.lines().count(), 3);
        let back = jsonl_to_trace(&jsonl).unwrap();
        assert_eq!(events, back);
        assert!(jsonl_to_trace("not json\n").is_err());
    }
}
