//! Static per-engine cost functions and the observed-runtime store.
//!
//! The planner (see [`crate::planner`]) scores every capable engine for a
//! prescribed test and picks the cheapest. Predictions come from three
//! sources, in order of preference under the adaptive policy: runtimes
//! *observed* earlier in the run (an EWMA per cost-model key, kept in
//! [`ObservedCosts`]), a cost the engine reports for its own chosen plan
//! ([`crate::engine::Engine::estimate_cost`] — the SQL engine prices its
//! memo-extracted plan), and the static per-engine cost table over
//! (operation class × data kind × scale) seeded in [`StaticCostModel`].
//! All three speak the same unit — estimated microseconds of engine
//! execution time — so an observed wall clock can replace a static guess
//! without conversion.
//!
//! Cost-model keys are `engine/class/kinds/s<bucket>` strings where the
//! scale bucket is the decade (`log10`) of the run's item count: runs at
//! scale 300 and 900 share one observed estimate, runs at 300 and 30 000
//! do not. The EWMA keeps the store small and recency-weighted; the
//! smoothing factor defaults to [`DEFAULT_EWMA_ALPHA`] and can be
//! overridden per run via the `routing.ewma_alpha` system-config
//! parameter.

use crate::engine::WorkloadClass;
use bdb_datagen::DataSourceKind;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Default EWMA smoothing factor for observed runtimes: the newest sample
/// carries 40% of the estimate, enough to migrate within two repeats of a
/// cell without letting one noisy run dominate.
pub const DEFAULT_EWMA_ALPHA: f64 = 0.4;

/// A static cost curve: `startup + per_item·n + log_factor·n·log2(n)`
/// estimated microseconds at scale `n`. All coefficients are
/// non-negative, so every curve is monotonically non-decreasing in scale
/// (property-tested below) and comparisons between engines are stable as
/// runs grow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostFn {
    /// Fixed setup cost (framework spin-up, plan lowering), in µs.
    pub startup: f64,
    /// Marginal cost per input item, in µs.
    pub per_item: f64,
    /// Coefficient of the `n·log2(n)` term (sort/shuffle-bound work).
    pub log_factor: f64,
}

impl CostFn {
    /// Evaluate the curve at `scale` input items.
    pub fn cost(&self, scale: u64) -> f64 {
        let n = scale as f64;
        let lg = if scale > 1 { n.log2() } else { 0.0 };
        self.startup + self.per_item * n + self.log_factor * n * lg
    }
}

/// Predicts what one engine costs to execute one operation class over one
/// data kind at a given scale, in estimated microseconds. `None` means
/// the model has no opinion (the router then ranks the engine last).
pub trait CostModel: Send + Sync {
    /// Predicted execution cost, or `None` when unknown.
    fn predict(
        &self,
        engine: &str,
        class: WorkloadClass,
        kind: DataSourceKind,
        scale: u64,
    ) -> Option<f64>;
}

/// The seeded static cost table: one [`CostFn`] per
/// (engine × operation class × data kind) the builtin engines cover.
#[derive(Debug, Clone, Default)]
pub struct StaticCostModel {
    entries: BTreeMap<(String, WorkloadClass, DataSourceKind), CostFn>,
}

impl StaticCostModel {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The table seeded for the five builtin engines. The coefficients
    /// encode the registration-order intuition the first-capable router
    /// hard-coded: native kernels are the cheapest way to run text and
    /// iterative work, the SQL engine beats MapReduce on relational
    /// patterns at small scale, and the general-purpose MapReduce engine
    /// pays framework startup plus shuffle costs everywhere.
    pub fn with_builtins() -> Self {
        use DataSourceKind::{Graph, Stream, Table, Text};
        use WorkloadClass::{Behavioral, Element, Iterative, Relational, Windowed};
        let mut m = Self::new();
        let native = CostFn { startup: 50.0, per_item: 0.8, log_factor: 0.0 };
        let native_iter = CostFn { startup: 80.0, per_item: 2.5, log_factor: 0.0 };
        for kind in [Text, Graph, Table] {
            m.set("native", WorkloadClass::Text, kind, native);
            m.set("native", Iterative, kind, native_iter);
        }
        m.set("sql", Relational, Table, CostFn { startup: 120.0, per_item: 0.9, log_factor: 0.15 });
        m.set("kv", Element, Table, CostFn { startup: 60.0, per_item: 1.1, log_factor: 0.0 });
        m.set("streaming", Windowed, Stream, CostFn { startup: 90.0, per_item: 0.7, log_factor: 0.0 });
        // Behavioral analytics: the streaming engine's per-user aggregates
        // beat the MapReduce lowering's shuffle at every scale; both pay a
        // small log factor for the finalize-time sorts.
        m.set("streaming", Behavioral, Stream, CostFn { startup: 100.0, per_item: 0.8, log_factor: 0.05 });
        m.set("mapreduce", Behavioral, Stream, CostFn { startup: 450.0, per_item: 1.4, log_factor: 0.1 });
        let mr_text = CostFn { startup: 400.0, per_item: 1.2, log_factor: 0.05 };
        let mr_iter = CostFn { startup: 500.0, per_item: 3.5, log_factor: 0.05 };
        let mr_rel = CostFn { startup: 400.0, per_item: 1.5, log_factor: 0.2 };
        for kind in [Text, Graph, Table] {
            m.set("mapreduce", WorkloadClass::Text, kind, mr_text);
            m.set("mapreduce", Iterative, kind, mr_iter);
            m.set("mapreduce", Relational, kind, mr_rel);
        }
        m
    }

    /// Insert (or replace) the curve for one table cell.
    pub fn set(&mut self, engine: &str, class: WorkloadClass, kind: DataSourceKind, f: CostFn) {
        self.entries.insert((engine.to_string(), class, kind), f);
    }

    /// Iterate the table cells in (engine, class, kind) order.
    pub fn entries(
        &self,
    ) -> impl Iterator<Item = (&str, WorkloadClass, DataSourceKind, CostFn)> + '_ {
        self.entries.iter().map(|((e, c, k), f)| (e.as_str(), *c, *k, *f))
    }

    /// The (class, kind) combinations the table covers.
    pub fn covered_profiles(&self) -> Vec<(WorkloadClass, DataSourceKind)> {
        let mut out: Vec<(WorkloadClass, DataSourceKind)> =
            self.entries.keys().map(|(_, c, k)| (*c, *k)).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The cheapest engine for (class, kind) at `scale`, with its cost.
    pub fn winner(
        &self,
        class: WorkloadClass,
        kind: DataSourceKind,
        scale: u64,
    ) -> Option<(&str, f64)> {
        self.entries
            .iter()
            .filter(|((_, c, k), _)| *c == class && *k == kind)
            .map(|((e, _, _), f)| (e.as_str(), f.cost(scale)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }
}

impl CostModel for StaticCostModel {
    fn predict(
        &self,
        engine: &str,
        class: WorkloadClass,
        kind: DataSourceKind,
        scale: u64,
    ) -> Option<f64> {
        self.entries
            .get(&(engine.to_string(), class, kind))
            .map(|f| f.cost(scale))
    }
}

/// The cost-model key an observed runtime is stored under:
/// `engine/class/kind+kind/s<decade>`.
pub fn cost_key(
    engine: &str,
    class: WorkloadClass,
    kinds: &[DataSourceKind],
    scale: u64,
) -> String {
    let kinds = if kinds.is_empty() {
        "-".to_string()
    } else {
        kinds.iter().map(ToString::to_string).collect::<Vec<_>>().join("+")
    };
    format!("{engine}/{class}/{kinds}/s{}", scale.max(1).ilog10())
}

/// One smoothed observation series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObservedEntry {
    /// Exponentially weighted moving average of observed runtimes, in µs.
    pub ewma_micros: f64,
    /// Samples folded into the average.
    pub samples: u64,
}

/// Observed engine runtimes, EWMA-smoothed per cost-model key.
///
/// The store is interior-mutable and shareable (`Arc<ObservedCosts>`):
/// the registry records into it after every routed execution, and a
/// matrix sweep injects one store into every cell so the second pass
/// re-ranks on what the first pass measured.
#[derive(Debug, Default)]
pub struct ObservedCosts {
    inner: Mutex<BTreeMap<String, ObservedEntry>>,
}

impl ObservedCosts {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one observed runtime into the key's EWMA with smoothing
    /// factor `alpha` (new estimate = `alpha·sample + (1-alpha)·old`).
    /// Returns the updated entry.
    pub fn observe(&self, key: &str, micros: f64, alpha: f64) -> ObservedEntry {
        let mut inner = self.inner.lock().expect("observed-cost store poisoned");
        let entry = inner
            .entry(key.to_string())
            .and_modify(|e| {
                e.ewma_micros = alpha * micros + (1.0 - alpha) * e.ewma_micros;
                e.samples += 1;
            })
            .or_insert(ObservedEntry { ewma_micros: micros, samples: 1 });
        *entry
    }

    /// The current estimate for a key, if any runtime has been observed.
    pub fn get(&self, key: &str) -> Option<ObservedEntry> {
        self.inner.lock().expect("observed-cost store poisoned").get(key).copied()
    }

    /// Number of keys with at least one observation.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("observed-cost store poisoned").len()
    }

    /// True when nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every (key, entry) pair, in key order.
    pub fn snapshot(&self) -> Vec<(String, ObservedEntry)> {
        self.inner
            .lock()
            .expect("observed-cost store poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn builtin_table_covers_every_builtin_engine() {
        let m = StaticCostModel::with_builtins();
        let engines: std::collections::BTreeSet<&str> =
            m.entries().map(|(e, _, _, _)| e).collect();
        assert_eq!(
            engines.into_iter().collect::<Vec<_>>(),
            vec!["kv", "mapreduce", "native", "sql", "streaming"]
        );
    }

    #[test]
    fn native_wins_text_at_all_listed_scales() {
        let m = StaticCostModel::with_builtins();
        for scale in [1, 10, 100, 10_000] {
            let (winner, _) = m
                .winner(WorkloadClass::Text, DataSourceKind::Text, scale)
                .expect("text/text is covered");
            assert_eq!(winner, "native", "scale {scale}");
        }
    }

    #[test]
    fn cost_keys_bucket_by_decade() {
        let k = |scale| cost_key("sql", WorkloadClass::Relational, &[DataSourceKind::Table], scale);
        assert_eq!(k(300), k(900));
        assert_ne!(k(300), k(3_000));
        assert_eq!(k(300), "sql/relational/table/s2");
        assert_eq!(k(0), k(1));
    }

    #[test]
    fn ewma_converges_toward_repeated_samples() {
        let store = ObservedCosts::new();
        store.observe("k", 1000.0, DEFAULT_EWMA_ALPHA);
        for _ in 0..20 {
            store.observe("k", 100.0, DEFAULT_EWMA_ALPHA);
        }
        let e = store.get("k").unwrap();
        assert!(e.ewma_micros < 110.0, "ewma {} did not converge", e.ewma_micros);
        assert_eq!(e.samples, 21);
        assert_eq!(store.len(), 1);
    }

    proptest! {
        /// Every builtin cost curve is monotonically non-decreasing in
        /// scale: more data never predicts cheaper execution.
        #[test]
        fn cost_functions_are_monotonic_in_scale(lo in 0u64..1_000_000, delta in 0u64..1_000_000) {
            let m = StaticCostModel::with_builtins();
            let hi = lo + delta;
            for (engine, class, kind, f) in m.entries() {
                prop_assert!(
                    f.cost(lo) <= f.cost(hi),
                    "{engine}/{class}/{kind}: cost({lo}) > cost({hi})"
                );
            }
        }

        /// The EWMA estimate always stays within the range of the samples
        /// folded into it.
        #[test]
        fn ewma_stays_within_sample_range(samples in proptest::collection::vec(1.0f64..1e6, 1..20)) {
            let store = ObservedCosts::new();
            for s in &samples {
                store.observe("k", *s, DEFAULT_EWMA_ALPHA);
            }
            let e = store.get("k").unwrap();
            let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(e.ewma_micros >= lo - 1e-9 && e.ewma_micros <= hi + 1e-9);
            prop_assert_eq!(e.samples, samples.len() as u64);
        }
    }
}
