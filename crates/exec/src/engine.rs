//! Pluggable engine backends for the Execution Layer.
//!
//! "The Execution Layer offers several functions to support the execution
//! of benchmark tests over different software stacks." Each software
//! stack is an [`Engine`]: it declares [`Capabilities`] — which
//! [`SystemKind`]s it implements, which data kinds, operation classes and
//! pattern shapes it can execute — and runs an [`ExecutionRequest`] into
//! workload results. An [`EngineRegistry`] routes a prescribed test by
//! capability match: engines implementing the requested system form the
//! *explicit* partition and always outrank capability fallbacks. Within
//! each partition the order is decided by the request's
//! [`RoutingPolicy`]: first-capable keeps registration order (the
//! historical behaviour, mirroring BigOP-style automatic mapping of
//! abstract operations onto concrete systems), while the cost and
//! adaptive policies hand the candidates to the [`crate::planner`]
//! router, which ranks them by predicted cost (static model,
//! engine-reported plan costs, and — adaptively — runtimes observed
//! earlier in the run). Adding a backend is a registry entry, not a
//! pipeline edit.
//!
//! Dispatch comes in two strengths: [`EngineRegistry::dispatch`] runs the
//! routed engine once and propagates its error, while
//! [`EngineRegistry::dispatch_resilient`] wraps each candidate engine in
//! the [`crate::fault`] retry loop (seeded fault injection, jittered
//! backoff, per-operation deadline) and fails over to the next capable
//! engine when the selected one exhausts its retries, recording the
//! degradation in the run trace.

use crate::config::SystemConfig;
use crate::cost::ObservedCosts;
use crate::fault::{self, FaultSite, Resilience};
use crate::planner::{Ranked, Router, RoutingPolicy, Score};
use crate::trace::RunTrace;
use bdb_common::record::Table;
use bdb_common::text::{Document, Vocabulary};
use bdb_common::{BdbError, Result};
use bdb_datagen::{DataSourceKind, Dataset};
use bdb_mapreduce::JobConfig;
use bdb_metrics::{MetricsCollector, OpCounts};
use bdb_testgen::bind::{BoundExecution, MapReduceBinding, PatternExecutor, SqlBinding};
use bdb_testgen::ops::{AggSpec, Operation};
use bdb_testgen::pattern::WorkloadPattern;
use bdb_testgen::{Prescription, SystemKind};
use bdb_workloads::{
    behavioral, micro, oltp, search, social, streaming, OutputPayload, WorkloadCategory,
    WorkloadResult,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Instant;

/// The shape of a prescription's workload pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PatternShape {
    /// One operation.
    Single,
    /// A finite DAG of operations.
    Multi,
    /// A body repeated until a stopping condition holds.
    Iterative,
}

impl PatternShape {
    /// The shape of a concrete pattern.
    pub fn of(pattern: &WorkloadPattern) -> Self {
        match pattern {
            WorkloadPattern::Single { .. } => PatternShape::Single,
            WorkloadPattern::Multi { .. } => PatternShape::Multi,
            WorkloadPattern::Iterative { .. } => PatternShape::Iterative,
        }
    }
}

impl std::fmt::Display for PatternShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PatternShape::Single => "single",
            PatternShape::Multi => "multi",
            PatternShape::Iterative => "iterative",
        })
    }
}

/// The operation class a prescribed test belongs to.
///
/// The classes partition the operation taxonomy the way the old dispatch
/// chain did, in the same precedence order: windowed stream operations,
/// text kernels, iterative patterns, element-operation mixes, and
/// relational (single/double-set) table operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum WorkloadClass {
    /// Behavioral analytics over a user event stream (sessionize,
    /// retention, window-funnel, sequence-match).
    Behavioral,
    /// Windowed aggregation over an event stream.
    Windowed,
    /// Text kernels (WordCount, grep).
    Text,
    /// Iterative convergence workloads (PageRank, k-means, components).
    Iterative,
    /// Element-operation mixes (get/put/scan — Cloud OLTP).
    Element,
    /// Single/double-set table operations (select, aggregate, join, …).
    Relational,
}

impl WorkloadClass {
    /// Classify a prescription by its pattern and operations, with the
    /// same precedence the Execution Layer uses for routing.
    pub fn of(prescription: &Prescription) -> Self {
        let ops = prescription.pattern.operations();
        if ops.iter().any(|o| {
            matches!(
                o,
                Operation::Sessionize { .. }
                    | Operation::Retention { .. }
                    | Operation::WindowFunnel { .. }
                    | Operation::SequenceMatch { .. }
            )
        }) {
            return WorkloadClass::Behavioral;
        }
        if ops.iter().any(|o| matches!(o, Operation::WindowAggregate { .. })) {
            return WorkloadClass::Windowed;
        }
        if ops
            .iter()
            .any(|o| matches!(o, Operation::WordCount | Operation::Grep { .. }))
        {
            return WorkloadClass::Text;
        }
        if matches!(prescription.pattern, WorkloadPattern::Iterative { .. }) {
            return WorkloadClass::Iterative;
        }
        if ops.iter().any(|o| {
            matches!(
                o,
                Operation::Get { .. }
                    | Operation::Put { .. }
                    | Operation::UpdateKey { .. }
                    | Operation::DeleteKey { .. }
                    | Operation::ScanRange { .. }
            )
        }) {
            return WorkloadClass::Element;
        }
        WorkloadClass::Relational
    }
}

impl std::fmt::Display for WorkloadClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            WorkloadClass::Behavioral => "behavioral",
            WorkloadClass::Windowed => "windowed",
            WorkloadClass::Text => "text",
            WorkloadClass::Iterative => "iterative",
            WorkloadClass::Element => "element",
            WorkloadClass::Relational => "relational",
        })
    }
}

/// What an engine can execute.
#[derive(Debug, Clone)]
pub struct Capabilities {
    /// The [`SystemKind`]s this engine implements.
    pub systems: Vec<SystemKind>,
    /// Operation classes the engine executes.
    pub classes: Vec<WorkloadClass>,
    /// Data kinds the engine consumes.
    pub data_kinds: Vec<DataSourceKind>,
    /// Pattern shapes the engine understands.
    pub patterns: Vec<PatternShape>,
}

impl Capabilities {
    /// Can the engine execute a test with this profile? True when the
    /// shape and class are supported and every present data kind is
    /// consumable.
    pub fn supports(&self, profile: &TestProfile) -> bool {
        self.patterns.contains(&profile.shape)
            && self.classes.contains(&profile.class)
            && profile.data_kinds.iter().all(|k| self.data_kinds.contains(k))
    }

    /// True when the engine implements `system`.
    pub fn implements(&self, system: SystemKind) -> bool {
        self.systems.contains(&system)
    }

    /// One-line rendering for `bdbench list`.
    pub fn summary(&self) -> String {
        let join = |parts: Vec<String>| parts.join(",");
        format!(
            "systems={} classes={} data={} patterns={}",
            join(self.systems.iter().map(|s| s.to_string()).collect()),
            join(self.classes.iter().map(|c| c.to_string()).collect()),
            join(self.data_kinds.iter().map(|k| k.to_string()).collect()),
            join(self.patterns.iter().map(|p| p.to_string()).collect()),
        )
    }
}

/// The routing-relevant profile of a prescribed test.
#[derive(Debug, Clone)]
pub struct TestProfile {
    /// Pattern shape.
    pub shape: PatternShape,
    /// Operation class.
    pub class: WorkloadClass,
    /// Kinds of the generated input data sets.
    pub data_kinds: Vec<DataSourceKind>,
}

/// Everything an engine needs to execute one prescribed test.
#[derive(Debug)]
pub struct ExecutionRequest<'a> {
    /// The abstract test to execute.
    pub prescription: &'a Prescription,
    /// The system the spec requested.
    pub system: SystemKind,
    /// Master seed of the run.
    pub seed: u64,
    /// Data volume (items) of the run.
    pub scale: u64,
    /// The generated input data sets, by prescription data-spec name.
    pub datasets: &'a BTreeMap<String, Dataset>,
    /// Engine configuration.
    pub config: &'a SystemConfig,
    /// The run's structured event sink.
    pub trace: &'a RunTrace,
    /// How the registry orders capable candidates for this request.
    pub routing: RoutingPolicy,
}

impl ExecutionRequest<'_> {
    /// The routing profile of this request.
    pub fn profile(&self) -> TestProfile {
        let kinds: BTreeSet<DataSourceKind> =
            self.datasets.values().map(Dataset::kind).collect();
        TestProfile {
            shape: PatternShape::of(&self.prescription.pattern),
            class: WorkloadClass::of(self.prescription),
            data_kinds: kinds.into_iter().collect(),
        }
    }

    /// The MapReduce job configuration derived from the system config.
    pub fn job_config(&self) -> JobConfig {
        JobConfig { workers: self.config.threads, ..JobConfig::default() }
    }

    fn text_dataset(&self) -> Result<(&Vec<Document>, &Vocabulary)> {
        self.datasets
            .values()
            .find_map(|d| match d {
                Dataset::Text { docs, vocab } => Some((docs, vocab)),
                _ => None,
            })
            .ok_or_else(|| BdbError::Execution("prescription needs a text data set".into()))
    }

    fn first_table(&self) -> Result<&Table> {
        self.datasets
            .values()
            .find_map(|d| match d {
                Dataset::Table(t) => Some(t),
                _ => None,
            })
            .ok_or_else(|| BdbError::Execution("prescription needs a table data set".into()))
    }
}

/// A pluggable execution backend.
pub trait Engine: Send + Sync {
    /// Engine name, used in reports and dispatch traces.
    fn name(&self) -> &'static str;

    /// What the engine can execute.
    fn capabilities(&self) -> Capabilities;

    /// Execute a prescribed test.
    fn execute(&self, request: &ExecutionRequest<'_>) -> Result<Vec<WorkloadResult>>;

    /// The engine's own cost estimate for this request, in estimated
    /// microseconds — e.g. the SQL engine prices its memo-extracted plan.
    /// `None` (the default) defers to the router's static cost table.
    fn estimate_cost(&self, _request: &ExecutionRequest<'_>) -> Option<f64> {
        None
    }
}

/// The outcome of routing a request through the registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Routing {
    /// The chosen engine's name.
    pub engine: String,
    /// Whether the requested [`SystemKind`] selected the engine (`false`
    /// means capability fallback).
    pub explicit: bool,
}

/// The Execution Layer's table of registered engines.
///
/// Routing: engines that both *implement the requested system* and
/// *support the test profile* outrank engines that merely support the
/// profile; within each partition the request's [`RoutingPolicy`] decides
/// — registration order under first-capable, predicted cost (ties keep
/// registration order) under the cost and adaptive policies. When no
/// engine is capable the error lists every candidate with its
/// capabilities.
pub struct EngineRegistry {
    engines: Vec<Box<dyn Engine>>,
    router: Router,
}

impl std::fmt::Debug for EngineRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineRegistry").field("engines", &self.names()).finish()
    }
}

impl Default for EngineRegistry {
    fn default() -> Self {
        Self::with_builtins()
    }
}

impl EngineRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self { engines: Vec::new(), router: Router::new() }
    }

    /// The five built-in backends. Registration order is the capability
    /// fallback order: native kernels, then the SQL engine, the KV store,
    /// the streaming engine, and the (most general) MapReduce engine last.
    pub fn with_builtins() -> Self {
        let mut r = Self::new();
        r.register(Box::new(NativeEngine));
        r.register(Box::new(SqlEngine));
        r.register(Box::new(KvEngine));
        r.register(Box::new(StreamingEngine));
        r.register(Box::new(MapReduceEngine));
        r
    }

    /// Append an engine (later entries lose capability-fallback ties).
    pub fn register(&mut self, engine: Box<dyn Engine>) {
        self.engines.push(engine);
    }

    /// Registered engine names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.engines.iter().map(|e| e.name()).collect()
    }

    /// Iterate the registered engines.
    pub fn engines(&self) -> impl Iterator<Item = &dyn Engine> {
        self.engines.iter().map(Box::as_ref)
    }

    /// The router scoring candidates for this registry.
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// Share an observed-cost store with this registry's router (e.g.
    /// one store across every cell of a matrix sweep).
    pub fn set_observed(&mut self, store: Arc<ObservedCosts>) {
        self.router.set_observed(store);
    }

    /// The observed-runtime store the router consults under the adaptive
    /// policy.
    pub fn observed(&self) -> Arc<ObservedCosts> {
        self.router.observed()
    }

    /// Share a health store (per-engine circuit breakers) with this
    /// registry's router, e.g. one store across every run of a server.
    pub fn set_health(&mut self, store: Arc<crate::health::HealthStore>) {
        self.router.set_health(store);
    }

    /// The per-engine breaker store: the router demotes open engines,
    /// resilient dispatch skips them and records outcomes, and the load
    /// driver's admission controller consults it for brownout.
    pub fn health(&self) -> Arc<crate::health::HealthStore> {
        self.router.health()
    }

    /// The single capability-matching pass every routing entry point
    /// shares: the engines that support the request's profile, split into
    /// the explicit partition (implementing the requested system) and the
    /// capability fallbacks, each in registration order. Failover and
    /// cost ranking both consume this candidate order.
    fn capable_candidates(
        &self,
        request: &ExecutionRequest<'_>,
    ) -> Result<Vec<(&dyn Engine, Routing)>> {
        // Validate the routing smoothing factor and breaker thresholds up
        // front: every dispatch entry point funnels through here, so a bad
        // `routing.ewma_alpha` or `breaker.*` parameter fails loudly
        // before any engine runs instead of corrupting the observed-cost
        // store or disarming the breaker after the fact.
        request.config.routing_ewma_alpha()?;
        request.config.breaker_policy()?;
        let profile = request.profile();
        let capable: Vec<&dyn Engine> = self
            .engines
            .iter()
            .map(Box::as_ref)
            .filter(|e| e.capabilities().supports(&profile))
            .collect();
        if capable.is_empty() {
            let candidates = self
                .engines
                .iter()
                .map(|e| format!("{} [{}]", e.name(), e.capabilities().summary()))
                .collect::<Vec<_>>()
                .join("; ");
            return Err(BdbError::Execution(format!(
                "no engine can execute prescription {} (system={}, class={}, pattern={}, data={}); candidate engines: {}",
                request.prescription.name,
                request.system,
                profile.class,
                profile.shape,
                profile
                    .data_kinds
                    .iter()
                    .map(|k| k.to_string())
                    .collect::<Vec<_>>()
                    .join(","),
                if candidates.is_empty() { "(none registered)".into() } else { candidates },
            )));
        }
        let (explicit, fallback): (Vec<&dyn Engine>, Vec<&dyn Engine>) = capable
            .into_iter()
            .partition(|e| e.capabilities().implements(request.system));
        Ok(explicit
            .into_iter()
            .map(|e| (e, Routing { engine: e.name().into(), explicit: true }))
            .chain(
                fallback
                    .into_iter()
                    .map(|e| (e, Routing { engine: e.name().into(), explicit: false })),
            )
            .collect())
    }

    /// Capable candidates in the order the active policy dispatches them,
    /// with their cost scores.
    fn ranked_candidates(&self, request: &ExecutionRequest<'_>) -> Result<Vec<Ranked<'_>>> {
        Ok(self.router.rank(self.capable_candidates(request)?, request))
    }

    /// Record the cost-ranked routing decision in the trace (a no-op
    /// under the default first-capable policy, whose order is static).
    fn record_routing_decision(&self, request: &ExecutionRequest<'_>, ranked: &[Ranked<'_>]) {
        if request.routing == RoutingPolicy::FirstCapable || ranked.is_empty() {
            return;
        }
        let finite = |s: &Score| {
            if s.predicted_micros.is_finite() { s.predicted_micros } else { 0.0 }
        };
        request.trace.record(crate::trace::TraceEvent::RoutingDecision {
            prescription: request.prescription.name.clone(),
            policy: request.routing.to_string(),
            engine: ranked[0].routing.engine.clone(),
            predicted_micros: finite(&ranked[0].score),
            source: ranked[0].score.source.to_string(),
            rejected: ranked[1..]
                .iter()
                .map(|r| {
                    format!(
                        "{}@{:.1}us[{}]",
                        r.routing.engine, r.score.predicted_micros, r.score.source
                    )
                })
                .collect(),
        });
    }

    /// Fold an observed engine runtime into the router's store and record
    /// it in the trace (skipped under first-capable, which never consults
    /// the store).
    fn record_observed_cost(
        &self,
        request: &ExecutionRequest<'_>,
        engine: &str,
        micros: u64,
    ) {
        if request.routing == RoutingPolicy::FirstCapable {
            return;
        }
        let (key, entry) = self.router.observe(engine, request, micros as f64);
        request.trace.record(crate::trace::TraceEvent::CostObserved {
            prescription: request.prescription.name.clone(),
            engine: engine.to_string(),
            key,
            micros,
            ewma_micros: entry.ewma_micros,
            samples: entry.samples,
        });
    }

    /// Every engine capable of executing a request, in dispatch order:
    /// the explicit partition first, each partition ordered by the
    /// request's routing policy (registration order under first-capable,
    /// predicted cost otherwise). Failover walks this same order.
    pub fn route_all(&self, request: &ExecutionRequest<'_>) -> Result<Vec<(&dyn Engine, Routing)>> {
        Ok(self
            .ranked_candidates(request)?
            .into_iter()
            .map(|r| (r.engine, r.routing))
            .collect())
    }

    /// Pick the engine for a request without executing it.
    pub fn route(&self, request: &ExecutionRequest<'_>) -> Result<(&dyn Engine, Routing)> {
        Ok(self.route_all(request)?.remove(0))
    }

    /// Route a request, record the dispatch decision in the trace, and
    /// execute it once — no retries, no failover. Prefer
    /// [`dispatch_resilient`](Self::dispatch_resilient) for runs.
    pub fn dispatch(&self, request: &ExecutionRequest<'_>) -> Result<Vec<WorkloadResult>> {
        let ranked = self.ranked_candidates(request)?;
        request.trace.record(crate::trace::TraceEvent::EngineDispatched {
            prescription: request.prescription.name.clone(),
            engine: ranked[0].routing.engine.clone(),
            requested_system: request.system.to_string(),
            explicit: ranked[0].routing.explicit,
            candidates: self.names().iter().map(|n| n.to_string()).collect(),
        });
        self.record_routing_decision(request, &ranked);
        ranked[0].engine.execute(request)
    }

    /// Resilient dispatch: route the request, run the chosen engine under
    /// the retry policy (with fault injection when a plan is active), and
    /// **fail over** to the next capable engine when the selected one
    /// exhausts its retries. Recovery is recorded in the trace (fault,
    /// retry, failover and deadline events) and on the results
    /// (`attempts` / `failovers` details) whenever the run was degraded.
    ///
    /// Dispatch is health-aware: every candidate's circuit breaker is
    /// consulted before it runs. Open breakers are skipped outright
    /// (half-open ones admit only their deterministic probes, whose
    /// outcomes close or reopen the breaker), each real outcome is
    /// folded back into the breaker window, and when *every* capable
    /// engine is denied the dispatch fails fast with each breaker's
    /// status named in the error.
    pub fn dispatch_resilient(
        &self,
        request: &ExecutionRequest<'_>,
        resilience: &Resilience,
    ) -> Result<Vec<WorkloadResult>> {
        let candidates = self.ranked_candidates(request)?;
        let health = self.router.health();
        let started = Instant::now();
        let mut total_attempts = 0u32;
        let mut total_faults = 0u32;
        let mut failovers = 0u32;
        let mut last_error: Option<BdbError> = None;
        // The last candidate that actually ran and failed: failover
        // events narrate real engine handoffs (with the triggering error
        // and that engine's own attempt count), never breaker skips.
        let mut prev_failed: Option<(String, u32)> = None;
        let mut dispatched = false;
        for candidate in &candidates {
            let engine = candidate.engine;
            let admission = health.admit(engine.name());
            if admission.half_opened {
                request.trace.record(crate::trace::TraceEvent::BreakerHalfOpen {
                    engine: engine.name().to_string(),
                });
            }
            if !admission.allowed {
                continue;
            }
            if !dispatched {
                dispatched = true;
                // The primary routing decision is recorded exactly as
                // plain dispatch records it; failover events then narrate
                // re-routes.
                request.trace.record(crate::trace::TraceEvent::EngineDispatched {
                    prescription: request.prescription.name.clone(),
                    engine: candidate.routing.engine.clone(),
                    requested_system: request.system.to_string(),
                    explicit: candidate.routing.explicit,
                    candidates: self.names().iter().map(|n| n.to_string()).collect(),
                });
                self.record_routing_decision(request, &candidates);
            }
            if let Some((from, engine_attempts)) = prev_failed.take() {
                failovers += 1;
                request.trace.record(crate::trace::TraceEvent::EngineFailedOver {
                    prescription: request.prescription.name.clone(),
                    from,
                    to: candidate.routing.engine.clone(),
                    attempts: total_attempts,
                    engine_attempts,
                    error: last_error
                        .as_ref()
                        .map(ToString::to_string)
                        .unwrap_or_default(),
                });
            }
            let site = FaultSite::execution(engine.name(), &request.prescription.name);
            let engine_started = Instant::now();
            let outcome = fault::run_with_recovery(
                resilience,
                request.trace,
                &site,
                started,
                &mut || engine.execute(request),
            );
            let record_breaker = |ok: bool| {
                if admission.probe {
                    request.trace.record(crate::trace::TraceEvent::ProbeResult {
                        engine: engine.name().to_string(),
                        ok,
                    });
                }
                let recorded = health.record(engine.name(), ok, admission.probe);
                match recorded.transition {
                    Some(crate::health::BreakerState::Open) => {
                        request.trace.record(crate::trace::TraceEvent::BreakerOpened {
                            engine: engine.name().to_string(),
                            failure_rate: recorded.failure_rate,
                        });
                    }
                    Some(crate::health::BreakerState::Closed) => {
                        request.trace.record(crate::trace::TraceEvent::BreakerClosed {
                            engine: engine.name().to_string(),
                        });
                    }
                    _ => {}
                }
            };
            match outcome {
                Ok(recovered) => {
                    record_breaker(true);
                    // Feed the adaptive loop: what this engine actually
                    // took (including any injected faults and retries it
                    // absorbed) becomes its next predicted cost.
                    self.record_observed_cost(
                        request,
                        engine.name(),
                        engine_started.elapsed().as_micros() as u64,
                    );
                    total_attempts += recovered.attempts;
                    total_faults += recovered.faults;
                    let degraded = failovers > 0 || total_attempts > 1 || total_faults > 0;
                    let results = recovered
                        .value
                        .into_iter()
                        .map(|r| {
                            if degraded {
                                r.with_detail("attempts", f64::from(total_attempts))
                                    .with_detail("failovers", f64::from(failovers))
                            } else {
                                r
                            }
                        })
                        .collect();
                    return Ok(results);
                }
                Err(failure) => {
                    record_breaker(false);
                    total_attempts += failure.attempts;
                    // A crash is the process dying, not this engine
                    // misbehaving — failing over would "survive" a death
                    // the chaos run is trying to prove we handle by
                    // resuming. Deadline exhaustion likewise ends the
                    // whole dispatch, not just this candidate.
                    let terminal = failure.deadline_hit || failure.crashed;
                    prev_failed = Some((candidate.routing.engine.clone(), failure.attempts));
                    last_error = Some(failure.error);
                    if terminal {
                        break;
                    }
                }
            }
        }
        Err(last_error.unwrap_or_else(|| {
            // Nothing ran at all: every capable engine's breaker denied
            // admission. Fail fast, naming each breaker's status, instead
            // of hammering engines the health layer already condemned.
            let status = health
                .unhealthy()
                .iter()
                .map(|(e, s)| format!("{e}: {s}"))
                .collect::<Vec<_>>()
                .join(", ");
            BdbError::Execution(format!(
                "all {} capable engine(s) for prescription {} denied by open circuit \
                 breakers ({status}); admission resumes when a breaker's cooldown \
                 elapses and its probes succeed",
                candidates.len(),
                request.prescription.name,
            ))
        }))
    }
}

// ---------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------

/// A 32-bit order-independent-input, canonical-order hash of a bound
/// execution's output rows, comparable across engines (kept within the
/// integer range `f64` represents exactly so it can ride in a result
/// detail).
fn output_hash(bound: &BoundExecution) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for row in bound.sorted_rows() {
        for v in &row {
            for b in v.to_string().bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h ^= 0x1f;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= 0x2f;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h & 0xFFFF_FFFF
}

/// The canonical row-set payload of a bound execution: the sorted output
/// rows with every value stringified, comparable across engines and
/// against the reference oracle.
fn table_payload(bound: &BoundExecution) -> OutputPayload {
    OutputPayload::RowSet(
        bound
            .sorted_rows()
            .into_iter()
            .map(|row| row.iter().map(std::string::ToString::to_string).collect())
            .collect(),
    )
}

/// Run a table-pattern binding and assemble the uniform result, emitting
/// one trace event per executed DAG step.
fn execute_table_binding(
    binding: &dyn PatternExecutor,
    engine: &'static str,
    req: &ExecutionRequest<'_>,
) -> Result<Vec<WorkloadResult>> {
    let tables: BTreeMap<String, Table> = req
        .datasets
        .iter()
        .filter_map(|(k, v)| match v {
            Dataset::Table(t) => Some((k.clone(), t.clone())),
            _ => None,
        })
        .collect();
    if tables.is_empty() {
        return Err(BdbError::Execution(format!(
            "engine {engine} needs a table data set for prescription {}",
            req.prescription.name
        )));
    }
    let bound = binding.execute(&req.prescription.pattern, &tables)?;
    for step in &bound.steps {
        req.trace.operation(engine, &step.op, step.rows_out, step.elapsed);
    }
    let mut collector = MetricsCollector::new();
    collector.record_operations(bound.output.len() as u64);
    let user = collector.finish_with_duration(bound.elapsed);
    let result = WorkloadResult::assemble(
        &req.prescription.name,
        engine,
        WorkloadCategory::RealTimeAnalytics,
        user,
        OpCounts { record_ops: bound.record_ops, float_ops: 0 },
        req.scale,
    )
    .with_detail("output_rows", bound.output.len() as f64)
    .with_detail("output_hash", output_hash(&bound) as f64)
    .with_output(table_payload(&bound));
    Ok(vec![result])
}

/// Grep hits (matching document indices, in match order) as an ordered
/// payload.
fn grep_payload(hits: &[usize]) -> OutputPayload {
    OutputPayload::Ordered(hits.iter().map(|i| i.to_string()).collect())
}

/// Word counts as an order-insensitive row set of `(word id, count)`.
fn wordcount_payload(counts: &[(u32, u64)]) -> OutputPayload {
    OutputPayload::RowSet(
        counts.iter().map(|(w, c)| vec![w.to_string(), c.to_string()]).collect(),
    )
}

/// Per-vertex numeric results (`v<i>` → value) for iterative graph
/// kernels, compared within epsilon across engines.
fn vertex_payload<T: Copy + Into<f64>>(values: &[T]) -> OutputPayload {
    OutputPayload::Numeric(
        values.iter().enumerate().map(|(i, v)| (format!("v{i}"), (*v).into())).collect(),
    )
}

/// Final centroid coordinates (`c<i>.<dim>` → coordinate) for k-means.
fn centroid_payload(centroids: &[social::Point]) -> OutputPayload {
    OutputPayload::Numeric(
        centroids
            .iter()
            .enumerate()
            .flat_map(|(i, c)| {
                c.iter().enumerate().map(move |(d, x)| (format!("c{i}.{d}"), *x)).collect::<Vec<_>>()
            })
            .collect(),
    )
}

/// The aggregate function of an iterative pattern's body, which selects
/// the iterative kernel (Min → connected components, Avg → k-means
/// centroids, otherwise PageRank-style rank summation).
fn iterative_agg(pattern: &WorkloadPattern) -> Option<AggSpec> {
    match pattern {
        WorkloadPattern::Iterative { body, .. } => body.iter().find_map(|s| match &s.op {
            Operation::Aggregate { function, .. } => Some(*function),
            _ => None,
        }),
        _ => None,
    }
}

fn timed<T>(
    req: &ExecutionRequest<'_>,
    engine: &'static str,
    op: &str,
    f: impl FnOnce() -> T,
    rows: impl FnOnce(&T) -> u64,
) -> T {
    let t0 = Instant::now();
    let out = f();
    req.trace.operation(engine, op, rows(&out), t0.elapsed());
    out
}

// ---------------------------------------------------------------------
// Built-in engines
// ---------------------------------------------------------------------

/// Hand-written native kernels (`bdb-workloads`): text and iterative
/// workloads on in-memory data structures.
#[derive(Debug, Default, Clone, Copy)]
pub struct NativeEngine;

impl Engine for NativeEngine {
    fn name(&self) -> &'static str {
        "native"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            systems: vec![SystemKind::Native],
            classes: vec![WorkloadClass::Text, WorkloadClass::Iterative],
            data_kinds: vec![
                DataSourceKind::Text,
                DataSourceKind::Graph,
                DataSourceKind::Table,
            ],
            patterns: vec![PatternShape::Single, PatternShape::Multi, PatternShape::Iterative],
        }
    }

    fn execute(&self, req: &ExecutionRequest<'_>) -> Result<Vec<WorkloadResult>> {
        let ops = req.prescription.pattern.operations();
        match WorkloadClass::of(req.prescription) {
            WorkloadClass::Text => {
                let (docs, vocab) = req.text_dataset()?;
                let r = if let Some(Operation::Grep { pattern }) =
                    ops.iter().find(|o| matches!(o, Operation::Grep { .. }))
                {
                    let (hits, r) = timed(req, "native", "grep", || {
                        micro::grep_native(docs, vocab, pattern)
                    }, |r| r.0.len() as u64);
                    r.with_output(grep_payload(&hits))
                } else {
                    let (counts, r) = timed(req, "native", "wordcount", || {
                        micro::wordcount_native(docs)
                    }, |r| r.0.len() as u64);
                    r.with_output(wordcount_payload(&counts))
                };
                Ok(vec![r])
            }
            WorkloadClass::Iterative => execute_iterative(req, IterativeBackend::Native),
            other => Err(BdbError::Execution(format!(
                "native engine cannot execute {other} workloads"
            ))),
        }
    }
}

/// Which concrete kernels an iterative prescription lowers to.
enum IterativeBackend {
    Native,
    MapReduce,
}

/// Iterative dispatch shared by the native and MapReduce engines: graph
/// data runs connected components (Min fold) or PageRank; table data runs
/// k-means over the generated feature vectors.
fn execute_iterative(
    req: &ExecutionRequest<'_>,
    backend: IterativeBackend,
) -> Result<Vec<WorkloadResult>> {
    let agg = iterative_agg(&req.prescription.pattern);
    let engine = match backend {
        IterativeBackend::Native => "native",
        IterativeBackend::MapReduce => "mapreduce",
    };
    if let Some(Dataset::Graph(g)) =
        req.datasets.values().find(|d| matches!(d, Dataset::Graph(_)))
    {
        let r = if agg == Some(AggSpec::Min) {
            // Connected components over the undirected closure.
            let mut und = g.clone();
            for &(u, v) in g.edges() {
                und.add_edge(v, u);
            }
            let csr = und.to_csr();
            let (labels, _, r) = match backend {
                IterativeBackend::Native => {
                    timed(req, engine, "aggregate", || {
                        social::connected_components(&csr)
                    }, |r| r.0.len() as u64)
                }
                IterativeBackend::MapReduce => {
                    let job = req.job_config();
                    timed(req, engine, "aggregate", || {
                        social::connected_components_mapreduce(&csr, &job)
                    }, |r| r.0.len() as u64)
                }
            };
            r.with_output(vertex_payload(&labels))
        } else {
            let (ranks, _, r) = match backend {
                IterativeBackend::Native => {
                    let csr = g.to_csr();
                    timed(req, engine, "aggregate", || {
                        search::pagerank_native(&csr, &Default::default())
                    }, |r| r.0.len() as u64)
                }
                IterativeBackend::MapReduce => {
                    let job = req.job_config();
                    timed(req, engine, "aggregate", || {
                        search::pagerank_mapreduce(g, &Default::default(), &job)
                    }, |r| r.0.len() as u64)
                }
            };
            r.with_output(vertex_payload(&ranks))
        };
        return Ok(vec![r]);
    }
    // Table-backed iteration: k-means over the *generated* table's numeric
    // columns, so --scale/--seed data actually reaches the kernel.
    let table = req.first_table()?;
    let points = social::points_from_table(table)?;
    let n = points.len();
    let (centroids, _, _, r) = match backend {
        IterativeBackend::Native => {
            timed(req, engine, "aggregate", || {
                social::kmeans_native(&points, &Default::default(), req.seed)
            }, |r| r.1.len() as u64)
        }
        IterativeBackend::MapReduce => {
            let job = req.job_config();
            timed(req, engine, "aggregate", || {
                social::kmeans_mapreduce(&points, &Default::default(), req.seed, &job)
            }, |r| r.1.len() as u64)
        }
    };
    Ok(vec![r
        .with_detail("input_points", n as f64)
        .with_output(centroid_payload(&centroids))])
}

/// The MapReduce engine (`bdb-mapreduce`): text kernels, iterative jobs,
/// and relational patterns lowered to map/reduce rounds.
#[derive(Debug, Default, Clone, Copy)]
pub struct MapReduceEngine;

impl Engine for MapReduceEngine {
    fn name(&self) -> &'static str {
        "mapreduce"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            systems: vec![SystemKind::MapReduce],
            classes: vec![
                WorkloadClass::Text,
                WorkloadClass::Iterative,
                WorkloadClass::Relational,
                WorkloadClass::Behavioral,
            ],
            data_kinds: vec![
                DataSourceKind::Text,
                DataSourceKind::Graph,
                DataSourceKind::Table,
                DataSourceKind::Stream,
            ],
            patterns: vec![PatternShape::Single, PatternShape::Multi, PatternShape::Iterative],
        }
    }

    fn execute(&self, req: &ExecutionRequest<'_>) -> Result<Vec<WorkloadResult>> {
        let ops = req.prescription.pattern.operations();
        match WorkloadClass::of(req.prescription) {
            WorkloadClass::Text => {
                let (docs, vocab) = req.text_dataset()?;
                let job = req.job_config();
                let r = if let Some(Operation::Grep { pattern }) =
                    ops.iter().find(|o| matches!(o, Operation::Grep { .. }))
                {
                    let (hits, r) = timed(req, "mapreduce", "grep", || {
                        micro::grep_mapreduce(docs, vocab, pattern, &job)
                    }, |r| r.0.len() as u64);
                    r.with_output(grep_payload(&hits))
                } else {
                    let (counts, r) = timed(req, "mapreduce", "wordcount", || {
                        micro::wordcount_mapreduce(docs, &job)
                    }, |r| r.0.len() as u64);
                    r.with_output(wordcount_payload(&counts))
                };
                Ok(vec![r])
            }
            WorkloadClass::Iterative => execute_iterative(req, IterativeBackend::MapReduce),
            WorkloadClass::Relational => execute_table_binding(
                &MapReduceBinding { config: req.job_config() },
                "mapreduce",
                req,
            ),
            WorkloadClass::Behavioral => execute_behavioral(req, BehavioralBackend::MapReduce),
            other => Err(BdbError::Execution(format!(
                "mapreduce engine cannot execute {other} workloads"
            ))),
        }
    }
}

/// The relational engine (`bdb-sql`): table patterns lowered to logical
/// plans.
#[derive(Debug, Default, Clone, Copy)]
pub struct SqlEngine;

impl Engine for SqlEngine {
    fn name(&self) -> &'static str {
        "sql"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            systems: vec![SystemKind::Sql],
            classes: vec![WorkloadClass::Relational],
            data_kinds: vec![DataSourceKind::Table],
            patterns: vec![PatternShape::Single, PatternShape::Multi],
        }
    }

    fn execute(&self, req: &ExecutionRequest<'_>) -> Result<Vec<WorkloadResult>> {
        execute_table_binding(&SqlBinding, "sql", req)
    }

    /// The cost of the memo-extracted plans the binding would execute:
    /// the SQL engine reports its optimizer's own estimate to the router
    /// instead of relying on the static table.
    fn estimate_cost(&self, req: &ExecutionRequest<'_>) -> Option<f64> {
        let tables: BTreeMap<String, Table> = req
            .datasets
            .iter()
            .filter_map(|(k, v)| match v {
                Dataset::Table(t) => Some((k.clone(), t.clone())),
                _ => None,
            })
            .collect();
        if tables.is_empty() {
            return None;
        }
        SqlBinding::estimate_cost(&req.prescription.pattern, &tables)
    }
}

/// The key-value engine (`bdb-kv`): element-operation mixes run as a
/// YCSB-style driver against the LSM store.
#[derive(Debug, Default, Clone, Copy)]
pub struct KvEngine;

impl Engine for KvEngine {
    fn name(&self) -> &'static str {
        "kv"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            systems: vec![SystemKind::KeyValue],
            classes: vec![WorkloadClass::Element],
            data_kinds: vec![DataSourceKind::Table],
            patterns: vec![PatternShape::Single, PatternShape::Multi],
        }
    }

    fn execute(&self, req: &ExecutionRequest<'_>) -> Result<Vec<WorkloadResult>> {
        let element_ops: Vec<&Operation> = req
            .prescription
            .pattern
            .operations()
            .into_iter()
            .filter(|o| {
                matches!(
                    o,
                    Operation::Get { .. }
                        | Operation::Put { .. }
                        | Operation::UpdateKey { .. }
                        | Operation::DeleteKey { .. }
                        | Operation::ScanRange { .. }
                )
            })
            .collect();
        if element_ops.is_empty() {
            return Err(BdbError::Execution(format!(
                "kv engine needs element operations in prescription {}",
                req.prescription.name
            )));
        }
        let n = element_ops.len() as f64;
        let frac = |pred: fn(&Operation) -> bool| -> f64 {
            element_ops.iter().filter(|o| pred(o)).count() as f64 / n
        };
        let spec = oltp::YcsbSpec {
            name: "prescribed",
            read: frac(|o| matches!(o, Operation::Get { .. })),
            update: frac(|o| matches!(o, Operation::UpdateKey { .. })),
            insert: frac(|o| matches!(o, Operation::Put { .. }))
                + frac(|o| matches!(o, Operation::DeleteKey { .. })),
            scan: frac(|o| matches!(o, Operation::ScanRange { .. })),
            rmw: 0.0,
            zipf_exponent: 0.99,
            scan_len: element_ops
                .iter()
                .find_map(|o| match o {
                    Operation::ScanRange { limit, .. } => Some(*limit),
                    _ => None,
                })
                .unwrap_or(0),
        };
        let config = oltp::YcsbConfig {
            record_count: req.scale,
            operation_count: req.scale * 2,
            clients: req.config.effective_threads().min(8),
            value_size: 100,
        };
        let (_store, counts, r) = timed(req, "kv", "element-mix", || {
            oltp::run_ycsb(&spec, &config, req.seed)
        }, |r| r.1.reads + r.1.updates + r.1.inserts + r.1.scans + r.1.rmws);
        // Op counts and the final key population are deterministic for a
        // given (spec, config, seed) even under concurrent clients: each
        // client's operation stream is seeded independently, and inserted
        // keys form a contiguous id range regardless of interleaving.
        let payload = OutputPayload::Numeric(vec![
            ("final_keys".into(), (config.record_count + counts.inserts) as f64),
            ("inserts".into(), counts.inserts as f64),
            ("read_hits".into(), counts.read_hits as f64),
            ("reads".into(), counts.reads as f64),
            ("rmws".into(), counts.rmws as f64),
            ("scans".into(), counts.scans as f64),
            ("updates".into(), counts.updates as f64),
        ]);
        Ok(vec![r.with_output(payload)])
    }
}

/// Which binding a behavioral prescription lowers to.
enum BehavioralBackend {
    Streaming,
    MapReduce,
}

/// Extract the behavioral operation from a prescription's pattern.
fn behavioral_spec(prescription: &Prescription) -> Result<behavioral::BehavioralSpec> {
    prescription
        .pattern
        .operations()
        .iter()
        .find_map(|o| match o {
            Operation::Sessionize { gap_ms } => {
                Some(behavioral::BehavioralSpec::Sessionize { gap_ms: *gap_ms })
            }
            Operation::Retention { period_ms, periods } => {
                Some(behavioral::BehavioralSpec::Retention {
                    period_ms: *period_ms,
                    periods: *periods,
                })
            }
            Operation::WindowFunnel { window_ms, steps } => {
                Some(behavioral::BehavioralSpec::WindowFunnel {
                    window_ms: *window_ms,
                    steps: steps.clone(),
                })
            }
            Operation::SequenceMatch { steps } => {
                Some(behavioral::BehavioralSpec::SequenceMatch { steps: steps.clone() })
            }
            _ => None,
        })
        .ok_or_else(|| {
            BdbError::Execution("behavioral dispatch needs a behavioral operation".into())
        })
}

/// Behavioral dispatch shared by the streaming and MapReduce engines:
/// both bindings run the same order-insensitive per-user aggregates, so
/// their row sets are identical (the conformance matrix asserts it).
fn execute_behavioral(
    req: &ExecutionRequest<'_>,
    backend: BehavioralBackend,
) -> Result<Vec<WorkloadResult>> {
    let spec = behavioral_spec(req.prescription)?;
    let events = req
        .datasets
        .values()
        .find_map(|d| match d {
            Dataset::Stream(e) => Some(e.as_slice()),
            _ => None,
        })
        .ok_or_else(|| {
            BdbError::Execution("behavioral operations need a stream data set".into())
        })?;
    let r = match backend {
        BehavioralBackend::Streaming => {
            timed(
                req,
                "streaming",
                spec.name(),
                || behavioral::behavioral_streaming(events, &spec),
                |r| r.0.rows.len() as u64,
            )
            .1
        }
        BehavioralBackend::MapReduce => {
            let job = req.job_config();
            timed(
                req,
                "mapreduce",
                spec.name(),
                || behavioral::behavioral_mapreduce(events, &spec, &job),
                |r| r.0.rows.len() as u64,
            )
            .1
        }
    };
    Ok(vec![r])
}

/// The streaming engine (`bdb-stream`): windowed aggregation and
/// behavioral analytics over event streams.
#[derive(Debug, Default, Clone, Copy)]
pub struct StreamingEngine;

impl Engine for StreamingEngine {
    fn name(&self) -> &'static str {
        "streaming"
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            systems: vec![SystemKind::Streaming],
            classes: vec![WorkloadClass::Windowed, WorkloadClass::Behavioral],
            data_kinds: vec![DataSourceKind::Stream],
            patterns: vec![PatternShape::Single],
        }
    }

    fn execute(&self, req: &ExecutionRequest<'_>) -> Result<Vec<WorkloadResult>> {
        if WorkloadClass::of(req.prescription) == WorkloadClass::Behavioral {
            return execute_behavioral(req, BehavioralBackend::Streaming);
        }
        let window_ms = req
            .prescription
            .pattern
            .operations()
            .iter()
            .find_map(|o| match o {
                Operation::WindowAggregate { window_ms, .. } => Some(*window_ms),
                _ => None,
            })
            .ok_or_else(|| {
                BdbError::Execution("streaming engine needs a window-aggregate operation".into())
            })?;
        let events = req
            .datasets
            .values()
            .find_map(|d| match d {
                Dataset::Stream(e) => Some(e.clone()),
                _ => None,
            })
            .ok_or_else(|| {
                BdbError::Execution("window aggregation needs a stream data set".into())
            })?;
        let cfg = streaming::StreamAnalyticsConfig { window_ms, ..Default::default() };
        let (outcome, r) = timed(
            req,
            "streaming",
            "window-aggregate",
            || streaming::windowed_aggregation(events, &cfg),
            |r| r.0.windows.len() as u64,
        );
        // Stream output is ordered: with zero allowed lateness and an
        // in-order source, panes close in deterministic
        // (window_start, key) order — the documented lateness contract.
        let payload = OutputPayload::Ordered(
            outcome
                .windows
                .iter()
                .map(|w| {
                    format!(
                        "{}|{}|{}|{}|{:?}|{:?}|{:?}",
                        w.window_start, w.window_end, w.key, w.count, w.sum, w.min, w.max
                    )
                })
                .collect(),
        );
        Ok(vec![r.with_output(payload)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_testgen::repository::builtin_prescriptions;

    fn prescription(name: &str) -> Prescription {
        builtin_prescriptions()
            .into_iter()
            .find(|p| p.name == name)
            .expect("builtin prescription exists")
    }

    #[test]
    fn classes_match_the_old_dispatch_precedence() {
        for (name, class) in [
            ("behavioral/sessionize", WorkloadClass::Behavioral),
            ("behavioral/retention", WorkloadClass::Behavioral),
            ("behavioral/window-funnel", WorkloadClass::Behavioral),
            ("behavioral/sequence-match", WorkloadClass::Behavioral),
            ("streaming/window-aggregation", WorkloadClass::Windowed),
            ("micro/wordcount", WorkloadClass::Text),
            ("micro/grep", WorkloadClass::Text),
            ("search/pagerank", WorkloadClass::Iterative),
            ("social/kmeans", WorkloadClass::Iterative),
            ("oltp/read-mostly", WorkloadClass::Element),
            ("micro/sort", WorkloadClass::Relational),
            ("relational/join", WorkloadClass::Relational),
        ] {
            assert_eq!(WorkloadClass::of(&prescription(name)), class, "{name}");
        }
    }

    #[test]
    fn builtin_registry_covers_all_system_kinds() {
        let registry = EngineRegistry::with_builtins();
        let mut systems = BTreeSet::new();
        for engine in registry.engines() {
            for s in engine.capabilities().systems {
                systems.insert(s.to_string());
            }
        }
        assert_eq!(
            systems.into_iter().collect::<Vec<_>>(),
            vec!["kv", "mapreduce", "native", "sql", "streaming"]
        );
        assert_eq!(registry.names(), vec!["native", "sql", "kv", "streaming", "mapreduce"]);
    }

    #[test]
    fn capability_summary_is_descriptive() {
        let caps = SqlEngine.capabilities();
        let s = caps.summary();
        assert!(s.contains("systems=sql"));
        assert!(s.contains("classes=relational"));
        assert!(s.contains("data=table"));
    }

    #[test]
    fn empty_registry_reports_no_candidates() {
        let registry = EngineRegistry::new();
        let p = prescription("micro/sort");
        let datasets = BTreeMap::new();
        let config = SystemConfig::default();
        let trace = RunTrace::new();
        let req = ExecutionRequest {
            prescription: &p,
            system: SystemKind::Sql,
            seed: 1,
            scale: 10,
            datasets: &datasets,
            config: &config,
            trace: &trace,
            routing: RoutingPolicy::FirstCapable,
        };
        let err = registry.dispatch(&req).unwrap_err();
        assert!(err.to_string().contains("none registered"), "{err}");
    }

    #[test]
    fn dispatch_rejects_out_of_range_ewma_alpha() {
        // The registry validates `routing.ewma_alpha` up front, so a bad
        // value fails loudly at routing time instead of being silently
        // ignored inside the router's observation fold.
        let registry = EngineRegistry::with_builtins();
        let p = prescription("micro/sort");
        let datasets = BTreeMap::new();
        let config = SystemConfig::default().with_parameter("routing.ewma_alpha", "2.0");
        let trace = RunTrace::new();
        let req = ExecutionRequest {
            prescription: &p,
            system: SystemKind::Sql,
            seed: 1,
            scale: 10,
            datasets: &datasets,
            config: &config,
            trace: &trace,
            routing: RoutingPolicy::Cost,
        };
        let err = match registry.route(&req) {
            Err(e) => e.to_string(),
            Ok(_) => panic!("route accepted alpha=2.0"),
        };
        assert!(err.contains("(0, 1]"), "error names the valid range: {err}");
        let err = registry.dispatch(&req).unwrap_err().to_string();
        assert!(err.contains("routing.ewma_alpha=2"), "dispatch rejects too: {err}");
    }

    /// A capable fake relational engine with a fixed self-reported cost.
    struct PricedEngine {
        name: &'static str,
        system: SystemKind,
        cost: f64,
    }

    impl Engine for PricedEngine {
        fn name(&self) -> &'static str {
            self.name
        }

        fn capabilities(&self) -> Capabilities {
            Capabilities {
                systems: vec![self.system],
                classes: vec![WorkloadClass::Relational],
                data_kinds: vec![DataSourceKind::Table],
                patterns: vec![PatternShape::Single, PatternShape::Multi],
            }
        }

        fn execute(&self, _req: &ExecutionRequest<'_>) -> Result<Vec<WorkloadResult>> {
            Err(BdbError::Execution("priced fake does not execute".into()))
        }

        fn estimate_cost(&self, _req: &ExecutionRequest<'_>) -> Option<f64> {
            Some(self.cost)
        }
    }

    fn priced_registry(costs: &[(&'static str, SystemKind, f64)]) -> EngineRegistry {
        let mut r = EngineRegistry::new();
        for (name, system, cost) in costs {
            r.register(Box::new(PricedEngine { name, system: *system, cost: *cost }));
        }
        r
    }

    fn route_names(registry: &EngineRegistry, routing: RoutingPolicy) -> Vec<String> {
        let p = prescription("micro/sort");
        let datasets = BTreeMap::new();
        let config = SystemConfig::default();
        let trace = RunTrace::new();
        let req = ExecutionRequest {
            prescription: &p,
            system: SystemKind::Sql,
            seed: 1,
            scale: 100,
            datasets: &datasets,
            config: &config,
            trace: &trace,
            routing,
        };
        registry
            .route_all(&req)
            .unwrap()
            .into_iter()
            .map(|(_, r)| r.engine)
            .collect()
    }

    #[test]
    fn cost_policy_reorders_within_a_partition() {
        // Both fakes implement the requested system; the cheaper one wins
        // under cost routing despite registering second, while
        // first-capable keeps registration order.
        let registry = priced_registry(&[
            ("pricey", SystemKind::Sql, 900.0),
            ("bargain", SystemKind::Sql, 10.0),
        ]);
        assert_eq!(route_names(&registry, RoutingPolicy::FirstCapable), vec!["pricey", "bargain"]);
        assert_eq!(route_names(&registry, RoutingPolicy::Cost), vec!["bargain", "pricey"]);
    }

    #[test]
    fn explicit_pin_outranks_cheaper_fallback() {
        // The engine implementing the requested system wins even when a
        // capability fallback predicts a far lower cost.
        let registry = priced_registry(&[
            ("cheap-fallback", SystemKind::MapReduce, 1.0),
            ("pinned", SystemKind::Sql, 5_000.0),
        ]);
        assert_eq!(
            route_names(&registry, RoutingPolicy::Cost),
            vec!["pinned", "cheap-fallback"]
        );
    }

    proptest::proptest! {
        /// Whatever the candidate costs, cost routing always dispatches a
        /// capable engine whose predicted cost is minimal within the
        /// leading partition, and ties keep registration order.
        #[test]
        fn router_picks_minimal_cost_capable_engine(
            costs in proptest::collection::vec(0u32..10_000, 1..6)
        ) {
            static NAMES: [&str; 6] = ["e0", "e1", "e2", "e3", "e4", "e5"];
            let registry = priced_registry(
                &costs
                    .iter()
                    .enumerate()
                    .map(|(i, c)| (NAMES[i], SystemKind::Sql, f64::from(*c)))
                    .collect::<Vec<_>>(),
            );
            let order = route_names(&registry, RoutingPolicy::Cost);
            let min = costs.iter().copied().min().unwrap();
            // The winner carries the minimal cost; among minimal-cost
            // candidates the earliest-registered wins.
            let first_min = costs.iter().position(|c| *c == min).unwrap();
            proptest::prop_assert_eq!(&order[0], NAMES[first_min]);
            proptest::prop_assert_eq!(order.len(), costs.len());
        }
    }
}
