//! Deterministic fault injection, retry/backoff and recovery accounting.
//!
//! The paper's veracity axis asks benchmarks to measure systems under
//! realistic conditions, and for big data systems realistic includes
//! transient failures, stragglers and retries — BigOP-style *operation
//! patterns* cover failure behaviour, not just the happy path. This
//! module provides the pieces the Execution Layer composes into resilient
//! dispatch:
//!
//! * [`FaultPlan`] — a parsed, seedable chaos specification: which fault
//!   [`FaultKind`]s fire in which Figure 1 [`FaultPhase`]s, at what rate,
//!   with optional per-clause injection caps. Parse one from the CLI's
//!   `--faults` spec string.
//! * [`FaultInjector`] — the per-run instantiation of a plan. Decisions
//!   are pure functions of `(seed, clause, draw index)`, so the same seed
//!   and plan always produce the same fault sequence regardless of wall
//!   clock or thread timing.
//! * [`RetryPolicy`] — jittered exponential backoff (deterministic jitter
//!   derived from the run seed) plus an optional per-operation deadline.
//! * [`run_with_recovery`] — the retry loop wrapped around every
//!   resilient operation (data-set generation, engine execution). It asks
//!   the injector for a fault before each attempt, converts worker panics
//!   into structured [`BdbError`]s via the hardened pool, records
//!   fault/retry/deadline events in the [`RunTrace`], and backs off
//!   between attempts.
//!
//! Engine **failover** — re-routing a prescription to the next capable
//! engine once the selected one exhausts its retries — lives in
//! [`crate::engine::EngineRegistry::dispatch_resilient`], which calls
//! [`run_with_recovery`] once per candidate engine.
//!
//! # Fault spec grammar
//!
//! A plan is a comma-separated list of clauses:
//!
//! ```text
//! <kind>@<phase>:<rate>[:ms=<latency_ms>][:max=<count>]
//! ```
//!
//! * `kind` — `error` (the operation fails with an injected engine
//!   error), `latency` (a spike of `ms` milliseconds is added before the
//!   operation runs), `panic` (a pool worker thread panics; the hardened
//!   pool catches it and surfaces a structured error), or `crash` (the
//!   process "dies" at a kill point: the run aborts immediately — no
//!   retry, no failover — leaving durable state for `--resume`).
//! * `phase` — `datagen`, `exec`, or `any`.
//! * `rate` — probability in `[0, 1]` that the clause fires on a given
//!   draw (`1` = always, until `max` is reached).
//! * `max` — optional cap on total injections from the clause, which
//!   makes recovery scenarios exactly reproducible: `error@exec:1:max=2`
//!   fails the first two attempts and lets the third through.
//!
//! Example: `error@exec:0.5,latency@exec:0.3:ms=25,panic@datagen:1:max=1`.

use crate::trace::{RunTrace, TraceEvent};
use bdb_common::rng::SplitMix64;
use bdb_common::{pool, BdbError, Result};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Every fault kind the grammar accepts, for error messages.
pub const FAULT_KINDS: &str = "error|latency|panic|crash";
/// Every fault phase the grammar accepts, for error messages.
pub const FAULT_PHASES: &str = "datagen|exec|any";

/// What an injected fault does to the operation it hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails with an injected engine error.
    Error,
    /// A latency spike is added before the operation runs (a straggler).
    Latency,
    /// A worker thread panics mid-operation.
    Panic,
    /// The process "dies" at the operation: a terminal
    /// [`BdbError::Crashed`] that recovery must not retry or fail over —
    /// the run aborts with durable state (run journal, KV WAL) exactly
    /// as written, and resuming is a fresh process's job.
    Crash,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FaultKind::Error => "error",
            FaultKind::Latency => "latency",
            FaultKind::Panic => "panic",
            FaultKind::Crash => "crash",
        })
    }
}

impl std::str::FromStr for FaultKind {
    type Err = BdbError;

    fn from_str(s: &str) -> Result<Self> {
        match s {
            "error" => Ok(FaultKind::Error),
            "latency" => Ok(FaultKind::Latency),
            "panic" => Ok(FaultKind::Panic),
            "crash" => Ok(FaultKind::Crash),
            other => Err(BdbError::InvalidConfig(format!(
                "unknown fault kind {other:?} (valid kinds: {FAULT_KINDS})"
            ))),
        }
    }
}

/// The Figure 1 phase a fault clause targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPhase {
    /// The data generation step.
    DataGeneration,
    /// The execution step (engine dispatch).
    Execution,
    /// Either phase.
    Any,
}

impl FaultPhase {
    /// Does a clause targeting `self` apply to an operation in `site`?
    pub fn matches(&self, site: FaultPhase) -> bool {
        matches!(self, FaultPhase::Any) || *self == site
    }
}

impl std::fmt::Display for FaultPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FaultPhase::DataGeneration => "datagen",
            FaultPhase::Execution => "exec",
            FaultPhase::Any => "any",
        })
    }
}

impl std::str::FromStr for FaultPhase {
    type Err = BdbError;

    fn from_str(s: &str) -> Result<Self> {
        match s {
            "datagen" => Ok(FaultPhase::DataGeneration),
            "exec" => Ok(FaultPhase::Execution),
            "any" => Ok(FaultPhase::Any),
            other => Err(BdbError::InvalidConfig(format!(
                "unknown fault phase {other:?} (valid phases: {FAULT_PHASES})"
            ))),
        }
    }
}

/// One clause of a fault plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultClause {
    /// What the fault does.
    pub kind: FaultKind,
    /// Which phase it targets.
    pub phase: FaultPhase,
    /// Probability of firing per draw, in `[0, 1]`.
    pub rate: f64,
    /// Spike length for [`FaultKind::Latency`] clauses.
    pub latency_ms: u64,
    /// Cap on total injections from this clause (`None` = unlimited).
    pub max: Option<u64>,
}

impl FaultClause {
    fn parse(text: &str) -> Result<Self> {
        let (head, rest) = match text.split_once(':') {
            Some((h, r)) => (h, r),
            None => {
                return Err(BdbError::InvalidConfig(format!(
                    "fault clause {text:?} needs a rate \
                     (grammar: kind@phase:rate[:ms=N][:max=N])"
                )))
            }
        };
        let (kind_s, phase_s) = head.split_once('@').ok_or_else(|| {
            BdbError::InvalidConfig(format!(
                "fault clause {text:?} needs kind@phase \
                 (valid kinds: {FAULT_KINDS}; valid phases: {FAULT_PHASES})"
            ))
        })?;
        let kind: FaultKind = kind_s.parse()?;
        let phase: FaultPhase = phase_s.parse()?;
        let mut fields = rest.split(':');
        let rate_s = fields.next().unwrap_or_default();
        let rate: f64 = rate_s.parse().map_err(|_| {
            BdbError::InvalidConfig(format!("fault rate {rate_s:?} is not a number"))
        })?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(BdbError::InvalidConfig(format!(
                "fault rate {rate} out of [0, 1]"
            )));
        }
        let mut latency_ms = 10;
        let mut max = None;
        for field in fields {
            let (key, value) = field.split_once('=').ok_or_else(|| {
                BdbError::InvalidConfig(format!("fault field {field:?} is not key=value"))
            })?;
            let parsed: u64 = value.parse().map_err(|_| {
                BdbError::InvalidConfig(format!("fault field {field:?} needs an integer"))
            })?;
            match key {
                "ms" => latency_ms = parsed,
                "max" => max = Some(parsed),
                other => {
                    return Err(BdbError::InvalidConfig(format!(
                        "unknown fault field {other} (expected ms|max)"
                    )))
                }
            }
        }
        Ok(Self { kind, phase, rate, latency_ms, max })
    }
}

impl std::fmt::Display for FaultClause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}:{}", self.kind, self.phase, self.rate)?;
        if self.kind == FaultKind::Latency {
            write!(f, ":ms={}", self.latency_ms)?;
        }
        if let Some(max) = self.max {
            write!(f, ":max={max}")?;
        }
        Ok(())
    }
}

/// A parsed chaos specification: an ordered list of fault clauses.
///
/// Clause order matters — the first matching clause that fires wins a
/// draw — and is preserved from the spec string.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// The clauses, in spec order.
    pub clauses: Vec<FaultClause>,
}

impl FaultPlan {
    /// A plan with no clauses (never injects).
    pub fn none() -> Self {
        Self::default()
    }

    /// True when the plan can never inject a fault.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }
}

impl std::str::FromStr for FaultPlan {
    type Err = BdbError;

    fn from_str(s: &str) -> Result<Self> {
        // Parse errors name the offending comma-separated segment (by
        // 1-based position and text) so a typo inside a long plan is
        // findable, and every path enumerates the valid vocabulary.
        let clauses = s
            .split(',')
            .map(str::trim)
            .enumerate()
            .filter(|(_, c)| !c.is_empty())
            .map(|(i, c)| {
                FaultClause::parse(c).map_err(|e| {
                    BdbError::InvalidConfig(format!(
                        "fault plan segment {} ({c:?}): {e}",
                        i + 1
                    ))
                })
            })
            .collect::<Result<Vec<_>>>()?;
        if clauses.is_empty() {
            return Err(BdbError::InvalidConfig(format!(
                "fault plan {s:?} has no clauses \
                 (grammar: kind@phase:rate[:ms=N][:max=N], comma-separated; \
                 valid kinds: {FAULT_KINDS}; valid phases: {FAULT_PHASES})"
            )));
        }
        Ok(Self { clauses })
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let parts: Vec<String> = self.clauses.iter().map(|c| c.to_string()).collect();
        f.write_str(&parts.join(","))
    }
}

/// Where a resilient operation runs: a phase plus a target name (the
/// data-set being generated, or `engine:prescription` being executed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSite {
    /// The Figure 1 phase the operation belongs to.
    pub phase: FaultPhase,
    /// The operation's name within the phase.
    pub target: String,
}

impl FaultSite {
    /// The site of one data-set generation.
    pub fn datagen(dataset: &str) -> Self {
        Self { phase: FaultPhase::DataGeneration, target: dataset.to_string() }
    }

    /// The site of one engine execution.
    pub fn execution(engine: &str, prescription: &str) -> Self {
        Self {
            phase: FaultPhase::Execution,
            target: format!("{engine}:{prescription}"),
        }
    }
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.phase, self.target)
    }
}

/// A fault the injector decided to fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// What happens.
    pub kind: FaultKind,
    /// Spike length for latency faults.
    pub latency_ms: u64,
}

#[derive(Debug, Default, Clone, Copy)]
struct ClauseState {
    draws: u64,
    injected: u64,
}

/// The per-run instantiation of a [`FaultPlan`].
///
/// Decisions are deterministic: the `n`-th draw against clause `i` fires
/// iff `mix(seed, i, n) < rate`, so two runs with the same seed, plan and
/// operation sequence inject identical faults. Draw counters live behind
/// a mutex only so the injector can ride inside shared references; all
/// injection points are sequential within a run.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    seed: u64,
    state: Mutex<Vec<ClauseState>>,
}

impl FaultInjector {
    /// An injector executing `plan` with decisions derived from `seed`.
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        let state = Mutex::new(vec![ClauseState::default(); plan.clauses.len()]);
        Self { plan, seed, state }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Total faults injected so far.
    pub fn injected(&self) -> u64 {
        self.state.lock().expect("injector state").iter().map(|s| s.injected).sum()
    }

    /// Decide whether a fault fires for one attempt at `site`. The first
    /// clause (in plan order) that matches the site's phase and fires
    /// wins; clauses that hit their `max` cap stop drawing.
    pub fn sample(&self, site: &FaultSite) -> Option<InjectedFault> {
        let mut state = self.state.lock().expect("injector state");
        for (i, clause) in self.plan.clauses.iter().enumerate() {
            if !clause.phase.matches(site.phase) {
                continue;
            }
            let st = &mut state[i];
            if clause.max.is_some_and(|max| st.injected >= max) {
                continue;
            }
            let draw = st.draws;
            st.draws += 1;
            let word = SplitMix64::mix(
                self.seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15) ^ draw.rotate_left(32),
            );
            let unit = (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            if unit < clause.rate {
                st.injected += 1;
                return Some(InjectedFault { kind: clause.kind, latency_ms: clause.latency_ms });
            }
        }
        None
    }
}

/// Jittered exponential backoff with an optional per-operation deadline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Extra attempts after the first (`0` = fail fast).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_delay_ms: u64,
    /// Cap on a single backoff delay.
    pub max_delay_ms: u64,
    /// Wall-clock budget for one operation including all its retries (and,
    /// for engine dispatch, all failover attempts).
    pub deadline_ms: Option<u64>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_retries: 0, base_delay_ms: 10, max_delay_ms: 1_000, deadline_ms: None }
    }
}

impl RetryPolicy {
    /// A policy allowing `retries` extra attempts.
    pub fn with_retries(retries: u32) -> Self {
        Self { max_retries: retries, ..Self::default() }
    }

    /// Set the per-operation deadline.
    pub fn with_deadline_ms(mut self, deadline_ms: u64) -> Self {
        self.deadline_ms = Some(deadline_ms);
        self
    }

    /// Total attempts the policy allows.
    pub fn attempts(&self) -> u32 {
        self.max_retries.saturating_add(1)
    }

    /// The backoff before retry number `attempt` (1-based): exponential
    /// doubling from `base_delay_ms`, capped at `max_delay_ms`, with up to
    /// +50% jitter derived deterministically from `seed` and `attempt`.
    pub fn delay(&self, seed: u64, attempt: u32) -> Duration {
        let exp = self
            .base_delay_ms
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(20))
            .min(self.max_delay_ms);
        let word = SplitMix64::mix(seed ^ 0xBAC0FF ^ u64::from(attempt));
        let jitter = (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64) * 0.5;
        let total = (exp as f64 * (1.0 + jitter)) as u64;
        Duration::from_millis(total.min(self.max_delay_ms))
    }
}

/// Everything [`run_with_recovery`] needs: the retry policy, the optional
/// fault injector, and the run seed the deterministic jitter derives from.
#[derive(Debug)]
pub struct Resilience {
    /// Retry/backoff/deadline settings.
    pub policy: RetryPolicy,
    /// The active fault injector, if the run is a chaos run.
    pub injector: Option<FaultInjector>,
    /// Run seed, used for deterministic backoff jitter.
    pub seed: u64,
}

impl Resilience {
    /// A no-fault, no-retry configuration (the default run mode).
    pub fn passive(seed: u64) -> Self {
        Self { policy: RetryPolicy::default(), injector: None, seed }
    }

    /// A configuration from user knobs: an optional fault plan plus the
    /// retry/deadline settings.
    pub fn new(plan: Option<FaultPlan>, policy: RetryPolicy, seed: u64) -> Self {
        let injector = plan
            .filter(|p| !p.is_empty())
            .map(|p| FaultInjector::new(p, seed));
        Self { policy, injector, seed }
    }
}

/// The successful outcome of a recovered operation.
#[derive(Debug)]
pub struct Recovered<T> {
    /// The operation's result.
    pub value: T,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u32,
    /// Faults injected across those attempts.
    pub faults: u32,
}

/// Why a recovered operation ultimately failed.
#[derive(Debug)]
pub struct RecoveryFailure {
    /// The last error observed.
    pub error: BdbError,
    /// Attempts consumed before giving up.
    pub attempts: u32,
    /// True when the per-operation deadline, not the retry budget, ended
    /// the operation (callers should stop failing over).
    pub deadline_hit: bool,
    /// True when the operation crashed (an injected `crash@` fault or a
    /// [`BdbError::Crashed`] kill point below the engine): terminal —
    /// no retry was attempted and callers must not fail over.
    pub crashed: bool,
}

/// Run `f` under the resilience configuration: inject faults before each
/// attempt, convert panics into structured errors, back off between
/// attempts, and honour the deadline measured from `started`. Records one
/// [`TraceEvent`] per injected fault, retry, and deadline hit.
pub fn run_with_recovery<T>(
    res: &Resilience,
    trace: &RunTrace,
    site: &FaultSite,
    started: Instant,
    f: &mut dyn FnMut() -> Result<T>,
) -> std::result::Result<Recovered<T>, RecoveryFailure> {
    let mut faults = 0u32;
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        if let Some(deadline_ms) = res.policy.deadline_ms {
            let elapsed_ms = started.elapsed().as_millis().min(u128::from(u64::MAX)) as u64;
            if elapsed_ms >= deadline_ms {
                trace.record(TraceEvent::DeadlineExceeded {
                    site: site.to_string(),
                    elapsed_ms,
                    deadline_ms,
                });
                return Err(RecoveryFailure {
                    error: BdbError::Execution(format!(
                        "deadline of {deadline_ms} ms exceeded at {site} after {elapsed_ms} ms"
                    )),
                    attempts: attempt - 1,
                    deadline_hit: true,
                    crashed: false,
                });
            }
        }
        let injected = res.injector.as_ref().and_then(|inj| inj.sample(site));
        let outcome: Result<T> = match injected {
            Some(fault) => {
                faults += 1;
                trace.record(TraceEvent::FaultInjected {
                    site: site.to_string(),
                    kind: fault.kind.to_string(),
                    latency_ms: if fault.kind == FaultKind::Latency { fault.latency_ms } else { 0 },
                });
                match fault.kind {
                    FaultKind::Error => Err(BdbError::Execution(format!(
                        "injected engine fault at {site} (attempt {attempt})"
                    ))),
                    FaultKind::Panic => Err(injected_worker_panic(site)),
                    FaultKind::Crash => Err(BdbError::Crashed(format!(
                        "injected kill point at {site} (attempt {attempt})"
                    ))),
                    FaultKind::Latency => {
                        std::thread::sleep(Duration::from_millis(fault.latency_ms));
                        run_guarded(f)
                    }
                }
            }
            None => run_guarded(f),
        };
        match outcome {
            Ok(value) => return Ok(Recovered { value, attempts: attempt, faults }),
            Err(error) => {
                // A crash is not a transient fault: the process (or the
                // simulated one) is gone, so retrying in place would run
                // against dead state. Surface it immediately; recovery is
                // a fresh open + `--resume`, not another attempt.
                if error.is_crash() {
                    return Err(RecoveryFailure {
                        error,
                        attempts: attempt,
                        deadline_hit: false,
                        crashed: true,
                    });
                }
                if attempt >= res.policy.attempts() {
                    return Err(RecoveryFailure {
                        error,
                        attempts: attempt,
                        deadline_hit: false,
                        crashed: false,
                    });
                }
                let delay = res.policy.delay(res.seed, attempt);
                trace.record(TraceEvent::OperationRetried {
                    site: site.to_string(),
                    attempt,
                    delay_ms: delay.as_millis().min(u128::from(u64::MAX)) as u64,
                    error: error.to_string(),
                });
                std::thread::sleep(delay);
            }
        }
    }
}

/// Run one attempt, converting any panic (an engine bug, or an injected
/// worker panic that escaped a non-hardened path) into a structured error.
fn run_guarded<T>(f: &mut dyn FnMut() -> Result<T>) -> Result<T> {
    match catch_unwind(AssertUnwindSafe(&mut *f)) {
        Ok(result) => result,
        Err(payload) => Err(BdbError::Execution(format!(
            "operation panicked: {}",
            pool::panic_message(payload.as_ref())
        ))),
    }
}

/// Fire a real panic inside a real pool worker thread and surface the
/// structured error the hardened pool produces — the fault path a
/// generator-worker crash takes in production.
fn injected_worker_panic(site: &FaultSite) -> BdbError {
    let outcome = pool::try_par_map(2, vec![true, false], |crash| {
        if crash {
            panic!("injected worker panic at {site}");
        }
    });
    match outcome {
        Err(panic) => BdbError::Execution(format!(
            "worker panic in task {}: {}",
            panic.task_index, panic.message
        )),
        Ok(_) => BdbError::Execution(format!("injected worker panic at {site}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site() -> FaultSite {
        FaultSite::execution("sql", "micro/sort")
    }

    #[test]
    fn plan_parses_and_round_trips() {
        let plan: FaultPlan =
            "error@exec:0.5,latency@exec:0.3:ms=25,panic@datagen:1:max=1".parse().unwrap();
        assert_eq!(plan.clauses.len(), 3);
        assert_eq!(plan.clauses[0].kind, FaultKind::Error);
        assert_eq!(plan.clauses[0].phase, FaultPhase::Execution);
        assert_eq!(plan.clauses[1].latency_ms, 25);
        assert_eq!(plan.clauses[2].max, Some(1));
        let round: FaultPlan = plan.to_string().parse().unwrap();
        assert_eq!(plan, round);
    }

    #[test]
    fn crash_clause_parses_and_round_trips() {
        let plan: FaultPlan = "crash@exec:1:max=1".parse().unwrap();
        assert_eq!(plan.clauses[0].kind, FaultKind::Crash);
        let round: FaultPlan = plan.to_string().parse().unwrap();
        assert_eq!(plan, round);
    }

    #[test]
    fn parse_errors_name_the_segment_and_vocabulary() {
        let err = "error@exec:1,warp@exec:0.5".parse::<FaultPlan>().unwrap_err().to_string();
        assert!(err.contains("segment 2"), "{err}");
        assert!(err.contains("\"warp@exec:0.5\""), "{err}");
        assert!(err.contains(FAULT_KINDS), "{err}");
        let err = "error@boot:0.5".parse::<FaultPlan>().unwrap_err().to_string();
        assert!(err.contains(FAULT_PHASES), "{err}");
        let err = "".parse::<FaultPlan>().unwrap_err().to_string();
        assert!(err.contains(FAULT_KINDS) && err.contains(FAULT_PHASES), "{err}");
    }

    #[test]
    fn plan_rejects_malformed_specs() {
        for bad in [
            "",
            "error:0.5",          // no phase
            "error@exec",         // no rate
            "warp@exec:0.5",      // unknown kind
            "error@boot:0.5",     // unknown phase
            "error@exec:1.5",     // rate out of range
            "error@exec:1:max",   // field without value
            "error@exec:1:bog=2", // unknown field
        ] {
            assert!(bad.parse::<FaultPlan>().is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn injector_is_deterministic() {
        let plan: FaultPlan = "error@exec:0.5".parse().unwrap();
        let draws = |seed: u64| -> Vec<bool> {
            let inj = FaultInjector::new(plan.clone(), seed);
            (0..64).map(|_| inj.sample(&site()).is_some()).collect()
        };
        assert_eq!(draws(7), draws(7));
        assert_ne!(draws(7), draws(8), "different seeds should differ");
        let fired = draws(7).iter().filter(|&&b| b).count();
        assert!((10..55).contains(&fired), "rate 0.5 fired {fired}/64 times");
    }

    #[test]
    fn injector_honours_max_and_phase() {
        let plan: FaultPlan = "error@datagen:1:max=2".parse().unwrap();
        let inj = FaultInjector::new(plan, 1);
        // Wrong phase: never fires.
        assert!(inj.sample(&site()).is_none());
        let dg = FaultSite::datagen("events");
        assert!(inj.sample(&dg).is_some());
        assert!(inj.sample(&dg).is_some());
        // Cap reached.
        assert!(inj.sample(&dg).is_none());
        assert_eq!(inj.injected(), 2);
    }

    #[test]
    fn backoff_grows_is_capped_and_deterministic() {
        let p = RetryPolicy { max_retries: 8, base_delay_ms: 10, max_delay_ms: 100, deadline_ms: None };
        let d1 = p.delay(3, 1);
        let d2 = p.delay(3, 2);
        assert_eq!(d1, p.delay(3, 1), "same seed+attempt = same delay");
        assert!(d2 >= d1, "backoff should not shrink: {d1:?} -> {d2:?}");
        assert!(p.delay(3, 8) <= Duration::from_millis(100), "cap applies");
        assert!(d1 >= Duration::from_millis(10) && d1 <= Duration::from_millis(15));
    }

    #[test]
    fn recovery_retries_until_success() {
        let plan: FaultPlan = "error@exec:1:max=2".parse().unwrap();
        let res = Resilience::new(
            Some(plan),
            RetryPolicy { max_retries: 3, base_delay_ms: 1, ..RetryPolicy::default() },
            9,
        );
        let trace = RunTrace::new();
        let mut calls = 0;
        let rec = run_with_recovery(&res, &trace, &site(), Instant::now(), &mut || {
            calls += 1;
            Ok(42)
        })
        .unwrap();
        assert_eq!(rec.value, 42);
        assert_eq!(rec.attempts, 3, "two injected failures, third attempt runs");
        assert_eq!(rec.faults, 2);
        assert_eq!(calls, 1, "injected errors never reach the operation");
        let labels: Vec<&str> = trace.events().iter().map(|e| e.label()).collect();
        assert_eq!(
            labels,
            vec!["fault_injected", "operation_retried", "fault_injected", "operation_retried"]
        );
    }

    #[test]
    fn recovery_exhausts_retries() {
        let plan: FaultPlan = "error@exec:1".parse().unwrap();
        let res = Resilience::new(
            Some(plan),
            RetryPolicy { max_retries: 2, base_delay_ms: 1, ..RetryPolicy::default() },
            9,
        );
        let trace = RunTrace::new();
        let fail = run_with_recovery::<u32>(&res, &trace, &site(), Instant::now(), &mut || Ok(1))
            .unwrap_err();
        assert_eq!(fail.attempts, 3);
        assert!(!fail.deadline_hit);
        assert!(fail.error.to_string().contains("injected engine fault"));
    }

    #[test]
    fn deadline_stops_retrying() {
        let res = Resilience::new(
            Some("error@exec:1".parse().unwrap()),
            RetryPolicy {
                max_retries: 100,
                base_delay_ms: 1,
                max_delay_ms: 2,
                deadline_ms: Some(0),
            },
            9,
        );
        let trace = RunTrace::new();
        let fail = run_with_recovery::<u32>(&res, &trace, &site(), Instant::now(), &mut || Ok(1))
            .unwrap_err();
        assert!(fail.deadline_hit);
        assert_eq!(fail.attempts, 0);
        assert!(trace.events().iter().any(|e| e.label() == "deadline_exceeded"));
    }

    #[test]
    fn injected_crash_is_terminal_despite_retry_budget() {
        let plan: FaultPlan = "crash@exec:1".parse().unwrap();
        let res = Resilience::new(
            Some(plan),
            RetryPolicy { max_retries: 5, base_delay_ms: 1, ..RetryPolicy::default() },
            9,
        );
        let trace = RunTrace::new();
        let mut calls = 0;
        let fail = run_with_recovery::<u32>(&res, &trace, &site(), Instant::now(), &mut || {
            calls += 1;
            Ok(1)
        })
        .unwrap_err();
        assert!(fail.crashed);
        assert!(fail.error.is_crash());
        assert_eq!(fail.attempts, 1, "a crash must not be retried");
        assert_eq!(calls, 0, "the crash pre-empts the operation");
        let labels: Vec<&str> = trace.events().iter().map(|e| e.label()).collect();
        assert_eq!(labels, vec!["fault_injected"], "no retry events after a crash");
    }

    #[test]
    fn crash_errors_from_the_operation_are_terminal_too() {
        let res = Resilience {
            policy: RetryPolicy { max_retries: 5, base_delay_ms: 1, ..RetryPolicy::default() },
            injector: None,
            seed: 0,
        };
        let trace = RunTrace::new();
        let fail = run_with_recovery::<u32>(&res, &trace, &site(), Instant::now(), &mut || {
            Err(BdbError::Crashed("kill point mid-WAL-append".into()))
        })
        .unwrap_err();
        assert!(fail.crashed);
        assert_eq!(fail.attempts, 1);
        assert!(trace.is_empty(), "no retry events for a real kill point");
    }

    #[test]
    fn injected_panic_becomes_structured_error() {
        let plan: FaultPlan = "panic@exec:1:max=1".parse().unwrap();
        let res = Resilience::new(
            Some(plan),
            RetryPolicy { max_retries: 1, base_delay_ms: 1, ..RetryPolicy::default() },
            3,
        );
        let trace = RunTrace::new();
        let rec = run_with_recovery(&res, &trace, &site(), Instant::now(), &mut || Ok(7u32))
            .unwrap();
        assert_eq!(rec.value, 7);
        assert_eq!(rec.attempts, 2);
        let retried = trace.events().iter().any(|e| match e {
            TraceEvent::OperationRetried { error, .. } => error.contains("worker panic"),
            _ => false,
        });
        assert!(retried, "retry event should carry the structured panic error");
    }

    #[test]
    fn real_panics_in_the_operation_are_caught() {
        let res = Resilience {
            policy: RetryPolicy { max_retries: 1, base_delay_ms: 1, ..RetryPolicy::default() },
            injector: None,
            seed: 0,
        };
        let trace = RunTrace::new();
        let mut first = true;
        let rec = run_with_recovery(&res, &trace, &site(), Instant::now(), &mut || {
            if std::mem::take(&mut first) {
                panic!("engine bug");
            }
            Ok(1u32)
        })
        .unwrap();
        assert_eq!(rec.attempts, 2);
        assert_eq!(rec.faults, 0);
    }

    #[test]
    fn passive_resilience_is_transparent() {
        let res = Resilience::passive(1);
        let trace = RunTrace::new();
        let rec = run_with_recovery(&res, &trace, &site(), Instant::now(), &mut || Ok("ok"))
            .unwrap();
        assert_eq!(rec.value, "ok");
        assert_eq!(rec.attempts, 1);
        assert!(trace.is_empty(), "no events on the happy path");
    }
}
