//! Per-engine circuit breakers for health-aware serving.
//!
//! A persistently failing engine should stop being offered traffic: the
//! router demotes it, dispatch skips it, and the load driver's admission
//! controller sheds proportionally while it recovers. Each engine gets a
//! three-state breaker:
//!
//! * **Closed** — healthy. Outcomes are folded into a sliding window; when
//!   the windowed failure rate reaches the trip ratio (and the window has
//!   seen a minimum number of samples), the breaker opens.
//! * **Open** — failing. Admissions are denied; after a fixed number of
//!   denied admissions (the cooldown) the breaker moves to half-open.
//!   Counting denials instead of wall-clock time keeps recovery
//!   seed-deterministic: the same arrival sequence always probes at the
//!   same point.
//! * **HalfOpen** — probing. A deterministic subset of arrivals (one per
//!   `probe_stride`, at a seed-derived phase) is admitted as a probe;
//!   everything else is still denied. Consecutive probe successes close
//!   the breaker; one probe failure reopens it.
//!
//! The [`HealthStore`] is the thread-safe shared home of all breakers,
//! modeled on [`crate::cost::ObservedCosts`]: interior-mutable behind a
//! mutex, shareable as `Arc<HealthStore>` between the router (which
//! demotes open engines in [`crate::planner::Router::rank`]), resilient
//! dispatch (which skips open engines and records outcomes) and the load
//! driver's brownout controller. The store emits no trace events itself;
//! call sites translate returned transitions into
//! [`crate::trace::TraceEvent`]s so the event stream stays attributable.

use bdb_common::rng::SplitMix64;
use bdb_common::{BdbError, Result};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Mutex;

/// One breaker's position in the closed → open → half-open cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Healthy: all admissions allowed.
    Closed,
    /// Failing: admissions denied until the cooldown elapses.
    Open,
    /// Probing: only stride-selected probe admissions allowed.
    HalfOpen,
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        })
    }
}

/// Thresholds governing every breaker in a [`HealthStore`].
///
/// Overridable per run via `breaker.*` system-config parameters (see
/// [`crate::config::SystemConfig::breaker_policy`]), which validate each
/// field's range before any engine runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerPolicy {
    /// Sliding outcome-window length (samples), ≥ 1.
    pub window: usize,
    /// Windowed failure rate that trips the breaker, in `(0, 1]`.
    pub trip_ratio: f64,
    /// Outcomes required in the window before it may trip, ≥ 1 —
    /// a single early failure must not open a cold breaker.
    pub min_samples: usize,
    /// Denied admissions while open before moving to half-open, ≥ 1.
    pub cooldown: u64,
    /// While half-open, one arrival per `probe_stride` (at a seed-derived
    /// phase) is admitted as a probe, ≥ 1.
    pub probe_stride: u64,
    /// Consecutive probe successes that close the breaker, ≥ 1.
    pub close_after: u32,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        Self {
            window: 16,
            trip_ratio: 0.5,
            min_samples: 4,
            cooldown: 8,
            probe_stride: 4,
            close_after: 2,
        }
    }
}

impl BreakerPolicy {
    /// Check every threshold's range.
    ///
    /// # Errors
    /// Fails naming the offending field and its valid range.
    pub fn validate(&self) -> Result<()> {
        if self.window < 1 {
            return Err(BdbError::InvalidConfig(
                "breaker.window=0 out of range: must be >= 1".into(),
            ));
        }
        if !(self.trip_ratio > 0.0 && self.trip_ratio <= 1.0) {
            return Err(BdbError::InvalidConfig(format!(
                "breaker.trip_ratio={} out of range: must be in (0, 1]",
                self.trip_ratio
            )));
        }
        if self.min_samples < 1 {
            return Err(BdbError::InvalidConfig(
                "breaker.min_samples=0 out of range: must be >= 1".into(),
            ));
        }
        if self.cooldown < 1 {
            return Err(BdbError::InvalidConfig(
                "breaker.cooldown=0 out of range: must be >= 1".into(),
            ));
        }
        if self.probe_stride < 1 {
            return Err(BdbError::InvalidConfig(
                "breaker.probe_stride=0 out of range: must be >= 1".into(),
            ));
        }
        if self.close_after < 1 {
            return Err(BdbError::InvalidConfig(
                "breaker.close_after=0 out of range: must be >= 1".into(),
            ));
        }
        Ok(())
    }
}

/// The verdict of one admission request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Admission {
    /// May the operation run on this engine?
    pub allowed: bool,
    /// Is an allowed operation a half-open probe (its outcome decides
    /// whether the breaker closes or reopens)?
    pub probe: bool,
    /// Breaker state after the admission decision.
    pub state: BreakerState,
    /// Did this very call move the breaker open → half-open (the caller
    /// should record a `breaker_half_open` trace event)?
    pub half_opened: bool,
}

/// What recording one outcome did to the breaker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Recorded {
    /// The state the breaker moved to, when this outcome changed it.
    pub transition: Option<BreakerState>,
    /// Windowed failure rate after folding the outcome in.
    pub failure_rate: f64,
}

/// A point-in-time view of one engine's breaker, for summaries.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerSnapshot {
    /// Engine name.
    pub engine: String,
    /// Current state.
    pub state: BreakerState,
    /// Closed→open (and half-open→open) transitions so far.
    pub trips: u64,
    /// Half-open→closed transitions so far.
    pub recoveries: u64,
    /// Probe operations admitted while half-open.
    pub probes: u64,
    /// Probes that failed (each one reopened the breaker).
    pub probe_failures: u64,
    /// Current windowed failure rate.
    pub failure_rate: f64,
}

#[derive(Debug, Default)]
struct Breaker {
    state: Option<BreakerState>, // None until first touch; treated as Closed
    window: VecDeque<bool>,      // true = failure
    denied: u64,                 // admissions denied in the current open spell
    probe_successes: u32,        // consecutive, in the current half-open spell
    probe_draws: u64,            // half-open admission draws (stride clock)
    trips: u64,
    recoveries: u64,
    probes: u64,
    probe_failures: u64,
}

impl Breaker {
    fn state(&self) -> BreakerState {
        self.state.unwrap_or(BreakerState::Closed)
    }

    fn failure_rate(&self) -> f64 {
        if self.window.is_empty() {
            0.0
        } else {
            self.window.iter().filter(|f| **f).count() as f64 / self.window.len() as f64
        }
    }
}

#[derive(Debug)]
struct Inner {
    policy: BreakerPolicy,
    seed: u64,
    breakers: BTreeMap<String, Breaker>,
}

/// Thread-safe shared store of per-engine circuit breakers.
///
/// Interior-mutable and shareable (`Arc<HealthStore>`) like
/// [`crate::cost::ObservedCosts`]: the registry records outcomes into it
/// after every dispatch, the router reads it to demote open engines, and
/// the load driver's pacer consults it for admission and brownout.
#[derive(Debug)]
pub struct HealthStore {
    inner: Mutex<Inner>,
}

impl Default for HealthStore {
    fn default() -> Self {
        Self::new(BreakerPolicy::default(), 0)
    }
}

impl HealthStore {
    /// A store where every breaker starts closed.
    pub fn new(policy: BreakerPolicy, seed: u64) -> Self {
        Self {
            inner: Mutex::new(Inner { policy, seed, breakers: BTreeMap::new() }),
        }
    }

    /// Re-arm the store for a new run: adopt the run's policy and seed
    /// and forget every breaker. Interior-mutable so a shared registry
    /// can be re-armed per run without `&mut` access.
    pub fn reset(&self, policy: BreakerPolicy, seed: u64) {
        let mut inner = self.lock();
        inner.policy = policy;
        inner.seed = seed;
        inner.breakers.clear();
    }

    /// May an operation run on `engine` right now?
    ///
    /// Closed breakers always admit. Open breakers deny, and after
    /// `cooldown` denials transition to half-open (reported via
    /// [`Admission::half_opened`]). Half-open breakers admit one probe
    /// per `probe_stride` arrivals at a seed-derived phase, so the same
    /// arrival sequence always probes at the same points.
    pub fn admit(&self, engine: &str) -> Admission {
        let mut inner = self.lock();
        let Inner { policy, seed, breakers } = &mut *inner;
        let phase = SplitMix64::mix(*seed ^ fnv1a(engine)) % policy.probe_stride;
        let b = breakers.entry(engine.to_string()).or_default();
        let mut half_opened = false;
        if b.state() == BreakerState::Open {
            b.denied += 1;
            if b.denied >= policy.cooldown {
                b.state = Some(BreakerState::HalfOpen);
                b.denied = 0;
                b.probe_successes = 0;
                b.probe_draws = 0;
                half_opened = true;
            } else {
                return Admission {
                    allowed: false,
                    probe: false,
                    state: BreakerState::Open,
                    half_opened: false,
                };
            }
        }
        match b.state() {
            BreakerState::Closed => Admission {
                allowed: true,
                probe: false,
                state: BreakerState::Closed,
                half_opened: false,
            },
            BreakerState::HalfOpen => {
                let draw = b.probe_draws;
                b.probe_draws += 1;
                let probe = draw % policy.probe_stride == phase;
                if probe {
                    b.probes += 1;
                }
                Admission {
                    allowed: probe,
                    probe,
                    state: BreakerState::HalfOpen,
                    half_opened,
                }
            }
            BreakerState::Open => unreachable!("open handled above"),
        }
    }

    /// Fold one operation outcome into `engine`'s breaker. `probe` must
    /// echo the [`Admission::probe`] flag the operation was admitted
    /// under. Returns any state transition for the caller to trace.
    pub fn record(&self, engine: &str, ok: bool, probe: bool) -> Recorded {
        let mut inner = self.lock();
        let Inner { policy, breakers, .. } = &mut *inner;
        let b = breakers.entry(engine.to_string()).or_default();
        b.window.push_back(!ok);
        while b.window.len() > policy.window {
            b.window.pop_front();
        }
        let failure_rate = b.failure_rate();
        let transition = match b.state() {
            BreakerState::Closed => {
                if b.window.len() >= policy.min_samples && failure_rate >= policy.trip_ratio {
                    b.state = Some(BreakerState::Open);
                    b.denied = 0;
                    b.trips += 1;
                    Some(BreakerState::Open)
                } else {
                    None
                }
            }
            BreakerState::HalfOpen if probe => {
                if ok {
                    b.probe_successes += 1;
                    if b.probe_successes >= policy.close_after {
                        b.state = Some(BreakerState::Closed);
                        b.window.clear();
                        b.probe_successes = 0;
                        b.recoveries += 1;
                        Some(BreakerState::Closed)
                    } else {
                        None
                    }
                } else {
                    b.probe_failures += 1;
                    b.state = Some(BreakerState::Open);
                    b.denied = 0;
                    b.probe_successes = 0;
                    b.trips += 1;
                    Some(BreakerState::Open)
                }
            }
            // A straggler completing after the breaker tripped (or a
            // non-probe outcome racing a half-open spell) updates the
            // window but cannot transition anything.
            BreakerState::Open | BreakerState::HalfOpen => None,
        };
        Recorded { transition, failure_rate }
    }

    /// Current state of `engine`'s breaker (closed when never touched).
    pub fn state(&self, engine: &str) -> BreakerState {
        self.lock().breakers.get(engine).map_or(BreakerState::Closed, Breaker::state)
    }

    /// Is `engine`'s breaker fully open (probes not yet allowed)?
    pub fn is_open(&self, engine: &str) -> bool {
        self.state(engine) == BreakerState::Open
    }

    /// Engines whose breaker is not closed, with their state, in name
    /// order — the fail-fast error names these.
    pub fn unhealthy(&self) -> Vec<(String, BreakerState)> {
        self.lock()
            .breakers
            .iter()
            .filter(|(_, b)| b.state() != BreakerState::Closed)
            .map(|(e, b)| (e.clone(), b.state()))
            .collect()
    }

    /// Total closed→open trips across all engines.
    pub fn trips(&self, engine: &str) -> u64 {
        self.lock().breakers.get(engine).map_or(0, |b| b.trips)
    }

    /// Every breaker's point-in-time view, in engine order.
    pub fn snapshot(&self) -> Vec<BreakerSnapshot> {
        self.lock()
            .breakers
            .iter()
            .map(|(engine, b)| BreakerSnapshot {
                engine: engine.clone(),
                state: b.state(),
                trips: b.trips,
                recoveries: b.recoveries,
                probes: b.probes,
                probe_failures: b.probe_failures,
                failure_rate: b.failure_rate(),
            })
            .collect()
    }

    /// Number of engines with breaker history.
    pub fn len(&self) -> usize {
        self.lock().breakers.len()
    }

    /// True when no breaker has been touched.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("health store poisoned")
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tight() -> BreakerPolicy {
        BreakerPolicy {
            window: 4,
            trip_ratio: 0.5,
            min_samples: 2,
            cooldown: 3,
            probe_stride: 2,
            close_after: 2,
        }
    }

    /// Trip the breaker with `n` straight failures.
    fn trip(store: &HealthStore, engine: &str, n: usize) {
        for _ in 0..n {
            store.record(engine, false, false);
        }
    }

    #[test]
    fn cold_breaker_admits_and_stays_closed_on_success() {
        let s = HealthStore::new(tight(), 7);
        let a = s.admit("kv");
        assert!(a.allowed && !a.probe && a.state == BreakerState::Closed);
        for _ in 0..10 {
            assert!(s.record("kv", true, false).transition.is_none());
        }
        assert_eq!(s.state("kv"), BreakerState::Closed);
        assert!(s.unhealthy().is_empty());
    }

    #[test]
    fn single_early_failure_does_not_trip() {
        let s = HealthStore::new(tight(), 7);
        // min_samples = 2: one failure alone is 100% of a 1-sample window
        // but must not trip a cold breaker.
        assert!(s.record("kv", false, false).transition.is_none());
        assert_eq!(s.state("kv"), BreakerState::Closed);
    }

    #[test]
    fn full_lifecycle_closed_open_half_open_closed() {
        let s = HealthStore::new(tight(), 7);
        trip(&s, "kv", 2);
        assert_eq!(s.state("kv"), BreakerState::Open);
        assert_eq!(s.trips("kv"), 1);
        // Cooldown: two denials, then the third admission half-opens.
        assert!(!s.admit("kv").allowed);
        assert!(!s.admit("kv").allowed);
        let mut half_opened = false;
        let mut probe_results = 0;
        // Drive admissions until two probe successes close the breaker.
        for _ in 0..16 {
            let a = s.admit("kv");
            half_opened |= a.half_opened;
            assert_ne!(a.state, BreakerState::Open, "cooldown elapsed");
            if a.allowed {
                assert!(a.probe);
                let r = s.record("kv", true, true);
                probe_results += 1;
                if probe_results == 2 {
                    assert_eq!(r.transition, Some(BreakerState::Closed));
                    break;
                }
            }
        }
        assert!(half_opened);
        assert_eq!(s.state("kv"), BreakerState::Closed);
        let snap = &s.snapshot()[0];
        assert_eq!((snap.trips, snap.recoveries, snap.probes), (1, 1, 2));
        assert_eq!(snap.state, BreakerState::Closed);
        // The window was cleared on close: old failures are forgotten.
        assert_eq!(snap.failure_rate, 0.0);
    }

    #[test]
    fn failed_probe_reopens() {
        let s = HealthStore::new(tight(), 7);
        trip(&s, "kv", 2);
        let mut probed = false;
        for _ in 0..8 {
            let a = s.admit("kv");
            if a.allowed {
                let r = s.record("kv", false, true);
                assert_eq!(r.transition, Some(BreakerState::Open));
                probed = true;
                break;
            }
        }
        assert!(probed);
        assert_eq!(s.state("kv"), BreakerState::Open);
        assert_eq!(s.trips("kv"), 2);
        assert_eq!(s.snapshot()[0].probe_failures, 1);
    }

    #[test]
    fn straggler_outcome_while_open_cannot_transition() {
        let s = HealthStore::new(tight(), 7);
        trip(&s, "kv", 2);
        // An in-flight op completing after the trip updates the window
        // only.
        assert!(s.record("kv", true, false).transition.is_none());
        assert_eq!(s.state("kv"), BreakerState::Open);
    }

    #[test]
    fn breakers_are_independent_per_engine() {
        let s = HealthStore::new(tight(), 7);
        trip(&s, "kv", 2);
        assert_eq!(s.state("kv"), BreakerState::Open);
        assert_eq!(s.state("sql"), BreakerState::Closed);
        assert!(s.admit("sql").allowed);
        assert_eq!(s.unhealthy(), vec![("kv".to_string(), BreakerState::Open)]);
    }

    #[test]
    fn reset_forgets_history() {
        let s = HealthStore::new(tight(), 7);
        trip(&s, "kv", 2);
        s.reset(tight(), 8);
        assert!(s.is_empty());
        assert_eq!(s.state("kv"), BreakerState::Closed);
    }

    #[test]
    fn policy_validation_names_ranges() {
        assert!(BreakerPolicy::default().validate().is_ok());
        let bad = BreakerPolicy { trip_ratio: 1.5, ..BreakerPolicy::default() };
        let err = bad.validate().unwrap_err().to_string();
        assert!(err.contains("(0, 1]"), "error should name the valid range: {err}");
        let bad = BreakerPolicy { trip_ratio: 0.0, ..BreakerPolicy::default() };
        assert!(bad.validate().is_err());
        for bad in [
            BreakerPolicy { window: 0, ..BreakerPolicy::default() },
            BreakerPolicy { min_samples: 0, ..BreakerPolicy::default() },
            BreakerPolicy { cooldown: 0, ..BreakerPolicy::default() },
            BreakerPolicy { probe_stride: 0, ..BreakerPolicy::default() },
            BreakerPolicy { close_after: 0, ..BreakerPolicy::default() },
        ] {
            let err = bad.validate().unwrap_err().to_string();
            assert!(err.contains(">= 1"), "error should name the valid range: {err}");
        }
    }

    /// Drive one breaker with a deterministic admission/outcome script
    /// and return every (from, to) transition observed.
    fn transitions(
        store: &HealthStore,
        outcomes: &[bool],
    ) -> Vec<(BreakerState, BreakerState)> {
        let mut seen = Vec::new();
        let mut prev = store.state("e");
        let mut it = outcomes.iter();
        // Interleave admissions and outcomes the way a serving loop does:
        // denied admissions consume no outcome.
        loop {
            let a = store.admit("e");
            if a.half_opened {
                seen.push((prev, BreakerState::HalfOpen));
                prev = BreakerState::HalfOpen;
            }
            if a.allowed {
                match it.next() {
                    Some(ok) => {
                        let r = store.record("e", *ok, a.probe);
                        if let Some(next) = r.transition {
                            seen.push((prev, next));
                            prev = next;
                        }
                    }
                    None => break,
                }
            } else if it.next().is_none() {
                // Outcomes exhausted while denied; stop driving.
                break;
            }
        }
        seen
    }

    proptest! {
        /// Only the four legal edges ever occur: closed→open, open→half-
        /// open, half-open→open, half-open→closed.
        #[test]
        fn transition_legality(outcomes in proptest::collection::vec(any::<bool>(), 1..200),
                               seed in any::<u64>()) {
            let s = HealthStore::new(tight(), seed);
            for (from, to) in transitions(&s, &outcomes) {
                let legal = matches!(
                    (from, to),
                    (BreakerState::Closed, BreakerState::Open)
                        | (BreakerState::Open, BreakerState::HalfOpen)
                        | (BreakerState::HalfOpen, BreakerState::Open)
                        | (BreakerState::HalfOpen, BreakerState::Closed)
                );
                prop_assert!(legal, "illegal transition {from} -> {to}");
            }
        }

        /// Never stuck open: from the open state, a probe is always
        /// admitted within `cooldown + probe_stride` arrivals.
        #[test]
        fn never_stuck_open(seed in any::<u64>(), engine in "[a-z]{1,12}") {
            let p = tight();
            let s = HealthStore::new(p, seed);
            for _ in 0..p.min_samples {
                s.record(&engine, false, false);
            }
            prop_assert_eq!(s.state(&engine), BreakerState::Open);
            let bound = p.cooldown + p.probe_stride;
            let admitted = (0..bound).any(|_| s.admit(&engine).allowed);
            prop_assert!(admitted, "no probe within {bound} arrivals");
        }

        /// Same seed and outcome script ⇒ identical trip/recover
        /// sequence; the snapshot (trips, recoveries, probes, state)
        /// matches exactly.
        #[test]
        fn same_seed_same_trip_sequence(outcomes in proptest::collection::vec(any::<bool>(), 1..200),
                                        seed in any::<u64>()) {
            let a = HealthStore::new(tight(), seed);
            let b = HealthStore::new(tight(), seed);
            let ta = transitions(&a, &outcomes);
            let tb = transitions(&b, &outcomes);
            prop_assert_eq!(ta, tb);
            prop_assert_eq!(a.snapshot(), b.snapshot());
        }
    }
}
