//! The run journal: per-cell checkpoints that make runs resumable.
//!
//! A journaled run writes one JSON checkpoint file per completed matrix
//! cell (or suite workload) into a run directory, keyed exactly like the
//! golden store (`prescription__engine__s<seed>__n<scale>`), each via
//! temp-file + atomic rename. When a run is killed — by a real crash or
//! an injected `crash@` fault — the directory holds a complete record of
//! everything that finished; `--resume <run-dir>` replays it: completed
//! cells are skipped, their recorded digests are carried into the report
//! (and re-verified against the golden store when one is present), and
//! only the remaining cells execute.
//!
//! The journal deliberately records *outcomes* (shape, length, digest,
//! verdicts), not payloads: resumption re-checks identity through the
//! same digests the conformance oracle uses, so a resumed run's verdict
//! table is byte-comparable with an uninterrupted run's.

use bdb_common::fsio::write_atomic;
use bdb_common::{BdbError, Result};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// One checkpointed cell: the run coordinates plus the verdict the cell
/// produced before the crash.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellCheckpoint {
    /// The checkpoint key (also the file stem).
    pub key: String,
    /// Prescription name.
    pub prescription: String,
    /// The engine that executed the cell.
    pub engine: String,
    /// Run seed.
    pub seed: u64,
    /// Run scale (items).
    pub scale: u64,
    /// Payload shape ("rowset", "ordered", "numeric", or "none").
    pub shape: String,
    /// Payload entry count.
    pub len: u64,
    /// Canonical FNV-1a digest, 16 hex digits ("-" when the cell
    /// attached no output payload).
    pub digest: String,
    /// Conformance checks the cell ran before the crash.
    pub checks: u32,
    /// Whether every check passed.
    pub passed: bool,
    /// Failure descriptions, empty when `passed`.
    pub failures: Vec<String>,
}

/// A directory of [`CellCheckpoint`] files for one (possibly crashed) run.
#[derive(Debug, Clone)]
pub struct RunJournal {
    dir: PathBuf,
}

impl RunJournal {
    /// Open (creating if needed) the journal at `dir`.
    ///
    /// # Errors
    /// Fails when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| BdbError::Io(format!("create run journal {}: {e}", dir.display())))?;
        Ok(Self { dir })
    }

    /// The journal's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The checkpoint key of a run cell — the same format the golden
    /// store uses, so a checkpoint and its golden line up by name.
    /// (Duplicated from the verify crate's `GoldenStore::key`, which sits
    /// above this crate in the dependency order.)
    pub fn cell_key(prescription: &str, engine: &str, seed: u64, scale: u64) -> String {
        let slug: String = prescription
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' { c } else { '-' })
            .collect();
        format!("{slug}__{engine}__s{seed}__n{scale}")
    }

    fn path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }

    /// Persist one completed cell, atomically. A crash before the rename
    /// leaves no checkpoint (the cell re-runs on resume); a crash after
    /// leaves a complete one — never a torn file.
    ///
    /// # Errors
    /// Fails on filesystem errors.
    pub fn record(&self, checkpoint: &CellCheckpoint) -> Result<()> {
        let json = serde_json::to_string(checkpoint)
            .map_err(|e| BdbError::Io(format!("encode checkpoint: {e}")))?;
        write_atomic(&self.path(&checkpoint.key), (json + "\n").as_bytes())
    }

    /// Load one checkpoint, or `None` when the cell never completed.
    /// An unparsable file is treated as absent — the cell simply re-runs,
    /// which is always safe.
    pub fn load(&self, key: &str) -> Option<CellCheckpoint> {
        let text = std::fs::read_to_string(self.path(key)).ok()?;
        serde_json::from_str(&text).ok()
    }

    /// All valid checkpoints, sorted by key.
    pub fn completed(&self) -> Vec<CellCheckpoint> {
        let mut out: Vec<CellCheckpoint> = std::fs::read_dir(&self.dir)
            .into_iter()
            .flatten()
            .flatten()
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                let key = name.strip_suffix(".json")?;
                self.load(key)
            })
            .collect();
        out.sort_by(|a, b| a.key.cmp(&b.key));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_journal(tag: &str) -> RunJournal {
        let dir = std::env::temp_dir().join(format!("bdb-journal-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        RunJournal::open(dir).unwrap()
    }

    fn checkpoint(key: &str) -> CellCheckpoint {
        CellCheckpoint {
            key: key.to_string(),
            prescription: "micro/sort".into(),
            engine: "sql".into(),
            seed: 42,
            scale: 300,
            shape: "ordered".into(),
            len: 300,
            digest: "00000000deadbeef".into(),
            checks: 2,
            passed: true,
            failures: Vec::new(),
        }
    }

    #[test]
    fn key_matches_golden_store_format() {
        assert_eq!(
            RunJournal::cell_key("micro/grep", "native", 42, 100),
            "micro-grep__native__s42__n100"
        );
        assert_eq!(
            RunJournal::cell_key("relational/select-aggregate", "sql", 7, 5),
            "relational-select-aggregate__sql__s7__n5"
        );
    }

    #[test]
    fn round_trips_checkpoints() {
        let journal = tmp_journal("roundtrip");
        let key = RunJournal::cell_key("micro/sort", "sql", 42, 300);
        assert!(journal.load(&key).is_none());
        let cp = checkpoint(&key);
        journal.record(&cp).unwrap();
        assert_eq!(journal.load(&key), Some(cp.clone()));
        assert_eq!(journal.completed(), vec![cp]);
        let _ = std::fs::remove_dir_all(journal.dir());
    }

    #[test]
    fn corrupt_checkpoints_are_treated_as_absent() {
        let journal = tmp_journal("corrupt");
        let key = "bad__cell__s1__n1";
        std::fs::write(journal.dir().join(format!("{key}.json")), b"{torn").unwrap();
        assert!(journal.load(key).is_none());
        assert!(journal.completed().is_empty());
        let _ = std::fs::remove_dir_all(journal.dir());
    }

    #[test]
    fn completed_sorts_by_key_and_reopen_sees_prior_state() {
        let journal = tmp_journal("sorted");
        for key in ["b__e__s1__n1", "a__e__s1__n1"] {
            journal.record(&checkpoint(key)).unwrap();
        }
        let reopened = RunJournal::open(journal.dir()).unwrap();
        let keys: Vec<String> = reopened.completed().into_iter().map(|c| c.key).collect();
        assert_eq!(keys, vec!["a__e__s1__n1", "b__e__s1__n1"]);
        let _ = std::fs::remove_dir_all(journal.dir());
    }
}
