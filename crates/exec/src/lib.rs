//! The Execution Layer (Figure 2, bottom).
//!
//! "The Execution Layer offers several functions to support the execution
//! of benchmark tests over different software stacks. Specifically, the
//! system configuration tools enable a generated test running in a
//! specific software stack. The data format conversion tools transform a
//! generated data set into a format capable of being used by this test.
//! The result analyzer and reporter display evaluation results."
//!
//! * [`config`] — system configuration tools and software-stack
//!   descriptors (threads, memory budget, engine parameters).
//! * [`convert`] — format conversion: CSV/TSV, JSON-lines, plain text and
//!   a length-prefixed binary format, all round-trippable.
//! * [`analyzer`] — result analysis: speedups, winners, crossover points,
//!   recovery summaries for chaos runs, and the statistical bench-ledger
//!   comparison ([`analyzer::BenchComparison`]) behind the
//!   perf-regression gate.
//! * [`reporter`] — plain-text and Markdown table rendering.
//! * [`fault`] — deterministic fault injection ([`fault::FaultPlan`]),
//!   retry with jittered backoff ([`fault::RetryPolicy`]) and the
//!   recovery loop resilient dispatch is built from.
//! * [`journal`] — the run journal: atomic per-cell checkpoints that let
//!   a killed run `--resume` without re-executing completed cells.
//! * [`health`] — health-aware serving: per-engine circuit breakers
//!   (closed → open → half-open) in a thread-safe shared
//!   [`health::HealthStore`]; the router demotes open engines, dispatch
//!   skips them, and the load driver's brownout controller sheds
//!   proportionally while they recover.
//! * [`loadgen`] — the concurrent load driver: N client sessions × M
//!   in-flight ops, closed- and open-loop arrivals, bounded admission
//!   with shedding, tail-latency and saturation reporting.
//! * [`engine`] — the pluggable engine abstraction: an [`engine::Engine`]
//!   trait with declared [`engine::Capabilities`], five builtin engine
//!   implementations (native, sql, kv, streaming, mapreduce) and a
//!   capability-routing [`engine::EngineRegistry`].
//! * [`cost`] — the dispatch cost model: static per-engine cost functions
//!   over (class × data kind × scale) and the EWMA observed-runtime store
//!   the adaptive router learns from.
//! * [`planner`] — the cost-based router: scores `route_all` candidates
//!   and re-orders each routing partition by predicted cost under
//!   `--routing cost|adaptive`.
//! * [`trace`] — structured phase/dispatch/operation tracing for one run.

pub mod analyzer;
pub mod config;
pub mod convert;
pub mod cost;
pub mod engine;
pub mod fault;
pub mod health;
pub mod journal;
pub mod loadgen;
pub mod planner;
pub mod reporter;
pub mod trace;

pub use analyzer::{
    compare, find_crossover, BenchComparison, BenchComparisonRow, BenchVerdict, Comparison,
    ConformanceSummary, HealthSummary, LoadSummary, PathCi, RecoverySummary, RoutingSummary,
};
pub use config::{SoftwareStack, SystemConfig};
pub use convert::DataFormat;
pub use cost::{CostFn, ObservedCosts, StaticCostModel};
pub use engine::{
    Capabilities, Engine, EngineRegistry, ExecutionRequest, PatternShape, Routing, TestProfile,
    WorkloadClass,
};
pub use planner::{CostSource, Ranked, Router, RoutingPolicy, Score};
pub use fault::{FaultInjector, FaultKind, FaultPhase, FaultPlan, FaultSite, Resilience, RetryPolicy};
pub use health::{Admission, BreakerPolicy, BreakerSnapshot, BreakerState, HealthStore};
pub use journal::{CellCheckpoint, RunJournal};
pub use loadgen::{run_load, run_load_resilient, LoadArrival, LoadProfile, LoadReport};
pub use reporter::TableReporter;
pub use trace::{RunTrace, TraceEvent};
