//! The Execution Layer (Figure 2, bottom).
//!
//! "The Execution Layer offers several functions to support the execution
//! of benchmark tests over different software stacks. Specifically, the
//! system configuration tools enable a generated test running in a
//! specific software stack. The data format conversion tools transform a
//! generated data set into a format capable of being used by this test.
//! The result analyzer and reporter display evaluation results."
//!
//! * [`config`] — system configuration tools and software-stack
//!   descriptors (threads, memory budget, engine parameters).
//! * [`convert`] — format conversion: CSV/TSV, JSON-lines, plain text and
//!   a length-prefixed binary format, all round-trippable.
//! * [`analyzer`] — result analysis: speedups, winners, crossover points.
//! * [`reporter`] — plain-text and Markdown table rendering.

pub mod analyzer;
pub mod config;
pub mod convert;
pub mod reporter;

pub use analyzer::{compare, find_crossover, Comparison};
pub use config::{SoftwareStack, SystemConfig};
pub use convert::DataFormat;
pub use reporter::TableReporter;
