//! Concurrent load driver: N client sessions × M in-flight operations.
//!
//! The paper's velocity axis ("heavy traffic from millions of users")
//! needs engines measured under *sustained concurrent traffic*, not
//! one-shot sequential cells. This module drives point ops against the
//! registered engine substrates with two generator disciplines:
//!
//! * **Closed loop** — `clients` sessions each keep `inflight` operations
//!   outstanding; the arrival rate emerges from service time. Workers
//!   claim batches of `inflight` ops from a shared cursor, so the set of
//!   issued operations is always a prefix of the deterministic schedule —
//!   the issued-op digest is identical for 1 client and 8.
//! * **Open loop** — arrival instants come from the seeded arrival
//!   processes of [`bdb_testgen::arrival`] (Poisson or uniform). A pacer
//!   thread walks the schedule on the wall clock and admits each op into
//!   a bounded queue; when the queue is full the op is **shed** (counted,
//!   never blocking the arrival clock). Latency is measured from the
//!   *intended arrival instant*, not dispatch, so queueing delay is
//!   charged to the engine — the coordinated-omission discipline.
//!
//! Per-lane latencies land in thread-local histograms merged at quiesce
//! ([`bdb_common::histogram::Histogram::merge`] /
//! [`LogHistogram::merge`](bdb_common::histogram::LogHistogram::merge)),
//! reporting p50/p99/p999 and saturation throughput per engine. A sampled
//! subset of op results is compared against a pure oracle through
//! [`OutputPayload`] diffing and recorded as `ConformanceChecked` trace
//! events — concurrency must not change answers.
//!
//! # Chaos under load
//!
//! [`run_load_resilient`] drives the same schedules with an active
//! [`Resilience`]: every op gets its own injector seeded by
//! `mix(seed ^ index)`, so its fault/retry outcome is a pure function of
//! `(seed, index)` — identical counts at any concurrency. Ops that
//! exhaust recovery (or hit a `crash@` kill point, which is terminal
//! per-op) count as **failed**, extending conservation to
//! `issued == completed + shed + failed`. In open-loop drives the pacer
//! additionally runs the serving-side protection in schedule order:
//!
//! * **circuit breaker** — each arrival is admitted through the target
//!   engine's [`HealthStore`] breaker and its *planned* outcome (the
//!   same pure function the lanes will execute) is recorded, so breaker
//!   trips and recoveries form one deterministic sequence; denied
//!   arrivals are shed.
//! * **adaptive brownout** — sustained queue overload or a half-open
//!   breaker builds a pressure counter; past the grace threshold a
//!   proportional, seed-deterministic fraction of arrivals is shed
//!   before dispatch and the episode is traced
//!   (`brownout_engaged`/`brownout_released`).
//!
//! Both mechanisms engage only when the drive carries an active fault
//! plan: passive drives take the historical byte-identical path. With a
//! per-op deadline the *actual* fail/complete split becomes
//! timing-dependent (reports stay truthful; only the breaker feed keeps
//! using planned outcomes), so deterministic chaos suites avoid
//! deadlines.

use crate::engine::EngineRegistry;
use crate::fault::{
    run_with_recovery, FaultInjector, FaultKind, FaultPlan, FaultSite, Resilience, RetryPolicy,
};
use crate::health::{BreakerState, HealthStore};
use crate::trace::{RunTrace, TraceEvent};
use bdb_common::dist::{Distribution, Zipf};
use bdb_common::event::Event;
use bdb_common::histogram::{Histogram, LogHistogram};
use bdb_common::rng::{Rng, SeedTree, SplitMix64};
use bdb_common::value::{DataType, Field, Schema, Value};
use bdb_common::{pool, record::Table, BdbError, Result};
use bdb_kv::{LsmConfig, SharedLsm};
use bdb_metrics::ShardedCounter;
use bdb_testgen::arrival::{self, ArrivalProcess, ArrivalSpec};
use bdb_workloads::{behavioral, OutputPayload};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Keys in every target's preloaded working set.
pub const KEYSPACE: u64 = 1024;

/// How ops are admitted to the engines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadArrival {
    /// Closed loop: concurrency fixed at clients × inflight, rate
    /// emerges from service time.
    Closed,
    /// Open loop, exponential inter-arrival gaps (Poisson process).
    Poisson {
        /// Mean arrivals per second.
        rate_per_sec: f64,
    },
    /// Open loop, constant inter-arrival gaps.
    Uniform {
        /// Arrivals per second.
        rate_per_sec: f64,
    },
}

impl LoadArrival {
    /// True for the open-loop disciplines.
    pub fn is_open(&self) -> bool {
        !matches!(self, LoadArrival::Closed)
    }
}

impl std::fmt::Display for LoadArrival {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadArrival::Closed => write!(f, "closed"),
            LoadArrival::Poisson { rate_per_sec } => write!(f, "poisson:{rate_per_sec}"),
            LoadArrival::Uniform { rate_per_sec } => write!(f, "uniform:{rate_per_sec}"),
        }
    }
}

impl std::str::FromStr for LoadArrival {
    type Err = BdbError;

    /// Parse `closed`, `poisson:RATE` or `uniform:RATE`.
    fn from_str(s: &str) -> Result<Self> {
        if s == "closed" {
            return Ok(LoadArrival::Closed);
        }
        let (kind, rate) = s
            .split_once(':')
            .ok_or_else(|| BdbError::InvalidConfig(format!("bad arrival spec '{s}'")))?;
        let rate_per_sec: f64 = rate
            .parse()
            .map_err(|_| BdbError::InvalidConfig(format!("bad arrival rate '{rate}'")))?;
        if !(rate_per_sec > 0.0 && rate_per_sec.is_finite()) {
            return Err(BdbError::InvalidConfig(format!(
                "arrival rate must be positive, got {rate_per_sec}"
            )));
        }
        match kind {
            "poisson" => Ok(LoadArrival::Poisson { rate_per_sec }),
            "uniform" => Ok(LoadArrival::Uniform { rate_per_sec }),
            other => Err(BdbError::InvalidConfig(format!(
                "unknown arrival process '{other}' (closed|poisson:RATE|uniform:RATE)"
            ))),
        }
    }
}

/// Configuration of one load run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadProfile {
    /// Concurrent client sessions per engine.
    pub clients: usize,
    /// In-flight operations each session multiplexes.
    pub inflight: usize,
    /// Run length used to size the op schedule, milliseconds.
    pub duration_ms: u64,
    /// Arrival discipline.
    pub arrival: LoadArrival,
    /// Bounded admission queue capacity for open-loop runs; `None`
    /// defaults to `clients * inflight`.
    pub queue_capacity: Option<usize>,
    /// Run every `sample_every`-th op's result through the conformance
    /// oracle.
    pub sample_every: usize,
    /// Restrict the run to these engines (`None` = all load targets the
    /// registry supports).
    pub engines: Option<Vec<String>>,
}

impl Default for LoadProfile {
    fn default() -> Self {
        Self {
            clients: 4,
            inflight: 8,
            duration_ms: 2000,
            arrival: LoadArrival::Closed,
            queue_capacity: None,
            sample_every: 16,
            engines: None,
        }
    }
}

impl LoadProfile {
    /// Check the profile for nonsense values.
    ///
    /// # Errors
    /// Fails on zero clients/inflight/sample rate or an empty duration.
    pub fn validate(&self) -> Result<()> {
        if self.clients == 0 || self.inflight == 0 {
            return Err(BdbError::InvalidConfig(
                "load profile needs at least 1 client and 1 in-flight op".into(),
            ));
        }
        if self.duration_ms == 0 {
            return Err(BdbError::InvalidConfig("load duration must be > 0 ms".into()));
        }
        if self.sample_every == 0 {
            return Err(BdbError::InvalidConfig("sample_every must be >= 1".into()));
        }
        if self.queue_capacity == Some(0) {
            return Err(BdbError::InvalidConfig("queue capacity must be >= 1".into()));
        }
        Ok(())
    }

    /// The open-loop admission queue capacity.
    pub fn queue_cap(&self) -> usize {
        self.queue_capacity.unwrap_or(self.clients * self.inflight)
    }
}

/// One logical operation of the load schedule.
///
/// Operations are *interleaving-independent* by construction: the
/// working set is preloaded with `value_of(key)` for every key, puts
/// rewrite the same value, and nothing is inserted or deleted — so any
/// execution order yields the same answers and sampled results can be
/// checked against a pure oracle even under maximal concurrency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadOp {
    /// Point read of `key`.
    Get {
        /// Key index in `[0, KEYSPACE)`.
        key: u64,
    },
    /// Rewrite of `key` with its canonical value.
    Put {
        /// Key index in `[0, KEYSPACE)`.
        key: u64,
    },
    /// Range read of up to `len` keys from `start`.
    Scan {
        /// First key index.
        start: u64,
        /// Maximum entries returned.
        len: u64,
    },
}

/// One schedule entry: the op plus its intended arrival instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledOp {
    /// Intended arrival, milliseconds from run start (0 for closed loop).
    pub at_ms: f64,
    /// The operation.
    pub op: LoadOp,
}

/// Canonical key string for index `i`.
pub fn key_of(i: u64) -> String {
    format!("k{i:06}")
}

/// Canonical value string for key index `i`.
pub fn value_of(i: u64) -> String {
    format!("val-{i:06}")
}

/// Build the deterministic op schedule for a profile and seed.
///
/// The schedule depends only on `(seed, arrival, duration_ms)` — not on
/// client or worker counts — so the issued-op digest is stable across
/// any concurrency level. Keys follow a Zipf(0.99) popularity curve
/// (the YCSB default); the mix is 70% gets, 20% puts, 10% scans.
///
/// # Errors
/// Fails when the profile is invalid.
pub fn build_schedule(profile: &LoadProfile, seed: u64) -> Result<Vec<ScheduledOp>> {
    profile.validate()?;
    let n = match profile.arrival {
        // Closed loop has no arrival clock: duration sizes the schedule
        // (drained as fast as the engine allows).
        LoadArrival::Closed => (profile.duration_ms.saturating_mul(32)).clamp(256, 200_000) as usize,
        LoadArrival::Poisson { rate_per_sec } | LoadArrival::Uniform { rate_per_sec } => {
            ((rate_per_sec * profile.duration_ms as f64 / 1000.0).round() as usize).max(1)
        }
    };
    let arrivals: Vec<f64> = match profile.arrival {
        LoadArrival::Closed => vec![0.0; n],
        LoadArrival::Poisson { rate_per_sec } => {
            arrival::schedule(&ArrivalSpec::Open { rate_per_sec, process: ArrivalProcess::Poisson }, n, seed)?
                .into_iter()
                .map(|s| s.at_ms)
                .collect()
        }
        LoadArrival::Uniform { rate_per_sec } => {
            arrival::schedule(&ArrivalSpec::Open { rate_per_sec, process: ArrivalProcess::Uniform }, n, seed)?
                .into_iter()
                .map(|s| s.at_ms)
                .collect()
        }
    };
    let mut rng = SeedTree::new(seed).child_named("loadgen").rng();
    let zipf = Zipf::new(KEYSPACE, 0.99);
    let mut out = Vec::with_capacity(n);
    for &at_ms in &arrivals {
        let sel = rng.next_f64();
        let op = if sel < 0.70 {
            LoadOp::Get { key: zipf.sample(&mut rng) }
        } else if sel < 0.90 {
            LoadOp::Put { key: zipf.sample(&mut rng) }
        } else {
            let start = rng.next_bounded(KEYSPACE);
            LoadOp::Scan { start, len: 8 + rng.next_bounded(24) }
        };
        out.push(ScheduledOp { at_ms, op });
    }
    Ok(out)
}

/// FNV-1a digest over the issued ops in schedule order — the
/// concurrency-independence witness (`--clients 1` and `--clients 8`
/// with one seed print the same digest).
pub fn issued_digest(schedule: &[ScheduledOp]) -> String {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |b: u64| {
        for byte in b.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    for s in schedule {
        match s.op {
            LoadOp::Get { key } => {
                eat(1);
                eat(key);
            }
            LoadOp::Put { key } => {
                eat(2);
                eat(key);
            }
            LoadOp::Scan { start, len } => {
                eat(3);
                eat(start);
                eat(len);
            }
        }
    }
    format!("0x{h:016x}")
}

/// One engine substrate the load driver can target.
///
/// A target owns the shared preloaded state; each worker thread opens its
/// own [`LoadSession`] against it, and [`expected`](Self::expected) is
/// the pure oracle the sampled results are checked against.
pub trait LoadTarget: Send + Sync {
    /// Engine name ("kv", "sql", "native").
    fn name(&self) -> &'static str;
    /// Open one per-worker session.
    fn session(&self) -> Box<dyn LoadSession + '_>;
    /// The oracle: what any correct execution of `op` must return.
    fn expected(&self, op: &LoadOp) -> String;
}

/// One client session: executes ops, returning a compact outcome string.
pub trait LoadSession {
    /// Execute one op.
    fn execute(&mut self, op: &LoadOp) -> String;
}

/// KV target: a [`SharedLsm`] preloaded with the full keyspace, sized so
/// a load run keeps flushing (reads run concurrently under the store's
/// read lock while flushes take the write lock).
#[derive(Debug)]
pub struct KvLoadTarget {
    store: SharedLsm,
}

impl KvLoadTarget {
    /// A preloaded store with a memtable small enough to flush under load.
    pub fn new() -> Self {
        Self::with_config(LsmConfig {
            memtable_capacity_bytes: 64 << 10,
            max_runs: 4,
            bloom_bits_per_key: 10,
        })
    }

    /// A preloaded store with explicit tuning.
    pub fn with_config(config: LsmConfig) -> Self {
        let store = SharedLsm::with_config(config);
        for i in 0..KEYSPACE {
            store.put(key_of(i).into_bytes(), value_of(i).into_bytes());
        }
        Self { store }
    }

    /// The underlying store (for stats in tests and reports).
    pub fn store(&self) -> &SharedLsm {
        &self.store
    }
}

impl Default for KvLoadTarget {
    fn default() -> Self {
        Self::new()
    }
}

struct KvSession {
    store: SharedLsm,
}

impl LoadSession for KvSession {
    fn execute(&mut self, op: &LoadOp) -> String {
        match *op {
            LoadOp::Get { key } => self
                .store
                .get(key_of(key).as_bytes())
                .map_or_else(|| "miss".to_string(), |v| String::from_utf8_lossy(&v).into_owned()),
            LoadOp::Put { key } => {
                self.store.put(key_of(key).into_bytes(), value_of(key).into_bytes());
                "ok".to_string()
            }
            LoadOp::Scan { start, len } => {
                let n = self.store.scan(key_of(start).as_bytes(), None, len as usize).len();
                format!("scan:{n}")
            }
        }
    }
}

impl LoadTarget for KvLoadTarget {
    fn name(&self) -> &'static str {
        "kv"
    }

    fn session(&self) -> Box<dyn LoadSession + '_> {
        Box::new(KvSession { store: self.store.clone() })
    }

    fn expected(&self, op: &LoadOp) -> String {
        match *op {
            // Every key is preloaded and puts rewrite the same value.
            LoadOp::Get { key } => value_of(key),
            LoadOp::Put { .. } => "ok".to_string(),
            // Keys are contiguous and never deleted.
            LoadOp::Scan { start, len } => format!("scan:{}", len.min(KEYSPACE - start)),
        }
    }
}

/// SQL target: a `load(k INT, v TEXT)` table of the full keyspace; every
/// session gets its own engine over a clone of the table (the engine
/// API is `&mut`, so sessions do not share parser state). Reads only —
/// puts and scans map to point selects of the same key.
#[derive(Debug)]
pub struct SqlLoadTarget {
    table: Table,
}

impl SqlLoadTarget {
    /// Build the preloaded table.
    pub fn new() -> Self {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Text),
        ]);
        let mut table = Table::new(schema);
        for i in 0..KEYSPACE {
            table.push_unchecked(vec![Value::Int(i as i64), Value::from(value_of(i))]);
        }
        Self { table }
    }
}

impl Default for SqlLoadTarget {
    fn default() -> Self {
        Self::new()
    }
}

struct SqlSession {
    engine: bdb_sql::Engine,
}

impl SqlSession {
    fn select(&mut self, key: u64) -> String {
        match self.engine.sql(&format!("SELECT v FROM load WHERE k = {key}")) {
            Ok(t) => t
                .rows()
                .first()
                .and_then(|r| r.first())
                .map_or_else(|| "miss".to_string(), ToString::to_string),
            Err(e) => format!("error:{e}"),
        }
    }
}

impl LoadSession for SqlSession {
    fn execute(&mut self, op: &LoadOp) -> String {
        match *op {
            LoadOp::Get { key } | LoadOp::Put { key } => self.select(key),
            LoadOp::Scan { start, .. } => self.select(start),
        }
    }
}

impl LoadTarget for SqlLoadTarget {
    fn name(&self) -> &'static str {
        "sql"
    }

    fn session(&self) -> Box<dyn LoadSession + '_> {
        let mut engine = bdb_sql::Engine::new();
        engine
            .register("load", self.table.clone())
            .expect("load table registers");
        Box::new(SqlSession { engine })
    }

    fn expected(&self, op: &LoadOp) -> String {
        match *op {
            LoadOp::Get { key } | LoadOp::Put { key } => value_of(key),
            LoadOp::Scan { start, .. } => value_of(start),
        }
    }
}

/// Native target: pure in-process compute (a keyed hash chain), the
/// function-layer baseline with no storage behind it.
#[derive(Debug, Default)]
pub struct NativeLoadTarget;

fn mix(mut x: u64) -> u64 {
    // splitmix64 finaliser, iterated to give the op measurable weight.
    for _ in 0..32 {
        x = x.wrapping_add(0x9e3779b97f4a7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        x ^= x >> 31;
    }
    x
}

fn native_outcome(op: &LoadOp) -> String {
    match *op {
        LoadOp::Get { key } => format!("h:{:016x}", mix(key)),
        LoadOp::Put { key } => format!("h:{:016x}", mix(key ^ 0xdead_beef)),
        LoadOp::Scan { start, len } => {
            let sum = (start..start + len).fold(0u64, |acc, i| acc.wrapping_add(mix(i)));
            format!("s:{sum:016x}")
        }
    }
}

struct NativeSession;

impl LoadSession for NativeSession {
    fn execute(&mut self, op: &LoadOp) -> String {
        native_outcome(op)
    }
}

impl LoadTarget for NativeLoadTarget {
    fn name(&self) -> &'static str {
        "native"
    }

    fn session(&self) -> Box<dyn LoadSession + '_> {
        Box::new(NativeSession)
    }

    fn expected(&self, op: &LoadOp) -> String {
        native_outcome(op)
    }
}

/// Events per synthetic clickstream in the streaming target.
const STREAM_EVENTS_PER_KEY: u64 = 48;
/// Session gap of the streaming target's sessionize kernel, ms.
const STREAM_GAP_MS: u64 = 1_000;

/// The synthetic clickstream named by `key`: a pure function of the key,
/// deliberately unsorted (the kernel must sort), so every session and the
/// oracle derive the same stream without shared state.
fn stream_events(key: u64) -> Vec<Event> {
    (0..STREAM_EVENTS_PER_KEY)
        .map(|i| {
            let h = mix(key.wrapping_mul(STREAM_EVENTS_PER_KEY).wrapping_add(i));
            Event::new(h % 60_000, key, (h >> 32 & 0x7) as f64)
        })
        .collect()
}

/// Independent oracle: sessions of `key`'s stream by a naive sorted gap
/// walk (no shared code with the streaming kernel).
fn naive_sessions(key: u64) -> u64 {
    let mut ts: Vec<u64> = stream_events(key).iter().map(|e| e.ts_ms).collect();
    ts.sort_unstable();
    1 + ts.windows(2).filter(|w| w[1] - w[0] > STREAM_GAP_MS).count() as u64
}

/// Streaming target: every op runs the sessionize kernel over a synthetic
/// per-key clickstream — gets and puts sessionize one stream, scans fold
/// session counts over a key range. This puts the behavioral operation
/// class under the same concurrency and tail-latency discipline as the
/// storage engines.
#[derive(Debug, Default)]
pub struct StreamingLoadTarget;

struct StreamingSession;

fn sessionize_of(key: u64) -> u64 {
    let spec = behavioral::BehavioralSpec::Sessionize { gap_ms: STREAM_GAP_MS };
    let out = behavioral::run_behavioral(&stream_events(key), &spec);
    out.rows
        .first()
        .and_then(|r| r.get(1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

impl LoadSession for StreamingSession {
    fn execute(&mut self, op: &LoadOp) -> String {
        match *op {
            LoadOp::Get { key } | LoadOp::Put { key } => {
                format!("sessions:{}", sessionize_of(key))
            }
            LoadOp::Scan { start, len } => {
                let sum: u64 = (start..(start + len).min(KEYSPACE)).map(sessionize_of).sum();
                format!("sessions-sum:{sum}")
            }
        }
    }
}

impl LoadTarget for StreamingLoadTarget {
    fn name(&self) -> &'static str {
        "streaming"
    }

    fn session(&self) -> Box<dyn LoadSession + '_> {
        Box::new(StreamingSession)
    }

    fn expected(&self, op: &LoadOp) -> String {
        match *op {
            LoadOp::Get { key } | LoadOp::Put { key } => {
                format!("sessions:{}", naive_sessions(key))
            }
            LoadOp::Scan { start, len } => {
                let sum: u64 = (start..(start + len).min(KEYSPACE)).map(naive_sessions).sum();
                format!("sessions-sum:{sum}")
            }
        }
    }
}

/// The measured outcome of driving one engine.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Engine name.
    pub engine: String,
    /// Client sessions driven.
    pub clients: usize,
    /// In-flight ops per session.
    pub inflight: usize,
    /// Ops the arrival clock issued (the whole schedule).
    pub issued: u64,
    /// Ops that executed to completion.
    pub completed: u64,
    /// Ops shed at the admission queue, by the brownout controller, or by
    /// an open circuit breaker (open loop only).
    pub shed: u64,
    /// Ops that exhausted recovery (or crashed) and failed.
    pub failed: u64,
    /// Faults injected across the drive's lanes.
    pub faults: u64,
    /// Retries the drive's lanes performed.
    pub retries: u64,
    /// Times this engine's circuit breaker tripped open during the drive.
    pub breaker_trips: u64,
    /// Wall-clock of the drive, seconds.
    pub duration_secs: f64,
    /// Saturation throughput: completed ops per second.
    pub throughput_ops_per_sec: f64,
    /// Median latency, microseconds.
    pub p50_us: f64,
    /// 99th percentile latency, microseconds.
    pub p99_us: f64,
    /// 99.9th percentile latency, microseconds.
    pub p999_us: f64,
    /// Mean admission-queue delay, milliseconds (0 for closed loop).
    pub mean_queue_delay_ms: f64,
    /// Results sampled into the conformance check.
    pub sampled: u64,
    /// Did the sampled results match the oracle?
    pub conformance_passed: bool,
    /// The issued-op digest of the schedule this engine consumed.
    pub digest: String,
}

/// Per-lane capture merged at quiesce: a thread-local latency histogram,
/// queue-delay histogram, completion/chaos counts and sampled outcomes.
struct LaneOut {
    lat: LogHistogram,
    queue_delay: Histogram,
    completed: u64,
    failed: u64,
    faults: u64,
    retries: u64,
    samples: Vec<(usize, String)>,
}

impl LaneOut {
    fn new() -> Self {
        Self {
            lat: LogHistogram::new(),
            queue_delay: Histogram::with_bounds(0.0, 1000.0, 500),
            completed: 0,
            failed: 0,
            faults: 0,
            retries: 0,
            samples: Vec::new(),
        }
    }
}

/// Arrivals of sustained overload pressure before the brownout starts
/// shedding.
pub const BROWNOUT_GRACE: u64 = 8;
/// Shed fraction added per pressure unit above the grace threshold.
const BROWNOUT_STEP: f64 = 1.0 / 16.0;
/// The brownout never sheds more than this fraction — enough traffic must
/// get through for half-open probes to run and the queue to drain.
const BROWNOUT_CEILING: f64 = 0.75;

/// The brownout's shed fraction at a given pressure: 0 under the grace
/// threshold, then proportional and capped.
fn brownout_fraction(pressure: u64) -> f64 {
    (pressure.saturating_sub(BROWNOUT_GRACE) as f64 * BROWNOUT_STEP).min(BROWNOUT_CEILING)
}

/// A uniform draw in `[0, 1)` from one mixed word.
fn unit_draw(word: u64) -> f64 {
    (SplitMix64::mix(word) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Everything one chaos drive shares across lanes and the pacer: the
/// fault plan, retry policy, and the run seed per-op injectors derive
/// from.
struct ChaosCtx {
    plan: FaultPlan,
    policy: RetryPolicy,
    seed: u64,
    site: FaultSite,
}

impl ChaosCtx {
    /// Build the context when `res` carries an active injector; `None`
    /// keeps the drive on the historical no-chaos path.
    fn from_resilience(res: &Resilience, seed: u64, engine: &str) -> Option<Self> {
        res.injector.as_ref().map(|inj| ChaosCtx {
            plan: inj.plan().clone(),
            policy: res.policy.clone(),
            seed,
            site: FaultSite::execution(engine, "load"),
        })
    }

    /// The injector seed for op `idx`: a pure function of `(seed, idx)`,
    /// so an op's fault sequence is identical at any concurrency.
    fn op_seed(&self, idx: usize) -> u64 {
        SplitMix64::mix(self.seed ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// The outcome op `idx`'s recovery loop will reach, without running
    /// it: a fresh injector over the same `(seed, idx)` draw sequence.
    /// Latency spikes still complete; errors and panics fail once the
    /// retry budget is spent; a crash is terminal on its first injection.
    /// Mirrors [`run_with_recovery`] over an always-succeeding operation
    /// with no deadline.
    fn planned_ok(&self, idx: usize) -> bool {
        let inj = FaultInjector::new(self.plan.clone(), self.op_seed(idx));
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match inj.sample(&self.site) {
                None => return true,
                Some(fault) => match fault.kind {
                    FaultKind::Latency => return true,
                    FaultKind::Crash => return false,
                    FaultKind::Error | FaultKind::Panic => {
                        if attempt >= self.policy.attempts() {
                            return false;
                        }
                    }
                },
            }
        }
    }

    /// Execute op `idx` under its per-op resilience, folding fault/retry
    /// counts into the lane. Returns the outcome string when the op
    /// completed. Recovery-path trace events go to a scratch trace — at
    /// load volumes per-op fault events would swamp the run trace; the
    /// counts land in the [`LoadReport`] instead.
    fn execute(
        &self,
        lane: &mut LaneOut,
        sess: &mut dyn LoadSession,
        op: &LoadOp,
        idx: usize,
    ) -> Option<String> {
        let res = Resilience::new(Some(self.plan.clone()), self.policy.clone(), self.op_seed(idx));
        let scratch = RunTrace::new();
        let mut attempt_op = || Ok(sess.execute(op));
        match run_with_recovery(&res, &scratch, &self.site, Instant::now(), &mut attempt_op) {
            Ok(rec) => {
                lane.faults += u64::from(rec.faults);
                lane.retries += u64::from(rec.attempts.saturating_sub(1));
                Some(rec.value)
            }
            Err(fail) => {
                lane.faults += scratch
                    .events()
                    .iter()
                    .filter(|e| matches!(e, TraceEvent::FaultInjected { .. }))
                    .count() as u64;
                lane.retries += u64::from(fail.attempts.saturating_sub(1));
                lane.failed += 1;
                None
            }
        }
    }
}

fn record_op(
    lane: &mut LaneOut,
    sess: &mut dyn LoadSession,
    schedule: &[ScheduledOp],
    idx: usize,
    sample_every: usize,
    latency_from: Instant,
    chaos: Option<&ChaosCtx>,
) {
    let out = match chaos {
        None => Some(sess.execute(&schedule[idx].op)),
        Some(c) => c.execute(lane, sess, &schedule[idx].op, idx),
    };
    let Some(out) = out else { return };
    lane.lat
        .record(latency_from.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
    lane.completed += 1;
    if idx.is_multiple_of(sample_every) {
        lane.samples.push((idx, out));
    }
}

/// Drive one target with the given schedule and profile, fault-free (the
/// historical path: no injector, no breaker, no brownout).
///
/// # Errors
/// Fails when a worker panics or the profile is invalid.
pub fn run_target(
    target: &dyn LoadTarget,
    profile: &LoadProfile,
    schedule: &[ScheduledOp],
    trace: &RunTrace,
) -> Result<LoadReport> {
    run_target_resilient(
        target,
        profile,
        schedule,
        &Resilience::passive(0),
        &HealthStore::default(),
        0,
        trace,
    )
}

/// Drive one target with the given schedule under a resilience
/// configuration: per-op deterministic fault injection, and — for
/// open-loop drives with an active plan — breaker admission and adaptive
/// brownout at the pacer (see the module docs).
///
/// # Errors
/// Fails when a worker panics, the profile is invalid, or op accounting
/// breaks conservation (`issued == completed + shed + failed`).
pub fn run_target_resilient(
    target: &dyn LoadTarget,
    profile: &LoadProfile,
    schedule: &[ScheduledOp],
    res: &Resilience,
    health: &HealthStore,
    seed: u64,
    trace: &RunTrace,
) -> Result<LoadReport> {
    profile.validate()?;
    let chaos = ChaosCtx::from_resilience(res, seed, target.name());
    let t0 = Instant::now();
    let (lanes, shed, breaker_trips) = if profile.arrival.is_open() {
        run_open_loop(target, profile, schedule, trace, t0, chaos.as_ref(), health)?
    } else {
        run_closed_loop(target, profile, schedule, trace, chaos.as_ref())?
    };

    let mut lat = LogHistogram::new();
    let mut queue_delay = Histogram::with_bounds(0.0, 1000.0, 500);
    let mut completed = 0u64;
    let mut failed = 0u64;
    let mut faults = 0u64;
    let mut retries = 0u64;
    let mut samples: Vec<(usize, String)> = Vec::new();
    for lane in &lanes {
        lat.merge(&lane.lat);
        queue_delay.merge(&lane.queue_delay);
        completed += lane.completed;
        failed += lane.failed;
        faults += lane.faults;
        retries += lane.retries;
        samples.extend(lane.samples.iter().cloned());
    }
    let duration_secs = t0.elapsed().as_secs_f64().max(1e-9);
    // Conservation: every scheduled op completed, was shed, or failed.
    if completed + shed + failed != schedule.len() as u64 {
        return Err(BdbError::Execution(format!(
            "load accounting broke: {completed} completed + {shed} shed + {failed} failed != {} issued",
            schedule.len()
        )));
    }
    if shed > 0 {
        trace.record(TraceEvent::LoadShed { engine: target.name().to_string(), count: shed });
    }

    // Conformance: the sampled outcomes must match the pure oracle.
    let actual = OutputPayload::RowSet(
        samples.iter().map(|(i, out)| vec![i.to_string(), out.clone()]).collect(),
    );
    let expect = OutputPayload::RowSet(
        samples
            .iter()
            .map(|(i, _)| vec![i.to_string(), target.expected(&schedule[*i].op)])
            .collect(),
    );
    let mismatch = actual.diff(&expect, 0.0);
    let passed = mismatch.is_none();
    trace.record(TraceEvent::ConformanceChecked {
        prescription: format!("load/{}", target.name()),
        engine: target.name().to_string(),
        check: "oracle".to_string(),
        payload: "rowset".to_string(),
        passed,
        detail: mismatch.unwrap_or_else(|| format!("digest 0x{:016x}", actual.digest())),
    });

    Ok(LoadReport {
        engine: target.name().to_string(),
        clients: profile.clients,
        inflight: profile.inflight,
        issued: schedule.len() as u64,
        completed,
        shed,
        failed,
        faults,
        retries,
        breaker_trips,
        duration_secs,
        throughput_ops_per_sec: completed as f64 / duration_secs,
        p50_us: lat.quantile(0.50) as f64 / 1e3,
        p99_us: lat.quantile(0.99) as f64 / 1e3,
        p999_us: lat.quantile(0.999) as f64 / 1e3,
        mean_queue_delay_ms: queue_delay.mean(),
        sampled: samples.len() as u64,
        conformance_passed: passed,
        digest: issued_digest(schedule),
    })
}

/// Closed loop: each session claims batches of `inflight` ops from a
/// shared cursor until the schedule drains. Claimed batches are
/// contiguous, so the issued set is always a prefix of the schedule
/// regardless of worker count or interleaving.
fn run_closed_loop(
    target: &dyn LoadTarget,
    profile: &LoadProfile,
    schedule: &[ScheduledOp],
    trace: &RunTrace,
    chaos: Option<&ChaosCtx>,
) -> Result<(Vec<LaneOut>, u64, u64)> {
    let cursor = AtomicUsize::new(0);
    // Global hot-path tally: every worker bumps it per op, so it is
    // sharded (a single atomic would ping-pong its cache line).
    let completed_total = ShardedCounter::new(profile.clients);
    let cursor = &cursor;
    let completed_total = &completed_total;
    let lanes = pool::try_par_map(profile.clients, (0..profile.clients).collect(), |session: usize| {
        trace.record(TraceEvent::LoadSessionStarted {
            engine: target.name().to_string(),
            session,
            lanes: profile.inflight,
        });
        let s0 = Instant::now();
        let mut sess = target.session();
        let mut lane = LaneOut::new();
        loop {
            let base = cursor.fetch_add(profile.inflight, Ordering::SeqCst);
            if base >= schedule.len() {
                break;
            }
            let end = (base + profile.inflight).min(schedule.len());
            for idx in base..end {
                let d0 = Instant::now();
                record_op(&mut lane, sess.as_mut(), schedule, idx, profile.sample_every, d0, chaos);
                completed_total.add(1);
            }
        }
        trace.record(TraceEvent::LoadSessionFinished {
            engine: target.name().to_string(),
            session,
            completed: lane.completed,
            micros: s0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
        });
        lane
    })
    .map_err(|p| BdbError::Execution(format!("load worker panicked: {p}")))?;
    debug_assert_eq!(
        completed_total.value(),
        lanes.iter().map(|l| l.completed + l.failed).sum::<u64>(),
        "sharded tally must agree with the merged lanes"
    );
    Ok((lanes, 0, 0))
}

/// Open loop: a pacer thread walks the schedule on the wall clock,
/// admitting each op to a bounded queue (full → shed, never block);
/// worker sessions drain the queue. Latency is measured from the
/// intended arrival instant (coordinated omission), and the
/// dispatch-minus-arrival gap is captured separately as queue delay.
///
/// On a chaos drive the pacer is also the serving-side admission
/// controller, in schedule order: the brownout sheds a proportional
/// fraction of arrivals under sustained pressure, the engine's circuit
/// breaker denies (sheds) arrivals while open, and every admitted op's
/// planned outcome feeds the breaker — one deterministic trip/recovery
/// sequence per `(seed, plan)`.
fn run_open_loop(
    target: &dyn LoadTarget,
    profile: &LoadProfile,
    schedule: &[ScheduledOp],
    trace: &RunTrace,
    start: Instant,
    chaos: Option<&ChaosCtx>,
    health: &HealthStore,
) -> Result<(Vec<LaneOut>, u64, u64)> {
    let cap = profile.queue_cap();
    let queue: Mutex<VecDeque<usize>> = Mutex::new(VecDeque::with_capacity(cap));
    let ready = Condvar::new();
    let done = AtomicBool::new(false);
    let shed_total = ShardedCounter::new(1);
    let (queue, ready, done, shed_total) = (&queue, &ready, &done, &shed_total);
    let engine = target.name();

    let (lanes, trips) = std::thread::scope(|scope| {
        let pacer = scope.spawn(move || {
            let mut trips = 0u64;
            let mut pressure = 0u64;
            let mut brownout_shed = 0u64;
            let mut engaged = false;
            for (idx, slot) in schedule.iter().enumerate() {
                let due = Duration::from_secs_f64(slot.at_ms / 1000.0);
                let now = start.elapsed();
                if due > now {
                    std::thread::sleep(due - now);
                }
                let mut q = queue.lock().expect("load queue");
                if let Some(c) = chaos {
                    // Breaker admission first: open → shed (fail fast),
                    // and every admitted arrival feeds the breaker its
                    // planned outcome — *before* brownout or queue
                    // shedding, so the trip/recovery sequence is a pure
                    // function of `(seed, plan, policy)` regardless of
                    // worker timing.
                    let admission = health.admit(engine);
                    if admission.half_opened {
                        trace.record(TraceEvent::BreakerHalfOpen { engine: engine.to_string() });
                    }
                    if !admission.allowed {
                        shed_total.add(1);
                        continue;
                    }
                    let planned_ok = c.planned_ok(idx);
                    if admission.probe {
                        trace.record(TraceEvent::ProbeResult {
                            engine: engine.to_string(),
                            ok: planned_ok,
                        });
                    }
                    let recorded = health.record(engine, planned_ok, admission.probe);
                    match recorded.transition {
                        Some(BreakerState::Open) => {
                            trips += 1;
                            trace.record(TraceEvent::BreakerOpened {
                                engine: engine.to_string(),
                                failure_rate: recorded.failure_rate,
                            });
                        }
                        Some(BreakerState::Closed) => {
                            trace.record(TraceEvent::BreakerClosed { engine: engine.to_string() });
                        }
                        _ => {}
                    }
                    // Brownout second: sustained queue overload (≥ 3/4
                    // full) or a half-open breaker builds pressure; past
                    // the grace threshold a proportional,
                    // per-index-seeded fraction of arrivals is shed
                    // before dispatch. Adaptive by design — the queue
                    // signal tracks real worker timing.
                    let overloaded = q.len() * 4 >= cap * 3
                        || health.state(engine) == BreakerState::HalfOpen;
                    pressure = if overloaded { pressure + 1 } else { pressure.saturating_sub(1) };
                    let fraction = brownout_fraction(pressure);
                    if fraction > 0.0 && !engaged {
                        engaged = true;
                        trace.record(TraceEvent::BrownoutEngaged {
                            engine: engine.to_string(),
                            pressure,
                            shed_fraction: fraction,
                        });
                    } else if fraction == 0.0 && engaged {
                        engaged = false;
                        trace.record(TraceEvent::BrownoutReleased {
                            engine: engine.to_string(),
                            shed: brownout_shed,
                        });
                    }
                    if fraction > 0.0
                        && unit_draw(c.seed ^ 0xB707_0000 ^ idx as u64) < fraction
                    {
                        brownout_shed += 1;
                        shed_total.add(1);
                        continue;
                    }
                }
                if q.len() >= cap {
                    // Shed: the arrival clock never blocks on a full
                    // queue; the op is counted and dropped.
                    shed_total.add(1);
                    continue;
                }
                q.push_back(idx);
                drop(q);
                ready.notify_one();
            }
            if engaged {
                trace.record(TraceEvent::BrownoutReleased {
                    engine: engine.to_string(),
                    shed: brownout_shed,
                });
            }
            done.store(true, Ordering::SeqCst);
            ready.notify_all();
            trips
        });

        let lanes = pool::try_par_map(
            profile.clients,
            (0..profile.clients).collect(),
            |session: usize| {
                trace.record(TraceEvent::LoadSessionStarted {
                    engine: target.name().to_string(),
                    session,
                    lanes: profile.inflight,
                });
                let s0 = Instant::now();
                let mut sess = target.session();
                let mut lane = LaneOut::new();
                loop {
                    let idx = {
                        let mut q = queue.lock().expect("load queue");
                        loop {
                            if let Some(idx) = q.pop_front() {
                                break Some(idx);
                            }
                            if done.load(Ordering::SeqCst) {
                                break None;
                            }
                            let (guard, _) = ready
                                .wait_timeout(q, Duration::from_millis(10))
                                .expect("load queue");
                            q = guard;
                        }
                    };
                    let Some(idx) = idx else { break };
                    let intended = Duration::from_secs_f64(schedule[idx].at_ms / 1000.0);
                    let dispatch_delay = start.elapsed().saturating_sub(intended);
                    lane.queue_delay.record(dispatch_delay.as_secs_f64() * 1e3);
                    // Latency clock starts at the intended arrival: the
                    // virtual instant `start + intended`.
                    let latency_from = start
                        .checked_add(intended)
                        .filter(|t| *t <= Instant::now())
                        .unwrap_or_else(Instant::now);
                    record_op(
                        &mut lane,
                        sess.as_mut(),
                        schedule,
                        idx,
                        profile.sample_every,
                        latency_from,
                        chaos,
                    );
                }
                trace.record(TraceEvent::LoadSessionFinished {
                    engine: target.name().to_string(),
                    session,
                    completed: lane.completed,
                    micros: s0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
                });
                lane
            },
        );
        let trips = pacer.join().expect("pacer thread");
        lanes
            .map(|l| (l, trips))
            .map_err(|p| BdbError::Execution(format!("load worker panicked: {p}")))
    })?;
    Ok((lanes, shed_total.value(), trips))
}

/// The load targets the registry's engines support, honouring the
/// profile's engine filter. Targets: `kv` (LSM store), `sql` (point
/// selects), `native` (pure compute), `streaming` (sessionize kernel) —
/// each present when the registry registers the corresponding engine.
pub fn default_targets(
    registry: &EngineRegistry,
    profile: &LoadProfile,
) -> Result<Vec<Box<dyn LoadTarget>>> {
    let names = registry.names();
    let wanted = |n: &str| -> bool {
        profile
            .engines
            .as_ref()
            .is_none_or(|list| list.iter().any(|e| e == n))
    };
    let mut targets: Vec<Box<dyn LoadTarget>> = Vec::new();
    if names.contains(&"kv") && wanted("kv") {
        targets.push(Box::new(KvLoadTarget::new()));
    }
    if names.contains(&"sql") && wanted("sql") {
        targets.push(Box::new(SqlLoadTarget::new()));
    }
    if names.contains(&"native") && wanted("native") {
        targets.push(Box::new(NativeLoadTarget));
    }
    if names.contains(&"streaming") && wanted("streaming") {
        targets.push(Box::new(StreamingLoadTarget));
    }
    if targets.is_empty() {
        return Err(BdbError::InvalidConfig(format!(
            "no load targets match the engine filter {:?} (registry: {})",
            profile.engines,
            names.join(", ")
        )));
    }
    Ok(targets)
}

/// Drive every selected target with one shared deterministic schedule,
/// engine after engine (saturation measurements must not overlap),
/// fault-free.
///
/// # Errors
/// Fails on an invalid profile, an empty engine filter, or a worker
/// panic.
pub fn run_load(
    registry: &EngineRegistry,
    profile: &LoadProfile,
    seed: u64,
    trace: &RunTrace,
) -> Result<Vec<LoadReport>> {
    run_load_resilient(registry, profile, &Resilience::passive(seed), seed, trace)
}

/// Drive every selected target under a resilience configuration: the
/// chaos counterpart of [`run_load`], injecting per-op faults into the
/// lanes and running breaker/brownout admission at the pacer. Breaker
/// state lives in the registry's shared [`HealthStore`], keyed per
/// engine, so a drive's trips are visible to later resilient dispatch
/// (and to [`crate::analyzer::HealthSummary`]).
///
/// # Errors
/// Fails on an invalid profile, an empty engine filter, a worker panic,
/// or broken op conservation.
pub fn run_load_resilient(
    registry: &EngineRegistry,
    profile: &LoadProfile,
    res: &Resilience,
    seed: u64,
    trace: &RunTrace,
) -> Result<Vec<LoadReport>> {
    let schedule = build_schedule(profile, seed)?;
    let targets = default_targets(registry, profile)?;
    let health = registry.health();
    let mut reports = Vec::with_capacity(targets.len());
    for target in &targets {
        reports.push(run_target_resilient(
            target.as_ref(),
            profile,
            &schedule,
            res,
            &health,
            seed,
            trace,
        )?);
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_profile() -> LoadProfile {
        LoadProfile { clients: 2, inflight: 4, duration_ms: 10, ..LoadProfile::default() }
    }

    #[test]
    fn arrival_parses_and_displays() {
        for s in ["closed", "poisson:500", "uniform:250.5"] {
            let a: LoadArrival = s.parse().unwrap();
            assert_eq!(a.to_string(), s);
        }
        assert!("poisson".parse::<LoadArrival>().is_err());
        assert!("poisson:-5".parse::<LoadArrival>().is_err());
        assert!("burst:10".parse::<LoadArrival>().is_err());
        assert!(LoadArrival::Closed.to_string() == "closed");
        assert!(!LoadArrival::Closed.is_open());
        assert!(LoadArrival::Poisson { rate_per_sec: 1.0 }.is_open());
    }

    #[test]
    fn profile_validation() {
        assert!(LoadProfile::default().validate().is_ok());
        assert!(LoadProfile { clients: 0, ..LoadProfile::default() }.validate().is_err());
        assert!(LoadProfile { inflight: 0, ..LoadProfile::default() }.validate().is_err());
        assert!(LoadProfile { duration_ms: 0, ..LoadProfile::default() }.validate().is_err());
        assert!(LoadProfile { sample_every: 0, ..LoadProfile::default() }.validate().is_err());
        assert!(LoadProfile { queue_capacity: Some(0), ..LoadProfile::default() }
            .validate()
            .is_err());
        assert_eq!(LoadProfile::default().queue_cap(), 32);
    }

    #[test]
    fn schedule_is_seed_deterministic_and_client_independent() {
        let p1 = LoadProfile { clients: 1, ..quick_profile() };
        let p8 = LoadProfile { clients: 8, ..quick_profile() };
        let a = build_schedule(&p1, 42).unwrap();
        let b = build_schedule(&p8, 42).unwrap();
        assert_eq!(a, b, "schedule must not depend on client count");
        assert_eq!(issued_digest(&a), issued_digest(&b));
        let c = build_schedule(&p1, 43).unwrap();
        assert_ne!(issued_digest(&a), issued_digest(&c), "different seed, different ops");
    }

    #[test]
    fn open_loop_schedule_is_monotone_and_rate_sized() {
        let p = LoadProfile {
            arrival: LoadArrival::Poisson { rate_per_sec: 1000.0 },
            duration_ms: 100,
            ..quick_profile()
        };
        let s = build_schedule(&p, 7).unwrap();
        assert_eq!(s.len(), 100);
        for w in s.windows(2) {
            assert!(w[0].at_ms <= w[1].at_ms, "arrivals must be monotone");
        }
    }

    #[test]
    fn kv_target_oracle_matches_execution() {
        let t = KvLoadTarget::new();
        let mut sess = t.session();
        for op in [
            LoadOp::Get { key: 3 },
            LoadOp::Put { key: 9 },
            LoadOp::Scan { start: KEYSPACE - 4, len: 16 },
        ] {
            assert_eq!(sess.execute(&op), t.expected(&op), "{op:?}");
        }
    }

    #[test]
    fn sql_target_oracle_matches_execution() {
        let t = SqlLoadTarget::new();
        let mut sess = t.session();
        for op in [LoadOp::Get { key: 0 }, LoadOp::Put { key: 17 }, LoadOp::Scan { start: 5, len: 3 }] {
            assert_eq!(sess.execute(&op), t.expected(&op), "{op:?}");
        }
    }

    #[test]
    fn streaming_target_oracle_matches_execution() {
        let t = StreamingLoadTarget;
        let mut sess = t.session();
        for op in [
            LoadOp::Get { key: 2 },
            LoadOp::Put { key: 40 },
            LoadOp::Scan { start: KEYSPACE - 3, len: 9 },
        ] {
            let out = sess.execute(&op);
            assert_eq!(out, t.expected(&op), "{op:?}");
            assert!(out.starts_with("sessions"), "{out}");
        }
        // The synthetic streams really sessionize: multiple sessions.
        assert!(naive_sessions(2) > 1, "gap walk found {} sessions", naive_sessions(2));
    }

    #[test]
    fn closed_loop_completes_everything() {
        let trace = RunTrace::new();
        let p = quick_profile();
        let schedule = build_schedule(&p, 1).unwrap();
        let t = NativeLoadTarget;
        let r = run_target(&t, &p, &schedule, &trace).unwrap();
        assert_eq!(r.issued, schedule.len() as u64);
        assert_eq!(r.completed, r.issued, "closed loop sheds nothing");
        assert_eq!(r.shed, 0);
        assert!(r.conformance_passed);
        assert!(r.throughput_ops_per_sec > 0.0);
        assert!(r.p50_us <= r.p99_us && r.p99_us <= r.p999_us);
        // Session start/finish events for every client.
        let events = trace.events();
        let started = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::LoadSessionStarted { .. }))
            .count();
        assert_eq!(started, p.clients);
    }

    #[test]
    fn open_loop_conserves_issued_ops() {
        let trace = RunTrace::new();
        let p = LoadProfile {
            arrival: LoadArrival::Uniform { rate_per_sec: 2000.0 },
            duration_ms: 100,
            clients: 2,
            inflight: 2,
            ..LoadProfile::default()
        };
        let schedule = build_schedule(&p, 5).unwrap();
        let t = NativeLoadTarget;
        let r = run_target(&t, &p, &schedule, &trace).unwrap();
        assert_eq!(r.issued, r.completed + r.shed, "conservation");
        assert!(r.completed > 0);
        assert!(r.conformance_passed);
    }

    #[test]
    fn undersized_queue_sheds_without_blocking() {
        let trace = RunTrace::new();
        // One slow client, a queue of 1, arrivals far faster than the
        // engine: most ops must shed and the run must still finish
        // promptly (the pacer never blocks).
        struct SlowTarget;
        struct SlowSession;
        impl LoadSession for SlowSession {
            fn execute(&mut self, _op: &LoadOp) -> String {
                std::thread::sleep(Duration::from_millis(3));
                "slow".to_string()
            }
        }
        impl LoadTarget for SlowTarget {
            fn name(&self) -> &'static str {
                "slow"
            }
            fn session(&self) -> Box<dyn LoadSession + '_> {
                Box::new(SlowSession)
            }
            fn expected(&self, _op: &LoadOp) -> String {
                "slow".to_string()
            }
        }
        let p = LoadProfile {
            arrival: LoadArrival::Uniform { rate_per_sec: 5000.0 },
            duration_ms: 60,
            clients: 1,
            inflight: 1,
            queue_capacity: Some(1),
            ..LoadProfile::default()
        };
        let schedule = build_schedule(&p, 9).unwrap();
        let r = run_target(&SlowTarget, &p, &schedule, &trace).unwrap();
        assert!(r.shed > 0, "undersized queue must shed");
        assert_eq!(r.issued, r.completed + r.shed);
        let shed_events = trace
            .events()
            .iter()
            .filter(|e| matches!(e, TraceEvent::LoadShed { .. }))
            .count();
        assert_eq!(shed_events, 1);
    }

    #[test]
    fn closed_loop_chaos_conserves_and_is_deterministic() {
        let plan: FaultPlan = "error@exec:0.4".parse().unwrap();
        let drive = || {
            let trace = RunTrace::new();
            let p = quick_profile();
            let schedule = build_schedule(&p, 21).unwrap();
            let res = Resilience::new(
                Some(plan.clone()),
                RetryPolicy { max_retries: 1, base_delay_ms: 0, ..RetryPolicy::default() },
                21,
            );
            let health = HealthStore::default();
            run_target_resilient(&NativeLoadTarget, &p, &schedule, &res, &health, 21, &trace)
                .unwrap()
        };
        let a = drive();
        let b = drive();
        assert_eq!(a.completed + a.failed, a.issued, "closed loop sheds nothing");
        assert_eq!(a.shed, 0);
        assert!(a.failed > 0, "rate 0.4 with one retry must exhaust some ops");
        assert!(a.faults > a.failed, "every failure burned >= 2 faults");
        assert!(a.retries > 0);
        assert!(a.conformance_passed, "failed ops never reach the sample set");
        assert_eq!(
            (a.completed, a.failed, a.faults, a.retries, &a.digest),
            (b.completed, b.failed, b.faults, b.retries, &b.digest),
            "chaos counts must be a pure function of the seed"
        );
    }

    #[test]
    fn open_loop_chaos_breaker_sequence_is_deterministic() {
        let plan: FaultPlan = "error@exec:0.8".parse().unwrap();
        let p = LoadProfile {
            arrival: LoadArrival::Uniform { rate_per_sec: 2000.0 },
            duration_ms: 100,
            clients: 2,
            inflight: 2,
            ..LoadProfile::default()
        };
        let drive = || {
            let trace = RunTrace::new();
            let schedule = build_schedule(&p, 5).unwrap();
            let res = Resilience::new(
                Some(plan.clone()),
                RetryPolicy { base_delay_ms: 0, ..RetryPolicy::default() },
                5,
            );
            let health = HealthStore::default();
            let r = run_target_resilient(&NativeLoadTarget, &p, &schedule, &res, &health, 5, &trace)
                .unwrap();
            let breaker: Vec<String> = trace
                .events()
                .iter()
                .filter(|e| {
                    matches!(
                        e,
                        TraceEvent::BreakerOpened { .. }
                            | TraceEvent::BreakerHalfOpen { .. }
                            | TraceEvent::BreakerClosed { .. }
                            | TraceEvent::ProbeResult { .. }
                    )
                })
                .map(|e| format!("{e:?}"))
                .collect();
            (r, breaker)
        };
        let (a, breaker_a) = drive();
        let (b, breaker_b) = drive();
        assert_eq!(a.issued, a.completed + a.shed + a.failed, "conservation");
        assert!(a.breaker_trips >= 1, "planned failure rate 0.8 must trip the breaker");
        assert!(a.shed > 0, "an open breaker denies (sheds) arrivals");
        assert_eq!(a.breaker_trips, b.breaker_trips, "trips are seed-deterministic");
        assert_eq!(
            breaker_a, breaker_b,
            "the breaker event sequence is fed planned outcomes in schedule order \
             and must not depend on worker timing"
        );
    }

    #[test]
    fn brownout_engages_under_sustained_overload() {
        // The undersized-queue scenario with chaos active: arrivals far
        // outpace a slow single worker, so the queue stays full and the
        // pacer's pressure counter passes the grace threshold.
        struct SlowTarget;
        struct SlowSession;
        impl LoadSession for SlowSession {
            fn execute(&mut self, _op: &LoadOp) -> String {
                std::thread::sleep(Duration::from_millis(3));
                "slow".to_string()
            }
        }
        impl LoadTarget for SlowTarget {
            fn name(&self) -> &'static str {
                "slow"
            }
            fn session(&self) -> Box<dyn LoadSession + '_> {
                Box::new(SlowSession)
            }
            fn expected(&self, _op: &LoadOp) -> String {
                "slow".to_string()
            }
        }
        let trace = RunTrace::new();
        let p = LoadProfile {
            arrival: LoadArrival::Uniform { rate_per_sec: 5000.0 },
            duration_ms: 60,
            clients: 1,
            inflight: 1,
            queue_capacity: Some(1),
            ..LoadProfile::default()
        };
        let schedule = build_schedule(&p, 9).unwrap();
        let res = Resilience::new(
            Some("error@exec:0.01".parse().unwrap()),
            RetryPolicy::default(),
            9,
        );
        let health = HealthStore::default();
        let r = run_target_resilient(&SlowTarget, &p, &schedule, &res, &health, 9, &trace).unwrap();
        assert_eq!(r.issued, r.completed + r.shed + r.failed, "conservation");
        assert!(r.shed > 0, "overload must shed");
        let labels: Vec<&'static str> = trace.events().iter().map(|e| e.label()).collect();
        assert!(labels.contains(&"brownout_engaged"), "{labels:?}");
        assert!(labels.contains(&"brownout_released"), "{labels:?}");
    }

    #[test]
    fn run_load_covers_registry_targets() {
        let registry = EngineRegistry::with_builtins();
        let trace = RunTrace::new();
        let p = LoadProfile {
            engines: Some(vec!["native".into(), "kv".into()]),
            ..quick_profile()
        };
        let reports = run_load(&registry, &p, 11, &trace).unwrap();
        let names: Vec<&str> = reports.iter().map(|r| r.engine.as_str()).collect();
        assert_eq!(names, vec!["kv", "native"]);
        assert!(reports.iter().all(|r| r.conformance_passed));
        // One shared schedule: identical digests across engines.
        assert_eq!(reports[0].digest, reports[1].digest);
    }

    #[test]
    fn unknown_engine_filter_fails() {
        let registry = EngineRegistry::with_builtins();
        let p = LoadProfile { engines: Some(vec!["nosuch".into()]), ..quick_profile() };
        assert!(default_targets(&registry, &p).is_err());
    }
}
