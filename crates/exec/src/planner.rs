//! Cost-based routing across engines: the dispatch-side planner.
//!
//! [`Router`] scores every capable candidate the registry produces for a
//! request and re-orders each routing partition by predicted cost. The
//! explicit `system=` pin still wins as a *partition* — engines
//! implementing the requested system are ranked among themselves and all
//! of them outrank capability fallbacks — and ties keep registration
//! order, so the default first-capable behaviour (and every committed
//! golden) is unchanged unless a cheaper candidate actually exists.
//!
//! Three policies ([`RoutingPolicy`], the CLI's `--routing` flag):
//!
//! * `first-capable` — the historical behaviour: no scoring, the first
//!   registered capable engine in each partition wins.
//! * `cost` — rank by the static cost model, preferring a cost the
//!   engine reports for its own chosen plan (the SQL engine prices its
//!   memo-extracted plan) over the table's estimate.
//! * `adaptive` — like `cost`, but runtimes observed earlier in the run
//!   (EWMA per cost-model key, [`ObservedCosts`]) outrank both, so
//!   repeated cells migrate to the empirically fastest engine.

use crate::cost::{cost_key, CostModel, ObservedCosts, StaticCostModel};
use crate::engine::{Engine, ExecutionRequest, Routing};
use crate::health::HealthStore;
use std::str::FromStr;
use std::sync::Arc;

/// How the registry orders capable candidates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum RoutingPolicy {
    /// First registered capable engine wins (the historical behaviour).
    #[default]
    FirstCapable,
    /// Rank candidates by predicted cost (static table + engine-reported
    /// plan costs).
    Cost,
    /// Rank by cost, preferring observed runtimes over predictions.
    Adaptive,
}

impl FromStr for RoutingPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "first-capable" | "first_capable" => Ok(RoutingPolicy::FirstCapable),
            "cost" => Ok(RoutingPolicy::Cost),
            "adaptive" => Ok(RoutingPolicy::Adaptive),
            other => Err(format!(
                "unknown routing policy '{other}' (expected first-capable, cost or adaptive)"
            )),
        }
    }
}

impl std::fmt::Display for RoutingPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RoutingPolicy::FirstCapable => "first-capable",
            RoutingPolicy::Cost => "cost",
            RoutingPolicy::Adaptive => "adaptive",
        })
    }
}

/// Where a candidate's predicted cost came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostSource {
    /// EWMA of runtimes observed earlier in the run.
    Observed,
    /// The engine priced its own chosen plan.
    Engine,
    /// The static cost table.
    Static,
    /// No prediction available (ranked last in its partition).
    Unknown,
}

impl std::fmt::Display for CostSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CostSource::Observed => "observed",
            CostSource::Engine => "engine",
            CostSource::Static => "static",
            CostSource::Unknown => "unknown",
        })
    }
}

/// A candidate's predicted cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Score {
    /// Predicted execution cost in estimated microseconds
    /// ([`f64::INFINITY`] when no source had a prediction).
    pub predicted_micros: f64,
    /// Which predictor produced the estimate.
    pub source: CostSource,
}

impl Score {
    fn unknown() -> Self {
        Score { predicted_micros: f64::INFINITY, source: CostSource::Unknown }
    }
}

/// One scored candidate in the router's chosen order.
pub struct Ranked<'e> {
    /// The candidate engine.
    pub engine: &'e dyn Engine,
    /// Its routing outcome (name + explicit/fallback).
    pub routing: Routing,
    /// Its predicted cost under the active policy.
    pub score: Score,
}

/// Scores candidates and re-orders routing partitions by predicted cost.
#[derive(Debug)]
pub struct Router {
    model: StaticCostModel,
    observed: Arc<ObservedCosts>,
    health: Arc<HealthStore>,
}

impl Default for Router {
    fn default() -> Self {
        Self::new()
    }
}

impl Router {
    /// A router over the builtin static cost table with a fresh observed
    /// store.
    pub fn new() -> Self {
        Router {
            model: StaticCostModel::with_builtins(),
            observed: Arc::new(ObservedCosts::new()),
            health: Arc::new(HealthStore::default()),
        }
    }

    /// Share an observed-cost store (e.g. across all cells of a matrix
    /// sweep) instead of this router's own.
    pub fn set_observed(&mut self, store: Arc<ObservedCosts>) {
        self.observed = store;
    }

    /// The observed-runtime store predictions are drawn from.
    pub fn observed(&self) -> Arc<ObservedCosts> {
        Arc::clone(&self.observed)
    }

    /// Share a health store (per-engine circuit breakers) instead of
    /// this router's own.
    pub fn set_health(&mut self, store: Arc<HealthStore>) {
        self.health = store;
    }

    /// The per-engine breaker store [`rank`](Router::rank) demotes open
    /// engines with and resilient dispatch records outcomes into.
    pub fn health(&self) -> Arc<HealthStore> {
        Arc::clone(&self.health)
    }

    /// The static cost table.
    pub fn model(&self) -> &StaticCostModel {
        &self.model
    }

    /// Predict what `engine` costs for `request` under `policy`.
    ///
    /// Source preference: observed EWMA (adaptive only), then the
    /// engine's own plan cost, then the static table summed over the
    /// request's data kinds.
    pub fn score(
        &self,
        engine: &dyn Engine,
        request: &ExecutionRequest<'_>,
        policy: RoutingPolicy,
    ) -> Score {
        if policy == RoutingPolicy::FirstCapable {
            return Score::unknown();
        }
        let profile = request.profile();
        if policy == RoutingPolicy::Adaptive {
            let key = cost_key(engine.name(), profile.class, &profile.data_kinds, request.scale);
            if let Some(e) = self.observed.get(&key) {
                return Score { predicted_micros: e.ewma_micros, source: CostSource::Observed };
            }
        }
        if let Some(c) = engine.estimate_cost(request) {
            return Score { predicted_micros: c, source: CostSource::Engine };
        }
        let mut total = 0.0;
        let mut any = false;
        for kind in &profile.data_kinds {
            if let Some(c) = self.model.predict(engine.name(), profile.class, *kind, request.scale)
            {
                total += c;
                any = true;
            }
        }
        if any {
            Score { predicted_micros: total, source: CostSource::Static }
        } else {
            Score::unknown()
        }
    }

    /// Order candidates for dispatch: within each routing partition
    /// (explicit first, then fallback) rank by predicted cost, keeping
    /// registration order on ties. Under `first-capable` the input order
    /// is returned untouched and nothing is scored.
    ///
    /// Health-aware failover ordering runs last, under every policy:
    /// candidates whose circuit breaker is fully open are demoted below
    /// all healthier candidates (a stable partition, so relative order
    /// inside each health class is preserved — even below an explicit
    /// `system=` pin, because a pinned engine that cannot serve is worse
    /// than any healthy fallback). When no breaker is open — every
    /// no-fault run — the demotion is the identity and the order is
    /// byte-identical to the health-blind ranking.
    pub fn rank<'e>(
        &self,
        candidates: Vec<(&'e dyn Engine, Routing)>,
        request: &ExecutionRequest<'_>,
    ) -> Vec<Ranked<'e>> {
        let policy = request.routing;
        let mut ranked: Vec<Ranked<'e>> = candidates
            .into_iter()
            .map(|(engine, routing)| {
                let score = self.score(engine, request, policy);
                Ranked { engine, routing, score }
            })
            .collect();
        if policy != RoutingPolicy::FirstCapable {
            // Stable sort: the explicit partition stays ahead of the
            // fallback partition, and registration order breaks ties.
            ranked.sort_by(|a, b| {
                b.routing
                    .explicit
                    .cmp(&a.routing.explicit)
                    .then(a.score.predicted_micros.total_cmp(&b.score.predicted_micros))
            });
        }
        if ranked.iter().any(|r| self.health.is_open(&r.routing.engine)) {
            let (healthy, open): (Vec<_>, Vec<_>) = ranked
                .into_iter()
                .partition(|r| !self.health.is_open(&r.routing.engine));
            ranked = healthy.into_iter().chain(open).collect();
        }
        ranked
    }

    /// Fold an observed runtime for `engine` into the store under the
    /// request's cost-model key; the smoothing factor comes from the
    /// `routing.ewma_alpha` system-config parameter when set. Returns the
    /// key and the updated entry.
    pub fn observe(
        &self,
        engine: &str,
        request: &ExecutionRequest<'_>,
        micros: f64,
    ) -> (String, crate::cost::ObservedEntry) {
        let profile = request.profile();
        let key = cost_key(engine, profile.class, &profile.data_kinds, request.scale);
        // The registry validates the configured alpha before dispatching,
        // so an out-of-range value never reaches the EWMA; the defensive
        // fallback only covers direct callers that skipped dispatch.
        let alpha = request
            .config
            .routing_ewma_alpha()
            .unwrap_or(crate::cost::DEFAULT_EWMA_ALPHA);
        let entry = self.observed.observe(&key, micros, alpha);
        (key, entry)
    }
}
