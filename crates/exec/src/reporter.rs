//! Result reporting: aligned text and Markdown tables.
//!
//! The reporter renders the evaluation tables the harnesses regenerate
//! (Table 1, Table 2, and the per-figure series) as plain text for the
//! terminal and Markdown for EXPERIMENTS.md.

/// A simple column-aligned table builder.
#[derive(Debug, Clone, Default)]
pub struct TableReporter {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableReporter {
    /// A reporter with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row; short rows are padded with empty cells.
    pub fn add_row(&mut self, cells: &[String]) {
        let mut row: Vec<String> = cells.to_vec();
        row.resize(self.header.len(), String::new());
        row.truncate(self.header.len());
        self.rows.push(row);
    }

    /// Convenience for `&str` cells.
    pub fn add_row_strs(&mut self, cells: &[&str]) {
        self.add_row(&cells.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }

    /// Render as an aligned plain-text table.
    pub fn to_text(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("== {} ==\n", self.title));
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = w[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(w.iter().sum::<usize>() + 2 * (w.len().saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Render as a Markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("### {}\n\n", self.title));
        }
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            "---|".repeat(self.header.len())
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

/// Render a [`RunTrace`](crate::trace::RunTrace) as an aligned text table:
/// one row per event, in record order, with the event-specific fields
/// flattened into a detail column.
pub fn render_trace(trace: &crate::trace::RunTrace) -> String {
    use crate::trace::TraceEvent;
    let mut t = TableReporter::new("Run trace", &["event", "subject", "detail"]);
    for e in trace.events() {
        let (subject, detail) = match &e {
            TraceEvent::PhaseStarted { phase } => (phase.clone(), String::new()),
            TraceEvent::PhaseFinished { phase, micros } => {
                (phase.clone(), format!("{micros} us"))
            }
            TraceEvent::DatasetGenerated { name, kind, items, bytes, workers, micros } => (
                name.clone(),
                format!("{kind}, {items} items, {bytes} bytes, {workers} workers, {micros} us"),
            ),
            TraceEvent::EngineDispatched {
                prescription,
                engine,
                requested_system,
                explicit,
                candidates,
            } => (
                prescription.clone(),
                format!(
                    "-> {engine} ({} for system {requested_system}; candidates: {})",
                    if *explicit { "explicit" } else { "capability fallback" },
                    candidates.join(", ")
                ),
            ),
            TraceEvent::OperationExecuted { engine, op, rows_out, micros } => {
                (format!("{engine}/{op}"), format!("{rows_out} rows, {micros} us"))
            }
            TraceEvent::FaultInjected { site, kind, latency_ms } => (
                site.clone(),
                if *latency_ms > 0 {
                    format!("{kind} (+{latency_ms} ms)")
                } else {
                    kind.clone()
                },
            ),
            TraceEvent::OperationRetried { site, attempt, delay_ms, error } => (
                site.clone(),
                format!("attempt {attempt} failed ({error}); backoff {delay_ms} ms"),
            ),
            TraceEvent::EngineFailedOver {
                prescription,
                from,
                to,
                attempts,
                engine_attempts,
                error,
            } => (
                prescription.clone(),
                format!(
                    "{from} -> {to} after {attempts} attempts ({engine_attempts} on {from}): {error}"
                ),
            ),
            TraceEvent::DeadlineExceeded { site, elapsed_ms, deadline_ms } => (
                site.clone(),
                format!("{elapsed_ms} ms elapsed > {deadline_ms} ms deadline"),
            ),
            TraceEvent::CheckpointWritten { key, digest } => {
                (key.clone(), format!("digest {digest}"))
            }
            TraceEvent::CellResumed { key, digest, reverified } => (
                key.clone(),
                format!(
                    "digest {digest} from journal{}",
                    if *reverified { " (re-verified vs golden)" } else { "" }
                ),
            ),
            TraceEvent::RunResumed { journal, completed } => (
                journal.clone(),
                format!("{completed} completed cells honoured"),
            ),
            TraceEvent::LoadSessionStarted { engine, session, lanes } => (
                format!("{engine}#{session}"),
                format!("{lanes} in-flight lanes"),
            ),
            TraceEvent::LoadSessionFinished { engine, session, completed, micros } => (
                format!("{engine}#{session}"),
                format!("{completed} ops, {micros} us"),
            ),
            TraceEvent::LoadShed { engine, count } => {
                (engine.clone(), format!("{count} ops shed at the admission queue"))
            }
            TraceEvent::RoutingDecision {
                prescription,
                policy,
                engine,
                predicted_micros,
                source,
                rejected,
            } => (
                prescription.clone(),
                format!(
                    "-> {engine} @{predicted_micros:.1} us [{source}] ({policy}){}",
                    if rejected.is_empty() {
                        String::new()
                    } else {
                        format!("; rejected: {}", rejected.join(", "))
                    }
                ),
            ),
            TraceEvent::CostObserved { prescription, engine, key, micros, ewma_micros, samples } => (
                format!("{prescription}@{engine}"),
                format!("{micros} us -> ewma {ewma_micros:.1} us over {samples} sample(s) [{key}]"),
            ),
            TraceEvent::BreakerOpened { engine, failure_rate } => (
                engine.clone(),
                format!("tripped at {:.0}% windowed failure rate", failure_rate * 100.0),
            ),
            TraceEvent::BreakerHalfOpen { engine } => {
                (engine.clone(), "cooldown elapsed; admitting probes".to_string())
            }
            TraceEvent::BreakerClosed { engine } => {
                (engine.clone(), "probes succeeded; breaker closed".to_string())
            }
            TraceEvent::ProbeResult { engine, ok } => (
                engine.clone(),
                format!("probe {}", if *ok { "succeeded" } else { "failed" }),
            ),
            TraceEvent::BrownoutEngaged { engine, pressure, shed_fraction } => (
                engine.clone(),
                format!(
                    "brownout engaged at pressure {pressure}: shedding {:.0}% of arrivals",
                    shed_fraction * 100.0
                ),
            ),
            TraceEvent::BrownoutReleased { engine, shed } => {
                (engine.clone(), format!("brownout released after shedding {shed} arrival(s)"))
            }
            TraceEvent::ConformanceChecked { prescription, engine, check, payload, passed, detail } => (
                format!("{prescription}@{engine}"),
                format!(
                    "{check} [{payload}] {}{}{detail}",
                    if *passed { "PASS" } else { "FAIL" },
                    if detail.is_empty() { "" } else { ": " },
                ),
            ),
        };
        t.add_row(&[e.label().to_string(), subject, detail]);
    }
    t.to_text()
}

/// Render a [`RecoverySummary`](crate::analyzer::RecoverySummary) as an
/// aligned text table, one metric per row. Returns a one-line note when
/// the run saw no recovery activity.
pub fn render_resilience(summary: &crate::analyzer::RecoverySummary) -> String {
    if summary.is_quiet() {
        return "== Resilience ==\nno faults injected, no retries, no failovers\n".to_string();
    }
    let mut t = TableReporter::new("Resilience", &["metric", "value"]);
    t.add_row(&["faults injected".into(), summary.faults_injected().to_string()]);
    for (kind, n) in &summary.faults_by_kind {
        t.add_row(&[format!("  {kind}"), n.to_string()]);
    }
    t.add_row(&["retries".into(), summary.retries.to_string()]);
    t.add_row(&["failovers".into(), summary.failovers.to_string()]);
    t.add_row(&["deadline hits".into(), summary.deadline_hits.to_string()]);
    if summary.checkpoints_written > 0 || summary.cells_resumed > 0 {
        t.add_row(&["checkpoints written".into(), summary.checkpoints_written.to_string()]);
        t.add_row(&["cells resumed".into(), summary.cells_resumed.to_string()]);
    }
    t.add_row(&["added latency (ms)".into(), summary.added_latency_ms.to_string()]);
    t.add_row(&[
        "degraded ops".into(),
        format!(
            "{}/{} ({:.1}%)",
            summary.attempts_per_site.len(),
            summary.total_ops,
            summary.degraded_pct() * 100.0
        ),
    ]);
    for (site, attempts) in &summary.attempts_per_site {
        t.add_row(&[format!("  {site}"), format!("{attempts} attempts")]);
    }
    t.to_text()
}

/// Render a [`ConformanceSummary`](crate::analyzer::ConformanceSummary)
/// as an aligned text table. Returns a one-line note when no checks ran.
pub fn render_conformance(summary: &crate::analyzer::ConformanceSummary) -> String {
    if summary.is_empty() {
        return "== Conformance ==\nno conformance checks ran\n".to_string();
    }
    let mut t = TableReporter::new("Conformance", &["metric", "value"]);
    t.add_row(&[
        "checks".into(),
        format!("{}/{} passed", summary.passes, summary.checks),
    ]);
    for (kind, (pass, fail)) in &summary.by_check {
        t.add_row(&[format!("  {kind}"), format!("{pass} passed, {fail} failed")]);
    }
    t.add_row(&[
        "verdict".into(),
        if summary.all_passed() { "CONFORMANT".into() } else { "DIVERGED".into() },
    ]);
    for (prescription, engine, check, detail) in &summary.failures {
        t.add_row(&[format!("  {prescription}@{engine}"), format!("{check}: {detail}")]);
    }
    t.to_text()
}

/// Render a [`LoadSummary`](crate::analyzer::LoadSummary) as an aligned
/// text table: one row per engine with saturation throughput and
/// p50/p99/p999 tail latency. Returns a one-line note when no load ran.
pub fn render_load(summary: &crate::analyzer::LoadSummary) -> String {
    if summary.is_empty() {
        return "== Load ==\nno load was driven\n".to_string();
    }
    let mut t = TableReporter::new(
        "Load",
        &[
            "engine", "clients", "inflight", "issued", "completed", "shed", "failed", "ops/s",
            "p50 us", "p99 us", "p999 us", "conformance",
        ],
    );
    for r in &summary.reports {
        t.add_row(&[
            r.engine.clone(),
            r.clients.to_string(),
            r.inflight.to_string(),
            r.issued.to_string(),
            r.completed.to_string(),
            r.shed.to_string(),
            r.failed.to_string(),
            fmt_num(r.throughput_ops_per_sec),
            fmt_num(r.p50_us),
            fmt_num(r.p99_us),
            fmt_num(r.p999_us),
            if r.conformance_passed { "pass".into() } else { "FAIL".into() },
        ]);
    }
    let mut out = t.to_text();
    out.push_str(&format!(
        "sessions: {} started, {} finished; shed events: {}; verdict: {}\n",
        summary.sessions_started,
        summary.sessions_finished,
        summary.shed_events,
        if summary.all_conformant() { "CONFORMANT" } else { "DIVERGED" },
    ));
    // Chaos accounting appears only when the drive actually saw faults,
    // retries, failures or breaker trips — clean drives keep the
    // historical footer untouched.
    let chaos: u64 = summary
        .reports
        .iter()
        .map(|r| r.failed + r.faults + r.retries + r.breaker_trips)
        .sum();
    if chaos > 0 {
        for r in &summary.reports {
            out.push_str(&format!(
                "chaos[{}]: {} failed, {} faults, {} retries, {} breaker trip(s)\n",
                r.engine, r.failed, r.faults, r.retries, r.breaker_trips,
            ));
        }
    }
    out
}

/// Render a [`HealthSummary`](crate::analyzer::HealthSummary) as an
/// aligned text table: per engine the breaker trips, recoveries, probe
/// outcomes, and the state the breaker quiesced in. Returns a one-line
/// note when no breaker ever left the closed state.
pub fn render_health(summary: &crate::analyzer::HealthSummary) -> String {
    if summary.is_empty() {
        return "== Health ==\nall circuit breakers stayed closed\n".to_string();
    }
    let mut t = TableReporter::new(
        "Health",
        &["engine", "trips", "recoveries", "probes", "probe fails", "final state"],
    );
    for e in &summary.engines {
        t.add_row(&[
            e.engine.clone(),
            e.trips.to_string(),
            e.recoveries.to_string(),
            e.probes.to_string(),
            e.probe_failures.to_string(),
            e.final_state.clone(),
        ]);
    }
    let mut out = t.to_text();
    out.push_str(&format!(
        "health: {} trip(s) across {} engine(s); at quiesce {}\n",
        summary.total_trips(),
        summary.engines.len(),
        if summary.all_closed() {
            "all breakers closed".to_string()
        } else {
            format!("open breakers: {}", summary.not_closed().join(", "))
        },
    ));
    out
}

/// Render a [`RoutingSummary`](crate::analyzer::RoutingSummary) as an
/// aligned text table: decisions per engine and prediction source, the
/// prediction error against observed runtimes, and engine migrations.
/// Returns a one-line note when no routing decisions were recorded (the
/// default first-capable path).
pub fn render_routing(summary: &crate::analyzer::RoutingSummary) -> String {
    if summary.is_empty() {
        return "== Routing ==\nno routing decisions recorded (first-capable)\n".to_string();
    }
    let mut t = TableReporter::new("Routing", &["metric", "value"]);
    t.add_row(&["decisions".into(), summary.decisions.to_string()]);
    for (engine, n) in &summary.by_engine {
        t.add_row(&[format!("  -> {engine}"), n.to_string()]);
    }
    for (source, n) in &summary.by_source {
        t.add_row(&[format!("  from {source}"), n.to_string()]);
    }
    t.add_row(&["observations".into(), summary.observations.to_string()]);
    if !summary.pairs.is_empty() {
        t.add_row(&[
            "prediction error".into(),
            format!(
                "{}x geomean over {} pair(s)",
                fmt_num(summary.mean_error_ratio()),
                summary.pairs.len()
            ),
        ]);
    }
    t.add_row(&["migrations".into(), summary.migrations.len().to_string()]);
    for (prescription, from, to) in &summary.migrations {
        t.add_row(&[format!("  {prescription}"), format!("{from} -> {to}")]);
    }
    let mut out = t.to_text();
    out.push_str(&format!(
        "routing: {} decision(s), {} predicted from observed costs\n",
        summary.decisions,
        summary.from_observed(),
    ));
    out
}

/// Render a [`BenchComparison`](crate::analyzer::BenchComparison) as an
/// aligned text table — per hot path the baseline and new 95% confidence
/// intervals on throughput, the relative change, and the verdict — plus
/// a one-line machine-greppable summary.
pub fn render_bench_comparison(c: &crate::analyzer::BenchComparison) -> String {
    use crate::analyzer::BenchVerdict;
    let fmt_ci = |ci: &Option<crate::analyzer::PathCi>| {
        ci.as_ref().map_or_else(
            || "-".to_string(),
            |p| format!("{} [{}, {}]", fmt_num(p.mean), fmt_num(p.ci_lo), fmt_num(p.ci_hi)),
        )
    };
    let mut t = TableReporter::new(
        "Bench comparison (ops/s, 95% CI)",
        &["path", "old", "new", "change", "verdict", "gate"],
    );
    for r in &c.rows {
        let change = if r.old.is_some() && r.new.is_some() {
            format!("{:+.1}%", r.change * 100.0)
        } else {
            "-".to_string()
        };
        t.add_row(&[
            r.path.clone(),
            fmt_ci(&r.old),
            fmt_ci(&r.new),
            change,
            r.verdict.to_string(),
            if r.gated { "gated".into() } else { "-".into() },
        ]);
    }
    let mut out = t.to_text();
    out.push_str(&format!(
        "bench: {} path(s) compared, {} improved, {} regressed, {} unchanged \
         (significance = non-overlapping 95% CIs, min effect {:.0}%)\n",
        c.rows.len(),
        c.count(BenchVerdict::Improved),
        c.count(BenchVerdict::Regressed),
        c.count(BenchVerdict::Unchanged),
        c.min_effect * 100.0,
    ));
    out
}

/// Format a float compactly for table cells.
pub fn fmt_num(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1e6 {
        format!("{:.2e}", x)
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TableReporter {
        let mut t = TableReporter::new("Demo", &["name", "value"]);
        t.add_row_strs(&["alpha", "1"]);
        t.add_row(&["beta-long-name".into(), "2".into()]);
        t
    }

    #[test]
    fn trace_renders_one_row_per_event() {
        use crate::trace::RunTrace;
        let trace = RunTrace::new();
        trace.phase_started("execution");
        trace.operation("sql", "sort", 42, std::time::Duration::from_micros(5));
        let text = render_trace(&trace);
        assert!(text.contains("== Run trace =="));
        assert!(text.contains("phase_started"));
        assert!(text.contains("sql/sort"));
        assert!(text.contains("42 rows"));
    }

    #[test]
    fn trace_renders_recovery_events() {
        use crate::trace::{RunTrace, TraceEvent};
        let trace = RunTrace::new();
        trace.record(TraceEvent::FaultInjected {
            site: "exec/sql:micro/sort".into(),
            kind: "latency".into(),
            latency_ms: 25,
        });
        trace.record(TraceEvent::OperationRetried {
            site: "exec/sql:micro/sort".into(),
            attempt: 1,
            delay_ms: 10,
            error: "injected".into(),
        });
        trace.record(TraceEvent::EngineFailedOver {
            prescription: "micro/sort".into(),
            from: "sql".into(),
            to: "mapreduce".into(),
            attempts: 3,
            engine_attempts: 2,
            error: "injected engine fault".into(),
        });
        trace.record(TraceEvent::DeadlineExceeded {
            site: "datagen/events".into(),
            elapsed_ms: 70,
            deadline_ms: 50,
        });
        let text = render_trace(&trace);
        assert!(text.contains("fault_injected"));
        assert!(text.contains("latency (+25 ms)"));
        assert!(text.contains("backoff 10 ms"));
        assert!(text.contains(
            "sql -> mapreduce after 3 attempts (2 on sql): injected engine fault"
        ));
        assert!(text.contains("70 ms elapsed > 50 ms deadline"));
    }

    #[test]
    fn trace_renders_breaker_events() {
        use crate::trace::{RunTrace, TraceEvent};
        let trace = RunTrace::new();
        trace.record(TraceEvent::BreakerOpened { engine: "kv".into(), failure_rate: 0.75 });
        trace.record(TraceEvent::BreakerHalfOpen { engine: "kv".into() });
        trace.record(TraceEvent::ProbeResult { engine: "kv".into(), ok: false });
        trace.record(TraceEvent::ProbeResult { engine: "kv".into(), ok: true });
        trace.record(TraceEvent::BreakerClosed { engine: "kv".into() });
        let text = render_trace(&trace);
        assert!(text.contains("breaker_opened"));
        assert!(text.contains("tripped at 75% windowed failure rate"));
        assert!(text.contains("cooldown elapsed; admitting probes"));
        assert!(text.contains("probe failed"));
        assert!(text.contains("probe succeeded"));
        assert!(text.contains("probes succeeded; breaker closed"));
    }

    #[test]
    fn resilience_report_quiet_and_active() {
        use crate::analyzer::RecoverySummary;
        use crate::trace::TraceEvent;
        let quiet = RecoverySummary::default();
        assert!(render_resilience(&quiet).contains("no faults injected"));

        let s = RecoverySummary::from_events(&[
            TraceEvent::EngineDispatched {
                prescription: "micro/sort".into(),
                engine: "sql".into(),
                requested_system: "sql".into(),
                explicit: true,
                candidates: vec!["sql".into()],
            },
            TraceEvent::FaultInjected {
                site: "exec/sql:micro/sort".into(),
                kind: "error".into(),
                latency_ms: 0,
            },
            TraceEvent::OperationRetried {
                site: "exec/sql:micro/sort".into(),
                attempt: 1,
                delay_ms: 10,
                error: "injected".into(),
            },
        ]);
        let text = render_resilience(&s);
        assert!(text.contains("== Resilience =="));
        assert!(text.contains("faults injected"));
        assert!(text.contains("degraded ops"));
        assert!(text.contains("1/1 (100.0%)"));
        assert!(text.contains("2 attempts"));
    }

    #[test]
    fn conformance_report_quiet_and_active() {
        use crate::analyzer::ConformanceSummary;
        use crate::trace::TraceEvent;
        let quiet = ConformanceSummary::default();
        assert!(render_conformance(&quiet).contains("no conformance checks ran"));

        let s = ConformanceSummary::from_events(&[
            TraceEvent::ConformanceChecked {
                prescription: "micro/sort".into(),
                engine: "sql".into(),
                check: "oracle".into(),
                payload: "rowset".into(),
                passed: true,
                detail: String::new(),
            },
            TraceEvent::ConformanceChecked {
                prescription: "micro/sort".into(),
                engine: "mapreduce".into(),
                check: "golden".into(),
                payload: "rowset".into(),
                passed: false,
                detail: "digest differs".into(),
            },
        ]);
        let text = render_conformance(&s);
        assert!(text.contains("== Conformance =="));
        assert!(text.contains("1/2 passed"));
        assert!(text.contains("DIVERGED"));
        assert!(text.contains("micro/sort@mapreduce"));
    }

    #[test]
    fn load_report_quiet_and_active() {
        use crate::analyzer::LoadSummary;
        use crate::trace::TraceEvent;
        let quiet = LoadSummary::default();
        assert!(render_load(&quiet).contains("no load was driven"));

        let report = crate::loadgen::LoadReport {
            engine: "kv".into(),
            clients: 4,
            inflight: 8,
            issued: 1000,
            completed: 950,
            shed: 50,
            failed: 0,
            faults: 0,
            retries: 0,
            breaker_trips: 0,
            duration_secs: 2.0,
            throughput_ops_per_sec: 475.0,
            p50_us: 12.0,
            p99_us: 90.0,
            p999_us: 400.0,
            mean_queue_delay_ms: 1.5,
            sampled: 63,
            conformance_passed: true,
            digest: "0xfeed".into(),
        };
        let s = LoadSummary::new(
            vec![report],
            &[TraceEvent::LoadShed { engine: "kv".into(), count: 50 }],
        );
        let text = render_load(&s);
        assert!(text.contains("== Load =="));
        assert!(text.contains("kv"));
        assert!(text.contains("950"));
        assert!(text.contains("p999 us"));
        assert!(text.contains("CONFORMANT"));
        assert!(text.contains("shed events: 1"));
        // A clean drive keeps the historical footer: no chaos accounting.
        assert!(!text.contains("chaos["));
    }

    #[test]
    fn load_report_with_chaos_appends_accounting() {
        use crate::analyzer::LoadSummary;
        let report = crate::loadgen::LoadReport {
            engine: "kv".into(),
            clients: 4,
            inflight: 8,
            issued: 1000,
            completed: 930,
            shed: 50,
            failed: 20,
            faults: 37,
            retries: 17,
            breaker_trips: 2,
            duration_secs: 2.0,
            throughput_ops_per_sec: 465.0,
            p50_us: 12.0,
            p99_us: 90.0,
            p999_us: 400.0,
            mean_queue_delay_ms: 1.5,
            sampled: 63,
            conformance_passed: true,
            digest: "0xfeed".into(),
        };
        let text = render_load(&LoadSummary::new(vec![report], &[]));
        assert!(text.contains("failed"));
        assert!(
            text.contains("chaos[kv]: 20 failed, 37 faults, 17 retries, 2 breaker trip(s)"),
            "{text}"
        );
    }

    #[test]
    fn health_report_quiet_and_active() {
        use crate::analyzer::HealthSummary;
        use crate::trace::TraceEvent;
        let quiet = HealthSummary::default();
        assert!(render_health(&quiet).contains("all circuit breakers stayed closed"));

        let s = HealthSummary::from_events(&[
            TraceEvent::BreakerOpened { engine: "kv".into(), failure_rate: 0.6 },
            TraceEvent::BreakerHalfOpen { engine: "kv".into() },
            TraceEvent::ProbeResult { engine: "kv".into(), ok: false },
            TraceEvent::BreakerOpened { engine: "kv".into(), failure_rate: 0.6 },
            TraceEvent::BreakerHalfOpen { engine: "kv".into() },
            TraceEvent::ProbeResult { engine: "kv".into(), ok: true },
            TraceEvent::ProbeResult { engine: "kv".into(), ok: true },
            TraceEvent::BreakerClosed { engine: "kv".into() },
        ]);
        let text = render_health(&s);
        assert!(text.contains("== Health =="));
        assert!(text.contains("kv"));
        assert!(text.contains("final state"));
        assert!(text.contains("at quiesce all breakers closed"), "{text}");

        let open = HealthSummary::from_events(&[TraceEvent::BreakerOpened {
            engine: "sql".into(),
            failure_rate: 1.0,
        }]);
        let text = render_health(&open);
        assert!(text.contains("open breakers: sql"), "{text}");
    }

    #[test]
    fn trace_renders_load_events() {
        use crate::trace::{RunTrace, TraceEvent};
        let trace = RunTrace::new();
        trace.record(TraceEvent::LoadSessionStarted { engine: "kv".into(), session: 2, lanes: 8 });
        trace.record(TraceEvent::LoadSessionFinished {
            engine: "kv".into(),
            session: 2,
            completed: 321,
            micros: 5000,
        });
        trace.record(TraceEvent::LoadShed { engine: "kv".into(), count: 9 });
        let text = render_trace(&trace);
        assert!(text.contains("load_session_started"));
        assert!(text.contains("kv#2"));
        assert!(text.contains("8 in-flight lanes"));
        assert!(text.contains("321 ops"));
        assert!(text.contains("9 ops shed"));
    }

    #[test]
    fn routing_report_quiet_and_active() {
        use crate::analyzer::RoutingSummary;
        use crate::trace::TraceEvent;
        let quiet = RoutingSummary::default();
        assert!(render_routing(&quiet).contains("no routing decisions recorded"));

        let s = RoutingSummary::from_events(&[
            TraceEvent::RoutingDecision {
                prescription: "relational/join".into(),
                policy: "adaptive".into(),
                engine: "sql".into(),
                predicted_micros: 400.0,
                source: "observed".into(),
                rejected: vec!["mapreduce@900.0us[static]".into()],
            },
            TraceEvent::CostObserved {
                prescription: "relational/join".into(),
                engine: "sql".into(),
                key: "sql/relational/table/s2".into(),
                micros: 800,
                ewma_micros: 600.0,
                samples: 2,
            },
        ]);
        let text = render_routing(&s);
        assert!(text.contains("== Routing =="));
        assert!(text.contains("-> sql"));
        assert!(text.contains("from observed"));
        assert!(text.contains("prediction error"));
        assert!(text.contains("routing: 1 decision(s), 1 predicted from observed costs"));
    }

    #[test]
    fn trace_renders_routing_events() {
        use crate::trace::{RunTrace, TraceEvent};
        let trace = RunTrace::new();
        trace.record(TraceEvent::RoutingDecision {
            prescription: "relational/join".into(),
            policy: "cost".into(),
            engine: "sql".into(),
            predicted_micros: 410.5,
            source: "engine".into(),
            rejected: vec!["mapreduce@850.0us[static]".into()],
        });
        trace.record(TraceEvent::CostObserved {
            prescription: "relational/join".into(),
            engine: "sql".into(),
            key: "sql/relational/table/s2".into(),
            micros: 390,
            ewma_micros: 402.3,
            samples: 2,
        });
        let text = render_trace(&trace);
        assert!(text.contains("routing_decision"));
        assert!(text.contains("-> sql @410.5 us [engine] (cost)"));
        assert!(text.contains("rejected: mapreduce@850.0us[static]"));
        assert!(text.contains("cost_observed"));
        assert!(text.contains("ewma 402.3 us over 2 sample(s)"));
    }

    #[test]
    fn text_render_aligns_columns() {
        let text = sample().to_text();
        assert!(text.contains("== Demo =="));
        let lines: Vec<&str> = text.lines().collect();
        // Header and both rows present.
        assert!(lines[1].starts_with("name"));
        assert!(text.contains("alpha"));
        assert!(text.contains("beta-long-name"));
        // "value" column starts at the same offset in header and rows.
        let col = lines[1].find("value").unwrap();
        assert_eq!(&lines[3][col..col + 1], "1");
    }

    #[test]
    fn markdown_render_has_separator() {
        let md = sample().to_markdown();
        assert!(md.contains("| name | value |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| alpha | 1 |"));
    }

    #[test]
    fn rows_are_padded_and_truncated() {
        let mut t = TableReporter::new("", &["a", "b"]);
        t.add_row(&["only".into()]);
        t.add_row(&["x".into(), "y".into(), "extra".into()]);
        assert_eq!(t.len(), 2);
        let text = t.to_text();
        assert!(!text.contains("extra"));
    }

    #[test]
    fn number_formatting_tiers() {
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(0.1234), "0.1234");
        assert_eq!(fmt_num(3.17159), "3.17");
        assert_eq!(fmt_num(250.4), "250");
        assert_eq!(fmt_num(2_500_000.0), "2.50e6");
    }

    #[test]
    fn bench_comparison_renders_verdicts_and_summary() {
        use crate::analyzer::{BenchComparison, PathCi};
        let old = vec![
            PathCi { path: "fast".into(), mean: 1000.0, ci_lo: 990.0, ci_hi: 1010.0, samples: 5 },
            PathCi { path: "slow".into(), mean: 1000.0, ci_lo: 990.0, ci_hi: 1010.0, samples: 5 },
        ];
        let new = vec![
            PathCi { path: "fast".into(), mean: 2000.0, ci_lo: 1990.0, ci_hi: 2010.0, samples: 5 },
            PathCi { path: "slow".into(), mean: 400.0, ci_lo: 390.0, ci_hi: 410.0, samples: 5 },
        ];
        let text = render_bench_comparison(&BenchComparison::of(&old, &new, 0.25, &[]));
        assert!(text.contains("improved"), "{text}");
        assert!(text.contains("REGRESSED"), "{text}");
        assert!(text.contains("2 path(s) compared, 1 improved, 1 regressed, 0 unchanged"));
        assert!(text.contains("min effect 25%"));
    }
}
