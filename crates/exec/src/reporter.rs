//! Result reporting: aligned text and Markdown tables.
//!
//! The reporter renders the evaluation tables the harnesses regenerate
//! (Table 1, Table 2, and the per-figure series) as plain text for the
//! terminal and Markdown for EXPERIMENTS.md.

/// A simple column-aligned table builder.
#[derive(Debug, Clone, Default)]
pub struct TableReporter {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableReporter {
    /// A reporter with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row; short rows are padded with empty cells.
    pub fn add_row(&mut self, cells: &[String]) {
        let mut row: Vec<String> = cells.to_vec();
        row.resize(self.header.len(), String::new());
        row.truncate(self.header.len());
        self.rows.push(row);
    }

    /// Convenience for `&str` cells.
    pub fn add_row_strs(&mut self, cells: &[&str]) {
        self.add_row(&cells.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }

    /// Render as an aligned plain-text table.
    pub fn to_text(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("== {} ==\n", self.title));
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = w[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(w.iter().sum::<usize>() + 2 * (w.len().saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Render as a Markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("### {}\n\n", self.title));
        }
        out.push_str(&format!("| {} |\n", self.header.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            "---|".repeat(self.header.len())
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

/// Render a [`RunTrace`](crate::trace::RunTrace) as an aligned text table:
/// one row per event, in record order, with the event-specific fields
/// flattened into a detail column.
pub fn render_trace(trace: &crate::trace::RunTrace) -> String {
    use crate::trace::TraceEvent;
    let mut t = TableReporter::new("Run trace", &["event", "subject", "detail"]);
    for e in trace.events() {
        let (subject, detail) = match &e {
            TraceEvent::PhaseStarted { phase } => (phase.clone(), String::new()),
            TraceEvent::PhaseFinished { phase, micros } => {
                (phase.clone(), format!("{micros} us"))
            }
            TraceEvent::DatasetGenerated { name, kind, items, bytes, workers, micros } => (
                name.clone(),
                format!("{kind}, {items} items, {bytes} bytes, {workers} workers, {micros} us"),
            ),
            TraceEvent::EngineDispatched {
                prescription,
                engine,
                requested_system,
                explicit,
                candidates,
            } => (
                prescription.clone(),
                format!(
                    "-> {engine} ({} for system {requested_system}; candidates: {})",
                    if *explicit { "explicit" } else { "capability fallback" },
                    candidates.join(", ")
                ),
            ),
            TraceEvent::OperationExecuted { engine, op, rows_out, micros } => {
                (format!("{engine}/{op}"), format!("{rows_out} rows, {micros} us"))
            }
        };
        t.add_row(&[e.label().to_string(), subject, detail]);
    }
    t.to_text()
}

/// Format a float compactly for table cells.
pub fn fmt_num(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1e6 {
        format!("{:.2e}", x)
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TableReporter {
        let mut t = TableReporter::new("Demo", &["name", "value"]);
        t.add_row_strs(&["alpha", "1"]);
        t.add_row(&["beta-long-name".into(), "2".into()]);
        t
    }

    #[test]
    fn trace_renders_one_row_per_event() {
        use crate::trace::RunTrace;
        let trace = RunTrace::new();
        trace.phase_started("execution");
        trace.operation("sql", "sort", 42, std::time::Duration::from_micros(5));
        let text = render_trace(&trace);
        assert!(text.contains("== Run trace =="));
        assert!(text.contains("phase_started"));
        assert!(text.contains("sql/sort"));
        assert!(text.contains("42 rows"));
    }

    #[test]
    fn text_render_aligns_columns() {
        let text = sample().to_text();
        assert!(text.contains("== Demo =="));
        let lines: Vec<&str> = text.lines().collect();
        // Header and both rows present.
        assert!(lines[1].starts_with("name"));
        assert!(text.contains("alpha"));
        assert!(text.contains("beta-long-name"));
        // "value" column starts at the same offset in header and rows.
        let col = lines[1].find("value").unwrap();
        assert_eq!(&lines[3][col..col + 1], "1");
    }

    #[test]
    fn markdown_render_has_separator() {
        let md = sample().to_markdown();
        assert!(md.contains("| name | value |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| alpha | 1 |"));
    }

    #[test]
    fn rows_are_padded_and_truncated() {
        let mut t = TableReporter::new("", &["a", "b"]);
        t.add_row(&["only".into()]);
        t.add_row(&["x".into(), "y".into(), "extra".into()]);
        assert_eq!(t.len(), 2);
        let text = t.to_text();
        assert!(!text.contains("extra"));
    }

    #[test]
    fn number_formatting_tiers() {
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(0.1234), "0.1234");
        assert_eq!(fmt_num(3.17159), "3.17");
        assert_eq!(fmt_num(250.4), "250");
        assert_eq!(fmt_num(2_500_000.0), "2.50e6");
    }
}
