//! Structured run tracing for the Figure 1 process.
//!
//! A [`RunTrace`] is an append-only event sink threaded through a
//! benchmark run: the pipeline records a span per Figure 1 phase, one
//! event per generated data set, one event per engine-dispatch decision,
//! and engines record one event per operation they execute; the resilient
//! dispatcher adds one event per injected fault, retry, engine failover
//! and deadline hit. The sink uses
//! interior mutability so it can ride inside a shared
//! [`crate::engine::ExecutionRequest`] without threading `&mut`
//! everywhere. Traces render as a reporter table
//! ([`crate::reporter::render_trace`]) or dump as JSON-lines
//! ([`crate::convert::trace_to_jsonl`]).

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::Mutex;
use std::time::Duration;

/// One structured event of a benchmark run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A Figure 1 phase began.
    PhaseStarted {
        /// Phase name ("planning", "data generation", …).
        phase: String,
    },
    /// A Figure 1 phase completed.
    PhaseFinished {
        /// Phase name.
        phase: String,
        /// Wall-clock duration in microseconds.
        micros: u64,
    },
    /// One input data set was generated.
    DatasetGenerated {
        /// Data set name from the prescription.
        name: String,
        /// Source kind ("table", "text", "graph", "stream").
        kind: String,
        /// Logical items generated.
        items: u64,
        /// Approximate bytes generated.
        bytes: u64,
        /// Generator workers used.
        workers: usize,
        /// Generation wall-clock in microseconds.
        micros: u64,
    },
    /// The registry routed a prescribed test to an engine.
    EngineDispatched {
        /// Prescription name.
        prescription: String,
        /// The engine chosen.
        engine: String,
        /// The system the spec requested.
        requested_system: String,
        /// Whether the requested system matched the engine's capabilities
        /// (`false` means capability fallback picked the engine).
        explicit: bool,
        /// All registered engines considered.
        candidates: Vec<String>,
    },
    /// An engine executed one operation (a DAG step or a kernel).
    OperationExecuted {
        /// The executing engine.
        engine: String,
        /// Operation name.
        op: String,
        /// Rows / items the operation produced.
        rows_out: u64,
        /// Operation wall-clock in microseconds.
        micros: u64,
    },
    /// The fault injector fired at an operation site.
    FaultInjected {
        /// The operation site (`phase/target`).
        site: String,
        /// Fault kind ("error", "latency", "panic", "crash").
        kind: String,
        /// Spike length for latency faults (0 otherwise).
        latency_ms: u64,
    },
    /// A failed attempt is being retried after a backoff.
    OperationRetried {
        /// The operation site.
        site: String,
        /// The attempt that failed (1-based).
        attempt: u32,
        /// Backoff before the next attempt, milliseconds.
        delay_ms: u64,
        /// The error that triggered the retry.
        error: String,
    },
    /// An engine exhausted its retries and the prescription was re-routed
    /// to the next capable engine.
    EngineFailedOver {
        /// Prescription name.
        prescription: String,
        /// The engine that gave up.
        from: String,
        /// The engine taking over.
        to: String,
        /// Attempts consumed across all engines before the failover.
        attempts: u32,
        /// Attempts the `from` engine itself consumed.
        engine_attempts: u32,
        /// The error that triggered the failover.
        error: String,
    },
    /// An operation ran out of its wall-clock deadline.
    DeadlineExceeded {
        /// The operation site.
        site: String,
        /// Elapsed wall-clock, milliseconds.
        elapsed_ms: u64,
        /// The configured deadline, milliseconds.
        deadline_ms: u64,
    },
    /// A run journal recorded one completed matrix cell / workload, so a
    /// crashed run can skip it on `--resume`.
    CheckpointWritten {
        /// The checkpoint key (golden-store format:
        /// `prescription__engine__s<seed>__n<scale>`).
        key: String,
        /// The checkpointed output digest.
        digest: String,
    },
    /// A resumed run skipped a cell already completed by the crashed run,
    /// taking its result from the journal.
    CellResumed {
        /// The checkpoint key.
        key: String,
        /// The digest recorded by the crashed run.
        digest: String,
        /// Whether the recorded digest was re-verified against the
        /// golden store on resume.
        reverified: bool,
    },
    /// A run resumed from a journal directory instead of starting cold.
    RunResumed {
        /// The journal directory.
        journal: String,
        /// Checkpoints found and honoured.
        completed: usize,
    },
    /// A load-driver client session came up and began issuing operations.
    LoadSessionStarted {
        /// The engine the session drives.
        engine: String,
        /// Session index (0-based within the engine's run).
        session: usize,
        /// In-flight operation lanes the session multiplexes.
        lanes: usize,
    },
    /// A load-driver client session quiesced.
    LoadSessionFinished {
        /// The engine the session drove.
        engine: String,
        /// Session index.
        session: usize,
        /// Operations the session completed.
        completed: u64,
        /// Session wall-clock in microseconds.
        micros: u64,
    },
    /// The load driver's bounded admission queue overflowed and ops were
    /// shed (counted, never blocking the arrival clock).
    LoadShed {
        /// The engine whose queue overflowed.
        engine: String,
        /// Operations shed over the run.
        count: u64,
    },
    /// The cost-based router chose among capable candidates (recorded
    /// only under `--routing cost|adaptive`; the default first-capable
    /// path leaves traces untouched).
    RoutingDecision {
        /// Prescription name.
        prescription: String,
        /// Active routing policy ("cost" or "adaptive").
        policy: String,
        /// The winning engine.
        engine: String,
        /// The winner's predicted cost in estimated microseconds
        /// (0 when no predictor covered it).
        predicted_micros: f64,
        /// Where the winning prediction came from ("observed", "engine",
        /// "static" or "unknown").
        source: String,
        /// Rejected alternatives as `engine@<cost>us[<source>]`, in the
        /// order the router ranked them.
        rejected: Vec<String>,
    },
    /// An engine's measured runtime was folded into the observed-cost
    /// store (recorded only under `--routing cost|adaptive`).
    CostObserved {
        /// Prescription name.
        prescription: String,
        /// The engine that ran.
        engine: String,
        /// The cost-model key the sample was stored under.
        key: String,
        /// The measured wall-clock in microseconds.
        micros: u64,
        /// The smoothed estimate after folding in this sample.
        ewma_micros: f64,
        /// Samples folded into the estimate so far.
        samples: u64,
    },
    /// An engine's circuit breaker tripped: its windowed failure rate
    /// reached the trip ratio and admissions are now denied.
    BreakerOpened {
        /// The engine whose breaker tripped.
        engine: String,
        /// Windowed failure rate at the trip.
        failure_rate: f64,
    },
    /// An open breaker finished its cooldown and now admits probes.
    BreakerHalfOpen {
        /// The engine whose breaker is probing.
        engine: String,
    },
    /// A half-open breaker saw enough probe successes and closed.
    BreakerClosed {
        /// The recovered engine.
        engine: String,
    },
    /// One half-open probe operation completed.
    ProbeResult {
        /// The probed engine.
        engine: String,
        /// Did the probe succeed?
        ok: bool,
    },
    /// The load driver's adaptive brownout engaged: sustained queue
    /// overload or a half-open breaker pushed admission pressure past the
    /// grace threshold, and a proportional fraction of arrivals is now
    /// shed before dispatch.
    BrownoutEngaged {
        /// The engine being driven.
        engine: String,
        /// Consecutive-pressure count when the brownout engaged.
        pressure: u64,
        /// Fraction of arrivals being shed, in `(0, 1)`.
        shed_fraction: f64,
    },
    /// The brownout released: pressure drained back under the grace
    /// threshold (or the drive quiesced).
    BrownoutReleased {
        /// The engine being driven.
        engine: String,
        /// Arrivals the brownout shed while engaged.
        shed: u64,
    },
    /// A conformance check compared an engine's result against the
    /// reference oracle or a stored golden digest.
    ConformanceChecked {
        /// Prescription name.
        prescription: String,
        /// The engine whose result was checked.
        engine: String,
        /// Check kind ("oracle" or "golden").
        check: String,
        /// Payload shape compared ("rowset", "ordered", "numeric",
        /// or "none" when the engine attached no output).
        payload: String,
        /// Did the check pass?
        passed: bool,
        /// Mismatch description on failure; digest note on success.
        detail: String,
    },
}

impl TraceEvent {
    /// A short label naming the event variant.
    pub fn label(&self) -> &'static str {
        match self {
            TraceEvent::PhaseStarted { .. } => "phase_started",
            TraceEvent::PhaseFinished { .. } => "phase_finished",
            TraceEvent::DatasetGenerated { .. } => "dataset_generated",
            TraceEvent::EngineDispatched { .. } => "engine_dispatched",
            TraceEvent::OperationExecuted { .. } => "operation_executed",
            TraceEvent::FaultInjected { .. } => "fault_injected",
            TraceEvent::OperationRetried { .. } => "operation_retried",
            TraceEvent::EngineFailedOver { .. } => "engine_failed_over",
            TraceEvent::DeadlineExceeded { .. } => "deadline_exceeded",
            TraceEvent::CheckpointWritten { .. } => "checkpoint_written",
            TraceEvent::CellResumed { .. } => "cell_resumed",
            TraceEvent::RunResumed { .. } => "run_resumed",
            TraceEvent::LoadSessionStarted { .. } => "load_session_started",
            TraceEvent::LoadSessionFinished { .. } => "load_session_finished",
            TraceEvent::LoadShed { .. } => "load_shed",
            TraceEvent::RoutingDecision { .. } => "routing_decision",
            TraceEvent::CostObserved { .. } => "cost_observed",
            TraceEvent::BreakerOpened { .. } => "breaker_opened",
            TraceEvent::BreakerHalfOpen { .. } => "breaker_half_open",
            TraceEvent::BreakerClosed { .. } => "breaker_closed",
            TraceEvent::ProbeResult { .. } => "probe_result",
            TraceEvent::BrownoutEngaged { .. } => "brownout_engaged",
            TraceEvent::BrownoutReleased { .. } => "brownout_released",
            TraceEvent::ConformanceChecked { .. } => "conformance_checked",
        }
    }

    /// True for the recovery-path events: what the resilient dispatcher
    /// emits (fault, retry, failover, deadline), what a resumed run
    /// emits (run/cell resumption), and the health layer's breaker
    /// transitions and probe outcomes. Checkpoint writes are *not*
    /// recovery — every journaled run writes them, crashed or not.
    pub fn is_recovery(&self) -> bool {
        matches!(
            self,
            TraceEvent::FaultInjected { .. }
                | TraceEvent::OperationRetried { .. }
                | TraceEvent::EngineFailedOver { .. }
                | TraceEvent::DeadlineExceeded { .. }
                | TraceEvent::CellResumed { .. }
                | TraceEvent::RunResumed { .. }
                | TraceEvent::BreakerOpened { .. }
                | TraceEvent::BreakerHalfOpen { .. }
                | TraceEvent::BreakerClosed { .. }
                | TraceEvent::ProbeResult { .. }
                | TraceEvent::BrownoutEngaged { .. }
                | TraceEvent::BrownoutReleased { .. }
        )
    }
}

/// An append-only sink of [`TraceEvent`]s for one benchmark run.
#[derive(Debug, Default)]
pub struct RunTrace {
    events: Mutex<Vec<TraceEvent>>,
}

impl RunTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one event.
    pub fn record(&self, event: TraceEvent) {
        self.events.lock().expect("trace lock").push(event);
    }

    /// Record the start of a Figure 1 phase.
    pub fn phase_started(&self, phase: impl std::fmt::Display) {
        self.record(TraceEvent::PhaseStarted { phase: phase.to_string() });
    }

    /// Record the completion of a Figure 1 phase.
    pub fn phase_finished(&self, phase: impl std::fmt::Display, elapsed: Duration) {
        self.record(TraceEvent::PhaseFinished {
            phase: phase.to_string(),
            micros: elapsed.as_micros().min(u128::from(u64::MAX)) as u64,
        });
    }

    /// Record an operation executed by an engine.
    pub fn operation(&self, engine: &str, op: &str, rows_out: u64, elapsed: Duration) {
        self.record(TraceEvent::OperationExecuted {
            engine: engine.to_string(),
            op: op.to_string(),
            rows_out,
            micros: elapsed.as_micros().min(u128::from(u64::MAX)) as u64,
        });
    }

    /// Snapshot of all events in record order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("trace lock").clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace lock").len()
    }

    /// True when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Names of the phases that completed, in name order.
    pub fn phases_finished(&self) -> Vec<String> {
        let set: BTreeSet<String> = self
            .events
            .lock()
            .expect("trace lock")
            .iter()
            .filter_map(|e| match e {
                TraceEvent::PhaseFinished { phase, .. } => Some(phase.clone()),
                _ => None,
            })
            .collect();
        set.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let t = RunTrace::new();
        assert!(t.is_empty());
        t.phase_started("planning");
        t.phase_finished("planning", Duration::from_micros(7));
        t.operation("sql", "select", 3, Duration::from_micros(9));
        let events = t.events();
        assert_eq!(t.len(), 3);
        assert_eq!(events[0].label(), "phase_started");
        assert_eq!(
            events[1],
            TraceEvent::PhaseFinished { phase: "planning".into(), micros: 7 }
        );
        assert_eq!(events[2].label(), "operation_executed");
    }

    #[test]
    fn phases_finished_deduplicates() {
        let t = RunTrace::new();
        for p in ["execution", "planning", "execution"] {
            t.phase_finished(p, Duration::ZERO);
        }
        assert_eq!(t.phases_finished(), vec!["execution", "planning"]);
    }

    #[test]
    fn recovery_events_serialize_and_classify() {
        let events = vec![
            TraceEvent::FaultInjected { site: "exec/sql:micro/sort".into(), kind: "error".into(), latency_ms: 0 },
            TraceEvent::OperationRetried {
                site: "exec/sql:micro/sort".into(),
                attempt: 1,
                delay_ms: 12,
                error: "injected engine fault".into(),
            },
            TraceEvent::EngineFailedOver {
                prescription: "micro/sort".into(),
                from: "sql".into(),
                to: "mapreduce".into(),
                attempts: 2,
                engine_attempts: 2,
                error: "injected engine fault".into(),
            },
            TraceEvent::DeadlineExceeded { site: "datagen/events".into(), elapsed_ms: 70, deadline_ms: 50 },
        ];
        for e in &events {
            assert!(e.is_recovery(), "{}", e.label());
            let json = serde_json::to_string(e).unwrap();
            let back: TraceEvent = serde_json::from_str(&json).unwrap();
            assert_eq!(*e, back);
        }
        assert!(!TraceEvent::PhaseStarted { phase: "x".into() }.is_recovery());
        let check = TraceEvent::ConformanceChecked {
            prescription: "micro/sort".into(),
            engine: "sql".into(),
            check: "oracle".into(),
            payload: "rowset".into(),
            passed: true,
            detail: "digest 0xabc".into(),
        };
        assert!(!check.is_recovery());
        assert_eq!(check.label(), "conformance_checked");
        let json = serde_json::to_string(&check).unwrap();
        let back: TraceEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(check, back);
        assert_eq!(events[0].label(), "fault_injected");
        assert_eq!(events[1].label(), "operation_retried");
        assert_eq!(events[2].label(), "engine_failed_over");
        assert_eq!(events[3].label(), "deadline_exceeded");
    }

    #[test]
    fn resume_events_serialize_and_classify() {
        let checkpoint = TraceEvent::CheckpointWritten {
            key: "micro-sort__sql__s42__n300".into(),
            digest: "0xabc".into(),
        };
        assert_eq!(checkpoint.label(), "checkpoint_written");
        assert!(
            !checkpoint.is_recovery(),
            "checkpointing happens on healthy runs too"
        );
        let resumed = vec![
            TraceEvent::CellResumed {
                key: "micro-sort__sql__s42__n300".into(),
                digest: "0xabc".into(),
                reverified: true,
            },
            TraceEvent::RunResumed { journal: "/tmp/run".into(), completed: 3 },
        ];
        assert_eq!(resumed[0].label(), "cell_resumed");
        assert_eq!(resumed[1].label(), "run_resumed");
        for e in resumed.iter().chain([&checkpoint]) {
            let json = serde_json::to_string(e).unwrap();
            let back: TraceEvent = serde_json::from_str(&json).unwrap();
            assert_eq!(*e, back);
        }
        for e in &resumed {
            assert!(e.is_recovery(), "{}", e.label());
        }
    }

    #[test]
    fn load_events_serialize_and_classify() {
        let events = vec![
            TraceEvent::LoadSessionStarted { engine: "kv".into(), session: 0, lanes: 8 },
            TraceEvent::LoadSessionFinished {
                engine: "kv".into(),
                session: 0,
                completed: 1234,
                micros: 2_000_000,
            },
            TraceEvent::LoadShed { engine: "kv".into(), count: 17 },
        ];
        assert_eq!(events[0].label(), "load_session_started");
        assert_eq!(events[1].label(), "load_session_finished");
        assert_eq!(events[2].label(), "load_shed");
        for e in &events {
            assert!(!e.is_recovery(), "{}", e.label());
            let json = serde_json::to_string(e).unwrap();
            let back: TraceEvent = serde_json::from_str(&json).unwrap();
            assert_eq!(*e, back);
        }
    }

    #[test]
    fn routing_events_serialize_and_classify() {
        let events = vec![
            TraceEvent::RoutingDecision {
                prescription: "relational/join".into(),
                policy: "adaptive".into(),
                engine: "sql".into(),
                predicted_micros: 410.5,
                source: "observed".into(),
                rejected: vec!["mapreduce@850.0us[static]".into()],
            },
            TraceEvent::CostObserved {
                prescription: "relational/join".into(),
                engine: "sql".into(),
                key: "sql/relational/table/s2".into(),
                micros: 390,
                ewma_micros: 402.3,
                samples: 2,
            },
        ];
        assert_eq!(events[0].label(), "routing_decision");
        assert_eq!(events[1].label(), "cost_observed");
        for e in &events {
            assert!(!e.is_recovery(), "{}", e.label());
            let json = serde_json::to_string(e).unwrap();
            let back: TraceEvent = serde_json::from_str(&json).unwrap();
            assert_eq!(*e, back);
        }
    }

    #[test]
    fn breaker_events_serialize_and_classify() {
        let events = vec![
            TraceEvent::BreakerOpened { engine: "kv".into(), failure_rate: 0.75 },
            TraceEvent::BreakerHalfOpen { engine: "kv".into() },
            TraceEvent::ProbeResult { engine: "kv".into(), ok: true },
            TraceEvent::BreakerClosed { engine: "kv".into() },
            TraceEvent::BrownoutEngaged {
                engine: "kv".into(),
                pressure: 9,
                shed_fraction: 0.125,
            },
            TraceEvent::BrownoutReleased { engine: "kv".into(), shed: 12 },
        ];
        assert_eq!(events[0].label(), "breaker_opened");
        assert_eq!(events[1].label(), "breaker_half_open");
        assert_eq!(events[2].label(), "probe_result");
        assert_eq!(events[3].label(), "breaker_closed");
        assert_eq!(events[4].label(), "brownout_engaged");
        assert_eq!(events[5].label(), "brownout_released");
        for e in &events {
            assert!(e.is_recovery(), "{}", e.label());
            let json = serde_json::to_string(e).unwrap();
            let back: TraceEvent = serde_json::from_str(&json).unwrap();
            assert_eq!(*e, back);
        }
    }

    #[test]
    fn events_serialize() {
        let e = TraceEvent::EngineDispatched {
            prescription: "micro/sort".into(),
            engine: "sql".into(),
            requested_system: "native".into(),
            explicit: false,
            candidates: vec!["native".into(), "sql".into()],
        };
        let json = serde_json::to_string(&e).unwrap();
        let back: TraceEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
