//! A blocked Bloom filter for run-level negative lookups.
//!
//! Every immutable run carries a Bloom filter so point reads for keys a
//! run does not contain skip the binary search entirely — the standard
//! LSM read-path optimisation (the `abl_bloom` bench measures the win on
//! read-heavy YCSB-style workloads with cold keys).

/// A fixed-size Bloom filter with `k` derived hash functions.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: u64,
    num_hashes: u32,
}

impl BloomFilter {
    /// A filter sized for `n` keys at roughly `bits_per_key` bits each.
    ///
    /// `bits_per_key = 10` yields ~1% false positives with 7 hashes.
    pub fn with_capacity(n: usize, bits_per_key: usize) -> Self {
        let num_bits = ((n.max(1) * bits_per_key.max(1)) as u64).next_multiple_of(64);
        // Optimal k = ln2 * bits/key, rounded to nearest (truncation
        // would give k=6 at 10 bits/key and a measurably worse FPR),
        // clamped to a sane range.
        let num_hashes = ((bits_per_key as f64 * std::f64::consts::LN_2).round() as u32).clamp(1, 12);
        Self { bits: vec![0; (num_bits / 64) as usize], num_bits, num_hashes }
    }

    /// Double hashing: two independent 64-bit hashes generate k probes.
    fn hashes(key: &[u8]) -> (u64, u64) {
        // FNV-1a with two different offset bases.
        let mut h1: u64 = 0xCBF29CE484222325;
        let mut h2: u64 = 0x9E3779B97F4A7C15;
        for &b in key {
            h1 = (h1 ^ b as u64).wrapping_mul(0x100000001B3);
            h2 = (h2 ^ b as u64).wrapping_mul(0xC2B2AE3D27D4EB4F);
            h2 = h2.rotate_left(31);
        }
        (h1, h2 | 1) // odd stride so probes cover the table
    }

    /// Insert a key.
    pub fn insert(&mut self, key: &[u8]) {
        let (h1, h2) = Self::hashes(key);
        for i in 0..self.num_hashes {
            let bit = h1.wrapping_add(h2.wrapping_mul(i as u64)) % self.num_bits;
            self.bits[(bit / 64) as usize] |= 1u64 << (bit % 64);
        }
    }

    /// May the key be present? `false` is definitive.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let (h1, h2) = Self::hashes(key);
        for i in 0..self.num_hashes {
            let bit = h1.wrapping_add(h2.wrapping_mul(i as u64)) % self.num_bits;
            if self.bits[(bit / 64) as usize] & (1u64 << (bit % 64)) == 0 {
                return false;
            }
        }
        true
    }

    /// Filter size in bytes.
    pub fn byte_size(&self) -> usize {
        self.bits.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserted_keys_are_always_found() {
        let mut f = BloomFilter::with_capacity(1000, 10);
        for i in 0..1000u32 {
            f.insert(&i.to_le_bytes());
        }
        for i in 0..1000u32 {
            assert!(f.may_contain(&i.to_le_bytes()), "false negative for {i}");
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let mut f = BloomFilter::with_capacity(1000, 10);
        for i in 0..1000u32 {
            f.insert(&i.to_le_bytes());
        }
        let fps = (1000..21_000u32)
            .filter(|i| f.may_contain(&i.to_le_bytes()))
            .count();
        let rate = fps as f64 / 20_000.0;
        // 10 bits/key with the rounded k=7 delivers the documented ~1%:
        // theory says ~0.82%, so 1.5% leaves only sampling headroom.
        assert!(rate < 0.015, "false positive rate {rate}");
    }

    #[test]
    fn ten_bits_per_key_uses_seven_hashes() {
        // Regression: k = ln2 * bits/key was truncated, so 10 bits/key
        // built 6 hashes instead of the documented (optimal) 7.
        assert_eq!(BloomFilter::with_capacity(1000, 10).num_hashes, 7);
        assert_eq!(BloomFilter::with_capacity(1000, 4).num_hashes, 3);
        assert_eq!(BloomFilter::with_capacity(1000, 1).num_hashes, 1);
        assert_eq!(BloomFilter::with_capacity(1000, 32).num_hashes, 12);
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let f = BloomFilter::with_capacity(10, 10);
        assert!(!f.may_contain(b"anything"));
    }

    #[test]
    fn sizing_follows_bits_per_key() {
        let small = BloomFilter::with_capacity(100, 4);
        let large = BloomFilter::with_capacity(100, 16);
        assert!(large.byte_size() > small.byte_size());
        assert!(large.num_hashes > small.num_hashes);
    }
}
