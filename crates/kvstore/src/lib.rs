//! A miniature LSM key-value store.
//!
//! The substrate standing in for the NoSQL systems in the paper's survey
//! (Cassandra/HBase/PNUTS under YCSB, MySQL under LinkBench). It executes
//! the *Cloud OLTP* workload class of Table 2 — read, write, scan, update,
//! insert, delete — against a real log-structured design: an in-memory
//! memtable that flushes to immutable sorted runs, k-way-merge compaction,
//! tombstone deletes, and ordered range scans across all levels.
//!
//! [`linkstore`] layers a LinkBench-style social-graph association store
//! (assoc add / get / range / count) on top via order-preserving composite
//! keys.
//!
//! ```
//! use bdb_kv::LsmStore;
//!
//! let mut store = LsmStore::default();
//! store.put(b"user1".to_vec(), b"alice".to_vec());
//! assert_eq!(store.get(b"user1"), Some(b"alice".to_vec()));
//! store.delete(b"user1".to_vec());
//! assert_eq!(store.get(b"user1"), None);
//! ```

pub mod bloom;
pub mod linkstore;
pub mod lsm;
pub mod manifest;
pub mod wal;

pub use bloom::BloomFilter;
pub use linkstore::{Link, LinkStore};
pub use lsm::{CrashPoint, KvStats, LsmConfig, LsmStore, SharedLsm};
pub use manifest::Manifest;
pub use wal::{Wal, WalRecord, WalReplay};
