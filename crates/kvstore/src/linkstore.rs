//! A LinkBench-style social-graph association store.
//!
//! LinkBench (cited in Tables 1–2) models Facebook's social graph as nodes
//! plus typed, timestamped directed links, queried by "simple operations
//! such as select, insert, update, and delete; and association range
//! queries and count queries". This module provides those operations on
//! top of [`LsmStore`] using order-preserving composite keys, so range
//! queries become LSM scans:
//!
//! * node keys:  `n | id`
//! * link keys:  `l | id1 | link_type | (u64::MAX - time) | id2`
//!   (inverted time ⇒ a scan returns newest links first, as LinkBench's
//!   `assoc_range` requires)
//! * count keys: `c | id1 | link_type`

use crate::lsm::{LsmConfig, LsmStore};
use bdb_common::{BdbError, Result};

/// A typed, timestamped directed link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Link {
    /// Source node.
    pub id1: u64,
    /// Link type (e.g. "likes" = 1, "follows" = 2).
    pub link_type: u32,
    /// Destination node.
    pub id2: u64,
    /// Event time in milliseconds.
    pub time: u64,
    /// Opaque payload.
    pub data: Vec<u8>,
}

fn node_key(id: u64) -> Vec<u8> {
    let mut k = Vec::with_capacity(9);
    k.push(b'n');
    k.extend_from_slice(&id.to_be_bytes());
    k
}

fn link_prefix(id1: u64, link_type: u32) -> Vec<u8> {
    let mut k = Vec::with_capacity(13);
    k.push(b'l');
    k.extend_from_slice(&id1.to_be_bytes());
    k.extend_from_slice(&link_type.to_be_bytes());
    k
}

fn link_key(id1: u64, link_type: u32, time: u64, id2: u64) -> Vec<u8> {
    let mut k = link_prefix(id1, link_type);
    k.extend_from_slice(&(u64::MAX - time).to_be_bytes());
    k.extend_from_slice(&id2.to_be_bytes());
    k
}

fn count_key(id1: u64, link_type: u32) -> Vec<u8> {
    let mut k = link_prefix(id1, link_type);
    k[0] = b'c';
    k
}

fn prefix_end(prefix: &[u8]) -> Vec<u8> {
    // Smallest byte string greater than every string with this prefix.
    let mut end = prefix.to_vec();
    for i in (0..end.len()).rev() {
        if end[i] < 0xFF {
            end[i] += 1;
            end.truncate(i + 1);
            return end;
        }
    }
    // All 0xFF: unbounded.
    Vec::new()
}

fn decode_link(id1: u64, link_type: u32, key: &[u8], data: &[u8]) -> Result<Link> {
    // key = 'l' (1) + id1 (8) + type (4) + inv_time (8) + id2 (8).
    if key.len() != 29 {
        return Err(BdbError::Format(format!("bad link key length {}", key.len())));
    }
    let inv_time = u64::from_be_bytes(key[13..21].try_into().expect("slice len"));
    let id2 = u64::from_be_bytes(key[21..29].try_into().expect("slice len"));
    Ok(Link { id1, link_type, id2, time: u64::MAX - inv_time, data: data.to_vec() })
}

/// The association store.
#[derive(Debug, Default)]
pub struct LinkStore {
    store: LsmStore,
}

impl LinkStore {
    /// A store with explicit LSM configuration.
    pub fn with_config(config: LsmConfig) -> Self {
        Self { store: LsmStore::with_config(config) }
    }

    /// Insert or overwrite a node's payload.
    pub fn add_node(&mut self, id: u64, data: Vec<u8>) {
        self.store.put(node_key(id), data);
    }

    /// Fetch a node's payload.
    pub fn get_node(&mut self, id: u64) -> Option<Vec<u8>> {
        self.store.get(&node_key(id))
    }

    /// Delete a node (links are managed separately, as in LinkBench).
    pub fn delete_node(&mut self, id: u64) {
        self.store.delete(node_key(id));
    }

    /// Add a link, maintaining the count index.
    pub fn add_link(&mut self, link: Link) {
        let key = link_key(link.id1, link.link_type, link.time, link.id2);
        // Only bump the count for a brand-new link.
        if self.store.get(&key).is_none() {
            let ck = count_key(link.id1, link.link_type);
            let n = self.count_links(link.id1, link.link_type) + 1;
            self.store.put(ck, n.to_be_bytes().to_vec());
        }
        self.store.put(key, link.data);
    }

    /// Delete a link identified by its natural key.
    pub fn delete_link(&mut self, id1: u64, link_type: u32, time: u64, id2: u64) {
        let key = link_key(id1, link_type, time, id2);
        if self.store.get(&key).is_some() {
            let n = self.count_links(id1, link_type).saturating_sub(1);
            self.store
                .put(count_key(id1, link_type), n.to_be_bytes().to_vec());
            self.store.delete(key);
        }
    }

    /// Fetch a single link.
    pub fn get_link(&mut self, id1: u64, link_type: u32, time: u64, id2: u64) -> Option<Link> {
        let key = link_key(id1, link_type, time, id2);
        let data = self.store.get(&key)?;
        decode_link(id1, link_type, &key, &data).ok()
    }

    /// LinkBench's `assoc_range`: newest links of `(id1, link_type)` first,
    /// up to `limit`.
    pub fn get_link_list(&mut self, id1: u64, link_type: u32, limit: usize) -> Vec<Link> {
        let prefix = link_prefix(id1, link_type);
        let end = prefix_end(&prefix);
        let end_ref = if end.is_empty() { None } else { Some(end.as_slice()) };
        self.store
            .scan(&prefix, end_ref, limit)
            .iter()
            .filter_map(|(k, v)| decode_link(id1, link_type, k, v).ok())
            .collect()
    }

    /// LinkBench's count query, answered from the maintained count index.
    pub fn count_links(&mut self, id1: u64, link_type: u32) -> u64 {
        self.store
            .get(&count_key(id1, link_type))
            .map(|v| u64::from_be_bytes(v.as_slice().try_into().unwrap_or([0; 8])))
            .unwrap_or(0)
    }

    /// Counter snapshot of the underlying store.
    pub fn stats(&self) -> crate::lsm::KvStats {
        self.store.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(id1: u64, t: u32, id2: u64, time: u64) -> Link {
        Link { id1, link_type: t, id2, time, data: vec![id2 as u8] }
    }

    #[test]
    fn node_crud() {
        let mut s = LinkStore::default();
        s.add_node(1, b"alice".to_vec());
        assert_eq!(s.get_node(1), Some(b"alice".to_vec()));
        s.delete_node(1);
        assert_eq!(s.get_node(1), None);
    }

    #[test]
    fn link_roundtrip_and_count() {
        let mut s = LinkStore::default();
        s.add_link(link(1, 7, 100, 1000));
        s.add_link(link(1, 7, 101, 2000));
        s.add_link(link(1, 8, 102, 1500));
        assert_eq!(s.count_links(1, 7), 2);
        assert_eq!(s.count_links(1, 8), 1);
        assert_eq!(s.count_links(2, 7), 0);
        let got = s.get_link(1, 7, 1000, 100).unwrap();
        assert_eq!(got.id2, 100);
        assert_eq!(got.time, 1000);
    }

    #[test]
    fn re_adding_same_link_does_not_double_count() {
        let mut s = LinkStore::default();
        s.add_link(link(1, 7, 100, 1000));
        s.add_link(link(1, 7, 100, 1000));
        assert_eq!(s.count_links(1, 7), 1);
    }

    #[test]
    fn assoc_range_returns_newest_first() {
        let mut s = LinkStore::default();
        for (id2, time) in [(100, 1000), (101, 3000), (102, 2000)] {
            s.add_link(link(1, 7, id2, time));
        }
        let list = s.get_link_list(1, 7, 10);
        let times: Vec<u64> = list.iter().map(|l| l.time).collect();
        assert_eq!(times, vec![3000, 2000, 1000]);
        // Limit applies.
        assert_eq!(s.get_link_list(1, 7, 2).len(), 2);
    }

    #[test]
    fn assoc_range_does_not_leak_across_types_or_nodes() {
        let mut s = LinkStore::default();
        s.add_link(link(1, 7, 100, 1000));
        s.add_link(link(1, 8, 200, 1000));
        s.add_link(link(2, 7, 300, 1000));
        let list = s.get_link_list(1, 7, 10);
        assert_eq!(list.len(), 1);
        assert_eq!(list[0].id2, 100);
    }

    #[test]
    fn delete_link_updates_count_and_range() {
        let mut s = LinkStore::default();
        s.add_link(link(1, 7, 100, 1000));
        s.add_link(link(1, 7, 101, 2000));
        s.delete_link(1, 7, 2000, 101);
        assert_eq!(s.count_links(1, 7), 1);
        let list = s.get_link_list(1, 7, 10);
        assert_eq!(list.len(), 1);
        assert_eq!(list[0].id2, 100);
        // Deleting a missing link is a no-op.
        s.delete_link(9, 9, 9, 9);
        assert_eq!(s.count_links(1, 7), 1);
    }

    #[test]
    fn prefix_end_handles_0xff() {
        assert_eq!(prefix_end(&[1, 2]), vec![1, 3]);
        assert_eq!(prefix_end(&[1, 0xFF]), vec![2]);
        assert_eq!(prefix_end(&[0xFF, 0xFF]), Vec::<u8>::new());
    }

    #[test]
    fn survives_flush_and_compaction() {
        let mut s = LinkStore::with_config(LsmConfig {
            memtable_capacity_bytes: 128,
            max_runs: 2, bloom_bits_per_key: 10, });
        for i in 0..100u64 {
            s.add_link(link(1, 7, i, 1000 + i));
        }
        assert_eq!(s.count_links(1, 7), 100);
        assert_eq!(s.get_link_list(1, 7, 1000).len(), 100);
        assert!(s.stats().flushes > 0);
    }
}
