//! The log-structured merge store.
//!
//! Writes land in a sorted in-memory memtable; when it exceeds its budget
//! it is frozen into an immutable sorted run. Reads check the memtable,
//! then runs newest-to-oldest (newest version wins). When the run count
//! exceeds a threshold, all runs merge into one and tombstones are
//! reclaimed. This is the genuine read/write path a YCSB-style workload
//! exercises — memtable hits are cheap, cold point reads pay one binary
//! search per run, scans pay a k-way merge.

use crate::bloom::BloomFilter;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::Arc;

/// Raw byte key.
pub type Key = Vec<u8>;
/// Raw byte value.
pub type Val = Vec<u8>;

/// Tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LsmConfig {
    /// Flush the memtable when its payload exceeds this many bytes.
    pub memtable_capacity_bytes: usize,
    /// Compact when the number of runs exceeds this.
    pub max_runs: usize,
    /// Bloom-filter bits per key on each run; 0 disables filters (the
    /// `abl_bloom` ablation toggles this).
    pub bloom_bits_per_key: usize,
}

impl Default for LsmConfig {
    fn default() -> Self {
        Self { memtable_capacity_bytes: 1 << 20, max_runs: 6, bloom_bits_per_key: 10 }
    }
}

/// Operation counters (architecture-metric inputs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvStats {
    /// `put`/`delete` calls.
    pub writes: u64,
    /// `get` calls.
    pub reads: u64,
    /// Reads answered by the memtable.
    pub memtable_hits: u64,
    /// Binary searches into immutable runs.
    pub run_probes: u64,
    /// Run probes skipped because the Bloom filter ruled the key out.
    pub bloom_skips: u64,
    /// `scan` calls.
    pub scans: u64,
    /// Memtable flushes.
    pub flushes: u64,
    /// Compactions run.
    pub compactions: u64,
}

impl KvStats {
    /// Total counted operations.
    pub fn total_ops(&self) -> u64 {
        self.writes + self.reads + self.run_probes + self.scans
    }
}

/// An immutable sorted run; `None` values are tombstones.
#[derive(Debug, Clone)]
struct Run {
    entries: Vec<(Key, Option<Val>)>,
    bloom: Option<BloomFilter>,
}

impl Run {
    fn build(entries: Vec<(Key, Option<Val>)>, bits_per_key: usize) -> Self {
        let bloom = (bits_per_key > 0).then(|| {
            let mut f = BloomFilter::with_capacity(entries.len(), bits_per_key);
            for (k, _) in &entries {
                f.insert(k);
            }
            f
        });
        Self { entries, bloom }
    }

    fn get(&self, key: &[u8]) -> Option<&Option<Val>> {
        self.entries
            .binary_search_by(|(k, _)| k.as_slice().cmp(key))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    fn range<'a>(
        &'a self,
        start: &'a [u8],
        end: Option<&'a [u8]>,
    ) -> impl Iterator<Item = &'a (Key, Option<Val>)> + 'a {
        let from = self
            .entries
            .partition_point(|(k, _)| k.as_slice() < start);
        self.entries[from..]
            .iter()
            .take_while(move |(k, _)| end.is_none_or(|e| k.as_slice() < e))
    }
}

/// The store: one memtable plus a stack of immutable runs.
#[derive(Debug, Default)]
pub struct LsmStore {
    config: LsmConfig,
    memtable: BTreeMap<Key, Option<Val>>,
    memtable_bytes: usize,
    /// Newest run last.
    runs: Vec<Run>,
    stats: KvStats,
}

impl LsmStore {
    /// A store with explicit configuration.
    pub fn with_config(config: LsmConfig) -> Self {
        Self { config, ..Self::default() }
    }

    /// Insert or overwrite a key.
    pub fn put(&mut self, key: Key, value: Val) {
        self.stats.writes += 1;
        self.write(key, Some(value));
    }

    /// Delete a key (writes a tombstone).
    pub fn delete(&mut self, key: Key) {
        self.stats.writes += 1;
        self.write(key, None);
    }

    fn write(&mut self, key: Key, value: Option<Val>) {
        let added = key.len() + value.as_ref().map_or(1, Val::len);
        if let Some(old) = self.memtable.insert(key, value) {
            self.memtable_bytes = self
                .memtable_bytes
                .saturating_sub(old.map_or(1, |v| v.len()));
        }
        self.memtable_bytes += added;
        if self.memtable_bytes >= self.config.memtable_capacity_bytes {
            self.flush();
        }
    }

    /// Freeze the memtable into a run.
    pub fn flush(&mut self) {
        if self.memtable.is_empty() {
            return;
        }
        let entries: Vec<(Key, Option<Val>)> = std::mem::take(&mut self.memtable)
            .into_iter()
            .collect();
        self.memtable_bytes = 0;
        self.runs
            .push(Run::build(entries, self.config.bloom_bits_per_key));
        self.stats.flushes += 1;
        if self.runs.len() > self.config.max_runs {
            self.compact();
        }
    }

    /// Merge all runs into one, dropping shadowed versions and tombstones.
    pub fn compact(&mut self) {
        if self.runs.len() <= 1 {
            return;
        }
        self.stats.compactions += 1;
        // Newest-wins merge: iterate runs oldest → newest into a map.
        let mut merged: BTreeMap<Key, Option<Val>> = BTreeMap::new();
        for run in self.runs.drain(..) {
            for (k, v) in run.entries {
                merged.insert(k, v);
            }
        }
        let entries: Vec<(Key, Option<Val>)> = merged
            .into_iter()
            .filter(|(_, v)| v.is_some())
            .collect();
        if !entries.is_empty() {
            self.runs
                .push(Run::build(entries, self.config.bloom_bits_per_key));
        }
    }

    /// Point lookup.
    pub fn get(&mut self, key: &[u8]) -> Option<Val> {
        self.stats.reads += 1;
        if let Some(v) = self.memtable.get(key) {
            self.stats.memtable_hits += 1;
            return v.clone();
        }
        for run in self.runs.iter().rev() {
            if let Some(bloom) = &run.bloom {
                if !bloom.may_contain(key) {
                    self.stats.bloom_skips += 1;
                    continue;
                }
            }
            self.stats.run_probes += 1;
            if let Some(v) = run.get(key) {
                return v.clone();
            }
        }
        None
    }

    /// Ordered range scan from `start` (inclusive) to `end` (exclusive,
    /// unbounded when `None`), returning up to `limit` live entries.
    pub fn scan(&mut self, start: &[u8], end: Option<&[u8]>, limit: usize) -> Vec<(Key, Val)> {
        self.stats.scans += 1;
        // Merge all levels into one view, newer levels overwriting older.
        let mut view: BTreeMap<Key, Option<Val>> = BTreeMap::new();
        for run in &self.runs {
            for (k, v) in run.range(start, end) {
                view.insert(k.clone(), v.clone());
            }
        }
        let mem_range = self.memtable.range((
            Bound::Included(start.to_vec()),
            end.map_or(Bound::Unbounded, |e| Bound::Excluded(e.to_vec())),
        ));
        for (k, v) in mem_range {
            view.insert(k.clone(), v.clone());
        }
        view.into_iter()
            .filter_map(|(k, v)| v.map(|val| (k, val)))
            .take(limit)
            .collect()
    }

    /// Number of live keys (scans everything; for tests and reports).
    pub fn len(&mut self) -> usize {
        self.scan(&[], None, usize::MAX).len()
    }

    /// True when no live keys exist.
    pub fn is_empty(&mut self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> KvStats {
        self.stats
    }

    /// Number of immutable runs (for observing flush/compaction activity).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }
}

/// A thread-safe handle: the store behind an `Arc<RwLock>`, matching how
/// multi-threaded OLTP drivers share a store.
#[derive(Debug, Clone, Default)]
pub struct SharedLsm {
    inner: Arc<RwLock<LsmStore>>,
}

impl SharedLsm {
    /// A shared store with explicit configuration.
    pub fn with_config(config: LsmConfig) -> Self {
        Self { inner: Arc::new(RwLock::new(LsmStore::with_config(config))) }
    }

    /// Insert or overwrite.
    pub fn put(&self, key: Key, value: Val) {
        self.inner.write().put(key, value);
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Option<Val> {
        self.inner.write().get(key)
    }

    /// Delete.
    pub fn delete(&self, key: Key) {
        self.inner.write().delete(key);
    }

    /// Range scan.
    pub fn scan(&self, start: &[u8], end: Option<&[u8]>, limit: usize) -> Vec<(Key, Val)> {
        self.inner.write().scan(start, end, limit)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> KvStats {
        self.inner.read().stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LsmStore {
        // Small budgets so flush/compaction paths run in tests.
        LsmStore::with_config(LsmConfig { memtable_capacity_bytes: 256, max_runs: 2, bloom_bits_per_key: 10 })
    }

    fn k(i: u32) -> Key {
        format!("key{i:06}").into_bytes()
    }

    #[test]
    fn put_get_roundtrip() {
        let mut s = LsmStore::default();
        s.put(k(1), b"one".to_vec());
        s.put(k(2), b"two".to_vec());
        assert_eq!(s.get(&k(1)), Some(b"one".to_vec()));
        assert_eq!(s.get(&k(3)), None);
    }

    #[test]
    fn overwrite_returns_latest() {
        let mut s = tiny();
        for ver in 0..20 {
            s.put(k(7), format!("v{ver}").into_bytes());
        }
        assert_eq!(s.get(&k(7)), Some(b"v19".to_vec()));
    }

    #[test]
    fn delete_shadows_older_runs() {
        let mut s = tiny();
        s.put(k(1), b"x".to_vec());
        s.flush();
        s.delete(k(1));
        s.flush();
        assert_eq!(s.get(&k(1)), None);
        // And scans agree.
        assert!(s.scan(&[], None, 10).is_empty());
    }

    #[test]
    fn flush_and_compaction_fire() {
        let mut s = tiny();
        for i in 0..200 {
            s.put(k(i), vec![b'v'; 32]);
        }
        let st = s.stats();
        assert!(st.flushes > 0, "expected flushes");
        assert!(st.compactions > 0, "expected compactions");
        assert!(s.run_count() <= 3);
        // All keys still readable after compaction.
        for i in 0..200 {
            assert!(s.get(&k(i)).is_some(), "key {i} lost");
        }
    }

    #[test]
    fn compaction_reclaims_tombstones() {
        let mut s = LsmStore::with_config(LsmConfig {
            memtable_capacity_bytes: 64,
            max_runs: 1, bloom_bits_per_key: 10, });
        s.put(k(1), b"x".to_vec());
        s.flush();
        s.delete(k(1));
        s.flush(); // triggers compaction (2 runs > max 1)
        assert_eq!(s.run_count(), 0, "tombstone-only store should compact away");
    }

    #[test]
    fn scan_is_ordered_and_bounded() {
        let mut s = tiny();
        for i in (0..50).rev() {
            s.put(k(i), i.to_string().into_bytes());
        }
        let out = s.scan(&k(10), Some(&k(20)), 100);
        let keys: Vec<Key> = out.iter().map(|(key, _)| key.clone()).collect();
        let expect: Vec<Key> = (10..20).map(k).collect();
        assert_eq!(keys, expect);
        // Limit applies.
        assert_eq!(s.scan(&k(0), None, 5).len(), 5);
    }

    #[test]
    fn scan_sees_newest_version_across_levels() {
        let mut s = tiny();
        s.put(k(5), b"old".to_vec());
        s.flush();
        s.put(k(5), b"new".to_vec());
        let out = s.scan(&k(5), None, 1);
        assert_eq!(out[0].1, b"new".to_vec());
    }

    #[test]
    fn stats_track_read_paths() {
        let mut s = tiny();
        s.put(k(1), b"x".to_vec());
        s.get(&k(1)); // memtable hit
        s.flush();
        s.get(&k(1)); // run probe
        let st = s.stats();
        assert_eq!(st.reads, 2);
        assert_eq!(st.memtable_hits, 1);
        assert!(st.run_probes >= 1);
        assert!(st.total_ops() >= 3);
    }

    #[test]
    fn bloom_filters_skip_cold_run_probes() {
        let mut with_bloom = LsmStore::with_config(LsmConfig {
            memtable_capacity_bytes: 512,
            max_runs: 16,
            bloom_bits_per_key: 10,
        });
        for i in 0..200 {
            with_bloom.put(k(i), vec![b'v'; 16]);
        }
        with_bloom.flush();
        // Misses: keys that exist in no run.
        for i in 1000..1200 {
            assert_eq!(with_bloom.get(&k(i)), None);
        }
        let st = with_bloom.stats();
        assert!(st.bloom_skips > 150, "bloom skips {}", st.bloom_skips);

        let mut without = LsmStore::with_config(LsmConfig {
            memtable_capacity_bytes: 512,
            max_runs: 16,
            bloom_bits_per_key: 0,
        });
        for i in 0..200 {
            without.put(k(i), vec![b'v'; 16]);
        }
        without.flush();
        for i in 1000..1200 {
            assert_eq!(without.get(&k(i)), None);
        }
        assert_eq!(without.stats().bloom_skips, 0);
        assert!(without.stats().run_probes > with_bloom.stats().run_probes);
    }

    #[test]
    fn bloom_never_hides_present_keys() {
        let mut s = LsmStore::with_config(LsmConfig {
            memtable_capacity_bytes: 128,
            max_runs: 32,
            bloom_bits_per_key: 10,
        });
        for i in 0..300 {
            s.put(k(i), i.to_string().into_bytes());
        }
        s.flush();
        for i in 0..300 {
            assert_eq!(s.get(&k(i)), Some(i.to_string().into_bytes()));
        }
    }

    #[test]
    fn shared_store_is_cloneable_and_consistent() {
        let s = SharedLsm::default();
        let s2 = s.clone();
        s.put(b"a".to_vec(), b"1".to_vec());
        assert_eq!(s2.get(b"a"), Some(b"1".to_vec()));
        s2.delete(b"a".to_vec());
        assert_eq!(s.get(b"a"), None);
        assert!(s.stats().writes >= 2);
    }

    #[test]
    fn shared_store_concurrent_writers() {
        let s = SharedLsm::with_config(LsmConfig {
            memtable_capacity_bytes: 512,
            max_runs: 2, bloom_bits_per_key: 10, });
        std::thread::scope(|scope| {
            for t in 0..4 {
                let s = s.clone();
                scope.spawn(move || {
                    for i in 0..250 {
                        s.put(
                            format!("t{t}k{i:04}").into_bytes(),
                            vec![b'x'; 16],
                        );
                    }
                });
            }
        });
        let all = s.scan(b"", None, usize::MAX);
        assert_eq!(all.len(), 1000);
    }
}
