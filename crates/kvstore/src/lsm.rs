//! The log-structured merge store.
//!
//! Writes land in a sorted in-memory memtable; when it exceeds its budget
//! it is frozen into an immutable sorted run. Reads check the memtable,
//! then runs newest-to-oldest (newest version wins). When the run count
//! exceeds a threshold, all runs merge into one and tombstones are
//! reclaimed. This is the genuine read/write path a YCSB-style workload
//! exercises — memtable hits are cheap, cold point reads pay one binary
//! search per run, scans pay a k-way merge.
//!
//! # Durability
//!
//! A store opened with [`LsmStore::open`] is backed by a directory:
//! every mutation is appended to a checksummed write-ahead log before it
//! touches the memtable, memtable flushes seal the frozen run into an
//! immutable SSTable epoch and rotate the WAL, and a `MANIFEST.json`
//! (always updated by atomic rename) names the live WAL segment and the
//! sealed epochs. Reopening the directory replays the manifest, the
//! sealed runs and the WAL — truncating any torn tail a mid-append crash
//! left behind — and deterministically rebuilds the pre-crash contents.
//! [`LsmStore::arm_crash`] plants one-shot [`CrashPoint`] kill switches
//! at the seeded instants the crash-recovery chaos suite exercises.

use crate::bloom::BloomFilter;
use crate::manifest::{self, Manifest};
use crate::wal::{Wal, WalRecord};
use bdb_common::{BdbError, Result};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::ops::Bound;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Raw byte key.
pub type Key = Vec<u8>;
/// Raw byte value.
pub type Val = Vec<u8>;

/// Tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LsmConfig {
    /// Flush the memtable when its payload exceeds this many bytes.
    pub memtable_capacity_bytes: usize,
    /// Compact when the number of runs exceeds this.
    pub max_runs: usize,
    /// Bloom-filter bits per key on each run; 0 disables filters (the
    /// `abl_bloom` ablation toggles this).
    pub bloom_bits_per_key: usize,
}

impl Default for LsmConfig {
    fn default() -> Self {
        Self { memtable_capacity_bytes: 1 << 20, max_runs: 6, bloom_bits_per_key: 10 }
    }
}

/// Operation counters (architecture-metric inputs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvStats {
    /// `put`/`delete` calls.
    pub writes: u64,
    /// `get` calls.
    pub reads: u64,
    /// Reads answered by the memtable.
    pub memtable_hits: u64,
    /// Binary searches into immutable runs.
    pub run_probes: u64,
    /// Run probes skipped because the Bloom filter ruled the key out.
    pub bloom_skips: u64,
    /// `scan` calls.
    pub scans: u64,
    /// Memtable flushes.
    pub flushes: u64,
    /// Compactions run.
    pub compactions: u64,
    /// Records appended to the write-ahead log (durable stores only).
    pub wal_appends: u64,
    /// Records replayed from the WAL when the store was opened.
    pub wal_replayed: u64,
    /// Torn WAL tails truncated during recovery.
    pub torn_recoveries: u64,
}

impl KvStats {
    /// Total counted operations.
    pub fn total_ops(&self) -> u64 {
        self.writes + self.reads + self.run_probes + self.scans
    }
}

/// Interior-mutable counter cells behind the public [`KvStats`] snapshot.
///
/// Read-path counters (reads, hits, probes, skips, scans) are bumped from
/// `&self` so point lookups and scans need no exclusive access — this is
/// what lets [`SharedLsm`] serve concurrent readers under a shared read
/// lock while a writer flushes. Relaxed ordering: these are tallies, not
/// synchronisation.
#[derive(Debug, Default)]
struct StatCells {
    writes: AtomicU64,
    reads: AtomicU64,
    memtable_hits: AtomicU64,
    run_probes: AtomicU64,
    bloom_skips: AtomicU64,
    scans: AtomicU64,
    flushes: AtomicU64,
    compactions: AtomicU64,
    wal_appends: AtomicU64,
    wal_replayed: AtomicU64,
    torn_recoveries: AtomicU64,
}

impl StatCells {
    fn bump(cell: &AtomicU64) {
        cell.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> KvStats {
        KvStats {
            writes: self.writes.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            memtable_hits: self.memtable_hits.load(Ordering::Relaxed),
            run_probes: self.run_probes.load(Ordering::Relaxed),
            bloom_skips: self.bloom_skips.load(Ordering::Relaxed),
            scans: self.scans.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            wal_appends: self.wal_appends.load(Ordering::Relaxed),
            wal_replayed: self.wal_replayed.load(Ordering::Relaxed),
            torn_recoveries: self.torn_recoveries.load(Ordering::Relaxed),
        }
    }
}

/// An immutable sorted run; `None` values are tombstones.
#[derive(Debug, Clone)]
struct Run {
    entries: Vec<(Key, Option<Val>)>,
    bloom: Option<BloomFilter>,
}

impl Run {
    fn build(entries: Vec<(Key, Option<Val>)>, bits_per_key: usize) -> Self {
        let bloom = (bits_per_key > 0).then(|| {
            let mut f = BloomFilter::with_capacity(entries.len(), bits_per_key);
            for (k, _) in &entries {
                f.insert(k);
            }
            f
        });
        Self { entries, bloom }
    }

    fn get(&self, key: &[u8]) -> Option<&Option<Val>> {
        self.entries
            .binary_search_by(|(k, _)| k.as_slice().cmp(key))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    fn range<'a>(
        &'a self,
        start: &'a [u8],
        end: Option<&'a [u8]>,
    ) -> impl Iterator<Item = &'a (Key, Option<Val>)> + 'a {
        let from = self
            .entries
            .partition_point(|(k, _)| k.as_slice() < start);
        self.entries[from..]
            .iter()
            .take_while(move |(k, _)| end.is_none_or(|e| k.as_slice() < e))
    }
}

/// One-shot kill switches: the seeded instants at which a durable store
/// can be made to "die" mid-operation, leaving its directory exactly as
/// a process kill at that point would. Each fires once, returns
/// [`BdbError::Crashed`], and the store object must then be dropped —
/// recovery is [`LsmStore::open`] on the same directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Mid-WAL-append: a partial record frame reaches the log (a torn
    /// tail) and the mutation is lost.
    WalAppend,
    /// At flush entry, before anything is sealed: the memtable is lost,
    /// the WAL holds every record.
    PreFlush,
    /// After the SSTable is sealed but before the manifest names it: the
    /// epoch file is an orphan, the WAL still holds every record.
    PreManifest,
    /// After the manifest update but before the old WAL segment is
    /// removed: the sealed epoch is live, the stale WAL is a leftover.
    PreWalRotate,
}

impl std::fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CrashPoint::WalAppend => "wal-append",
            CrashPoint::PreFlush => "pre-flush",
            CrashPoint::PreManifest => "pre-manifest",
            CrashPoint::PreWalRotate => "pre-wal-rotate",
        })
    }
}

/// On-disk state of a durable store.
#[derive(Debug)]
struct Durability {
    dir: PathBuf,
    manifest: Manifest,
    wal: Wal,
    /// Epoch of each in-memory run, parallel to `LsmStore::runs`.
    run_epochs: Vec<u64>,
    armed: Option<CrashPoint>,
}

impl Durability {
    /// Consume the kill switch if it is armed at `point`.
    fn trip(&mut self, point: CrashPoint) -> Result<()> {
        if self.armed == Some(point) {
            self.armed = None;
            return Err(BdbError::Crashed(format!(
                "kill point {point} in {}",
                self.dir.display()
            )));
        }
        Ok(())
    }
}

/// The store: one memtable plus a stack of immutable runs.
#[derive(Debug, Default)]
pub struct LsmStore {
    config: LsmConfig,
    memtable: BTreeMap<Key, Option<Val>>,
    memtable_bytes: usize,
    /// Newest run last.
    runs: Vec<Run>,
    stats: StatCells,
    /// WAL + manifest, present only for stores opened on a directory.
    durability: Option<Durability>,
}

impl LsmStore {
    /// A store with explicit configuration.
    pub fn with_config(config: LsmConfig) -> Self {
        Self { config, ..Self::default() }
    }

    /// Open (or create) a durable store rooted at `dir`, recovering any
    /// state a previous incarnation — cleanly closed or killed at any
    /// instant — left behind: the manifest's sealed SSTable epochs are
    /// loaded as immutable runs, orphan SSTables and stale WAL segments
    /// from interrupted flushes are removed, and the live WAL replays
    /// into the memtable with any torn tail truncated off.
    ///
    /// # Errors
    /// Fails on filesystem errors or a corrupt manifest/SSTable.
    pub fn open(dir: impl Into<PathBuf>, config: LsmConfig) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| BdbError::Io(format!("create {}: {e}", dir.display())))?;
        let manifest = Manifest::load(&dir)?;
        let mut store = Self::with_config(config);
        // Sealed runs, oldest epoch first (manifest order).
        for &epoch in &manifest.sstables {
            let entries = manifest::read_sst(&dir, epoch)?;
            store
                .runs
                .push(Run::build(entries, config.bloom_bits_per_key));
        }
        remove_unreferenced(&dir, &manifest);
        // Replay the live WAL into the memtable, truncating torn tails.
        let wal_path = manifest::wal_path(&dir, manifest.wal_epoch);
        let replay = Wal::replay(&wal_path)?;
        store
            .stats
            .wal_replayed
            .store(replay.records.len() as u64, Ordering::Relaxed);
        store
            .stats
            .torn_recoveries
            .store(u64::from(replay.was_torn()), Ordering::Relaxed);
        for record in replay.records {
            match record {
                WalRecord::Put(k, v) => store.apply(k, Some(v)),
                WalRecord::Delete(k) => store.apply(k, None),
            }
        }
        let run_epochs = manifest.sstables.clone();
        store.durability = Some(Durability {
            wal: Wal::open(&wal_path)?,
            dir,
            manifest,
            run_epochs,
            armed: None,
        });
        Ok(store)
    }

    /// True for stores opened on a directory.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// The durable store's directory, when there is one.
    pub fn dir(&self) -> Option<&Path> {
        self.durability.as_ref().map(|d| d.dir.as_path())
    }

    /// Arm a one-shot kill switch (no-op on in-memory stores): the next
    /// time execution reaches `point`, the operation fails with
    /// [`BdbError::Crashed`] leaving the directory exactly as a process
    /// kill at that instant would.
    pub fn arm_crash(&mut self, point: CrashPoint) {
        if let Some(d) = &mut self.durability {
            d.armed = Some(point);
        }
    }

    /// Insert or overwrite a key.
    ///
    /// # Panics
    /// On durable stores, panics if the WAL append or a triggered
    /// flush/compaction fails — fallible callers (and anything arming
    /// crash points) should use [`Self::try_put`].
    pub fn put(&mut self, key: Key, value: Val) {
        self.try_put(key, value).expect("durable write failed");
    }

    /// Insert or overwrite a key, surfacing durability errors.
    ///
    /// # Errors
    /// Fails on WAL/SSTable I/O errors or an armed [`CrashPoint`].
    pub fn try_put(&mut self, key: Key, value: Val) -> Result<()> {
        StatCells::bump(&self.stats.writes);
        self.write(key, Some(value))
    }

    /// Delete a key (writes a tombstone).
    ///
    /// # Panics
    /// As [`Self::put`]; fallible callers should use [`Self::try_delete`].
    pub fn delete(&mut self, key: Key) {
        self.try_delete(key).expect("durable delete failed");
    }

    /// Delete a key, surfacing durability errors.
    ///
    /// # Errors
    /// Fails on WAL/SSTable I/O errors or an armed [`CrashPoint`].
    pub fn try_delete(&mut self, key: Key) -> Result<()> {
        StatCells::bump(&self.stats.writes);
        self.write(key, None)
    }

    fn write(&mut self, key: Key, value: Option<Val>) -> Result<()> {
        if let Some(d) = &mut self.durability {
            let record = match &value {
                Some(v) => WalRecord::Put(key.clone(), v.clone()),
                None => WalRecord::Delete(key.clone()),
            };
            // A WalAppend kill point writes a torn half-frame and dies:
            // the mutation never reaches the memtable.
            let torn = if d.armed == Some(CrashPoint::WalAppend) {
                d.armed = None;
                Some(record.encode().len() / 2)
            } else {
                None
            };
            d.wal.append(&record, torn)?;
            StatCells::bump(&self.stats.wal_appends);
        }
        self.apply(key, value);
        if self.memtable_bytes >= self.config.memtable_capacity_bytes {
            self.try_flush()?;
        }
        Ok(())
    }

    /// Apply one mutation to the memtable (no durability, no flush) —
    /// the shared tail of the write path and WAL replay.
    fn apply(&mut self, key: Key, value: Option<Val>) {
        let added = key.len() + value.as_ref().map_or(1, Val::len);
        if let Some(old) = self.memtable.insert(key, value) {
            self.memtable_bytes = self
                .memtable_bytes
                .saturating_sub(old.map_or(1, |v| v.len()));
        }
        self.memtable_bytes += added;
    }

    /// Freeze the memtable into a run.
    ///
    /// # Panics
    /// On durable stores, panics if sealing fails — use
    /// [`Self::try_flush`] there.
    pub fn flush(&mut self) {
        self.try_flush().expect("durable flush failed");
    }

    /// Freeze the memtable into a run; on durable stores, seal it as an
    /// SSTable epoch, update the manifest atomically, and rotate the WAL.
    ///
    /// # Errors
    /// Fails on I/O errors or an armed [`CrashPoint`].
    pub fn try_flush(&mut self) -> Result<()> {
        if self.memtable.is_empty() {
            return Ok(());
        }
        if let Some(d) = &mut self.durability {
            d.trip(CrashPoint::PreFlush)?;
        }
        let entries: Vec<(Key, Option<Val>)> = std::mem::take(&mut self.memtable)
            .into_iter()
            .collect();
        self.memtable_bytes = 0;
        if let Some(d) = &mut self.durability {
            // Seal the run, then publish it: sstable first (temp+rename),
            // manifest second (atomic), WAL rotation last. A crash
            // between any two steps recovers: an unpublished sstable is
            // an orphan (the WAL still has its records); a published one
            // makes the stale WAL segment a removable leftover.
            let epoch = d.manifest.next_epoch();
            manifest::write_sst(&d.dir, epoch, &entries)?;
            d.trip(CrashPoint::PreManifest)?;
            let old_wal = d.manifest.wal_epoch;
            d.manifest.sstables.push(epoch);
            d.manifest.wal_epoch = epoch + 1;
            d.manifest.store(&d.dir)?;
            d.trip(CrashPoint::PreWalRotate)?;
            let _ = std::fs::remove_file(manifest::wal_path(&d.dir, old_wal));
            d.wal = Wal::open(manifest::wal_path(&d.dir, d.manifest.wal_epoch))?;
            d.run_epochs.push(epoch);
        }
        self.runs
            .push(Run::build(entries, self.config.bloom_bits_per_key));
        StatCells::bump(&self.stats.flushes);
        if self.runs.len() > self.config.max_runs {
            self.try_compact()?;
        }
        Ok(())
    }

    /// Merge all runs into one, dropping shadowed versions and tombstones.
    ///
    /// # Panics
    /// On durable stores, panics if re-sealing fails — use
    /// [`Self::try_compact`] there.
    pub fn compact(&mut self) {
        self.try_compact().expect("durable compaction failed");
    }

    /// Merge all runs into one, dropping shadowed versions and
    /// tombstones; on durable stores the merged run is sealed as a new
    /// epoch and the superseded epochs are dropped from the manifest
    /// (atomically) and deleted. A crash anywhere inside leaves either
    /// the old epochs live or the new one — never both, never neither.
    ///
    /// # Errors
    /// Fails on I/O errors.
    pub fn try_compact(&mut self) -> Result<()> {
        if self.runs.len() <= 1 {
            return Ok(());
        }
        StatCells::bump(&self.stats.compactions);
        // Newest-wins merge: iterate runs oldest → newest into a map.
        let mut merged: BTreeMap<Key, Option<Val>> = BTreeMap::new();
        for run in self.runs.drain(..) {
            for (k, v) in run.entries {
                merged.insert(k, v);
            }
        }
        let entries: Vec<(Key, Option<Val>)> = merged
            .into_iter()
            .filter(|(_, v)| v.is_some())
            .collect();
        if let Some(d) = &mut self.durability {
            let epoch = d.manifest.next_epoch();
            let new_epochs = if entries.is_empty() {
                Vec::new()
            } else {
                manifest::write_sst(&d.dir, epoch, &entries)?;
                vec![epoch]
            };
            let old = std::mem::replace(&mut d.manifest.sstables, new_epochs.clone());
            d.manifest.store(&d.dir)?;
            for stale in old {
                let _ = std::fs::remove_file(manifest::sst_path(&d.dir, stale));
            }
            d.run_epochs = new_epochs;
        }
        if !entries.is_empty() {
            self.runs
                .push(Run::build(entries, self.config.bloom_bits_per_key));
        }
        Ok(())
    }

    /// Point lookup.
    ///
    /// Takes `&self`: reads never mutate the tree, and the counters are
    /// interior-mutable, so any number of lookups may run concurrently
    /// (e.g. under [`SharedLsm`]'s read lock) while no writer holds the
    /// store exclusively.
    pub fn get(&self, key: &[u8]) -> Option<Val> {
        StatCells::bump(&self.stats.reads);
        if let Some(v) = self.memtable.get(key) {
            StatCells::bump(&self.stats.memtable_hits);
            return v.clone();
        }
        for run in self.runs.iter().rev() {
            if let Some(bloom) = &run.bloom {
                if !bloom.may_contain(key) {
                    StatCells::bump(&self.stats.bloom_skips);
                    continue;
                }
            }
            StatCells::bump(&self.stats.run_probes);
            if let Some(v) = run.get(key) {
                return v.clone();
            }
        }
        None
    }

    /// Ordered range scan from `start` (inclusive) to `end` (exclusive,
    /// unbounded when `None`), returning up to `limit` live entries.
    /// Takes `&self` for the same shared-read discipline as [`Self::get`].
    pub fn scan(&self, start: &[u8], end: Option<&[u8]>, limit: usize) -> Vec<(Key, Val)> {
        StatCells::bump(&self.stats.scans);
        // Merge all levels into one view, newer levels overwriting older.
        let mut view: BTreeMap<Key, Option<Val>> = BTreeMap::new();
        for run in &self.runs {
            for (k, v) in run.range(start, end) {
                view.insert(k.clone(), v.clone());
            }
        }
        let mem_range = self.memtable.range((
            Bound::Included(start.to_vec()),
            end.map_or(Bound::Unbounded, |e| Bound::Excluded(e.to_vec())),
        ));
        for (k, v) in mem_range {
            view.insert(k.clone(), v.clone());
        }
        view.into_iter()
            .filter_map(|(k, v)| v.map(|val| (k, val)))
            .take(limit)
            .collect()
    }

    /// Number of live keys (scans everything; for tests and reports).
    pub fn len(&self) -> usize {
        self.scan(&[], None, usize::MAX).len()
    }

    /// True when no live keys exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> KvStats {
        self.stats.snapshot()
    }

    /// Number of immutable runs (for observing flush/compaction activity).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }
}

/// Remove artifacts the manifest does not reference: SSTable epochs a
/// crash sealed but never published (their records are still in the
/// WAL), WAL segments already superseded by a published flush, and
/// abandoned atomic-write temp files.
fn remove_unreferenced(dir: &Path, manifest: &Manifest) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale = if let Some(epoch) = parse_epoch(name, "sst-", ".sst") {
            !manifest.sstables.contains(&epoch)
        } else if let Some(epoch) = parse_epoch(name, "wal-", ".log") {
            epoch != manifest.wal_epoch
        } else {
            name.contains(".tmp-")
        };
        if stale {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

fn parse_epoch(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?.strip_suffix(suffix)?.parse().ok()
}

/// A thread-safe handle: the store behind an `Arc<RwLock>`, matching how
/// multi-threaded OLTP drivers share a store.
#[derive(Debug, Clone, Default)]
pub struct SharedLsm {
    inner: Arc<RwLock<LsmStore>>,
}

impl SharedLsm {
    /// A shared store with explicit configuration.
    pub fn with_config(config: LsmConfig) -> Self {
        Self { inner: Arc::new(RwLock::new(LsmStore::with_config(config))) }
    }

    /// Insert or overwrite.
    pub fn put(&self, key: Key, value: Val) {
        self.inner.write().put(key, value);
    }

    /// Point lookup. Takes the *read* lock: any number of concurrent
    /// readers proceed in parallel and only writers (put/delete, and the
    /// flushes/compactions they trigger) exclude them.
    pub fn get(&self, key: &[u8]) -> Option<Val> {
        self.inner.read().get(key)
    }

    /// Delete.
    pub fn delete(&self, key: Key) {
        self.inner.write().delete(key);
    }

    /// Range scan, under the read lock like [`Self::get`].
    pub fn scan(&self, start: &[u8], end: Option<&[u8]>, limit: usize) -> Vec<(Key, Val)> {
        self.inner.read().scan(start, end, limit)
    }

    /// Freeze the memtable into a run (exclusive, like writes).
    pub fn flush(&self) {
        self.inner.write().flush();
    }

    /// Number of immutable runs.
    pub fn run_count(&self) -> usize {
        self.inner.read().run_count()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> KvStats {
        self.inner.read().stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LsmStore {
        // Small budgets so flush/compaction paths run in tests.
        LsmStore::with_config(LsmConfig { memtable_capacity_bytes: 256, max_runs: 2, bloom_bits_per_key: 10 })
    }

    fn k(i: u32) -> Key {
        format!("key{i:06}").into_bytes()
    }

    #[test]
    fn put_get_roundtrip() {
        let mut s = LsmStore::default();
        s.put(k(1), b"one".to_vec());
        s.put(k(2), b"two".to_vec());
        assert_eq!(s.get(&k(1)), Some(b"one".to_vec()));
        assert_eq!(s.get(&k(3)), None);
    }

    #[test]
    fn overwrite_returns_latest() {
        let mut s = tiny();
        for ver in 0..20 {
            s.put(k(7), format!("v{ver}").into_bytes());
        }
        assert_eq!(s.get(&k(7)), Some(b"v19".to_vec()));
    }

    #[test]
    fn delete_shadows_older_runs() {
        let mut s = tiny();
        s.put(k(1), b"x".to_vec());
        s.flush();
        s.delete(k(1));
        s.flush();
        assert_eq!(s.get(&k(1)), None);
        // And scans agree.
        assert!(s.scan(&[], None, 10).is_empty());
    }

    #[test]
    fn flush_and_compaction_fire() {
        let mut s = tiny();
        for i in 0..200 {
            s.put(k(i), vec![b'v'; 32]);
        }
        let st = s.stats();
        assert!(st.flushes > 0, "expected flushes");
        assert!(st.compactions > 0, "expected compactions");
        assert!(s.run_count() <= 3);
        // All keys still readable after compaction.
        for i in 0..200 {
            assert!(s.get(&k(i)).is_some(), "key {i} lost");
        }
    }

    #[test]
    fn compaction_reclaims_tombstones() {
        let mut s = LsmStore::with_config(LsmConfig {
            memtable_capacity_bytes: 64,
            max_runs: 1, bloom_bits_per_key: 10, });
        s.put(k(1), b"x".to_vec());
        s.flush();
        s.delete(k(1));
        s.flush(); // triggers compaction (2 runs > max 1)
        assert_eq!(s.run_count(), 0, "tombstone-only store should compact away");
    }

    #[test]
    fn scan_is_ordered_and_bounded() {
        let mut s = tiny();
        for i in (0..50).rev() {
            s.put(k(i), i.to_string().into_bytes());
        }
        let out = s.scan(&k(10), Some(&k(20)), 100);
        let keys: Vec<Key> = out.iter().map(|(key, _)| key.clone()).collect();
        let expect: Vec<Key> = (10..20).map(k).collect();
        assert_eq!(keys, expect);
        // Limit applies.
        assert_eq!(s.scan(&k(0), None, 5).len(), 5);
    }

    #[test]
    fn scan_sees_newest_version_across_levels() {
        let mut s = tiny();
        s.put(k(5), b"old".to_vec());
        s.flush();
        s.put(k(5), b"new".to_vec());
        let out = s.scan(&k(5), None, 1);
        assert_eq!(out[0].1, b"new".to_vec());
    }

    #[test]
    fn stats_track_read_paths() {
        let mut s = tiny();
        s.put(k(1), b"x".to_vec());
        s.get(&k(1)); // memtable hit
        s.flush();
        s.get(&k(1)); // run probe
        let st = s.stats();
        assert_eq!(st.reads, 2);
        assert_eq!(st.memtable_hits, 1);
        assert!(st.run_probes >= 1);
        assert!(st.total_ops() >= 3);
    }

    #[test]
    fn bloom_filters_skip_cold_run_probes() {
        let mut with_bloom = LsmStore::with_config(LsmConfig {
            memtable_capacity_bytes: 512,
            max_runs: 16,
            bloom_bits_per_key: 10,
        });
        for i in 0..200 {
            with_bloom.put(k(i), vec![b'v'; 16]);
        }
        with_bloom.flush();
        // Misses: keys that exist in no run.
        for i in 1000..1200 {
            assert_eq!(with_bloom.get(&k(i)), None);
        }
        let st = with_bloom.stats();
        assert!(st.bloom_skips > 150, "bloom skips {}", st.bloom_skips);

        let mut without = LsmStore::with_config(LsmConfig {
            memtable_capacity_bytes: 512,
            max_runs: 16,
            bloom_bits_per_key: 0,
        });
        for i in 0..200 {
            without.put(k(i), vec![b'v'; 16]);
        }
        without.flush();
        for i in 1000..1200 {
            assert_eq!(without.get(&k(i)), None);
        }
        assert_eq!(without.stats().bloom_skips, 0);
        assert!(without.stats().run_probes > with_bloom.stats().run_probes);
    }

    #[test]
    fn bloom_never_hides_present_keys() {
        let mut s = LsmStore::with_config(LsmConfig {
            memtable_capacity_bytes: 128,
            max_runs: 32,
            bloom_bits_per_key: 10,
        });
        for i in 0..300 {
            s.put(k(i), i.to_string().into_bytes());
        }
        s.flush();
        for i in 0..300 {
            assert_eq!(s.get(&k(i)), Some(i.to_string().into_bytes()));
        }
    }

    fn durable_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bdb-lsm-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn contents(s: &LsmStore) -> Vec<(Key, Val)> {
        s.scan(&[], None, usize::MAX)
    }

    #[test]
    fn durable_store_survives_reopen() {
        let dir = durable_dir("reopen");
        let cfg = LsmConfig { memtable_capacity_bytes: 256, max_runs: 3, bloom_bits_per_key: 10 };
        let mut s = LsmStore::open(&dir, cfg).unwrap();
        assert!(s.is_durable());
        assert_eq!(s.dir(), Some(dir.as_path()));
        for i in 0..60 {
            s.try_put(k(i), format!("v{i}").into_bytes()).unwrap();
        }
        s.try_delete(k(7)).unwrap();
        let expect = contents(&s);
        let flushed = s.stats().flushes;
        assert!(flushed > 0, "tiny budget should have flushed");
        drop(s);
        let back = LsmStore::open(&dir, cfg).unwrap();
        assert_eq!(contents(&back), expect);
        assert_eq!(back.get(&k(7)), None);
        assert!(back.stats().torn_recoveries == 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_reopen_is_idempotent_and_appendable() {
        let dir = durable_dir("idem");
        let cfg = LsmConfig { memtable_capacity_bytes: 128, max_runs: 2, bloom_bits_per_key: 0 };
        let mut s = LsmStore::open(&dir, cfg).unwrap();
        for i in 0..30 {
            s.try_put(k(i), vec![b'a'; 8]).unwrap();
        }
        let expect = contents(&s);
        drop(s);
        // Two successive reopens with no writes: identical state.
        let once = LsmStore::open(&dir, cfg).unwrap();
        let snapshot = contents(&once);
        drop(once);
        let mut twice = LsmStore::open(&dir, cfg).unwrap();
        assert_eq!(snapshot, expect);
        assert_eq!(contents(&twice), expect);
        // And the store still accepts writes after recovery.
        twice.try_put(k(999), b"late".to_vec()).unwrap();
        drop(twice);
        let last = LsmStore::open(&dir, cfg).unwrap();
        assert_eq!(last.get(&k(999)), Some(b"late".to_vec()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_points_lose_at_most_the_in_flight_write() {
        for point in [
            CrashPoint::WalAppend,
            CrashPoint::PreFlush,
            CrashPoint::PreManifest,
            CrashPoint::PreWalRotate,
        ] {
            let dir = durable_dir(&format!("crash-{point}"));
            let cfg =
                LsmConfig { memtable_capacity_bytes: 1 << 20, max_runs: 4, bloom_bits_per_key: 10 };
            let mut s = LsmStore::open(&dir, cfg).unwrap();
            for i in 0..40 {
                s.try_put(k(i), format!("v{i}").into_bytes()).unwrap();
            }
            let committed = contents(&s);
            s.arm_crash(point);
            // WalAppend dies inside the next write; the flush points die
            // inside an explicit flush.
            let err = if point == CrashPoint::WalAppend {
                s.try_put(k(777), b"lost".to_vec()).unwrap_err()
            } else {
                s.try_flush().unwrap_err()
            };
            assert!(err.is_crash(), "{point}: {err}");
            drop(s);
            let back = LsmStore::open(&dir, cfg).unwrap();
            assert_eq!(
                contents(&back),
                committed,
                "recovery after {point} must restore the committed contents"
            );
            if point == CrashPoint::WalAppend {
                assert_eq!(back.stats().torn_recoveries, 1, "{point} leaves a torn tail");
                assert_eq!(back.get(&k(777)), None, "the in-flight write died with the crash");
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn durable_compaction_drops_superseded_epochs() {
        let dir = durable_dir("compact");
        let cfg = LsmConfig { memtable_capacity_bytes: 64, max_runs: 2, bloom_bits_per_key: 10 };
        let mut s = LsmStore::open(&dir, cfg).unwrap();
        for i in 0..120 {
            s.try_put(k(i % 24), format!("v{i}").into_bytes()).unwrap();
        }
        assert!(s.stats().compactions > 0);
        let expect = contents(&s);
        drop(s);
        // Only manifest-referenced files survive, and state round-trips.
        let back = LsmStore::open(&dir, cfg).unwrap();
        assert_eq!(contents(&back), expect);
        let sst_files = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().ends_with(".sst"))
            .count();
        assert!(back.run_count() >= sst_files.min(1), "sealed runs load as runs");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn in_memory_store_ignores_crash_arming() {
        let mut s = tiny();
        s.arm_crash(CrashPoint::PreFlush);
        s.put(k(1), b"x".to_vec());
        s.flush();
        assert_eq!(s.get(&k(1)), Some(b"x".to_vec()));
        assert!(!s.is_durable());
        assert!(s.dir().is_none());
        assert_eq!(s.stats().wal_appends, 0);
    }

    #[test]
    fn shared_store_is_cloneable_and_consistent() {
        let s = SharedLsm::default();
        let s2 = s.clone();
        s.put(b"a".to_vec(), b"1".to_vec());
        assert_eq!(s2.get(b"a"), Some(b"1".to_vec()));
        s2.delete(b"a".to_vec());
        assert_eq!(s.get(b"a"), None);
        assert!(s.stats().writes >= 2);
    }

    #[test]
    fn shared_store_concurrent_writers() {
        let s = SharedLsm::with_config(LsmConfig {
            memtable_capacity_bytes: 512,
            max_runs: 2, bloom_bits_per_key: 10, });
        std::thread::scope(|scope| {
            for t in 0..4 {
                let s = s.clone();
                scope.spawn(move || {
                    for i in 0..250 {
                        s.put(
                            format!("t{t}k{i:04}").into_bytes(),
                            vec![b'x'; 16],
                        );
                    }
                });
            }
        });
        let all = s.scan(b"", None, usize::MAX);
        assert_eq!(all.len(), 1000);
    }

    #[test]
    fn shared_store_readers_run_during_flushes() {
        // A writer hammers a tiny memtable (inducing flushes and
        // compactions) while reader threads hold the read lock for gets
        // and scans. Readers must always observe a fully committed value
        // for preloaded keys — never a torn or missing one.
        let s = SharedLsm::with_config(LsmConfig {
            memtable_capacity_bytes: 256,
            max_runs: 2,
            bloom_bits_per_key: 10,
        });
        for i in 0..64u32 {
            s.put(k(i), format!("v{i}").into_bytes());
        }
        std::thread::scope(|scope| {
            let writer = {
                let s = s.clone();
                scope.spawn(move || {
                    for round in 0..40 {
                        for i in 0..64u32 {
                            s.put(k(i), format!("v{i}").into_bytes());
                        }
                        if round % 8 == 0 {
                            s.flush();
                        }
                    }
                })
            };
            for t in 0..3 {
                let s = s.clone();
                scope.spawn(move || {
                    for i in 0..400u32 {
                        let key = k((i + t * 17) % 64);
                        let got = s.get(&key).expect("preloaded key must be visible");
                        assert!(got.starts_with(b"v"), "torn value {got:?}");
                        if i % 50 == 0 {
                            assert!(!s.scan(&k(0), None, 16).is_empty());
                        }
                    }
                });
            }
            writer.join().unwrap();
        });
        let st = s.stats();
        assert!(st.flushes > 0, "writer must have induced flushes");
        assert!(st.reads >= 1200, "readers must all have counted");
    }
}
