//! The durability manifest and sealed-SSTable files.
//!
//! A durable store's directory holds:
//!
//! * `MANIFEST.json` — the authoritative state: the live WAL epoch and
//!   the ordered list of sealed-SSTable epochs. Always written via
//!   temp-file + atomic rename, so a crash mid-update leaves either the
//!   old manifest or the new one, never a torn hybrid.
//! * `sst-<epoch>.sst` — one immutable sorted run per sealed epoch
//!   (oldest epoch = oldest run), checksummed end-to-end and also written
//!   temp+rename. An SSTable not named by the manifest is an orphan from
//!   a crash between the seal and the manifest update; recovery deletes
//!   it (its records are still in the WAL).
//! * `wal-<epoch>.log` — the live WAL segment (see [`crate::wal`]).
//!   Rotation on flush bumps the epoch; segments older than the
//!   manifest's epoch are crash leftovers, already sealed, and deleted.

use crate::wal::fnv1a;
pub use bdb_common::fsio::write_atomic;
use bdb_common::{BdbError, Result};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Key/value/tombstone entries of one run, as stored in an SSTable.
pub type SstEntries = Vec<(Vec<u8>, Option<Vec<u8>>)>;

/// The manifest: what is sealed and which WAL segment is live.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Manifest {
    /// The live WAL segment's epoch.
    pub wal_epoch: u64,
    /// Sealed SSTable epochs, oldest first.
    pub sstables: Vec<u64>,
}

impl Manifest {
    /// The manifest file inside `dir`.
    pub fn path(dir: &Path) -> PathBuf {
        dir.join("MANIFEST.json")
    }

    /// The next epoch no existing artifact uses.
    pub fn next_epoch(&self) -> u64 {
        self.sstables
            .iter()
            .copied()
            .chain([self.wal_epoch])
            .max()
            .unwrap_or(0)
            + 1
    }

    /// Load the manifest from `dir`; a missing file is a fresh store.
    ///
    /// # Errors
    /// Fails on unreadable or unparsable manifests — an unparsable
    /// manifest means the atomic-rename contract was violated from
    /// outside, which must not be silently healed into an empty store.
    pub fn load(dir: &Path) -> Result<Self> {
        let path = Self::path(dir);
        match std::fs::read_to_string(&path) {
            Ok(text) => serde_json::from_str(&text)
                .map_err(|e| BdbError::Io(format!("parse manifest {}: {e}", path.display()))),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Self::default()),
            Err(e) => Err(BdbError::Io(format!("read manifest {}: {e}", path.display()))),
        }
    }

    /// Persist atomically: write a temp file in the same directory, then
    /// rename over the live manifest.
    pub fn store(&self, dir: &Path) -> Result<()> {
        let json = serde_json::to_string(self)
            .map_err(|e| BdbError::Io(format!("encode manifest: {e}")))?;
        write_atomic(&Self::path(dir), json.as_bytes())
    }
}

/// The SSTable file for `epoch` inside `dir`.
pub fn sst_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("sst-{epoch:08}.sst"))
}

/// The WAL segment file for `epoch` inside `dir`.
pub fn wal_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("wal-{epoch:08}.log"))
}

const SST_MAGIC: &[u8; 8] = b"BDBSST01";

/// Serialize one sealed run. Layout: magic, entry count, then per entry
/// `[u8 tombstone][u32 key_len][key][u32 val_len][val]`, closed by a
/// trailing FNV-1a checksum over everything before it.
pub fn encode_sst(entries: &SstEntries) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(SST_MAGIC);
    out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for (key, value) in entries {
        out.push(u8::from(value.is_none()));
        out.extend_from_slice(&(key.len() as u32).to_le_bytes());
        out.extend_from_slice(key);
        let val = value.as_deref().unwrap_or(&[]);
        out.extend_from_slice(&(val.len() as u32).to_le_bytes());
        out.extend_from_slice(val);
    }
    let checksum = fnv1a(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Decode a sealed run, verifying magic and checksum.
pub fn decode_sst(bytes: &[u8], what: &str) -> Result<SstEntries> {
    let fail = |why: &str| BdbError::Io(format!("sstable {what}: {why}"));
    if bytes.len() < 24 || &bytes[..8] != SST_MAGIC {
        return Err(fail("bad magic or truncated header"));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
    if fnv1a(body) != stored {
        return Err(fail("checksum mismatch"));
    }
    let count = u64::from_le_bytes(body[8..16].try_into().expect("8 bytes")) as usize;
    let mut entries = Vec::with_capacity(count);
    let mut at = 16usize;
    for _ in 0..count {
        let tomb = *body.get(at).ok_or_else(|| fail("truncated entry"))? != 0;
        at += 1;
        let read_len = |at: usize| -> Result<usize> {
            Ok(u32::from_le_bytes(
                body.get(at..at + 4)
                    .ok_or_else(|| fail("truncated length"))?
                    .try_into()
                    .expect("4 bytes"),
            ) as usize)
        };
        let key_len = read_len(at)?;
        at += 4;
        let key = body
            .get(at..at + key_len)
            .ok_or_else(|| fail("truncated key"))?
            .to_vec();
        at += key_len;
        let val_len = read_len(at)?;
        at += 4;
        let val = body
            .get(at..at + val_len)
            .ok_or_else(|| fail("truncated value"))?
            .to_vec();
        at += val_len;
        entries.push((key, if tomb { None } else { Some(val) }));
    }
    Ok(entries)
}

/// Seal a run to its epoch file, atomically.
pub fn write_sst(dir: &Path, epoch: u64, entries: &SstEntries) -> Result<()> {
    write_atomic(&sst_path(dir, epoch), &encode_sst(entries))
}

/// Load the sealed run for `epoch`.
pub fn read_sst(dir: &Path, epoch: u64) -> Result<SstEntries> {
    let path = sst_path(dir, epoch);
    let bytes = std::fs::read(&path)
        .map_err(|e| BdbError::Io(format!("read sstable {}: {e}", path.display())))?;
    decode_sst(&bytes, &path.display().to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bdb-manifest-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn manifest_round_trips_and_defaults() {
        let dir = tmp("roundtrip");
        assert_eq!(Manifest::load(&dir).unwrap(), Manifest::default());
        let m = Manifest { wal_epoch: 3, sstables: vec![1, 2] };
        m.store(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), m);
        assert_eq!(m.next_epoch(), 4);
        assert_eq!(Manifest::default().next_epoch(), 1);
    }

    #[test]
    fn sst_round_trips_tombstones() {
        let dir = tmp("sst");
        let entries: SstEntries = vec![
            (b"a".to_vec(), Some(b"1".to_vec())),
            (b"b".to_vec(), None),
            (b"c".to_vec(), Some(Vec::new())),
        ];
        write_sst(&dir, 7, &entries).unwrap();
        assert_eq!(read_sst(&dir, 7).unwrap(), entries);
    }

    #[test]
    fn sst_rejects_corruption() {
        let dir = tmp("sstcorrupt");
        write_sst(&dir, 1, &vec![(b"k".to_vec(), Some(b"v".to_vec()))]).unwrap();
        let path = sst_path(&dir, 1);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x5A;
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_sst(&dir, 1).is_err());
    }

}
