//! The write-ahead log: length-prefixed, checksummed mutation records.
//!
//! Every durable mutation is appended here before it touches the
//! memtable, so a crash at any instant loses at most the record being
//! written — and a torn tail (a partially written final record) is
//! detected by the length prefix + checksum and truncated away on
//! replay, recovering the longest valid prefix.
//!
//! # Record format
//!
//! ```text
//! [u32 LE payload_len][u64 LE fnv1a(payload)][payload]
//! payload = [u8 op (0 = put, 1 = delete)]
//!           [u32 LE key_len][key bytes]
//!           [value bytes]            (puts only; rest of the payload)
//! ```
//!
//! Replay is fsync-free and deterministic: records are applied in append
//! order, and the same log bytes always rebuild the same memtable. The
//! design trades OS-crash durability (no fsync) for reproducible
//! process-crash recovery — exactly the failure model the kill-point
//! chaos tests exercise.

use bdb_common::{BdbError, Result};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Cap on a single record's payload, guarding replay against a corrupt
/// length prefix claiming gigabytes.
pub const MAX_PAYLOAD_BYTES: u32 = 1 << 28;

/// One logged mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// Insert or overwrite `key` with `value`.
    Put(Vec<u8>, Vec<u8>),
    /// Delete `key` (a tombstone).
    Delete(Vec<u8>),
}

impl WalRecord {
    /// The record's key.
    pub fn key(&self) -> &[u8] {
        match self {
            WalRecord::Put(k, _) | WalRecord::Delete(k) => k,
        }
    }

    /// Serialize the payload (everything the checksum covers).
    fn payload(&self) -> Vec<u8> {
        let (op, key, val): (u8, &[u8], &[u8]) = match self {
            WalRecord::Put(k, v) => (0, k, v),
            WalRecord::Delete(k) => (1, k, &[]),
        };
        let mut out = Vec::with_capacity(1 + 4 + key.len() + val.len());
        out.push(op);
        out.extend_from_slice(&(key.len() as u32).to_le_bytes());
        out.extend_from_slice(key);
        out.extend_from_slice(val);
        out
    }

    /// The full framed encoding: length prefix, checksum, payload.
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.payload();
        let mut out = Vec::with_capacity(12 + payload.len());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Decode one payload (after its frame validated).
    fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
        let (&op, rest) = payload.split_first()?;
        if rest.len() < 4 {
            return None;
        }
        let key_len = u32::from_le_bytes(rest[..4].try_into().ok()?) as usize;
        let rest = &rest[4..];
        if rest.len() < key_len {
            return None;
        }
        let (key, val) = rest.split_at(key_len);
        match op {
            0 => Some(WalRecord::Put(key.to_vec(), val.to_vec())),
            1 if val.is_empty() => Some(WalRecord::Delete(key.to_vec())),
            _ => None,
        }
    }
}

/// 64-bit FNV-1a — the workspace's canonical checksum (the same family
/// the conformance payload digests use).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

/// The outcome of replaying a log file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalReplay {
    /// Valid records, in append order.
    pub records: Vec<WalRecord>,
    /// Bytes of the longest valid prefix (where a torn tail, if any,
    /// begins).
    pub valid_bytes: u64,
    /// Torn-tail bytes discarded (0 for a clean log).
    pub torn_bytes: u64,
}

impl WalReplay {
    /// True when the log ended mid-record and was truncated.
    pub fn was_torn(&self) -> bool {
        self.torn_bytes > 0
    }
}

/// Scan log bytes, returning every fully valid record and the offset
/// where the first invalid frame begins. Everything from that offset on
/// is a torn tail: a record the process died inside (or trailing
/// garbage), indistinguishable from each other and equally discardable.
pub fn scan(bytes: &[u8]) -> WalReplay {
    let mut records = Vec::new();
    let mut offset = 0usize;
    loop {
        let rest = &bytes[offset..];
        if rest.len() < 12 {
            break;
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes"));
        if len > MAX_PAYLOAD_BYTES {
            break;
        }
        let len = len as usize;
        if rest.len() < 12 + len {
            break;
        }
        let checksum = u64::from_le_bytes(rest[4..12].try_into().expect("8 bytes"));
        let payload = &rest[12..12 + len];
        if fnv1a(payload) != checksum {
            break;
        }
        let Some(record) = WalRecord::decode_payload(payload) else {
            break;
        };
        records.push(record);
        offset += 12 + len;
    }
    WalReplay {
        records,
        valid_bytes: offset as u64,
        torn_bytes: (bytes.len() - offset) as u64,
    }
}

/// An append-only log segment on disk.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: File,
}

impl Wal {
    /// Open (creating if absent) the segment at `path` for appending.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self> {
        let path = path.into();
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| BdbError::Io(format!("open wal {}: {e}", path.display())))?;
        Ok(Self { path, file })
    }

    /// The segment's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one record. `torn_after` simulates a mid-append process
    /// kill: only that many bytes of the frame reach the file before the
    /// append "dies" — the caller then surfaces the crash. `None` writes
    /// the whole frame.
    pub fn append(&mut self, record: &WalRecord, torn_after: Option<usize>) -> Result<()> {
        let frame = record.encode();
        let bytes = match torn_after {
            Some(n) => &frame[..n.min(frame.len().saturating_sub(1)).max(1)],
            None => &frame[..],
        };
        self.file
            .write_all(bytes)
            .map_err(|e| BdbError::Io(format!("append wal {}: {e}", self.path.display())))?;
        if torn_after.is_some() {
            return Err(BdbError::Crashed(format!(
                "kill point mid-WAL-append in {} ({} of {} frame bytes written)",
                self.path.display(),
                bytes.len(),
                frame.len()
            )));
        }
        Ok(())
    }

    /// Replay the segment at `path`: scan for the longest valid prefix,
    /// truncate any torn tail off the file, and return the records. A
    /// missing file replays as empty (a store that never wrote).
    pub fn replay(path: &Path) -> Result<WalReplay> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(WalReplay { records: Vec::new(), valid_bytes: 0, torn_bytes: 0 })
            }
            Err(e) => return Err(BdbError::Io(format!("read wal {}: {e}", path.display()))),
        };
        let replay = scan(&bytes);
        if replay.was_torn() {
            let file = OpenOptions::new()
                .write(true)
                .open(path)
                .map_err(|e| BdbError::Io(format!("open wal {}: {e}", path.display())))?;
            file.set_len(replay.valid_bytes)
                .map_err(|e| BdbError::Io(format!("truncate wal {}: {e}", path.display())))?;
        }
        Ok(replay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(i: u32) -> WalRecord {
        WalRecord::Put(format!("k{i:04}").into_bytes(), vec![b'v'; i as usize % 7 + 1])
    }

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bdb-wal-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal-0.log")
    }

    #[test]
    fn append_replay_round_trip() {
        let path = tmp("roundtrip");
        let mut wal = Wal::open(&path).unwrap();
        let records: Vec<WalRecord> = (0..20)
            .map(|i| {
                if i % 5 == 4 {
                    WalRecord::Delete(format!("k{i:04}").into_bytes())
                } else {
                    rec(i)
                }
            })
            .collect();
        for r in &records {
            wal.append(r, None).unwrap();
        }
        drop(wal);
        let replay = Wal::replay(&path).unwrap();
        assert_eq!(replay.records, records);
        assert!(!replay.was_torn());
    }

    #[test]
    fn torn_tail_truncates_to_longest_valid_prefix() {
        let path = tmp("torn");
        let mut wal = Wal::open(&path).unwrap();
        for i in 0..3 {
            wal.append(&rec(i), None).unwrap();
        }
        // The fourth append dies mid-frame.
        let err = wal.append(&rec(3), Some(5)).unwrap_err();
        assert!(err.is_crash());
        drop(wal);
        let replay = Wal::replay(&path).unwrap();
        assert_eq!(replay.records, vec![rec(0), rec(1), rec(2)]);
        assert!(replay.was_torn());
        // The file was physically truncated: a second replay is clean.
        let again = Wal::replay(&path).unwrap();
        assert!(!again.was_torn());
        assert_eq!(again.records.len(), 3);
        // And the log accepts appends after recovery.
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&rec(9), None).unwrap();
        assert_eq!(Wal::replay(&path).unwrap().records.len(), 4);
    }

    #[test]
    fn corrupt_checksum_ends_replay() {
        let path = tmp("corrupt");
        let mut wal = Wal::open(&path).unwrap();
        for i in 0..4 {
            wal.append(&rec(i), None).unwrap();
        }
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload byte of the third record.
        let two = rec(0).encode().len() * 2;
        bytes[two + 13] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let replay = Wal::replay(&path).unwrap();
        assert_eq!(replay.records, vec![rec(0), rec(1)]);
        assert!(replay.was_torn());
    }

    #[test]
    fn missing_file_replays_empty() {
        let replay = Wal::replay(Path::new("/nonexistent/bdb-wal.log")).unwrap();
        assert!(replay.records.is_empty());
        assert_eq!(replay.valid_bytes, 0);
    }

    #[test]
    fn insane_length_prefix_is_a_torn_tail() {
        let path = tmp("length");
        let mut frame = rec(0).encode();
        frame.extend_from_slice(&u32::MAX.to_le_bytes());
        frame.extend_from_slice(&[0u8; 20]);
        std::fs::write(&path, &frame).unwrap();
        let replay = Wal::replay(&path).unwrap();
        assert_eq!(replay.records, vec![rec(0)]);
        assert!(replay.was_torn());
    }
}
