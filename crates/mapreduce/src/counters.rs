//! Hadoop-style job counters.
//!
//! Counters are the engine's contribution to the paper's *architecture
//! metrics*: deterministic operation counts that are comparable across
//! workload categories, unlike wall-clock times (see `bdb-metrics`).

use std::sync::atomic::{AtomicU64, Ordering};

/// Live atomic counters updated by map/reduce workers.
#[derive(Debug, Default)]
pub struct Counters {
    /// Records read by mappers.
    pub map_input_records: AtomicU64,
    /// Key/value pairs emitted by mappers.
    pub map_output_records: AtomicU64,
    /// Pairs remaining after the combiner (equals map output when no
    /// combiner runs).
    pub combine_output_records: AtomicU64,
    /// Pairs moved through the shuffle.
    pub shuffle_records: AtomicU64,
    /// Distinct keys seen by reducers.
    pub reduce_input_groups: AtomicU64,
    /// Records emitted by reducers.
    pub reduce_output_records: AtomicU64,
}

impl Counters {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to a counter with relaxed ordering (counters are
    /// statistical, not synchronising).
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// An immutable snapshot of the current values.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            map_input_records: self.map_input_records.load(Ordering::Relaxed),
            map_output_records: self.map_output_records.load(Ordering::Relaxed),
            combine_output_records: self.combine_output_records.load(Ordering::Relaxed),
            shuffle_records: self.shuffle_records.load(Ordering::Relaxed),
            reduce_input_groups: self.reduce_input_groups.load(Ordering::Relaxed),
            reduce_output_records: self.reduce_output_records.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`Counters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Records read by mappers.
    pub map_input_records: u64,
    /// Key/value pairs emitted by mappers.
    pub map_output_records: u64,
    /// Pairs remaining after the combiner.
    pub combine_output_records: u64,
    /// Pairs moved through the shuffle.
    pub shuffle_records: u64,
    /// Distinct keys seen by reducers.
    pub reduce_input_groups: u64,
    /// Records emitted by reducers.
    pub reduce_output_records: u64,
}

impl CounterSnapshot {
    /// Total record operations: the engine's instruction-count proxy used
    /// by the architecture metrics.
    pub fn total_record_ops(&self) -> u64 {
        self.map_input_records
            + self.map_output_records
            + self.shuffle_records
            + self.reduce_output_records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_adds() {
        let c = Counters::new();
        Counters::add(&c.map_input_records, 10);
        Counters::add(&c.map_output_records, 25);
        Counters::add(&c.map_input_records, 5);
        let s = c.snapshot();
        assert_eq!(s.map_input_records, 15);
        assert_eq!(s.map_output_records, 25);
        assert_eq!(s.reduce_output_records, 0);
    }

    #[test]
    fn total_record_ops_sums_the_flow() {
        let s = CounterSnapshot {
            map_input_records: 1,
            map_output_records: 2,
            combine_output_records: 2,
            shuffle_records: 4,
            reduce_input_groups: 1,
            reduce_output_records: 8,
        };
        assert_eq!(s.total_record_ops(), 15);
    }
}
