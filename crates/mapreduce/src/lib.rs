//! A miniature in-process MapReduce engine.
//!
//! The substrate standing in for Hadoop in this reproduction (see
//! DESIGN.md's substitution table). It executes the genuine MapReduce
//! dataflow — input splits → parallel map → optional combine →
//! hash-partitioned shuffle → per-partition sort → grouped reduce — on
//! threads instead of a cluster, with Hadoop-style job counters feeding
//! the architecture metrics.
//!
//! ```
//! use bdb_mapreduce::{run_job, JobConfig};
//!
//! // WordCount over three "lines".
//! let input = vec!["big data", "big systems", "data"];
//! let result = run_job(
//!     &JobConfig::default(),
//!     input,
//!     |line, emit| {
//!         for w in line.split(' ') {
//!             emit(w.to_string(), 1u64);
//!         }
//!     },
//!     |word, counts, out| out((word.clone(), counts.iter().sum::<u64>())),
//! );
//! let mut pairs = result.outputs;
//! pairs.sort();
//! assert_eq!(pairs, vec![
//!     ("big".into(), 2), ("data".into(), 2), ("systems".into(), 1),
//! ]);
//! ```

pub mod counters;
pub mod runtime;

pub use counters::{CounterSnapshot, Counters};
pub use runtime::{run_job, run_job_with_combiner, JobConfig, JobResult};
