//! The MapReduce execution pipeline.
//!
//! `run_job` executes: split → map (parallel) → \[combine\] → partition by
//! key hash → shuffle → sort within partition → group → reduce (parallel).
//! The dataflow is the real thing; only the transport (memory instead of
//! disk/network) is simulated.

use crate::counters::{CounterSnapshot, Counters};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::time::{Duration, Instant};

/// Job-level configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobConfig {
    /// Number of map tasks (input splits). 0 = one per worker thread.
    pub map_tasks: usize,
    /// Number of reduce tasks (shuffle partitions).
    pub reduce_tasks: usize,
    /// Worker threads for both phases. 0 = available parallelism.
    pub workers: usize,
}

impl Default for JobConfig {
    fn default() -> Self {
        Self { map_tasks: 0, reduce_tasks: 4, workers: 0 }
    }
}

impl JobConfig {
    fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        }
    }
}

/// The result of a completed job.
#[derive(Debug)]
pub struct JobResult<O> {
    /// Reducer outputs, concatenated in partition order.
    pub outputs: Vec<O>,
    /// Final counter values.
    pub counters: CounterSnapshot,
    /// Wall-clock duration of the whole job.
    pub elapsed: Duration,
}

fn hash_partition<K: Hash>(key: &K, partitions: usize) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % partitions as u64) as usize
}

/// Split `input` into `n` nearly equal chunks, preserving order.
fn split_input<I>(mut input: Vec<I>, n: usize) -> Vec<Vec<I>> {
    let n = n.max(1);
    let total = input.len();
    let base = total / n;
    let extra = total % n;
    let mut splits = Vec::with_capacity(n);
    // Draining from the front keeps split order aligned with input order.
    let mut rest = input.split_off(0);
    for i in 0..n {
        let take = base + usize::from(i < extra);
        let tail = rest.split_off(take.min(rest.len()));
        splits.push(rest);
        rest = tail;
    }
    splits
}

/// Run a MapReduce job without a combiner. See the crate docs for an
/// example.
pub fn run_job<I, K, V, O, M, R>(
    config: &JobConfig,
    input: Vec<I>,
    mapper: M,
    reducer: R,
) -> JobResult<O>
where
    I: Send,
    K: Ord + Hash + Clone + Send,
    V: Send,
    O: Send,
    M: Fn(&I, &mut dyn FnMut(K, V)) + Sync,
    R: Fn(&K, Vec<V>, &mut dyn FnMut(O)) + Sync,
{
    // A no-op combiner type so both entry points share one pipeline.
    let no_combiner: Option<&fn(&K, Vec<V>) -> V> = None;
    run_pipeline(config, input, &mapper, no_combiner, &reducer)
}

/// Run a MapReduce job with a combiner that folds each mapper's local
/// values per key before the shuffle (Hadoop's `combine` step).
pub fn run_job_with_combiner<I, K, V, O, M, C, R>(
    config: &JobConfig,
    input: Vec<I>,
    mapper: M,
    combiner: C,
    reducer: R,
) -> JobResult<O>
where
    I: Send,
    K: Ord + Hash + Clone + Send,
    V: Send,
    O: Send,
    M: Fn(&I, &mut dyn FnMut(K, V)) + Sync,
    C: Fn(&K, Vec<V>) -> V + Sync,
    R: Fn(&K, Vec<V>, &mut dyn FnMut(O)) + Sync,
{
    run_pipeline(config, input, &mapper, Some(&combiner), &reducer)
}

fn run_pipeline<I, K, V, O, M, C, R>(
    config: &JobConfig,
    input: Vec<I>,
    mapper: &M,
    combiner: Option<&C>,
    reducer: &R,
) -> JobResult<O>
where
    I: Send,
    K: Ord + Hash + Clone + Send,
    V: Send,
    O: Send,
    M: Fn(&I, &mut dyn FnMut(K, V)) + Sync,
    C: Fn(&K, Vec<V>) -> V + Sync,
    R: Fn(&K, Vec<V>, &mut dyn FnMut(O)) + Sync,
{
    let start = Instant::now();
    let counters = Counters::new();
    let workers = config.effective_workers();
    let map_tasks = if config.map_tasks > 0 { config.map_tasks } else { workers };
    let reduce_tasks = config.reduce_tasks.max(1);

    // ---- Map phase (parallel over splits) ----
    let splits = split_input(input, map_tasks);
    // Each map task produces `reduce_tasks` partitions of (K, V).
    let map_outputs: Vec<Vec<Vec<(K, V)>>> = std::thread::scope(|scope| {
        let counters = &counters;
        let handles: Vec<_> = splits
            .into_iter()
            .map(|split| {
                scope.spawn(move || {
                    let mut partitions: Vec<Vec<(K, V)>> =
                        (0..reduce_tasks).map(|_| Vec::new()).collect();
                    let mut emitted = 0u64;
                    for record in &split {
                        let mut emit = |k: K, v: V| {
                            emitted += 1;
                            let p = hash_partition(&k, reduce_tasks);
                            partitions[p].push((k, v));
                        };
                        mapper(record, &mut emit);
                    }
                    Counters::add(&counters.map_input_records, split.len() as u64);
                    Counters::add(&counters.map_output_records, emitted);
                    // ---- Combine (local, per map task) ----
                    if let Some(c) = combiner {
                        for part in &mut partitions {
                            *part = combine_partition(std::mem::take(part), c);
                        }
                    }
                    let after: u64 = partitions.iter().map(|p| p.len() as u64).sum();
                    Counters::add(&counters.combine_output_records, after);
                    partitions
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("map task panicked"))
            .collect()
    });

    // ---- Shuffle: gather partition p from every map task ----
    let mut reduce_inputs: Vec<Vec<(K, V)>> = (0..reduce_tasks).map(|_| Vec::new()).collect();
    let mut shuffled = 0u64;
    for mut task_out in map_outputs {
        for (p, part) in task_out.drain(..).enumerate() {
            shuffled += part.len() as u64;
            reduce_inputs[p].extend(part);
        }
    }
    Counters::add(&counters.shuffle_records, shuffled);

    // ---- Reduce phase (parallel over partitions, sorted input) ----
    let mut partition_outputs: Vec<(usize, Vec<O>)> = std::thread::scope(|scope| {
        let counters = &counters;
        let handles: Vec<_> = reduce_inputs
            .into_iter()
            .enumerate()
            .map(|(p, mut pairs)| {
                scope.spawn(move || {
                    // The sort that defines MapReduce reduce-input order.
                    pairs.sort_by(|a, b| a.0.cmp(&b.0));
                    let mut outputs = Vec::new();
                    let mut groups = 0u64;
                    let mut emitted = 0u64;
                    let mut iter = pairs.into_iter().peekable();
                    while let Some((key, first)) = iter.next() {
                        let mut values = vec![first];
                        while iter.peek().is_some_and(|(k, _)| *k == key) {
                            values.push(iter.next().unwrap().1);
                        }
                        groups += 1;
                        let mut out = |o: O| {
                            emitted += 1;
                            outputs.push(o);
                        };
                        reducer(&key, values, &mut out);
                    }
                    Counters::add(&counters.reduce_input_groups, groups);
                    Counters::add(&counters.reduce_output_records, emitted);
                    (p, outputs)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("reduce task panicked"))
            .collect()
    });
    partition_outputs.sort_by_key(|(p, _)| *p);
    let outputs = partition_outputs.into_iter().flat_map(|(_, o)| o).collect();

    JobResult { outputs, counters: counters.snapshot(), elapsed: start.elapsed() }
}

/// Sort-and-fold a map task's partition with the combiner.
fn combine_partition<K: Ord, V, C: Fn(&K, Vec<V>) -> V>(
    mut pairs: Vec<(K, V)>,
    combiner: &C,
) -> Vec<(K, V)> {
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    let mut out: Vec<(K, V)> = Vec::new();
    let mut iter = pairs.into_iter().peekable();
    while let Some((key, first)) = iter.next() {
        let mut values = vec![first];
        while iter.peek().is_some_and(|(k, _)| *k == key) {
            values.push(iter.next().unwrap().1);
        }
        let folded = combiner(&key, values);
        out.push((key, folded));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wordcount(lines: Vec<&str>, cfg: &JobConfig) -> Vec<(String, u64)> {
        let mut r = run_job(
            cfg,
            lines,
            |line: &&str, emit| {
                for w in line.split_whitespace() {
                    emit(w.to_string(), 1u64);
                }
            },
            |w: &String, vs: Vec<u64>, out| out((w.clone(), vs.iter().sum::<u64>())),
        )
        .outputs;
        r.sort();
        r
    }

    #[test]
    fn wordcount_matches_manual_counts() {
        let got = wordcount(
            vec!["a b a", "c b", "a"],
            &JobConfig { map_tasks: 2, reduce_tasks: 3, workers: 2 },
        );
        assert_eq!(got, vec![("a".into(), 3), ("b".into(), 2), ("c".into(), 1)]);
    }

    #[test]
    fn result_is_independent_of_task_counts() {
        let lines = vec!["x y", "y z x", "z z z", "w"];
        let base = wordcount(lines.clone(), &JobConfig::default());
        for (m, r, w) in [(1, 1, 1), (4, 2, 3), (7, 9, 2)] {
            let cfg = JobConfig { map_tasks: m, reduce_tasks: r, workers: w };
            assert_eq!(wordcount(lines.clone(), &cfg), base, "cfg {m}/{r}/{w}");
        }
    }

    #[test]
    fn combiner_reduces_shuffle_volume_without_changing_results() {
        let lines: Vec<String> = (0..200).map(|i| format!("k{} k{} k0", i % 5, i % 3)).collect();
        let cfg = JobConfig { map_tasks: 4, reduce_tasks: 2, workers: 2 };
        let plain = run_job(
            &cfg,
            lines.clone(),
            |line: &String, emit| {
                for w in line.split_whitespace() {
                    emit(w.to_string(), 1u64);
                }
            },
            |w: &String, vs: Vec<u64>, out| out((w.clone(), vs.iter().sum::<u64>())),
        );
        let combined = run_job_with_combiner(
            &cfg,
            lines,
            |line: &String, emit| {
                for w in line.split_whitespace() {
                    emit(w.to_string(), 1u64);
                }
            },
            |_w: &String, vs: Vec<u64>| vs.iter().sum(),
            |w: &String, vs: Vec<u64>, out| out((w.clone(), vs.iter().sum::<u64>())),
        );
        let mut a = plain.outputs;
        let mut b = combined.outputs;
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert!(
            combined.counters.shuffle_records < plain.counters.shuffle_records,
            "combiner should shrink the shuffle: {} vs {}",
            combined.counters.shuffle_records,
            plain.counters.shuffle_records
        );
    }

    #[test]
    fn counters_track_the_dataflow() {
        let r = run_job(
            &JobConfig { map_tasks: 2, reduce_tasks: 2, workers: 2 },
            vec![1u64, 2, 3, 4],
            |x: &u64, emit| emit(x % 2, *x),
            |_k: &u64, vs: Vec<u64>, out| out(vs.iter().sum::<u64>()),
        );
        let c = r.counters;
        assert_eq!(c.map_input_records, 4);
        assert_eq!(c.map_output_records, 4);
        assert_eq!(c.shuffle_records, 4);
        assert_eq!(c.reduce_input_groups, 2);
        assert_eq!(c.reduce_output_records, 2);
        let mut sums = r.outputs;
        sums.sort();
        assert_eq!(sums, vec![4, 6]); // evens 2+4... odds 1+3
    }

    #[test]
    fn empty_input_produces_empty_output() {
        let r = run_job(
            &JobConfig::default(),
            Vec::<u32>::new(),
            |x: &u32, emit| emit(*x, *x),
            |k: &u32, _vs: Vec<u32>, out| out(*k),
        );
        assert!(r.outputs.is_empty());
        assert_eq!(r.counters.map_input_records, 0);
    }

    #[test]
    fn reduce_sees_values_grouped_per_key() {
        let r = run_job(
            &JobConfig { map_tasks: 3, reduce_tasks: 1, workers: 2 },
            vec![("a", 1), ("b", 2), ("a", 3), ("a", 4)],
            |(k, v): &(&str, i32), emit| emit(k.to_string(), *v),
            |k: &String, mut vs: Vec<i32>, out| {
                vs.sort();
                out((k.clone(), vs));
            },
        );
        let mut outs = r.outputs;
        outs.sort();
        assert_eq!(
            outs,
            vec![("a".to_string(), vec![1, 3, 4]), ("b".to_string(), vec![2])]
        );
    }

    #[test]
    fn split_input_preserves_order_and_counts() {
        let splits = split_input((0..10).collect::<Vec<_>>(), 3);
        assert_eq!(splits.len(), 3);
        assert_eq!(splits[0], vec![0, 1, 2, 3]);
        assert_eq!(splits[1], vec![4, 5, 6]);
        assert_eq!(splits[2], vec![7, 8, 9]);
        let empty = split_input(Vec::<u8>::new(), 4);
        assert_eq!(empty.len(), 4);
        assert!(empty.iter().all(Vec::is_empty));
    }

    #[test]
    fn sort_job_via_single_reducer() {
        // The classic MR sort: identity map, single partition, sorted keys.
        let data = vec![5u64, 1, 9, 3, 7, 2];
        let r = run_job(
            &JobConfig { map_tasks: 2, reduce_tasks: 1, workers: 2 },
            data,
            |x: &u64, emit| emit(*x, ()),
            |k: &u64, _vs: Vec<()>, out| out(*k),
        );
        assert_eq!(r.outputs, vec![1, 2, 3, 5, 7, 9]);
    }
}
