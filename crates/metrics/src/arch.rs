//! Architecture metrics: MIPS/MFLOPS-style rates from operation counters.
//!
//! The paper's architecture metrics (MIPS, MFLOPS) "are designed to
//! compare workloads from different categories". Real hardware counters
//! are not portable or deterministic, so the engines in this workspace
//! count *logical operations* instead — records moved, keys compared,
//! hash probes, float operations — and this module turns those counts
//! into rates with the same comparative role. DESIGN.md documents the
//! substitution.

use serde::{Deserialize, Serialize};

/// Deterministic operation counts reported by an engine or workload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounts {
    /// Record/tuple-level operations (the instruction proxy).
    pub record_ops: u64,
    /// Floating-point operations performed by the workload kernel.
    pub float_ops: u64,
}

impl OpCounts {
    /// Combine counts from two phases or engines.
    pub fn merge(&mut self, other: &OpCounts) {
        self.record_ops += other.record_ops;
        self.float_ops += other.float_ops;
    }
}

/// MIPS/MFLOPS-style rates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ArchMetrics {
    /// Million record-operations per second (the MIPS analog).
    pub mrops: f64,
    /// Million float operations per second (the MFLOPS analog).
    pub mflops: f64,
    /// Record operations per input item (workload "instruction count").
    pub ops_per_item: f64,
}

impl ArchMetrics {
    /// Derive rates from counts, an elapsed time and the input size.
    pub fn derive(counts: &OpCounts, elapsed_secs: f64, input_items: u64) -> Self {
        let secs = elapsed_secs.max(1e-9);
        Self {
            mrops: counts.record_ops as f64 / secs / 1e6,
            mflops: counts.float_ops as f64 / secs / 1e6,
            ops_per_item: counts.record_ops as f64 / (input_items.max(1) as f64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_computes_rates() {
        let counts = OpCounts { record_ops: 2_000_000, float_ops: 500_000 };
        let m = ArchMetrics::derive(&counts, 2.0, 1000);
        assert!((m.mrops - 1.0).abs() < 1e-9);
        assert!((m.mflops - 0.25).abs() < 1e-9);
        assert!((m.ops_per_item - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = OpCounts { record_ops: 1, float_ops: 2 };
        a.merge(&OpCounts { record_ops: 10, float_ops: 20 });
        assert_eq!(a, OpCounts { record_ops: 11, float_ops: 22 });
    }

    #[test]
    fn zero_guards() {
        let m = ArchMetrics::derive(&OpCounts::default(), 0.0, 0);
        assert_eq!(m.mrops, 0.0);
        assert_eq!(m.ops_per_item, 0.0);
    }
}
