//! User-perceivable metrics: duration, latency, throughput.

use bdb_common::histogram::LogHistogram;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Collects latencies and operation counts during a benchmark run.
#[derive(Debug, Clone)]
pub struct MetricsCollector {
    started: Instant,
    latencies_ns: LogHistogram,
    operations: u64,
}

impl Default for MetricsCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsCollector {
    /// Start collecting; the run timer starts now.
    pub fn new() -> Self {
        Self { started: Instant::now(), latencies_ns: LogHistogram::new(), operations: 0 }
    }

    /// Record one operation's latency.
    pub fn record_latency(&mut self, latency: Duration) {
        self.latencies_ns.record(latency.as_nanos().min(u128::from(u64::MAX)) as u64);
        self.operations += 1;
    }

    /// Record an operation without latency (batch jobs count items).
    pub fn record_operations(&mut self, n: u64) {
        self.operations += n;
    }

    /// Time a closure and record its latency; returns the closure result.
    pub fn time<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.record_latency(t0.elapsed());
        out
    }

    /// Merge latencies and counts from another collector (parallel
    /// clients); the run timer keeps this collector's start.
    pub fn merge(&mut self, other: &MetricsCollector) {
        self.latencies_ns.merge(&other.latencies_ns);
        self.operations += other.operations;
    }

    /// Finish: snapshot the user-perceivable metrics.
    pub fn finish(&self) -> UserMetrics {
        self.snapshot(self.started.elapsed())
    }

    /// Finish against an externally measured duration — for callers that
    /// timed the workload themselves (e.g. an engine reporting a bound
    /// execution's elapsed time) rather than from collector construction.
    pub fn finish_with_duration(&self, duration: Duration) -> UserMetrics {
        self.snapshot(duration)
    }

    fn snapshot(&self, duration: Duration) -> UserMetrics {
        let secs = duration.as_secs_f64().max(1e-9);
        UserMetrics {
            duration_secs: secs,
            operations: self.operations,
            throughput_ops_per_sec: self.operations as f64 / secs,
            latency_mean_us: self.latencies_ns.mean() / 1e3,
            latency_p50_us: self.latencies_ns.quantile(0.50) as f64 / 1e3,
            latency_p95_us: self.latencies_ns.quantile(0.95) as f64 / 1e3,
            latency_p99_us: self.latencies_ns.quantile(0.99) as f64 / 1e3,
            latency_samples: self.latencies_ns.count(),
        }
    }
}

/// The paper's user-perceivable metrics: test duration, request latency
/// and throughput.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct UserMetrics {
    /// Test duration in seconds.
    pub duration_secs: f64,
    /// Operations completed.
    pub operations: u64,
    /// Operations per second.
    pub throughput_ops_per_sec: f64,
    /// Mean latency, microseconds.
    pub latency_mean_us: f64,
    /// Median latency, microseconds.
    pub latency_p50_us: f64,
    /// 95th percentile latency, microseconds.
    pub latency_p95_us: f64,
    /// 99th percentile latency, microseconds.
    pub latency_p99_us: f64,
    /// Number of latency samples recorded.
    pub latency_samples: u64,
}

/// Throughput of one data-generation run: the paper treats generator
/// speed as a first-class property (BDGS's parallel deployment lever), so
/// the pipeline records what the generation phase achieved and on how many
/// workers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct GenerationMetrics {
    /// Logical items generated (rows, documents, edges, events).
    pub items: u64,
    /// Approximate bytes generated.
    pub bytes: u64,
    /// Wall-clock generation time in seconds.
    pub duration_secs: f64,
    /// Worker threads used (1 = sequential).
    pub workers: usize,
}

impl GenerationMetrics {
    /// Assemble from a timed generation run.
    pub fn measure(items: u64, bytes: u64, duration: Duration, workers: usize) -> Self {
        Self {
            items,
            bytes,
            duration_secs: duration.as_secs_f64(),
            workers: workers.max(1),
        }
    }

    /// Achieved items per second.
    pub fn items_per_sec(&self) -> f64 {
        self.items as f64 / self.duration_secs.max(1e-9)
    }

    /// Achieved (approximate) bytes per second.
    pub fn bytes_per_sec(&self) -> f64 {
        self.bytes as f64 / self.duration_secs.max(1e-9)
    }

    /// Fold another generation run (e.g. a second dataset of the same
    /// benchmark) into this one; durations add, workers keep the maximum.
    pub fn merge(&mut self, other: &GenerationMetrics) {
        self.items += other.items;
        self.bytes += other.bytes;
        self.duration_secs += other.duration_secs;
        self.workers = self.workers.max(other.workers);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_metrics_rates_and_merge() {
        let mut g = GenerationMetrics::measure(1000, 8000, Duration::from_millis(500), 4);
        assert!((g.items_per_sec() - 2000.0).abs() < 1e-6);
        assert!((g.bytes_per_sec() - 16_000.0).abs() < 1e-6);
        g.merge(&GenerationMetrics::measure(1000, 2000, Duration::from_millis(500), 2));
        assert_eq!(g.items, 2000);
        assert_eq!(g.bytes, 10_000);
        assert_eq!(g.workers, 4);
        assert!((g.items_per_sec() - 2000.0).abs() < 1e-6);
        // Zero-duration runs don't divide by zero.
        assert!(GenerationMetrics::default().items_per_sec() >= 0.0);
    }

    #[test]
    fn collector_records_latencies_and_throughput() {
        let mut c = MetricsCollector::new();
        for i in 1..=100u64 {
            c.record_latency(Duration::from_micros(i));
        }
        let m = c.finish();
        assert_eq!(m.operations, 100);
        assert_eq!(m.latency_samples, 100);
        assert!(m.throughput_ops_per_sec > 0.0);
        assert!(m.latency_p50_us <= m.latency_p95_us);
        assert!(m.latency_p95_us <= m.latency_p99_us * 1.001);
        // Mean of 1..=100us is 50.5us.
        assert!((m.latency_mean_us - 50.5).abs() < 1.0, "mean {}", m.latency_mean_us);
    }

    #[test]
    fn time_records_and_returns() {
        let mut c = MetricsCollector::new();
        let v = c.time(|| 2 + 2);
        assert_eq!(v, 4);
        assert_eq!(c.finish().latency_samples, 1);
    }

    #[test]
    fn batch_operations_without_latency() {
        let mut c = MetricsCollector::new();
        c.record_operations(1000);
        let m = c.finish();
        assert_eq!(m.operations, 1000);
        assert_eq!(m.latency_samples, 0);
        assert_eq!(m.latency_p99_us, 0.0);
    }

    #[test]
    fn merge_combines_parallel_clients() {
        let mut a = MetricsCollector::new();
        let mut b = MetricsCollector::new();
        a.record_latency(Duration::from_micros(10));
        b.record_latency(Duration::from_micros(1000));
        a.merge(&b);
        let m = a.finish();
        assert_eq!(m.operations, 2);
        assert_eq!(m.latency_samples, 2);
        assert!(m.latency_p99_us > 100.0);
    }
}
