//! Benchmark metrics (the Metrics component of the Function Layer).
//!
//! The paper splits evaluation metrics into two families plus two
//! extensions, all implemented here:
//!
//! * **User-perceivable metrics** ([`collector`]) — "the duration of a
//!   test, request latency, and throughput": a wall-clock run timer, a
//!   log-bucketed latency histogram with p50/p95/p99, and derived
//!   throughput. Used to compare workloads *of the same category*.
//! * **Architecture metrics** ([`arch`]) — MIPS/MFLOPS-style rates built
//!   from deterministic engine operation counters (the substitution for
//!   hardware counters; see DESIGN.md). Used to compare workloads *across
//!   categories*.
//! * **Energy and cost models** ([`model`]) — the paper requires metrics
//!   to "take energy consumption, cost efficiency into consideration"; a
//!   parameterised linear power model and $/core-hour cost model make both
//!   computable.
//! * **Platform models** ([`platform`]) — the Section 5.2 heterogeneous
//!   hardware extension: project measured runs onto modeled Xeon+GPGPU /
//!   Xeon+MIC / microserver platforms and answer the paper's two
//!   cross-platform questions.
//! * [`report`] assembles everything into one serialisable
//!   [`report::MetricReport`].
//! * [`sharded`] — cacheline-padded sharded counters for hot paths where
//!   many worker threads bump one global tally (the concurrent load
//!   driver's completed/shed counts).

pub mod arch;
pub mod collector;
pub mod model;
pub mod platform;
pub mod report;
pub mod sharded;

pub use arch::{ArchMetrics, OpCounts};
pub use collector::{GenerationMetrics, MetricsCollector, UserMetrics};
pub use sharded::ShardedCounter;
pub use model::{CostModel, PowerModel};
pub use platform::{PlatformProfile, PlatformProjection, PlatformStudy};
pub use report::MetricReport;
