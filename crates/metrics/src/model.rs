//! Energy and cost models.
//!
//! The paper requires metrics that "not only measure system performance,
//! but also take energy consumption, cost efficiency into consideration".
//! Absent a power meter, both are computed from documented parameterised
//! models (DESIGN.md records the substitution): a linear CPU power model
//! and a $/core-hour cloud-pricing model.

use serde::{Deserialize, Serialize};

/// Linear power model: `P(u) = idle + (peak − idle) · u`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Power draw at idle, watts.
    pub idle_watts: f64,
    /// Power draw at full utilisation, watts.
    pub peak_watts: f64,
}

impl Default for PowerModel {
    /// A typical dual-socket server: 100 W idle, 400 W peak.
    fn default() -> Self {
        Self { idle_watts: 100.0, peak_watts: 400.0 }
    }
}

impl PowerModel {
    /// Instantaneous power at `utilization ∈ [0, 1]`.
    pub fn power_watts(&self, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        self.idle_watts + (self.peak_watts - self.idle_watts) * u
    }

    /// Energy in joules for a run of `duration_secs` at mean utilisation.
    pub fn energy_joules(&self, duration_secs: f64, mean_utilization: f64) -> f64 {
        self.power_watts(mean_utilization) * duration_secs.max(0.0)
    }

    /// Energy efficiency: operations per joule.
    pub fn ops_per_joule(&self, ops: u64, duration_secs: f64, mean_utilization: f64) -> f64 {
        let j = self.energy_joules(duration_secs, mean_utilization);
        if j <= 0.0 {
            0.0
        } else {
            ops as f64 / j
        }
    }
}

/// Cloud-style cost model: dollars per core-hour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Price of one core for one hour.
    pub dollars_per_core_hour: f64,
}

impl Default for CostModel {
    /// A typical on-demand price: $0.05/core-hour.
    fn default() -> Self {
        Self { dollars_per_core_hour: 0.05 }
    }
}

impl CostModel {
    /// Cost of a run on `cores` cores.
    pub fn cost_dollars(&self, duration_secs: f64, cores: usize) -> f64 {
        self.dollars_per_core_hour * cores as f64 * duration_secs.max(0.0) / 3600.0
    }

    /// Cost efficiency: operations per dollar.
    pub fn ops_per_dollar(&self, ops: u64, duration_secs: f64, cores: usize) -> f64 {
        let c = self.cost_dollars(duration_secs, cores);
        if c <= 0.0 {
            0.0
        } else {
            ops as f64 / c
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_is_linear_and_clamped() {
        let p = PowerModel { idle_watts: 100.0, peak_watts: 300.0 };
        assert_eq!(p.power_watts(0.0), 100.0);
        assert_eq!(p.power_watts(0.5), 200.0);
        assert_eq!(p.power_watts(1.0), 300.0);
        assert_eq!(p.power_watts(7.0), 300.0);
        assert_eq!(p.power_watts(-1.0), 100.0);
    }

    #[test]
    fn energy_scales_with_time() {
        let p = PowerModel::default();
        let e1 = p.energy_joules(10.0, 0.5);
        let e2 = p.energy_joules(20.0, 0.5);
        assert!((e2 - 2.0 * e1).abs() < 1e-9);
        assert_eq!(p.energy_joules(-5.0, 0.5), 0.0);
    }

    #[test]
    fn efficiency_metrics() {
        let p = PowerModel { idle_watts: 0.0, peak_watts: 100.0 };
        // 1000 ops in 10 s at full power = 1000 J → 1 op/J.
        assert!((p.ops_per_joule(1000, 10.0, 1.0) - 1.0).abs() < 1e-9);
        let c = CostModel { dollars_per_core_hour: 3600.0 };
        // 1 core for 1 s = $1 → 1000 ops/dollar.
        assert!((c.ops_per_dollar(1000, 1.0, 1) - 1000.0).abs() < 1e-9);
        assert_eq!(c.ops_per_dollar(1000, 0.0, 1), 0.0);
    }

    #[test]
    fn cost_scales_with_cores() {
        let c = CostModel::default();
        assert!((c.cost_dollars(3600.0, 4) - 0.2).abs() < 1e-12);
    }
}
