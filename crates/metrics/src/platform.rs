//! Heterogeneous hardware platform models (Section 5.2).
//!
//! The paper asks benchmarks to evaluate workloads across platforms like
//! Xeon+GPGPU and Xeon+MIC and answer two questions: "(1) whether any
//! platform can consistently win in terms of both performance and energy
//! efficiency for all big data applications, and (2) for each class of
//! big data applications … some specific platform that can realize better
//! performance and energy efficiency".
//!
//! Without the hardware, the platforms are *models* (DESIGN.md records
//! the substitution): a platform accelerates a workload's compute-bound
//! share (its float-operation time) and its data-bound share (record
//! movement) by different factors and draws its own power. Projections
//! over *measured* baseline runs then answer both questions — including
//! the expected headline shape: accelerators win compute-heavy analytics
//! but lose energy efficiency on data-movement-heavy workloads, so no
//! platform wins everywhere.

use crate::model::PowerModel;
use crate::report::MetricReport;
use serde::{Deserialize, Serialize};

/// A modeled hardware platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformProfile {
    /// Platform name.
    pub name: String,
    /// Speedup applied to the compute-bound (float-op) time share.
    pub compute_speedup: f64,
    /// Speedup applied to the data-bound (record-op) time share.
    pub data_speedup: f64,
    /// The platform's power model.
    pub power: PowerModel,
}

impl PlatformProfile {
    /// The baseline dual-socket Xeon: all measurements are taken here.
    pub fn xeon() -> Self {
        Self {
            name: "Xeon".into(),
            compute_speedup: 1.0,
            data_speedup: 1.0,
            power: PowerModel { idle_watts: 100.0, peak_watts: 400.0 },
        }
    }

    /// Xeon plus a GPGPU: large compute speedup, no help moving records,
    /// much higher power draw.
    pub fn xeon_gpgpu() -> Self {
        Self {
            name: "Xeon+GPGPU".into(),
            compute_speedup: 8.0,
            data_speedup: 1.0,
            power: PowerModel { idle_watts: 150.0, peak_watts: 700.0 },
        }
    }

    /// Xeon plus a many-integrated-core accelerator: moderate compute
    /// speedup, slight data-path help, elevated power.
    pub fn xeon_mic() -> Self {
        Self {
            name: "Xeon+MIC".into(),
            compute_speedup: 4.0,
            data_speedup: 1.3,
            power: PowerModel { idle_watts: 130.0, peak_watts: 550.0 },
        }
    }

    /// A low-power microserver: slower everywhere, much lower power.
    pub fn microserver() -> Self {
        Self {
            name: "Microserver".into(),
            compute_speedup: 0.4,
            data_speedup: 0.5,
            power: PowerModel { idle_watts: 15.0, peak_watts: 60.0 },
        }
    }

    /// The study's default platform set.
    pub fn standard_set() -> Vec<Self> {
        vec![Self::xeon(), Self::xeon_gpgpu(), Self::xeon_mic(), Self::microserver()]
    }
}

/// One workload's projected behaviour on one platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformProjection {
    /// Platform name.
    pub platform: String,
    /// Workload name.
    pub workload: String,
    /// Projected duration, seconds.
    pub duration_secs: f64,
    /// Projected energy, joules.
    pub energy_joules: f64,
    /// Operations per joule under the projection.
    pub ops_per_joule: f64,
}

/// The compute-bound share of a run's time, estimated from its operation
/// counters: float ops vs total counted ops.
pub fn compute_fraction(report: &MetricReport) -> f64 {
    let f = report.ops.float_ops as f64;
    let r = report.ops.record_ops as f64;
    if f + r <= 0.0 {
        0.0
    } else {
        f / (f + r)
    }
}

/// Project a measured baseline (Xeon) run onto a platform model.
pub fn project(report: &MetricReport, platform: &PlatformProfile, utilization: f64) -> PlatformProjection {
    let cf = compute_fraction(report);
    let base = report.user.duration_secs;
    let duration = base * (cf / platform.compute_speedup + (1.0 - cf) / platform.data_speedup);
    let energy = platform.power.energy_joules(duration, utilization);
    PlatformProjection {
        platform: platform.name.clone(),
        workload: report.workload.clone(),
        duration_secs: duration,
        energy_joules: energy,
        ops_per_joule: if energy > 0.0 {
            report.user.operations as f64 / energy
        } else {
            0.0
        },
    }
}

/// The full platform study over a set of measured workload reports.
#[derive(Debug, Clone)]
pub struct PlatformStudy {
    /// `projections[w][p]`: workload `w` on platform `p`.
    pub projections: Vec<Vec<PlatformProjection>>,
    /// Platform names in column order.
    pub platforms: Vec<String>,
}

impl PlatformStudy {
    /// Run the study: project every report onto every platform.
    pub fn run(reports: &[MetricReport], platforms: &[PlatformProfile], utilization: f64) -> Self {
        let projections = reports
            .iter()
            .map(|r| platforms.iter().map(|p| project(r, p, utilization)).collect())
            .collect();
        Self {
            projections,
            platforms: platforms.iter().map(|p| p.name.clone()).collect(),
        }
    }

    /// Paper question (1): a platform that wins **both** duration and
    /// energy efficiency on **every** workload, if one exists.
    pub fn consistent_winner(&self) -> Option<&str> {
        'candidate: for (pi, name) in self.platforms.iter().enumerate() {
            for row in &self.projections {
                let cand = &row[pi];
                for (qi, other) in row.iter().enumerate() {
                    if qi == pi {
                        continue;
                    }
                    if other.duration_secs < cand.duration_secs
                        || other.ops_per_joule > cand.ops_per_joule
                    {
                        continue 'candidate;
                    }
                }
            }
            return Some(name);
        }
        None
    }

    /// Paper question (2): for one workload (by row index), the platform
    /// with the best duration and the platform with the best energy
    /// efficiency.
    pub fn best_for(&self, workload_idx: usize) -> (&PlatformProjection, &PlatformProjection) {
        let row = &self.projections[workload_idx];
        let fastest = row
            .iter()
            .min_by(|a, b| a.duration_secs.partial_cmp(&b.duration_secs).expect("finite"))
            .expect("non-empty");
        let greenest = row
            .iter()
            .max_by(|a, b| a.ops_per_joule.partial_cmp(&b.ops_per_joule).expect("finite"))
            .expect("non-empty");
        (fastest, greenest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::OpCounts;
    use crate::collector::UserMetrics;

    fn report(name: &str, duration: f64, record_ops: u64, float_ops: u64) -> MetricReport {
        MetricReport {
            workload: name.into(),
            system: "native".into(),
            user: UserMetrics {
                duration_secs: duration,
                operations: 1_000,
                ..Default::default()
            },
            ops: OpCounts { record_ops, float_ops },
            ..Default::default()
        }
    }

    #[test]
    fn compute_fraction_splits_by_counters() {
        assert_eq!(compute_fraction(&report("w", 1.0, 100, 0)), 0.0);
        assert_eq!(compute_fraction(&report("w", 1.0, 0, 100)), 1.0);
        assert_eq!(compute_fraction(&report("w", 1.0, 50, 50)), 0.5);
        assert_eq!(compute_fraction(&report("w", 1.0, 0, 0)), 0.0);
    }

    #[test]
    fn gpgpu_accelerates_compute_bound_only() {
        let compute = report("kmeans", 8.0, 0, 1_000_000);
        let data = report("sort", 8.0, 1_000_000, 0);
        let gpgpu = PlatformProfile::xeon_gpgpu();
        let pc = project(&compute, &gpgpu, 0.8);
        let pd = project(&data, &gpgpu, 0.8);
        assert!((pc.duration_secs - 1.0).abs() < 1e-9, "8x on compute");
        assert!((pd.duration_secs - 8.0).abs() < 1e-9, "no data speedup");
    }

    #[test]
    fn no_consistent_winner_across_mixed_workloads() {
        // The paper's expected answer to question (1): accelerators win
        // compute-heavy, the microserver wins energy on data-heavy.
        let reports = vec![
            report("social/kmeans", 5.0, 1_000, 10_000_000),
            report("micro/sort", 5.0, 10_000_000, 0),
        ];
        let study = PlatformStudy::run(&reports, &PlatformProfile::standard_set(), 0.8);
        assert_eq!(study.consistent_winner(), None);
    }

    #[test]
    fn per_class_winners_differ_by_shape() {
        let reports = vec![
            report("social/kmeans", 5.0, 1_000, 10_000_000),
            report("micro/sort", 5.0, 10_000_000, 0),
        ];
        let study = PlatformStudy::run(&reports, &PlatformProfile::standard_set(), 0.8);
        let (fast_compute, _) = study.best_for(0);
        assert_eq!(fast_compute.platform, "Xeon+GPGPU");
        let (_, green_data) = study.best_for(1);
        assert_eq!(green_data.platform, "Microserver");
    }

    #[test]
    fn a_dominant_platform_is_detected_when_it_exists() {
        // With only the baseline and a strictly better platform, question
        // (1) has a positive answer.
        let better = PlatformProfile {
            name: "Better".into(),
            compute_speedup: 2.0,
            data_speedup: 2.0,
            power: PowerModel { idle_watts: 50.0, peak_watts: 200.0 },
        };
        let reports = vec![report("w", 5.0, 100, 100)];
        let study = PlatformStudy::run(&reports, &[PlatformProfile::xeon(), better], 0.8);
        assert_eq!(study.consistent_winner(), Some("Better"));
    }
}
