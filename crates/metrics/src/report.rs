//! The combined metric report for one benchmark run.

use crate::arch::{ArchMetrics, OpCounts};
use crate::collector::UserMetrics;
use crate::model::{CostModel, PowerModel};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Everything measured about one workload execution: user-perceivable
/// metrics, architecture metrics, energy and cost.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct MetricReport {
    /// Workload name (e.g. "micro/wordcount").
    pub workload: String,
    /// Executing system (e.g. "mapreduce", "sql").
    pub system: String,
    /// User-perceivable metrics.
    pub user: UserMetrics,
    /// Architecture metrics.
    pub arch: ArchMetrics,
    /// Raw operation counts behind the architecture metrics.
    pub ops: OpCounts,
    /// Modelled energy in joules.
    pub energy_joules: f64,
    /// Modelled cost in dollars.
    pub cost_dollars: f64,
}

impl MetricReport {
    /// Assemble a report from its parts using the given models.
    ///
    /// `utilization` is the mean CPU utilisation of the run and `cores`
    /// the core count billed for it.
    #[allow(clippy::too_many_arguments)]
    pub fn assemble(
        workload: impl Into<String>,
        system: impl Into<String>,
        user: UserMetrics,
        ops: OpCounts,
        input_items: u64,
        power: &PowerModel,
        cost: &CostModel,
        utilization: f64,
        cores: usize,
    ) -> Self {
        let arch = ArchMetrics::derive(&ops, user.duration_secs, input_items);
        Self {
            workload: workload.into(),
            system: system.into(),
            energy_joules: power.energy_joules(user.duration_secs, utilization),
            cost_dollars: cost.cost_dollars(user.duration_secs, cores),
            user,
            arch,
            ops,
        }
    }

    /// Operations per joule under the modelled energy.
    pub fn ops_per_joule(&self) -> f64 {
        if self.energy_joules <= 0.0 {
            0.0
        } else {
            self.user.operations as f64 / self.energy_joules
        }
    }
}

impl fmt::Display for MetricReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<28} {:<10} {:>9.3}s {:>12.0} ops/s p50={:<8.1}us p99={:<8.1}us {:>8.2} Mrops {:>8.4} J/kop",
            self.workload,
            self.system,
            self.user.duration_secs,
            self.user.throughput_ops_per_sec,
            self.user.latency_p50_us,
            self.user.latency_p99_us,
            self.arch.mrops,
            if self.user.operations == 0 {
                0.0
            } else {
                self.energy_joules / (self.user.operations as f64 / 1e3)
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assemble_fills_all_sections() {
        let user = UserMetrics {
            duration_secs: 2.0,
            operations: 1000,
            throughput_ops_per_sec: 500.0,
            ..Default::default()
        };
        let ops = OpCounts { record_ops: 4000, float_ops: 100 };
        let r = MetricReport::assemble(
            "micro/sort",
            "mapreduce",
            user,
            ops,
            1000,
            &PowerModel::default(),
            &CostModel::default(),
            0.8,
            8,
        );
        assert_eq!(r.workload, "micro/sort");
        assert!((r.arch.ops_per_item - 4.0).abs() < 1e-9);
        assert!(r.energy_joules > 0.0);
        assert!(r.cost_dollars > 0.0);
        assert!(r.ops_per_joule() > 0.0);
        // Display renders without panicking and includes the name.
        assert!(r.to_string().contains("micro/sort"));
    }

    #[test]
    fn serde_round_trip() {
        let r = MetricReport {
            workload: "x".into(),
            system: "y".into(),
            ..Default::default()
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: MetricReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.workload, "x");
    }
}
