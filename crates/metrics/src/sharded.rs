//! Sharded hot-path counters.
//!
//! `MetricsCollector` is `&mut`-owned per thread and merged at quiesce, so
//! it never contends — but the load driver also needs a handful of *global*
//! counters (ops completed, ops shed) that every worker bumps on every
//! operation. A single `AtomicU64` turns that into a cache-line ping-pong
//! between cores; a mutex is worse. [`ShardedCounter`] spreads the counter
//! over cacheline-padded shards so concurrent increments land on different
//! lines, and only the (rare) reader pays the cost of summing.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// One cacheline-padded shard. 128-byte alignment covers the common
/// 64-byte line and the 128-byte prefetch pairs on recent x86.
#[repr(align(128))]
#[derive(Debug, Default)]
struct PaddedCounter(AtomicU64);

/// Monotonically assigns each thread a home shard, round-robin.
static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_SLOT: usize = NEXT_SLOT.fetch_add(1, Ordering::Relaxed);
}

/// A u64 counter sharded across padded atomic cells.
///
/// `add` touches only the calling thread's home shard (Relaxed ordering —
/// the counter carries no synchronisation, only a tally); `value` sums all
/// shards. The sum is exact once writers have quiesced, and a live
/// lower-bound snapshot while they run.
#[derive(Debug)]
pub struct ShardedCounter {
    shards: Vec<PaddedCounter>,
}

impl ShardedCounter {
    /// A counter with `shards` cells (clamped to at least 1).
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1);
        Self { shards: (0..n).map(|_| PaddedCounter::default()).collect() }
    }

    /// Add `n` to the calling thread's home shard.
    pub fn add(&self, n: u64) {
        let slot = THREAD_SLOT.with(|s| *s) % self.shards.len();
        self.shards[slot].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Sum of all shards.
    pub fn value(&self) -> u64 {
        self.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_thread_counts() {
        let c = ShardedCounter::new(4);
        for _ in 0..100 {
            c.add(1);
        }
        c.add(5);
        assert_eq!(c.value(), 105);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let c = ShardedCounter::new(0);
        c.add(3);
        assert_eq!(c.value(), 3);
    }

    #[test]
    fn concurrent_increments_are_all_counted() {
        let c = Arc::new(ShardedCounter::new(8));
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        c.add(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.value(), threads as u64 * per_thread);
    }
}
