//! The table catalog.

use bdb_common::record::Table;
use bdb_common::{BdbError, Result};
use std::collections::BTreeMap;

/// A name → table registry.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `table` under `name`.
    ///
    /// # Errors
    /// Fails when the name is already registered.
    pub fn register(&mut self, name: &str, table: Table) -> Result<()> {
        if self.tables.contains_key(name) {
            return Err(BdbError::InvalidConfig(format!(
                "table {name} already registered"
            )));
        }
        self.tables.insert(name.to_string(), table);
        Ok(())
    }

    /// Replace or insert a table (used by load/maintenance workloads).
    pub fn put(&mut self, name: &str, table: Table) {
        self.tables.insert(name.to_string(), table);
    }

    /// Remove a table, returning it if present.
    pub fn drop_table(&mut self, name: &str) -> Option<Table> {
        self.tables.remove(name)
    }

    /// Look up a table.
    ///
    /// # Errors
    /// Fails when the table does not exist.
    pub fn get(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| BdbError::NotFound(format!("table {name}")))
    }

    /// All registered table names.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Row count of a registered table — the memo's cardinality source.
    pub fn row_count(&self, name: &str) -> Option<usize> {
        self.tables.get(name).map(|t| t.rows().len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_common::value::{DataType, Field, Schema};

    fn t() -> Table {
        Table::new(Schema::new(vec![Field::new("x", DataType::Int)]))
    }

    #[test]
    fn register_get_drop() {
        let mut c = Catalog::new();
        c.register("a", t()).unwrap();
        assert!(c.get("a").is_ok());
        assert!(c.get("b").is_err());
        assert!(c.register("a", t()).is_err());
        assert_eq!(c.table_names(), vec!["a"]);
        assert!(c.drop_table("a").is_some());
        assert!(c.drop_table("a").is_none());
    }

    #[test]
    fn put_overwrites() {
        let mut c = Catalog::new();
        c.register("a", t()).unwrap();
        c.put("a", t());
        assert!(c.get("a").is_ok());
    }
}
