//! Physical execution of logical plans.
//!
//! The executor interprets the (optimised) logical plan directly with
//! materialised row batches: scan with projection pushdown, filter,
//! project, build/probe hash join, hash aggregation, sort, limit. Every
//! operator updates [`ExecStats`], the engine's operation counters for the
//! architecture metrics.

use crate::catalog::Catalog;
use crate::parser::AggFunc;
use crate::plan::LogicalPlan;
use bdb_common::record::{Record, Table};
use bdb_common::value::Value;
use bdb_common::{BdbError, Result};
use std::collections::HashMap;

/// Operation counters collected during execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Rows read from base tables.
    pub rows_scanned: u64,
    /// Predicate evaluations.
    pub predicate_evals: u64,
    /// Rows produced by all operators.
    pub rows_produced: u64,
    /// Hash-table inserts (join build + aggregation).
    pub hash_build_rows: u64,
    /// Hash-table probes (join probe side).
    pub hash_probe_rows: u64,
    /// Key comparisons performed by sorts.
    pub sort_comparisons: u64,
}

impl ExecStats {
    /// Accumulate another stats block.
    pub fn merge(&mut self, other: &ExecStats) {
        self.rows_scanned += other.rows_scanned;
        self.predicate_evals += other.predicate_evals;
        self.rows_produced += other.rows_produced;
        self.hash_build_rows += other.hash_build_rows;
        self.hash_probe_rows += other.hash_probe_rows;
        self.sort_comparisons += other.sort_comparisons;
    }

    /// Total counted operations — the instruction proxy for MIPS-style
    /// architecture metrics.
    pub fn total_ops(&self) -> u64 {
        self.rows_scanned
            + self.predicate_evals
            + self.rows_produced
            + self.hash_build_rows
            + self.hash_probe_rows
            + self.sort_comparisons
    }
}

/// Executes plans against a catalog.
#[derive(Debug)]
pub struct Executor<'a> {
    catalog: &'a Catalog,
    stats: ExecStats,
}

/// A hashable key for grouping/joining on `Value`s.
///
/// Floats are keyed by bit pattern: within one engine run the same float
/// value always produces the same bits, which is all grouping needs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum HashKey {
    Null,
    Int(i64),
    Bits(u64),
    Text(String),
    Bool(bool),
}

fn hash_key(v: &Value) -> HashKey {
    match v {
        Value::Null => HashKey::Null,
        Value::Int(i) | Value::Timestamp(i) => HashKey::Int(*i),
        Value::Float(f) => HashKey::Bits(f.to_bits()),
        Value::Text(s) => HashKey::Text(s.clone()),
        Value::Bool(b) => HashKey::Bool(*b),
    }
}

impl<'a> Executor<'a> {
    /// An executor over `catalog`.
    pub fn new(catalog: &'a Catalog) -> Self {
        Self { catalog, stats: ExecStats::default() }
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Execute a plan to a materialised table.
    pub fn run(&mut self, plan: &LogicalPlan) -> Result<Table> {
        let rows = self.execute(plan)?;
        Table::from_rows(plan.schema().clone(), rows)
    }

    fn execute(&mut self, plan: &LogicalPlan) -> Result<Vec<Record>> {
        match plan {
            LogicalPlan::Scan { table, projection, .. } => {
                let t = self.catalog.get(table)?;
                self.stats.rows_scanned += t.len() as u64;
                let rows: Vec<Record> = match projection {
                    None => t.rows().to_vec(),
                    Some(cols) => t
                        .rows()
                        .iter()
                        .map(|r| cols.iter().map(|&c| r[c].clone()).collect())
                        .collect(),
                };
                self.stats.rows_produced += rows.len() as u64;
                Ok(rows)
            }
            LogicalPlan::Filter { input, predicate } => {
                let schema = input.schema().clone();
                let rows = self.execute(input)?;
                self.stats.predicate_evals += rows.len() as u64;
                let mut out = Vec::new();
                for r in rows {
                    if predicate.eval_predicate(&schema, &r)? {
                        out.push(r);
                    }
                }
                self.stats.rows_produced += out.len() as u64;
                Ok(out)
            }
            LogicalPlan::Project { input, exprs, .. } => {
                let schema = input.schema().clone();
                let rows = self.execute(input)?;
                let mut out = Vec::with_capacity(rows.len());
                for r in rows {
                    let row: Record = exprs
                        .iter()
                        .map(|(e, _)| e.eval(&schema, &r))
                        .collect::<Result<_>>()?;
                    out.push(row);
                }
                self.stats.rows_produced += out.len() as u64;
                Ok(out)
            }
            LogicalPlan::Join { left, right, left_key, right_key, .. } => {
                let left_schema = left.schema().clone();
                let right_schema = right.schema().clone();
                let left_rows = self.execute(left)?;
                let right_rows = self.execute(right)?;
                let lk = left_schema
                    .index_of(left_key)
                    .ok_or_else(|| BdbError::NotFound(format!("join key {left_key}")))?;
                let rk = right_schema
                    .index_of(right_key)
                    .ok_or_else(|| BdbError::NotFound(format!("join key {right_key}")))?;
                // Build on the smaller side for memory; probe the larger.
                let (build_rows, probe_rows, build_idx, probe_idx, build_is_left) =
                    if left_rows.len() <= right_rows.len() {
                        (&left_rows, &right_rows, lk, rk, true)
                    } else {
                        (&right_rows, &left_rows, rk, lk, false)
                    };
                let mut table: HashMap<HashKey, Vec<&Record>> = HashMap::new();
                for r in build_rows {
                    if r[build_idx].is_null() {
                        continue; // NULL never joins
                    }
                    self.stats.hash_build_rows += 1;
                    table.entry(hash_key(&r[build_idx])).or_default().push(r);
                }
                let mut out = Vec::new();
                for probe in probe_rows {
                    self.stats.hash_probe_rows += 1;
                    if probe[probe_idx].is_null() {
                        continue;
                    }
                    if let Some(matches) = table.get(&hash_key(&probe[probe_idx])) {
                        for build in matches {
                            let mut row =
                                Vec::with_capacity(build.len() + probe.len());
                            if build_is_left {
                                row.extend(build.iter().cloned());
                                row.extend(probe.iter().cloned());
                            } else {
                                row.extend(probe.iter().cloned());
                                row.extend(build.iter().cloned());
                            }
                            out.push(row);
                        }
                    }
                }
                self.stats.rows_produced += out.len() as u64;
                Ok(out)
            }
            LogicalPlan::Aggregate { input, group_by, aggregates, .. } => {
                let schema = input.schema().clone();
                let rows = self.execute(input)?;
                let group_idx: Vec<usize> = group_by
                    .iter()
                    .map(|g| {
                        schema
                            .index_of(g)
                            .ok_or_else(|| BdbError::NotFound(format!("group key {g}")))
                    })
                    .collect::<Result<_>>()?;
                let agg_idx: Vec<Option<usize>> = aggregates
                    .iter()
                    .map(|(_, arg, _)| {
                        arg.as_ref()
                            .map(|a| {
                                schema
                                    .index_of(a)
                                    .ok_or_else(|| BdbError::NotFound(format!("agg arg {a}")))
                            })
                            .transpose()
                    })
                    .collect::<Result<_>>()?;
                // Group states keyed by the grouping values.
                let mut groups: HashMap<Vec<HashKey>, (Record, Vec<AggState>)> = HashMap::new();
                for r in &rows {
                    self.stats.hash_build_rows += 1;
                    let key: Vec<HashKey> =
                        group_idx.iter().map(|&i| hash_key(&r[i])).collect();
                    let entry = groups.entry(key).or_insert_with(|| {
                        let reps: Record =
                            group_idx.iter().map(|&i| r[i].clone()).collect();
                        let states = aggregates
                            .iter()
                            .map(|(f, _, _)| AggState::new(*f))
                            .collect();
                        (reps, states)
                    });
                    for (state, idx) in entry.1.iter_mut().zip(&agg_idx) {
                        let v = idx.map(|i| &r[i]);
                        state.update(v);
                    }
                }
                // A global aggregate over zero rows still yields one row.
                if groups.is_empty() && group_idx.is_empty() {
                    let states: Vec<AggState> =
                        aggregates.iter().map(|(f, _, _)| AggState::new(*f)).collect();
                    groups.insert(Vec::new(), (Vec::new(), states));
                }
                let mut out: Vec<Record> = groups
                    .into_values()
                    .map(|(mut reps, states)| {
                        reps.extend(states.into_iter().map(AggState::finish));
                        reps
                    })
                    .collect();
                // Deterministic output order for tests and reports.
                out.sort_by(|a, b| compare_records(a, b, &mut 0));
                self.stats.rows_produced += out.len() as u64;
                Ok(out)
            }
            LogicalPlan::Sort { input, keys } => {
                let schema = input.schema().clone();
                let mut rows = self.execute(input)?;
                let key_idx: Vec<(usize, bool)> = keys
                    .iter()
                    .map(|(k, desc)| {
                        schema
                            .index_of(k)
                            .map(|i| (i, *desc))
                            .ok_or_else(|| BdbError::NotFound(format!("sort key {k}")))
                    })
                    .collect::<Result<_>>()?;
                let mut comparisons = 0u64;
                rows.sort_by(|a, b| {
                    for &(i, desc) in &key_idx {
                        comparisons += 1;
                        let ord = a[i]
                            .cmp_values(&b[i])
                            .unwrap_or(std::cmp::Ordering::Equal);
                        let ord = if desc { ord.reverse() } else { ord };
                        if ord != std::cmp::Ordering::Equal {
                            return ord;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                self.stats.sort_comparisons += comparisons;
                self.stats.rows_produced += rows.len() as u64;
                Ok(rows)
            }
            LogicalPlan::Limit { input, n } => {
                let mut rows = self.execute(input)?;
                rows.truncate(*n);
                self.stats.rows_produced += rows.len() as u64;
                Ok(rows)
            }
        }
    }
}

fn compare_records(a: &Record, b: &Record, _c: &mut u64) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        match x.cmp_values(y) {
            Some(std::cmp::Ordering::Equal) | None => continue,
            Some(ord) => return ord,
        }
    }
    std::cmp::Ordering::Equal
}

/// Streaming aggregate accumulator.
#[derive(Debug, Clone)]
enum AggState {
    Count(u64),
    SumInt { sum: i64, any: bool, as_float: bool, fsum: f64 },
    Avg { sum: f64, n: u64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggState {
    fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::SumInt { sum: 0, any: false, as_float: false, fsum: 0.0 },
            AggFunc::Avg => AggState::Avg { sum: 0.0, n: 0 },
            AggFunc::Min => AggState::Min(None),
            AggFunc::Max => AggState::Max(None),
        }
    }

    fn update(&mut self, v: Option<&Value>) {
        match self {
            AggState::Count(n) => {
                // COUNT(*) counts rows; COUNT(col) skips NULLs.
                match v {
                    None => *n += 1,
                    Some(val) if !val.is_null() => *n += 1,
                    Some(_) => {}
                }
            }
            AggState::SumInt { sum, any, as_float, fsum } => {
                if let Some(val) = v {
                    match val {
                        Value::Int(i) => {
                            *sum += i;
                            *fsum += *i as f64;
                            *any = true;
                        }
                        Value::Float(f) => {
                            *fsum += f;
                            *as_float = true;
                            *any = true;
                        }
                        _ => {}
                    }
                }
            }
            AggState::Avg { sum, n } => {
                if let Some(x) = v.and_then(Value::as_f64) {
                    *sum += x;
                    *n += 1;
                }
            }
            AggState::Min(cur) => {
                if let Some(val) = v {
                    if !val.is_null()
                        && cur.as_ref().is_none_or(|c| {
                            val.cmp_values(c) == Some(std::cmp::Ordering::Less)
                        })
                    {
                        *cur = Some(val.clone());
                    }
                }
            }
            AggState::Max(cur) => {
                if let Some(val) = v {
                    if !val.is_null()
                        && cur.as_ref().is_none_or(|c| {
                            val.cmp_values(c) == Some(std::cmp::Ordering::Greater)
                        })
                    {
                        *cur = Some(val.clone());
                    }
                }
            }
        }
    }

    fn finish(self) -> Value {
        match self {
            AggState::Count(n) => Value::Int(n as i64),
            AggState::SumInt { sum, any, as_float, fsum } => {
                if !any {
                    Value::Null
                } else if as_float {
                    Value::Float(fsum)
                } else {
                    Value::Int(sum)
                }
            }
            AggState::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
            AggState::Min(v) | AggState::Max(v) => v.unwrap_or(Value::Null),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Engine;
    use bdb_common::value::{DataType, Field, Schema};

    fn engine() -> Engine {
        let mut e = Engine::new();
        let orders = Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("user_id", DataType::Int),
            Field::new("total", DataType::Float),
            Field::new("city", DataType::Text),
        ]);
        let mut t = Table::new(orders);
        for (id, uid, total, city) in [
            (1, 10, 5.0, "york"),
            (2, 11, 7.5, "leeds"),
            (3, 10, 2.5, "york"),
            (4, 12, 10.0, "hull"),
            (5, 10, 1.0, "leeds"),
        ] {
            t.push(vec![
                Value::Int(id),
                Value::Int(uid),
                Value::Float(total),
                Value::from(city),
            ])
            .unwrap();
        }
        e.register("orders", t).unwrap();

        let users = Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("name", DataType::Text),
        ]);
        let mut u = Table::new(users);
        for (id, name) in [(10, "ann"), (11, "bob"), (13, "cat")] {
            u.push(vec![Value::Int(id), Value::from(name)]).unwrap();
        }
        e.register("users", u).unwrap();
        e
    }

    #[test]
    fn filter_project() {
        let mut e = engine();
        let out = e
            .sql("SELECT id, total * 2 AS dbl FROM orders WHERE total >= 5.0")
            .unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.rows()[0][1], Value::Float(10.0));
    }

    #[test]
    fn global_aggregates() {
        let mut e = engine();
        let out = e
            .sql("SELECT COUNT(*), SUM(total), AVG(total), MIN(total), MAX(total) FROM orders")
            .unwrap();
        let r = &out.rows()[0];
        assert_eq!(r[0], Value::Int(5));
        assert_eq!(r[1], Value::Float(26.0));
        assert_eq!(r[2], Value::Float(5.2));
        assert_eq!(r[3], Value::Float(1.0));
        assert_eq!(r[4], Value::Float(10.0));
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let mut e = engine();
        let out = e
            .sql("SELECT COUNT(*), SUM(total) FROM orders WHERE total > 100.0")
            .unwrap();
        let r = &out.rows()[0];
        assert_eq!(r[0], Value::Int(0));
        assert!(r[1].is_null());
    }

    #[test]
    fn group_by_aggregation() {
        let mut e = engine();
        let out = e
            .sql("SELECT city, COUNT(*) AS n, SUM(total) AS t FROM orders GROUP BY city ORDER BY city")
            .unwrap();
        let rows = out.rows();
        assert_eq!(rows.len(), 3);
        // hull, leeds, york in order.
        assert_eq!(rows[0][0], Value::from("hull"));
        assert_eq!(rows[0][1], Value::Int(1));
        assert_eq!(rows[2][0], Value::from("york"));
        assert_eq!(rows[2][2], Value::Float(7.5));
    }

    #[test]
    fn hash_join_inner_semantics() {
        let mut e = engine();
        let out = e
            .sql(
                "SELECT users.name, orders.total FROM orders JOIN users ON orders.user_id = users.id ORDER BY orders.total",
            )
            .unwrap();
        // user 12 has no match; user 13 has no orders.
        assert_eq!(out.len(), 4);
        assert_eq!(out.rows()[0][0], Value::from("ann")); // total 1.0
        assert_eq!(out.rows()[3][1], Value::Float(7.5)); // bob's order
    }

    #[test]
    fn join_then_group() {
        let mut e = engine();
        let out = e
            .sql(
                "SELECT users.name, SUM(orders.total) AS spend FROM orders JOIN users ON orders.user_id = users.id GROUP BY users.name ORDER BY spend DESC",
            )
            .unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.rows()[0][0], Value::from("ann"));
        assert_eq!(out.rows()[0][1], Value::Float(8.5));
    }

    #[test]
    fn order_by_desc_and_limit() {
        let mut e = engine();
        let out = e
            .sql("SELECT id FROM orders ORDER BY total DESC LIMIT 2")
            .unwrap();
        let ids: Vec<i64> = out.rows().iter().map(|r| r[0].as_i64().unwrap()).collect();
        assert_eq!(ids, vec![4, 2]);
    }

    #[test]
    fn count_column_skips_nulls() {
        let mut e = Engine::new();
        let schema = Schema::new(vec![Field::nullable("x", DataType::Int)]);
        let mut t = Table::new(schema);
        t.push(vec![Value::Int(1)]).unwrap();
        t.push(vec![Value::Null]).unwrap();
        t.push(vec![Value::Int(3)]).unwrap();
        e.register("t", t).unwrap();
        let out = e.sql("SELECT COUNT(*), COUNT(x) FROM t").unwrap();
        assert_eq!(out.rows()[0][0], Value::Int(3));
        assert_eq!(out.rows()[0][1], Value::Int(2));
    }

    #[test]
    fn stats_count_join_work() {
        let mut e = engine();
        e.sql("SELECT users.name FROM orders JOIN users ON orders.user_id = users.id")
            .unwrap();
        let s = e.stats();
        assert!(s.hash_build_rows > 0);
        assert!(s.hash_probe_rows > 0);
        assert!(s.total_ops() > 0);
    }

    #[test]
    fn select_distinct_dedupes() {
        let mut e = engine();
        let out = e.sql("SELECT DISTINCT city FROM orders ORDER BY city").unwrap();
        let cities: Vec<String> = out
            .rows()
            .iter()
            .map(|r| r[0].as_str().unwrap().to_string())
            .collect();
        assert_eq!(cities, vec!["hull", "leeds", "york"]);
    }

    #[test]
    fn having_filters_groups() {
        let mut e = engine();
        let out = e
            .sql("SELECT city, COUNT(*) AS n FROM orders GROUP BY city HAVING n >= 2 ORDER BY city")
            .unwrap();
        assert_eq!(out.len(), 2); // leeds and york have 2 orders each
        for row in out.rows() {
            assert!(row[1].as_i64().unwrap() >= 2);
        }
        // HAVING on an aggregate's default name works too.
        let out = e
            .sql("SELECT city, SUM(total) FROM orders GROUP BY city HAVING sum_total > 8.0")
            .unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn having_without_group_by_is_rejected() {
        let mut e = engine();
        assert!(e.sql("SELECT id FROM orders HAVING id > 1").is_err());
    }

    #[test]
    fn sum_of_ints_stays_int() {
        let mut e = engine();
        let out = e.sql("SELECT SUM(id) FROM orders").unwrap();
        assert_eq!(out.rows()[0][0], Value::Int(15));
    }
}
