//! Scalar expressions and their evaluation.

use bdb_common::record::Record;
use bdb_common::value::{Schema, Value};
use bdb_common::{BdbError, Result};
use std::cmp::Ordering;
use std::fmt;

/// A scalar expression over the columns of a row.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A column reference by name (resolved against a schema at eval time).
    Column(String),
    /// A literal value.
    Literal(Value),
    /// A binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// The operator.
        op: BinOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Logical negation.
    Not(Box<Expr>),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Eq => "=",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        };
        f.write_str(s)
    }
}

impl Expr {
    /// Shorthand: column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(name.into())
    }

    /// Shorthand: literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Shorthand: binary expression.
    pub fn binary(left: Expr, op: BinOp, right: Expr) -> Expr {
        Expr::Binary { left: Box::new(left), op, right: Box::new(right) }
    }

    /// All column names referenced by this expression.
    pub fn referenced_columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Column(c) => {
                if !out.contains(c) {
                    out.push(c.clone());
                }
            }
            Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.referenced_columns(out);
                right.referenced_columns(out);
            }
            Expr::Not(e) => e.referenced_columns(out),
        }
    }

    /// Evaluate against a row under a schema.
    pub fn eval(&self, schema: &Schema, row: &Record) -> Result<Value> {
        match self {
            Expr::Column(name) => {
                let idx = schema
                    .index_of(name)
                    .ok_or_else(|| BdbError::NotFound(format!("column {name}")))?;
                Ok(row[idx].clone())
            }
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Not(e) => {
                let v = e.eval(schema, row)?;
                match v {
                    Value::Bool(b) => Ok(Value::Bool(!b)),
                    Value::Null => Ok(Value::Null),
                    other => Err(BdbError::TypeMismatch {
                        expected: "BOOL".into(),
                        found: format!("{other}"),
                    }),
                }
            }
            Expr::Binary { left, op, right } => {
                let l = left.eval(schema, row)?;
                let r = right.eval(schema, row)?;
                eval_binary(&l, *op, &r)
            }
        }
    }

    /// Evaluate as a predicate: NULL and false are both "filtered out".
    pub fn eval_predicate(&self, schema: &Schema, row: &Record) -> Result<bool> {
        Ok(matches!(self.eval(schema, row)?, Value::Bool(true)))
    }
}

fn eval_binary(l: &Value, op: BinOp, r: &Value) -> Result<Value> {
    use BinOp::*;
    match op {
        And | Or => {
            let (a, b) = match (l, r) {
                (Value::Bool(a), Value::Bool(b)) => (*a, *b),
                (Value::Null, _) | (_, Value::Null) => return Ok(Value::Null),
                _ => {
                    return Err(BdbError::TypeMismatch {
                        expected: "BOOL operands".into(),
                        found: format!("{l} {op} {r}"),
                    })
                }
            };
            Ok(Value::Bool(if op == And { a && b } else { a || b }))
        }
        Eq | Ne | Lt | Le | Gt | Ge => {
            if l.is_null() || r.is_null() {
                // SQL three-valued logic: comparisons with NULL are NULL.
                return Ok(Value::Null);
            }
            let ord = l.cmp_values(r).ok_or_else(|| BdbError::TypeMismatch {
                expected: "comparable values".into(),
                found: format!("{l} {op} {r}"),
            })?;
            let b = match op {
                Eq => ord == Ordering::Equal,
                Ne => ord != Ordering::Equal,
                Lt => ord == Ordering::Less,
                Le => ord != Ordering::Greater,
                Gt => ord == Ordering::Greater,
                Ge => ord != Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Value::Bool(b))
        }
        Add | Sub | Mul | Div => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            match (l, r) {
                (Value::Int(a), Value::Int(b)) => {
                    let v = match op {
                        Add => a.wrapping_add(*b),
                        Sub => a.wrapping_sub(*b),
                        Mul => a.wrapping_mul(*b),
                        Div => {
                            if *b == 0 {
                                return Ok(Value::Null);
                            }
                            a / b
                        }
                        _ => unreachable!(),
                    };
                    Ok(Value::Int(v))
                }
                _ => {
                    let a = l.as_f64().ok_or_else(|| type_err(l, op, r))?;
                    let b = r.as_f64().ok_or_else(|| type_err(l, op, r))?;
                    let v = match op {
                        Add => a + b,
                        Sub => a - b,
                        Mul => a * b,
                        Div => {
                            if b == 0.0 {
                                return Ok(Value::Null);
                            }
                            a / b
                        }
                        _ => unreachable!(),
                    };
                    Ok(Value::Float(v))
                }
            }
        }
    }
}

fn type_err(l: &Value, op: BinOp, r: &Value) -> BdbError {
    BdbError::TypeMismatch {
        expected: "numeric operands".into(),
        found: format!("{l} {op} {r}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_common::value::{DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Float),
            Field::nullable("c", DataType::Int),
        ])
    }

    fn row() -> Record {
        vec![Value::Int(10), Value::Float(2.5), Value::Null]
    }

    #[test]
    fn column_and_literal_eval() {
        let s = schema();
        let r = row();
        assert_eq!(Expr::col("a").eval(&s, &r).unwrap(), Value::Int(10));
        assert_eq!(Expr::lit(5i64).eval(&s, &r).unwrap(), Value::Int(5));
        assert!(Expr::col("zz").eval(&s, &r).is_err());
    }

    #[test]
    fn arithmetic_int_and_float() {
        let s = schema();
        let r = row();
        let e = Expr::binary(Expr::col("a"), BinOp::Add, Expr::lit(5i64));
        assert_eq!(e.eval(&s, &r).unwrap(), Value::Int(15));
        let e = Expr::binary(Expr::col("a"), BinOp::Mul, Expr::col("b"));
        assert_eq!(e.eval(&s, &r).unwrap(), Value::Float(25.0));
    }

    #[test]
    fn division_by_zero_is_null() {
        let s = schema();
        let r = row();
        let e = Expr::binary(Expr::col("a"), BinOp::Div, Expr::lit(0i64));
        assert!(e.eval(&s, &r).unwrap().is_null());
        let e = Expr::binary(Expr::col("b"), BinOp::Div, Expr::lit(0.0));
        assert!(e.eval(&s, &r).unwrap().is_null());
    }

    #[test]
    fn comparisons_and_null_semantics() {
        let s = schema();
        let r = row();
        let e = Expr::binary(Expr::col("a"), BinOp::Gt, Expr::lit(5i64));
        assert_eq!(e.eval(&s, &r).unwrap(), Value::Bool(true));
        // NULL comparison yields NULL, and the predicate filters it.
        let e = Expr::binary(Expr::col("c"), BinOp::Eq, Expr::lit(1i64));
        assert!(e.eval(&s, &r).unwrap().is_null());
        assert!(!e.eval_predicate(&s, &r).unwrap());
    }

    #[test]
    fn logic_ops() {
        let s = schema();
        let r = row();
        let t = Expr::lit(true);
        let f = Expr::lit(false);
        assert_eq!(
            Expr::binary(t.clone(), BinOp::And, f.clone()).eval(&s, &r).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            Expr::binary(t.clone(), BinOp::Or, f.clone()).eval(&s, &r).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(Expr::Not(Box::new(t)).eval(&s, &r).unwrap(), Value::Bool(false));
        assert!(Expr::Not(Box::new(Expr::lit(3i64))).eval(&s, &r).is_err());
    }

    #[test]
    fn referenced_columns_dedupes() {
        let e = Expr::binary(
            Expr::binary(Expr::col("a"), BinOp::Add, Expr::col("b")),
            BinOp::Gt,
            Expr::col("a"),
        );
        let mut cols = Vec::new();
        e.referenced_columns(&mut cols);
        assert_eq!(cols, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn incomparable_types_error() {
        let s = schema();
        let r = row();
        let e = Expr::binary(Expr::col("a"), BinOp::Eq, Expr::lit("x"));
        assert!(e.eval(&s, &r).is_err());
    }
}
