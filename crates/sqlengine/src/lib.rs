//! A miniature relational query engine.
//!
//! The substrate standing in for the parallel SQL DBMSs the paper's survey
//! benchmarks target (DBMS-X/Vertica in the Pavlo benchmark, TPC-DS
//! engines, Teradata Aster in BigBench). It executes the *real-time
//! analytics* workload class of Table 2 — `select`, `aggregate`, `join` —
//! through a genuine pipeline: SQL text → tokens → AST → logical plan →
//! optimizer (predicate pushdown, projection pruning) → physical operators
//! (scan, filter, project, hash join, hash aggregate, sort, limit).
//!
//! ```
//! use bdb_sql::Engine;
//! use bdb_common::record::Table;
//! use bdb_common::value::{DataType, Field, Schema, Value};
//!
//! let schema = Schema::new(vec![
//!     Field::new("id", DataType::Int),
//!     Field::new("city", DataType::Text),
//! ]);
//! let mut t = Table::new(schema);
//! t.push(vec![Value::Int(1), Value::from("york")]).unwrap();
//! t.push(vec![Value::Int(2), Value::from("leeds")]).unwrap();
//!
//! let mut engine = Engine::new();
//! engine.register("users", t).unwrap();
//! let out = engine.sql("SELECT city FROM users WHERE id = 2").unwrap();
//! assert_eq!(out.rows()[0][0], Value::from("leeds"));
//! ```

pub mod catalog;
pub mod exec;
pub mod expr;
pub mod memo;
pub mod optimizer;
pub mod parser;
pub mod plan;

use bdb_common::record::Table;
use bdb_common::Result;

pub use catalog::Catalog;
pub use exec::{ExecStats, Executor};
pub use memo::{optimize_with_cost, Memo, PlanCost};
pub use plan::LogicalPlan;

/// The engine facade: a catalog plus the full SQL pipeline.
#[derive(Debug, Default)]
pub struct Engine {
    catalog: Catalog,
    stats: ExecStats,
}

impl Engine {
    /// An engine with an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a table under a name.
    ///
    /// # Errors
    /// Fails if the name is already taken.
    pub fn register(&mut self, name: &str, table: Table) -> Result<()> {
        self.catalog.register(name, table)
    }

    /// The engine's catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable catalog access, for load/maintenance workloads that
    /// replace or drop tables.
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Parse, plan, optimise (via the cost-ranked memo) and execute a
    /// SQL query.
    pub fn sql(&mut self, query: &str) -> Result<Table> {
        let (plan, _) = self.plan_with_cost(query)?;
        let mut exec = Executor::new(&self.catalog);
        let out = exec.run(&plan)?;
        self.stats.merge(exec.stats());
        Ok(out)
    }

    /// Plan a query without executing it (for inspection and tests).
    pub fn plan(&self, query: &str) -> Result<LogicalPlan> {
        Ok(self.plan_with_cost(query)?.0)
    }

    /// Plan a query and return the memo-extracted plan with its
    /// estimated cost — what the engine reports to the dispatch router.
    pub fn plan_with_cost(&self, query: &str) -> Result<(LogicalPlan, PlanCost)> {
        let stmt = parser::parse(query)?;
        let plan = plan::build_logical_plan(stmt, &self.catalog)?;
        Ok(memo::optimize_with_cost(plan, &self.catalog))
    }

    /// Cumulative execution statistics across all queries run so far —
    /// the engine's operation counters for the architecture metrics.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Reset the cumulative statistics.
    pub fn reset_stats(&mut self) {
        self.stats = ExecStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdb_common::value::{DataType, Field, Schema, Value};

    fn users() -> Table {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("city", DataType::Text),
            Field::new("age", DataType::Int),
        ]);
        let mut t = Table::new(schema);
        for (id, city, age) in [
            (1, "york", 30),
            (2, "leeds", 25),
            (3, "york", 41),
            (4, "hull", 25),
        ] {
            t.push(vec![Value::Int(id), Value::from(city), Value::Int(age)])
                .unwrap();
        }
        t
    }

    #[test]
    fn end_to_end_select_where() {
        let mut e = Engine::new();
        e.register("users", users()).unwrap();
        let out = e.sql("SELECT id FROM users WHERE city = 'york'").unwrap();
        let ids: Vec<i64> = out.rows().iter().map(|r| r[0].as_i64().unwrap()).collect();
        assert_eq!(ids, vec![1, 3]);
        assert!(e.stats().rows_scanned >= 4);
    }

    #[test]
    fn register_twice_fails() {
        let mut e = Engine::new();
        e.register("users", users()).unwrap();
        assert!(e.register("users", users()).is_err());
    }

    #[test]
    fn query_unknown_table_fails() {
        let mut e = Engine::new();
        assert!(e.sql("SELECT x FROM nope").is_err());
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut e = Engine::new();
        e.register("users", users()).unwrap();
        e.sql("SELECT id FROM users").unwrap();
        let first = e.stats().rows_scanned;
        e.sql("SELECT id FROM users").unwrap();
        assert_eq!(e.stats().rows_scanned, first * 2);
        e.reset_stats();
        assert_eq!(e.stats().rows_scanned, 0);
    }
}
